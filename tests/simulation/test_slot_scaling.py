"""Tests for non-unit slot lengths and run-to-run determinism.

The paper measures everything in slot units, but a real deployment has a
slot = D minutes; policies must scale stream lengths and labels
consistently.  Costs in *time* units must equal the slot-unit costs
scaled by D.
"""

from __future__ import annotations

import pytest

from repro.arrivals import ArrivalTrace, poisson
from repro.core.online import online_full_cost
from repro.simulation import (
    BatchedDyadicPolicy,
    DelayGuaranteedPolicy,
    OfflineOptimalPolicy,
    PureBatchingPolicy,
    Simulation,
    verify_simulation,
)
from repro.core.full_cost import optimal_full_cost


def scaled_every_slot(n: int, slot: float) -> ArrivalTrace:
    return ArrivalTrace(
        times=tuple(i * slot for i in range(n)), horizon=n * slot
    )


class TestScaledSlots:
    @pytest.mark.parametrize("slot", [0.25, 0.5, 2.0, 15.0])
    def test_dg_cost_scales_linearly(self, slot):
        L, n = 15, 40
        trace = scaled_every_slot(n, slot)
        res = Simulation(L, trace, DelayGuaranteedPolicy(L), slot=slot).run()
        assert res.metrics.total_units == pytest.approx(
            online_full_cost(L, n) * slot
        )
        # the reconstructed forest (labels in time units) must carry the
        # same structure regardless of the slot scale
        assert res.forest().num_arrivals() == n

    @pytest.mark.parametrize("slot", [0.5, 3.0])
    def test_offline_cost_scales_linearly(self, slot):
        L, n = 10, 30
        trace = scaled_every_slot(n, slot)
        res = Simulation(L, trace, OfflineOptimalPolicy(L, n), slot=slot).run()
        assert res.metrics.total_units == pytest.approx(
            optimal_full_cost(L, n) * slot
        )

    def test_batched_dyadic_scaled(self):
        L, slot = 50, 2.0
        trace = poisson(3.0, 100.0, seed=3)
        res_scaled = Simulation(L, trace, BatchedDyadicPolicy(L), slot=slot).run()
        # same arrivals compressed to unit slots must cost 1/slot as much
        unit_times = tuple(t / slot for t in trace.times)
        unit_trace = ArrivalTrace(times=unit_times, horizon=trace.horizon / slot)
        res_unit = Simulation(L, unit_trace, BatchedDyadicPolicy(L), slot=1.0).run()
        assert res_scaled.metrics.total_units == pytest.approx(
            res_unit.metrics.total_units * slot
        )

    def test_startup_delay_bounded_by_scaled_slot(self):
        L, slot = 20, 5.0
        trace = poisson(4.0, 200.0, seed=6)
        res = Simulation(L, trace, PureBatchingPolicy(L), slot=slot).run()
        assert 0 < res.max_startup_delay() <= slot


class TestDeterminism:
    def test_identical_runs(self):
        L = 30
        trace = poisson(1.2, 120.0, seed=10)
        a = Simulation(L, trace, DelayGuaranteedPolicy(L)).run()
        b = Simulation(L, trace, DelayGuaranteedPolicy(L)).run()
        assert a.metrics.total_units == b.metrics.total_units
        assert sorted(a.streams) == sorted(b.streams)
        assert [c.tree_label for c in a.clients] == [c.tree_label for c in b.clients]

    def test_event_counts_deterministic(self):
        L = 25
        trace = poisson(0.8, 80.0, seed=11)
        sims = []
        for _ in range(2):
            sim = Simulation(L, trace, BatchedDyadicPolicy(L))
            sim.run()
            sims.append(sim.queue.processed)
        assert sims[0] == sims[1]


class TestClientBookkeeping:
    def test_assign_twice_rejected(self):
        from repro.simulation.client import Client

        c = Client(client_id=0, arrival=1.0, service_time=2.0)
        c.assign(3.0, (1.0, 3.0))
        with pytest.raises(RuntimeError):
            c.assign(4.0, (4.0,))

    def test_path_must_end_at_own_stream(self):
        from repro.simulation.client import Client

        c = Client(client_id=0, arrival=1.0, service_time=2.0)
        with pytest.raises(ValueError):
            c.assign(3.0, (1.0, 2.0))

    def test_merge_hops(self):
        from repro.simulation.client import Client

        c = Client(client_id=0, arrival=1.0, service_time=2.0)
        c.assign(3.0, (0.0, 1.0, 3.0))
        assert c.merge_hops() == 2

    def test_service_before_arrival_rejected(self):
        from repro.simulation.client import Client

        with pytest.raises(ValueError):
            Client(client_id=0, arrival=2.0, service_time=1.0)

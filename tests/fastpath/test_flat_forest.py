"""FlatForest vs. the MergeTree/MergeForest object oracles."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.full_cost import (
    build_optimal_flat_forest,
    build_optimal_forest,
    optimal_stream_count,
)
from repro.core.merge_tree import MergeForest, chain_tree, star_tree
from repro.core.online import (
    OnlineScheduler,
    build_online_flat_forest,
    build_online_forest,
    online_tree_size,
)
from repro.fastpath.flat_forest import FlatForest, as_flat_forest
from repro.simulation.channels import (
    assign_forest_channels,
    forest_intervals,
    min_forest_channels,
    peak_concurrency,
)
from repro.simulation.verify import verify_forest

from tests.conftest import preorder_tree


@st.composite
def preorder_forest(draw, max_trees: int = 3, max_n: int = 14) -> MergeForest:
    """A random forest of preorder-property trees on disjoint label blocks."""
    k = draw(st.integers(min_value=1, max_value=max_trees))
    trees = []
    offset = 0
    for _ in range(k):
        tree = draw(preorder_tree(max_n=max_n, start=offset))
        offset += len(tree) + draw(st.integers(min_value=0, max_value=3))
        trees.append(tree)
    return MergeForest(trees)


class TestRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(preorder_forest())
    def test_lossless_round_trip(self, forest):
        flat = FlatForest.from_forest(forest)
        back = flat.to_forest()
        assert [t.canonical() for t in back] == [t.canonical() for t in forest]
        assert flat.equals(FlatForest.from_forest(back))

    @given(preorder_tree(max_n=16))
    def test_tree_to_flat_convenience(self, tree):
        flat = tree.to_flat()
        assert len(flat) == len(tree)
        assert flat.merge_cost() == tree.merge_cost()

    def test_non_preorder_tree_round_trips(self):
        # A feasible tree *without* the preorder property: 2 attaches to 0
        # after 1 does, and 3 attaches to 1 — the preorder walk 0,1,3,2 is
        # out of order but the flat form is still exact.
        from repro.core.merge_tree import tree_from_parent_map

        tree = tree_from_parent_map({0: None, 1: 0, 2: 0, 3: 1})
        assert not tree.has_preorder_property()
        flat = FlatForest.from_tree(tree)
        assert flat.merge_cost() == tree.merge_cost()
        assert flat.to_forest().trees[0].canonical() == tree.canonical()


class TestCostsMatchOracle:
    @settings(max_examples=100, deadline=None)
    @given(preorder_forest())
    def test_merge_costs(self, forest):
        flat = FlatForest.from_forest(forest)
        assert flat.merge_cost() == forest.merge_cost()
        assert flat.merge_cost_receive_all() == forest.merge_cost_receive_all()

    @settings(max_examples=60, deadline=None)
    @given(preorder_forest())
    def test_full_costs_and_lengths(self, forest):
        # Pick L large enough for feasibility.
        L = int(max(t.span() for t in forest)) + 1 + 5
        flat = FlatForest.from_forest(forest)
        assert flat.full_cost(L) == forest.full_cost(L)
        assert flat.full_cost_receive_all(L) == forest.full_cost_receive_all(L)
        assert flat.stream_length_map(L) == forest.stream_lengths(L)

    def test_infeasible_length_raises(self):
        flat = FlatForest.from_tree(chain_tree([0, 1, 2, 3, 4]))
        with pytest.raises(ValueError):
            flat.full_cost(3)

    def test_star_and_chain(self):
        for tree in (star_tree(range(6)), chain_tree(range(6))):
            flat = tree.to_flat()
            assert flat.merge_cost() == tree.merge_cost()
            assert flat.num_trees() == 1


class TestValidation:
    def test_unsorted_arrivals_rejected(self):
        with pytest.raises(ValueError):
            FlatForest([0.0, 2.0, 1.0], [-1, 0, 0])

    def test_parent_not_earlier_rejected(self):
        with pytest.raises(ValueError):
            FlatForest([0.0, 1.0], [-1, 1])
        with pytest.raises(ValueError):
            FlatForest([0.0, 1.0], [1, -1])

    def test_interleaved_trees_rejected(self):
        # node 2 claims a parent in the tree before root 1.
        with pytest.raises(ValueError):
            FlatForest([0.0, 1.0, 2.0], [-1, -1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            FlatForest([], [])

    def test_find_and_paths(self):
        forest = build_optimal_forest(15, 20)
        flat = forest.to_flat()
        for arrival in (0, 7, 19):
            i = flat.find(float(arrival))
            labels = [flat.arrivals[j] for j in flat.path_indices(i)]
            tree, node = forest.find(arrival)
            assert labels == [n.arrival for n in node.path_from_root()]
        with pytest.raises(KeyError):
            flat.find(99.5)


class TestFlatBuilders:
    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=120),
    )
    def test_optimal_flat_forest_matches_object_builder(self, L, n):
        flat = build_optimal_flat_forest(L, n)
        obj = build_optimal_forest(L, n)
        assert flat.equals(FlatForest.from_forest(obj))
        assert flat.full_cost(L) == obj.full_cost(L)

    def test_optimal_flat_forest_explicit_streams(self):
        L, n = 15, 33
        s = optimal_stream_count(L, n) + 1
        assert build_optimal_flat_forest(L, n, s).equals(
            FlatForest.from_forest(build_optimal_forest(L, n, s))
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=1, max_value=120),
    )
    def test_online_flat_forest_matches_object_builder(self, L, n):
        flat = build_online_flat_forest(L, n)
        obj = build_online_forest(L, n)
        assert flat.equals(FlatForest.from_forest(obj))
        assert flat.full_cost(L) == obj.full_cost(L)

    def test_online_flat_forest_tree_size_override(self):
        flat = build_online_flat_forest(10, 20, tree_size=5)
        obj = build_online_forest(10, 20, tree_size=5)
        assert flat.equals(FlatForest.from_forest(obj))
        with pytest.raises(ValueError):
            build_online_flat_forest(10, 20, tree_size=11)

    def test_scheduler_tables_match_forest(self):
        L, n = 25, 40
        sched = OnlineScheduler(L)
        forest = build_online_forest(L, n)
        size = online_tree_size(L)
        for slot in range(size):  # one full tree covers every table entry
            order = sched.order_for_slot(slot)
            tree, node = forest.find(slot)
            if node.parent is None:
                assert order.is_root and order.parent_slot is None
                assert order.planned_length == L
            else:
                assert order.parent_slot == node.parent.arrival
                assert order.planned_length == tree.length(slot)
            path = sched.receiving_path(slot)
            assert path == [x.arrival for x in node.path_from_root()]


class TestChannelsAndVerify:
    @settings(max_examples=60, deadline=None)
    @given(preorder_forest())
    def test_peak_concurrency_equals_greedy_channels(self, forest):
        L = int(max(t.span() for t in forest)) + 1 + 3
        assert min_forest_channels(forest, L) == assign_forest_channels(
            forest, L
        ).num_channels

    def test_forest_intervals_accepts_flat(self):
        forest = build_optimal_forest(15, 30)
        a = forest_intervals(forest, 15)
        b = forest_intervals(forest.to_flat(), 15)
        assert a == b
        # Interval content matches the object-path stream lengths.
        lengths = {s.label: s.units for s in a}
        expected = {
            lbl: ln for lbl, ln in forest.stream_lengths(15).items() if ln > 0
        }
        assert lengths == expected

    def test_peak_concurrency_empty(self):
        assert peak_concurrency(np.array([]), np.array([])) == 0

    def test_verify_accepts_flat_forest(self):
        flat = build_optimal_flat_forest(15, 30)
        report = verify_forest(flat, 15)
        report.raise_if_failed()
        assert report.checks > 0

    def test_as_flat_forest_coercions(self):
        forest = build_optimal_forest(10, 12)
        flat = forest.to_flat()
        assert as_flat_forest(flat) is flat
        assert as_flat_forest(forest).equals(flat)
        assert as_flat_forest(forest.trees[0]).num_trees() == 1

"""Flat, numpy-backed merge forests.

:class:`~repro.core.merge_tree.MergeForest` is a pointer graph of
:class:`~repro.core.merge_tree.MergeNode` objects; every cost query walks
it with per-node ``last_descendant()`` calls, which is both allocation-
and pointer-chase-heavy at production scale.  :class:`FlatForest` stores
the same information as three parallel numpy arrays over the nodes in
arrival order:

* ``arrivals[i]`` — the node's label (strictly increasing);
* ``parent[i]`` — index of the parent node, ``-1`` for tree roots
  (always ``parent[i] < i`` since parents arrive earlier);
* ``z[i]`` — the latest arrival in the subtree of node ``i``
  (precomputed once, in one reverse O(n) pass).

Every cost the paper defines is then a vectorised expression: receive-two
stream lengths are ``2 z - x - p`` over non-roots (Lemma 1), receive-all
lengths ``z - p`` (Lemma 17), ``Mcost``/``Fcost`` are sums, and channel
intervals are ``[x, x + length)`` slices — no Python object is ever
materialised.  Conversion to and from ``MergeForest`` is lossless (the
sibling order of a valid merge tree is arrival order, which the flat form
preserves by construction); ``tests/fastpath/test_flat_forest.py`` proves
cost-exact and structure-exact round trips against the object oracles.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from ..core.merge_tree import (
    MergeForest,
    MergeNode,
    MergeTree,
    _as_int_if_exact,
)
from ..scale.kernels import forest_z

__all__ = ["FlatForest", "as_flat_forest"]


class FlatForest:
    """A merge forest as parallel arrays (see module docstring).

    Construct from raw arrays, or via :meth:`from_forest` /
    :meth:`from_tree`; convert back with :meth:`to_forest`.
    """

    __slots__ = ("arrivals", "parent", "z", "root_index")

    def __init__(
        self,
        arrivals: Union[np.ndarray, Sequence[float]],
        parent: Union[np.ndarray, Sequence[int]],
        z: Union[np.ndarray, Sequence[float], None] = None,
    ):
        arr = np.ascontiguousarray(arrivals, dtype=np.float64)
        par = np.ascontiguousarray(parent, dtype=np.intp)
        if arr.ndim != 1 or par.ndim != 1 or arr.size != par.size:
            raise ValueError("arrivals and parent must be 1-D arrays of equal length")
        n = arr.size
        if n == 0:
            raise ValueError("a merge forest needs at least one node")
        if np.any(arr[1:] <= arr[:-1]):
            raise ValueError("arrivals must be strictly increasing")
        if par[0] != -1:
            raise ValueError("the first node must be a root (parent == -1)")
        if np.any(par < -1) or np.any(par >= np.arange(n)):
            raise ValueError("parent[i] must be -1 or an earlier index (< i)")
        # root_index[i]: index of the root of i's tree.  Trees must occupy
        # contiguous index ranges (the MergeForest boundary property), so
        # the root of i is the latest root at or before i — and a parent
        # pointing before that root would cross a tree boundary.
        root_index = np.maximum.accumulate(
            np.where(par == -1, np.arange(n), -1)
        )
        nonroot = par >= 0
        if np.any(par[nonroot] < root_index[nonroot]):
            raise ValueError(
                "parent pointer crosses a tree boundary (trees must be "
                "contiguous in arrival order)"
            )
        # z[i] = max arrival in subtree(i): one reverse pass suffices
        # because every child has a larger index than its parent.  Builders
        # that know the subtree maxima already (e.g. the flat dyadic
        # construction, where a run's subtree is exactly the run) may pass
        # ``z`` to skip the pass; the array is trusted as-is.  The pass is
        # backend-dispatched (repro.scale.kernels) — compiled under numba,
        # the original list loop otherwise.
        if z is None:
            z = forest_z(arr, par)
        else:
            z = np.ascontiguousarray(z, dtype=np.float64)
            if z.shape != arr.shape:
                raise ValueError("z must match arrivals in shape")
        self.arrivals = arr
        self.parent = par
        self.z = z
        self.root_index = root_index

    # -- basic queries ---------------------------------------------------------

    def __len__(self) -> int:
        return int(self.arrivals.size)

    @property
    def is_root(self) -> np.ndarray:
        """Boolean mask of tree roots."""
        return self.parent < 0

    def num_trees(self) -> int:
        return int(np.count_nonzero(self.parent < 0))

    def roots(self) -> List[float]:
        """Root labels, in tree order (collapsed to int when exact)."""
        return [_as_int_if_exact(x) for x in self.arrivals[self.is_root].tolist()]

    def find(self, arrival: float) -> int:
        """Index of the node labelled ``arrival`` (binary search)."""
        i = int(np.searchsorted(self.arrivals, arrival))
        if i >= len(self) or self.arrivals[i] != arrival:
            raise KeyError(f"arrival {arrival} not in forest")
        return i

    def path_indices(self, i: int) -> List[int]:
        """Indices from the tree root down to node ``i``."""
        path = []
        j = int(i)
        while j >= 0:
            path.append(j)
            j = int(self.parent[j])
        path.reverse()
        return path

    def paths(self, labels: Union[Sequence, None] = None) -> List[Tuple]:
        """Every node's root path as shared tuples, one forward pass.

        Parents precede children in index order, so ``paths[i]`` can
        reuse ``paths[parent]`` — O(total depth) tuple cells.  ``labels``
        substitutes what the tuples hold (default: arrival labels);
        callers pass node indices or type-collapsed labels as needed.
        """
        lab = self.arrivals.tolist() if labels is None else list(labels)
        par = self.parent.tolist()
        out: List[Tuple] = [()] * len(par)
        for i, a in enumerate(lab):
            p = par[i]
            out[i] = (out[p] + (a,)) if p >= 0 else (a,)
        return out

    def equals(self, other: "FlatForest") -> bool:
        return (
            len(self) == len(other)
            and np.array_equal(self.arrivals, other.arrivals)
            and np.array_equal(self.parent, other.parent)
        )

    # -- costs (all vectorised) ------------------------------------------------

    def stream_lengths(self, L: float, model: str = "receive-two") -> np.ndarray:
        """Per-node stream lengths: Lemma 1 or Lemma 17; roots carry ``L``."""
        nonroot = self.parent >= 0
        out = np.full(len(self), float(L))
        p = self.arrivals[self.parent[nonroot]]
        if model == "receive-two":
            out[nonroot] = 2 * self.z[nonroot] - self.arrivals[nonroot] - p
        elif model == "receive-all":
            out[nonroot] = self.z[nonroot] - p
        else:
            raise ValueError(f"unknown client model {model!r}")
        return out

    def stream_length_map(
        self, L: float, model: str = "receive-two"
    ) -> Dict[float, float]:
        """``arrival -> length`` dict, matching ``MergeForest.stream_lengths``."""
        return dict(zip(self.arrivals.tolist(), self.stream_lengths(L, model).tolist()))

    def merge_cost(self) -> float:
        """``Mcost``: sum of receive-two lengths over non-roots (Lemma 1)."""
        nonroot = self.parent >= 0
        total = np.sum(
            2 * self.z[nonroot]
            - self.arrivals[nonroot]
            - self.arrivals[self.parent[nonroot]]
        )
        return _as_int_if_exact(float(total))

    def merge_cost_receive_all(self) -> float:
        """``Mcost_w``: sum of receive-all lengths over non-roots (Lemma 17)."""
        nonroot = self.parent >= 0
        total = np.sum(self.z[nonroot] - self.arrivals[self.parent[nonroot]])
        return _as_int_if_exact(float(total))

    def tree_spans(self) -> np.ndarray:
        """``z - r`` per tree, in tree order."""
        root = self.is_root
        return self.z[root] - self.arrivals[root]

    def validate_for_length(self, L: float) -> None:
        """Every tree must span at most ``L - 1`` (same bound both models)."""
        spans = self.tree_spans()
        bad = np.nonzero(spans > L - 1)[0]
        if bad.size:
            i = int(bad[0])
            root_label = self.arrivals[self.is_root][i]
            raise ValueError(
                f"tree rooted at {_as_int_if_exact(float(root_label))} spans "
                f"{_as_int_if_exact(float(spans[i]))} > L-1 = {L - 1}; the "
                "last arrival cannot merge in time"
            )

    def full_cost(self, L: float) -> float:
        """``Fcost = s*L + Mcost`` (receive-two)."""
        self.validate_for_length(L)
        return _as_int_if_exact(self.num_trees() * L + self.merge_cost())

    def full_cost_receive_all(self, L: float) -> float:
        """``Fcost_w = s*L + Mcost_w`` (receive-all)."""
        self.validate_for_length(L)
        return _as_int_if_exact(self.num_trees() * L + self.merge_cost_receive_all())

    def intervals(self, L: float) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Positive-length stream intervals as ``(labels, starts, ends)``.

        The array analogue of ``simulation.channels.forest_intervals``:
        stream ``x`` occupies ``[x, x + length(x))``.
        """
        lengths = self.stream_lengths(L)
        keep = lengths > 0
        labels = self.arrivals[keep]
        # starts is a copy, not an alias of labels: callers may shift the
        # schedule in place without silently renaming every stream.
        return labels, labels.copy(), labels + lengths[keep]

    # -- conversion ------------------------------------------------------------

    @classmethod
    def from_tree(cls, tree: MergeTree) -> "FlatForest":
        return cls.from_forest(MergeForest([tree]))

    @classmethod
    def from_forest(cls, forest: MergeForest) -> "FlatForest":
        """Lossless flattening of a ``MergeForest`` (O(n))."""
        labels: List[float] = []
        parents: List[int] = []
        index: Dict[float, int] = {}
        for tree in forest:
            for node in tree.root.preorder():
                index[node.arrival] = -1  # placeholder; filled below
        # Node order must be arrival order; a preorder walk of a valid
        # merge tree is not necessarily sorted (only optimal trees are),
        # so sort the labels and map parents through the index.
        ordered = sorted(index)
        index = {a: i for i, a in enumerate(ordered)}
        labels = ordered
        parents = [0] * len(ordered)
        for tree in forest:
            for node in tree.root.preorder():
                parents[index[node.arrival]] = (
                    -1 if node.parent is None else index[node.parent.arrival]
                )
        return cls(np.asarray(labels, dtype=np.float64), np.asarray(parents, dtype=np.intp))

    def to_forest(self) -> MergeForest:
        """Inverse of :meth:`from_forest` (canonical-form identical)."""
        n = len(self)
        nodes = [MergeNode(_as_int_if_exact(float(a))) for a in self.arrivals]
        for i in range(n):
            p = int(self.parent[i])
            if p >= 0:
                nodes[i].parent = nodes[p]
                nodes[p].children.append(nodes[i])
        # Ascending index == ascending arrival, so children lists are in
        # arrival order — the sibling order MergeTree requires.
        out: List[MergeTree] = []
        for i in np.nonzero(self.is_root)[0]:
            out.append(MergeTree(nodes[int(i)]))
        return MergeForest(out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlatForest(n={len(self)}, trees={self.num_trees()})"


def as_flat_forest(forest: Union[FlatForest, MergeForest, MergeTree]) -> FlatForest:
    """Coerce any forest representation to a :class:`FlatForest`."""
    if isinstance(forest, FlatForest):
        return forest
    if isinstance(forest, MergeTree):
        return FlatForest.from_tree(forest)
    return FlatForest.from_forest(forest)

"""Structural analytics for merge trees and forests.

Questions a deployment engineer asks about a schedule that the cost
formulas alone don't answer: how deep do clients merge (each hop is a
re-tune), how is bandwidth spread over time, how close is a tree to the
canonical Fibonacci shape, and what does each client's journey look like.
Used by the examples, the docs, and the multiplex reporting.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .fibonacci import is_fib
from .merge_tree import MergeForest, MergeTree
from .offline import build_optimal_tree

__all__ = [
    "TreeStats",
    "tree_stats",
    "forest_stats",
    "is_fibonacci_tree",
    "merge_hop_histogram",
    "bandwidth_timeline",
]


@dataclass(frozen=True)
class TreeStats:
    """Shape summary of one merge tree."""

    n: int
    height: int
    max_fanout: int
    leaves: int
    mean_depth: float
    merge_cost: float

    @property
    def internal(self) -> int:
        return self.n - self.leaves


def tree_stats(tree: MergeTree) -> TreeStats:
    """Compute height / fan-out / leaf and depth statistics in one pass."""
    depths: List[int] = []
    max_fanout = 0
    leaves = 0
    stack = [(tree.root, 0)]
    while stack:
        node, depth = stack.pop()
        depths.append(depth)
        max_fanout = max(max_fanout, len(node.children))
        if not node.children:
            leaves += 1
        for child in node.children:
            stack.append((child, depth + 1))
    return TreeStats(
        n=len(tree),
        height=max(depths),
        max_fanout=max_fanout,
        leaves=leaves,
        mean_depth=sum(depths) / len(depths),
        merge_cost=tree.merge_cost(),
    )


def forest_stats(forest: MergeForest) -> Dict[str, float]:
    """Aggregate shape statistics across a forest."""
    per_tree = [tree_stats(t) for t in forest]
    total_n = sum(s.n for s in per_tree)
    return {
        "trees": len(per_tree),
        "arrivals": total_n,
        "max_height": max(s.height for s in per_tree),
        "max_fanout": max(s.max_fanout for s in per_tree),
        "mean_depth": sum(s.mean_depth * s.n for s in per_tree) / total_n,
        "merge_cost": sum(s.merge_cost for s in per_tree),
    }


def is_fibonacci_tree(tree: MergeTree) -> bool:
    """True iff ``tree`` is exactly the canonical Fibonacci merge tree.

    Defined for trees over consecutive integer arrivals whose size is a
    Fibonacci number; the optimal tree is then unique (Theorem 3), so a
    structural comparison against the canonical construction decides it.
    """
    n = len(tree)
    if not is_fib(n):
        return False
    arrivals = tree.arrivals()
    start = arrivals[0]
    if arrivals != [start + i for i in range(n)]:
        return False
    canonical = build_optimal_tree(n, start=int(start))
    return tree.canonical() == canonical.canonical()


def merge_hop_histogram(forest: MergeForest) -> Dict[int, int]:
    """How many clients sit at each merge depth (depth 0 = root clients).

    A client at depth ``d`` performs ``d`` merge operations (re-tunes) on
    its way to the root stream — an operational cost the paper's
    simplicity argument cares about.
    """
    counts: Counter = Counter()
    for tree in forest:
        for node in tree.root.preorder():
            counts[node.depth()] += 1
    return dict(sorted(counts.items()))


def bandwidth_timeline(
    forest: MergeForest, L: float, resolution: float = 1.0
) -> List[Tuple[float, int]]:
    """(time, live streams) breakpoints over the forest's busy period.

    Exact event-driven sweep (no sampling): one entry per time at which
    the number of concurrently live streams changes.
    """
    deltas: Counter = Counter()
    for label, length in forest.stream_lengths(L).items():
        if length > 0:
            deltas[label] += 1
            deltas[label + length] -= 1
    timeline: List[Tuple[float, int]] = []
    level = 0
    for t in sorted(deltas):
        level += deltas[t]
        timeline.append((t, level))
    return timeline

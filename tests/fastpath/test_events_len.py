"""O(1) EventQueue.__len__ counter vs. a naive heap scan."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulation.events import EventQueue


def naive_len(q: EventQueue) -> int:
    return sum(1 for e in q._heap if not e.cancelled)


class TestLiveCounter:
    def test_schedule_cancel_pop(self):
        q = EventQueue()
        events = [q.schedule(float(t), lambda: None) for t in range(5)]
        assert len(q) == 5 == naive_len(q)
        events[2].cancel()
        assert len(q) == 4 == naive_len(q)
        events[2].cancel()  # idempotent
        assert len(q) == 4 == naive_len(q)
        q.step()
        assert len(q) == 3 == naive_len(q)
        q.run()
        assert len(q) == 0 == naive_len(q)

    def test_cancel_after_execution_is_a_noop(self):
        q = EventQueue()
        e = q.schedule(1.0, lambda: None)
        q.run()
        assert len(q) == 0
        e.cancel()  # already executed; must not drive the counter negative
        assert len(q) == 0

    def test_cancel_from_inside_action(self):
        q = EventQueue()
        later = q.schedule(2.0, lambda: None)
        q.schedule(1.0, later.cancel)
        assert len(q) == 2
        q.run()
        assert len(q) == 0 == naive_len(q)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.sampled_from(["schedule", "cancel", "step"]), max_size=60))
    def test_random_operation_sequences(self, ops):
        q = EventQueue()
        pending = []
        t = 0.0
        for op in ops:
            if op == "schedule":
                t += 1.0
                pending.append(q.schedule(q.now + t, lambda: None))
            elif op == "cancel" and pending:
                pending.pop(len(pending) // 2).cancel()
            elif op == "step":
                q.step()
            assert len(q) == naive_len(q)

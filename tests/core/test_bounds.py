"""Tests for the analytic bounds module (Theorems 8/13/14/19/21/22)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import bounds
from repro.core.full_cost import optimal_full_cost
from repro.core.offline import merge_cost


class TestLogPhi:
    def test_values(self):
        from repro.core.fibonacci import PHI

        assert math.isclose(bounds.log_phi(PHI), 1.0, rel_tol=1e-9)
        assert math.isclose(bounds.log_phi(1.0), 0.0)

    def test_error(self):
        with pytest.raises(ValueError):
            bounds.log_phi(0)


class TestTheorem8Sandwich:
    @given(st.integers(min_value=2, max_value=2_000_000))
    def test_bounds_hold(self, n):
        m = merge_cost(n)
        assert bounds.merge_cost_lower(n) <= m <= bounds.merge_cost_upper(n)

    def test_normalised_ratio_tends_to_one(self):
        r = [merge_cost(n) / (n * bounds.log_phi(n)) for n in (100, 10_000, 1_000_000)]
        assert all(abs(x - 1) < 0.35 for x in r)
        assert abs(r[-1] - 1) < abs(r[0] - 1)

    def test_n1(self):
        assert bounds.merge_cost_upper(1) == 0.0
        assert bounds.merge_cost_lower(1) == 0.0


class TestTheorem13LeadingTerm:
    def test_full_cost_order(self):
        # F(L, n) / (n log_phi L) bounded above and below by constants
        for L in (8, 32, 128):
            n = 50 * L
            f = optimal_full_cost(L, n)
            lead = bounds.full_cost_leading_term(L, n)
            assert 0.5 < f / lead < 3.0, (L, f / lead)

    def test_tiny_L(self):
        assert bounds.full_cost_leading_term(1, 100) == 0.0


class TestTheorem14:
    def test_gain_grows(self):
        gains = []
        for L in (8, 64, 512):
            n = 10 * L
            gains.append(bounds.batching_cost(L, n) / optimal_full_cost(L, n))
        assert gains[0] < gains[1] < gains[2]

    def test_gain_order_ratio_stable(self):
        ratios = []
        for L in (64, 256, 1024):
            n = 10 * L
            gain = bounds.batching_cost(L, n) / optimal_full_cost(L, n)
            ratios.append(gain / bounds.batching_gain_order(L))
        # Theta-ratio stays within a tight band
        assert max(ratios) / min(ratios) < 1.5

    def test_batching_cost(self):
        assert bounds.batching_cost(10, 7) == 70
        assert bounds.batching_gain_order(1) == 1.0


class TestTheorem22Bound:
    def test_values(self):
        assert bounds.online_ratio_bound(10, 100) == 1.2
        assert bounds.online_ratio_bound_applies(7, 52)
        assert not bounds.online_ratio_bound_applies(6, 1000)
        assert not bounds.online_ratio_bound_applies(10, 102)

    def test_constant(self):
        assert math.isclose(bounds.RECEIVE_ALL_GAIN, 1.4404, abs_tol=1e-4)

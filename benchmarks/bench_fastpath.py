"""Old-path vs. fast-path timings for the ``repro.fastpath`` layer.

Two modes:

* ``pytest benchmarks/bench_fastpath.py --benchmark-only`` — smoke-size
  pytest-benchmark runs (small n; every run asserts fast == reference);
* ``python benchmarks/bench_fastpath.py`` (or ``make bench``) — the full
  sweep at n in {10^3, 10^4, 10^5} plus the Knuth DP at n = 500, writing
  machine-readable ``BENCH_fastpath.json`` at the repo root.

"Reference" timings exercise the pre-fastpath paths — pointer-chasing
``MergeNode`` walks, the O(n^3) general-arrivals DP, the O(n^2) uniform
DPs (frozen here where the library itself now routes through the fast
layer).  "Fast" timings exercise :mod:`repro.fastpath`.  Every timed pair
asserts the two answers agree exactly, so the sweep doubles as a large-n
equivalence test.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # script mode: make src importable before repro
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.core import dp
from repro.core.full_cost import build_optimal_flat_forest, build_optimal_forest
from repro.core.merge_tree import MergeForest
from repro.core.online import build_online_flat_forest, build_online_forest
from repro.fastpath import cost_tables
from repro.fastpath.general import general_arrivals_cost
from repro.simulation.channels import StreamInterval, peak_concurrency

from conftest import timeit_best, write_bench_json

#: stream length used for the forest-scale cases (trees of ~233 arrivals).
FOREST_L = 500


# ---------------------------------------------------------------------------
# frozen reference paths (the pre-fastpath implementations)
# ---------------------------------------------------------------------------


def reference_forest_intervals(forest: MergeForest, L: float) -> List[StreamInterval]:
    """The old object-path ``forest_intervals``: dict walk + dataclasses."""
    out = []
    for label, length in forest.stream_lengths(L).items():
        if length > 0:
            out.append(StreamInterval(label=label, start=label, end=label + length))
    return out


def irregular_times(n: int) -> List[float]:
    """A deterministic non-uniform arrival pattern (bursts + lulls)."""
    ts, t = [], 0.0
    for i in range(n):
        t += 0.1 + (i % 7) * 0.35 + (3.0 if i % 23 == 0 else 0.0)
        ts.append(t)
    return ts


# ---------------------------------------------------------------------------
# pytest-benchmark smoke tests (small n, CI-friendly)
# ---------------------------------------------------------------------------


def test_general_knuth_smoke(benchmark):
    ts = irregular_times(120)
    fast = benchmark(general_arrivals_cost, ts)
    assert fast == dp.general_arrivals_cost_reference(ts)


def test_memoized_merge_table_smoke(benchmark):
    table = benchmark(cost_tables.merge_cost_table, 5000)
    assert table[120] == dp.merge_cost_table(120)[120]


def test_flat_forest_cost_smoke(benchmark):
    forest = build_optimal_forest(FOREST_L, 20_000)
    flat = forest.to_flat()
    fast = benchmark(flat.merge_cost)
    assert fast == forest.merge_cost()


def test_flat_intervals_smoke(benchmark):
    flat = build_optimal_flat_forest(FOREST_L, 20_000)
    labels, starts, ends = benchmark(flat.intervals, FOREST_L)
    ref = reference_forest_intervals(flat.to_forest(), FOREST_L)
    assert len(labels) == len(ref)
    assert peak_concurrency(starts, ends) > 0


def test_online_flat_build_smoke(benchmark):
    flat = benchmark(build_online_flat_forest, FOREST_L, 20_000)
    assert flat.full_cost(FOREST_L) == int(
        build_online_forest(FOREST_L, 20_000).full_cost(FOREST_L)
    )


# ---------------------------------------------------------------------------
# full sweep (script mode): writes BENCH_fastpath.json
# ---------------------------------------------------------------------------


def _case(name: str, n: int, ref_s: float, fast_s: float, **extra) -> Dict:
    row = {
        "name": name,
        "n": n,
        "reference_seconds": round(ref_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 2),
        **extra,
    }
    print(
        f"  {name:32s} n={n:>7d}  ref {ref_s:10.4f}s  "
        f"fast {fast_s:10.6f}s  x{row['speedup']:.1f}"
    )
    return row


def run_sweep(forest_sizes=(1_000, 10_000, 100_000), general_n=500) -> Dict:
    rows: List[Dict] = []

    # -- Knuth-optimized general-arrivals DP --------------------------------
    ts = irregular_times(general_n)
    ref_s, ref_val = timeit_best(
        lambda: dp.general_arrivals_cost_reference(ts), repeats=1
    )
    fast_s, fast_val = timeit_best(lambda: general_arrivals_cost(ts), repeats=3)
    assert fast_val == ref_val, (fast_val, ref_val)
    rows.append(_case("general_arrivals_cost", general_n, ref_s, fast_s))

    # -- uniform merge-cost table: O(n^2) DP vs memoized O(n) ---------------
    n_table = 3000
    ref_s, ref_tab = timeit_best(lambda: dp.merge_cost_table(n_table), repeats=1)

    def cold_fill():
        # Reset inside the timer so this row tracks the O(n) fill, not a
        # warm cache-hit slice of the shared memo.
        cost_tables.reset_cost_caches()
        return cost_tables.merge_cost_table(n_table)

    fast_s, fast_tab = timeit_best(cold_fill, repeats=3)
    assert fast_tab == ref_tab
    rows.append(_case("merge_cost_table_fill", n_table, ref_s, fast_s))
    fast_s, fast_tab = timeit_best(
        lambda: cost_tables.merge_cost_table(n_table), repeats=3
    )
    assert fast_tab == ref_tab
    rows.append(_case("merge_cost_table_memoized", n_table, ref_s, fast_s))

    # -- forest cost / interval evaluation at scale -------------------------
    for n in forest_sizes:
        repeats = 3 if n <= 10_000 else 2
        forest = build_optimal_forest(FOREST_L, n)
        flat = build_optimal_flat_forest(FOREST_L, n)

        ref_s, ref_cost = timeit_best(forest.merge_cost, repeats=repeats)
        fast_s, fast_cost = timeit_best(flat.merge_cost, repeats=repeats)
        assert fast_cost == ref_cost
        rows.append(_case("forest_merge_cost", n, ref_s, fast_s))

        ref_s, ref_full = timeit_best(
            lambda: forest.full_cost(FOREST_L), repeats=repeats
        )
        fast_s, fast_full = timeit_best(
            lambda: flat.full_cost(FOREST_L), repeats=repeats
        )
        assert fast_full == ref_full
        rows.append(_case("forest_full_cost", n, ref_s, fast_s))

        ref_s, ref_iv = timeit_best(
            lambda: reference_forest_intervals(forest, FOREST_L), repeats=repeats
        )
        fast_s, fast_iv = timeit_best(
            lambda: flat.intervals(FOREST_L), repeats=repeats
        )
        assert len(fast_iv[0]) == len(ref_iv)
        assert float(fast_iv[2].sum() - fast_iv[1].sum()) == float(
            sum(s.units for s in ref_iv)
        )
        rows.append(_case("forest_intervals", n, ref_s, fast_s))

        ref_s, ref_forest = timeit_best(
            lambda: build_online_forest(FOREST_L, n), repeats=1
        )
        fast_s, fast_forest = timeit_best(
            lambda: build_online_flat_forest(FOREST_L, n), repeats=repeats
        )
        assert fast_forest.full_cost(FOREST_L) == int(ref_forest.full_cost(FOREST_L))
        rows.append(_case("online_forest_build", n, ref_s, fast_s))

    payload = {
        "schema": "repro.fastpath.bench.v1",
        "L": FOREST_L,
        "description": (
            "Reference (pointer/object or cubic/quadratic DP) vs fastpath "
            "(Knuth DP, memoized tables, FlatForest) timings; best-of-k "
            "wall clock, equivalence asserted on every pair."
        ),
        "benchmarks": rows,
    }
    return payload


def main() -> int:
    print("fastpath benchmark sweep (this runs the O(n^3) reference once; ~1 min)")
    payload = run_sweep()
    path = write_bench_json("fastpath", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Backend-selected kernels: dispatch semantics + fallback/JIT equality.

The contract this file pins: for every kernel in
:mod:`repro.scale.kernels`, the scalar body (the code numba compiles) is
**bit-identical** to the fallback path (the pre-JIT production code) on
adversarial inputs.  The scalar bodies are plain Python, so the equality
half runs everywhere; the ``TestJitBackend`` class additionally
exercises the actually-compiled dispatchers and is skipped on
numpy-only environments (the satellite contract: the full suite passes
unchanged without numba).
"""

from __future__ import annotations

import logging

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fastpath.flat_forest import FlatForest
from repro.fastpath.general import _knuth_tables
from repro.scale import kernels as K


@pytest.fixture(autouse=True)
def _restore_backend():
    before = K.active_backend()
    yield
    K.configure_backend(before)


# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

#: sorted float arrival times (duplicates allowed — bucket_slots only
#: requires non-decreasing input)
sorted_times = st.lists(
    st.floats(0.0, 50.0, allow_nan=False), min_size=0, max_size=60
).map(lambda xs: np.sort(np.asarray(xs, dtype=np.float64)))

#: strictly increasing slot end times
slot_ends = st.lists(
    st.floats(0.25, 4.0, allow_nan=False), min_size=1, max_size=40
).map(lambda xs: np.cumsum(np.asarray(xs, dtype=np.float64)))

#: per-slot arrival counts (hysteresis-scan input), biased toward runs of
#: zeros and small bursts so the mode trajectory actually switches
slot_counts = st.lists(
    st.one_of(st.just(0), st.integers(0, 5)), min_size=0, max_size=80
).map(lambda xs: np.asarray(xs, dtype=np.int64))


def _hysteresis_reference(counts, window, rate_high, rate_low):
    """The event ``HybridPolicy`` mode trajectory, deque window and all."""
    from collections import deque

    recent = deque(maxlen=window)
    mode, out = 0, []
    for c in counts:
        recent.append(c)
        rate = sum(recent) / len(recent)
        if mode == 0 and rate >= rate_high:
            mode = 1
        elif mode == 1 and rate < rate_low:
            mode = 0
        out.append(mode)
    return out


@st.composite
def random_forest(draw, max_n: int = 50):
    """A structurally valid FlatForest (contiguous trees, parent < i)
    over integer arrivals — the replay kernels' input domain."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    gaps = draw(
        st.lists(
            st.integers(min_value=1, max_value=6), min_size=n - 1, max_size=n - 1
        )
    )
    arr = np.concatenate([[0.0], np.cumsum(gaps, dtype=np.float64)])
    par = np.full(n, -1, dtype=np.intp)
    root = 0
    for i in range(1, n):
        if draw(st.booleans()) and draw(st.booleans()):
            root = i  # new tree
        else:
            par[i] = draw(st.integers(min_value=root, max_value=i - 1))
    return FlatForest(arr, par)


# ---------------------------------------------------------------------------
# dispatch semantics
# ---------------------------------------------------------------------------


class TestBackendConfig:
    def test_numpy_always_available(self):
        assert K.configure_backend("numpy") == "numpy"
        assert K.active_backend() == "numpy"

    def test_auto_resolves_by_availability(self):
        expected = "numba" if K.HAVE_NUMBA else "numpy"
        assert K.configure_backend("auto") == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            K.configure_backend("cython")

    @pytest.mark.skipif(K.HAVE_NUMBA, reason="needs a numpy-only environment")
    def test_numba_request_degrades_without_numba(self, caplog):
        """Asking for numba without numba never raises: one warning,
        numpy fallback (the graceful-degradation satellite)."""
        K._WARNED_NUMBA_MISSING = False
        with caplog.at_level(logging.WARNING, logger="repro.scale"):
            assert K.configure_backend("numba") == "numpy"
            assert K.configure_backend("numba") == "numpy"
        assert sum("numba" in r.message for r in caplog.records) == 1  # one-time


# ---------------------------------------------------------------------------
# scalar bodies == fallback paths (bit-identical), no numba required
# ---------------------------------------------------------------------------


class TestScalarBodiesMatchFallbacks:
    @settings(max_examples=60, deadline=None)
    @given(sorted_times, slot_ends)
    def test_bucket_slots_body(self, times, ends):
        K.configure_backend("numpy")
        cs_ref, served_ref = K.bucket_slots(times, ends)
        cs = np.empty(times.size, dtype=np.intp)
        served = np.zeros(ends.size, dtype=np.bool_)
        K._bucket_slots_body(times, ends, cs, served)
        assert np.array_equal(cs, cs_ref)
        assert np.array_equal(np.nonzero(served)[0], served_ref)

    @settings(max_examples=60, deadline=None)
    @given(random_forest())
    def test_forest_z_body(self, forest):
        arr, par = forest.arrivals, forest.parent
        z_ref = K.forest_z(arr, par)  # list-loop fallback
        z = arr.copy()
        K._forest_z_body(arr, par, z)
        assert np.array_equal(z, z_ref)
        assert np.array_equal(z_ref, forest.z)  # and both match FlatForest

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=45), st.integers(0, 10_000))
    def test_knuth_tables_body(self, n, seed):
        K.configure_backend("numpy")  # make _knuth_tables run the list DP
        rng = np.random.default_rng(seed)
        ts = np.cumsum(rng.integers(1, 7, size=n)).astype(np.float64)
        cost2d, split2d = K.knuth_tables(ts)  # always the scalar body
        assert cost2d.shape == (n, n) and split2d.shape == (n, n)
        if n:
            cost_ref, split_ref = _knuth_tables(ts.tolist())
            assert cost2d.tolist() == cost_ref
            assert split2d.tolist() == split_ref

    @settings(max_examples=60, deadline=None)
    @given(random_forest(), st.sampled_from([2, 4, 7, 15, 40]),
           st.sampled_from(["receive-two", "receive-all"]))
    def test_replay_walk_body(self, forest, L, model):
        arr, par = forest.arrivals, forest.parent
        lengths = forest.stream_lengths(L, model)
        ref = K._replay_walk_numpy(arr, par, lengths, float(L), model)
        demanded = np.empty(arr.size, dtype=np.float64)
        t2max = np.full(arr.size, -np.inf)
        used, fails = K._replay_walk_body(
            arr, par, lengths, float(L), model == "receive-two", demanded, t2max
        )
        assert np.array_equal(demanded, ref[0])
        assert np.array_equal(t2max, ref[1])
        assert used == ref[2]
        assert fails == ref[3].size  # same failure *count*; records via numpy

    @settings(max_examples=30, deadline=None)
    @given(random_forest(max_n=30), st.sampled_from([3, 6, 12]))
    def test_replay_walk_fail_count_on_corrupted_lengths(self, forest, L):
        """Shorten streams so demands overflow: the scalar body's failure
        count must equal the numpy walk's failure-record count."""
        arr, par = forest.arrivals, forest.parent
        lengths = forest.stream_lengths(L, "receive-two") * 0.5
        ref = K._replay_walk_numpy(arr, par, lengths, float(L), "receive-two")
        demanded = np.empty(arr.size, dtype=np.float64)
        t2max = np.full(arr.size, -np.inf)
        _, fails = K._replay_walk_body(
            arr, par, lengths, float(L), True, demanded, t2max
        )
        assert fails == ref[3].size

    def test_replay_walk_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            K.replay_walk(
                np.zeros(1), np.full(1, -1, dtype=np.intp), np.zeros(1), 4.0,
                "receive-three",
            )

    @settings(max_examples=60, deadline=None)
    @given(slot_counts, st.integers(1, 8),
           st.floats(0.0, 4.0), st.floats(0.0, 1.0))
    def test_hysteresis_scan_body(self, counts, window, rate_high, low_frac):
        rate_low = rate_high * low_frac
        K.configure_backend("numpy")
        ref = K.hysteresis_scan(counts, window, rate_high, rate_low)
        mode = np.empty(counts.size, dtype=np.int8)
        K._hysteresis_scan_body(
            counts.astype(np.int64), window, rate_high, rate_low, mode
        )
        assert np.array_equal(mode, ref)
        # And both match the event policy's deque-window reference model.
        assert mode.tolist() == _hysteresis_reference(
            counts.tolist(), window, rate_high, rate_low
        )

    def test_hysteresis_scan_validates_inputs(self):
        counts = np.zeros(3, dtype=np.int64)
        with pytest.raises(ValueError, match="window"):
            K.hysteresis_scan(counts, 0, 1.0, 0.5)
        with pytest.raises(ValueError, match="rate_low"):
            K.hysteresis_scan(counts, 2, 1.0, 2.0)
        with pytest.raises(ValueError, match="rate_low"):
            K.hysteresis_scan(counts, 2, 1.0, -0.1)

    def test_hysteresis_scan_empty_counts(self):
        out = K.hysteresis_scan(np.empty(0, dtype=np.int64), 3, 1.0, 0.5)
        assert out.size == 0 and out.dtype == np.int8


# ---------------------------------------------------------------------------
# the compiled dispatchers (JIT path; skipped on numpy-only environments)
# ---------------------------------------------------------------------------


class TestJitBackend:
    pytestmark = pytest.mark.skipif(
        not K.HAVE_NUMBA, reason="numba not installed (repro[fast] extra)"
    )

    @settings(max_examples=25, deadline=None)
    @given(sorted_times, slot_ends)
    def test_bucket_slots_backends_identical(self, times, ends):
        K.configure_backend("numpy")
        ref = K.bucket_slots(times, ends)
        K.configure_backend("numba")
        jit = K.bucket_slots(times, ends)
        assert np.array_equal(jit[0], ref[0])
        assert np.array_equal(jit[1], ref[1])

    @settings(max_examples=25, deadline=None)
    @given(random_forest())
    def test_forest_z_backends_identical(self, forest):
        arr, par = forest.arrivals, forest.parent
        K.configure_backend("numpy")
        ref = K.forest_z(arr, par)
        K.configure_backend("numba")
        assert np.array_equal(K.forest_z(arr, par), ref)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=40), st.integers(0, 10_000))
    def test_knuth_tables_backends_identical(self, n, seed):
        # dispatch for this kernel lives in general._knuth_tables
        rng = np.random.default_rng(seed)
        ts = np.cumsum(rng.integers(1, 7, size=n)).astype(np.float64).tolist()
        K.configure_backend("numpy")
        cost_ref, split_ref = _knuth_tables(ts)
        K.configure_backend("numba")
        cost, split = _knuth_tables(ts)
        assert cost == cost_ref
        assert split == split_ref

    @settings(max_examples=25, deadline=None)
    @given(random_forest(), st.sampled_from([2, 7, 15]),
           st.sampled_from(["receive-two", "receive-all"]))
    def test_replay_walk_backends_identical(self, forest, L, model):
        arr, par = forest.arrivals, forest.parent
        lengths = forest.stream_lengths(L, model)
        K.configure_backend("numpy")
        ref = K.replay_walk(arr, par, lengths, float(L), model)
        K.configure_backend("numba")
        jit = K.replay_walk(arr, par, lengths, float(L), model)
        for a, b in zip(jit, ref):
            if isinstance(a, np.ndarray):
                assert np.array_equal(a, b)
            else:
                assert a == b

    @settings(max_examples=25, deadline=None)
    @given(slot_counts, st.integers(1, 8),
           st.floats(0.0, 4.0), st.floats(0.0, 1.0))
    def test_hysteresis_scan_backends_identical(
        self, counts, window, rate_high, low_frac
    ):
        rate_low = rate_high * low_frac
        K.configure_backend("numpy")
        ref = K.hysteresis_scan(counts, window, rate_high, rate_low)
        K.configure_backend("numba")
        assert np.array_equal(
            K.hysteresis_scan(counts, window, rate_high, rate_low), ref
        )

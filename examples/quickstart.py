#!/usr/bin/env python
"""Quickstart: the paper's running example in ten lines of API.

A media object 15 units long (one unit = the guaranteed start-up delay)
serves 8 slotted arrivals.  We build the optimal merge forest, inspect
the Fibonacci merge tree, print every stream's length, and replay client
H's receiving program — reproducing Figs. 3-4 of the paper exactly.

Run:  python examples/quickstart.py
"""

from repro.core import (
    build_optimal_forest,
    merge_cost,
    optimal_full_cost,
    receive_two_program,
)
from repro.simulation import verify_forest

L, N = 15, 8

forest = build_optimal_forest(L, N)
tree = forest.trees[0]

print(f"Optimal merge forest for L={L}, n={N}")
print(f"  merge cost M({N}) = {merge_cost(N)}")
print(f"  full cost F({L},{N}) = {optimal_full_cost(L, N)}  (paper: 36)")
print()
print("Merge tree (Fig. 4):")
print(tree.render())
print()

print("Stream lengths (Fig. 3):")
names = "ABCDEFGH"
for arrival, length in sorted(forest.stream_lengths(L).items()):
    node = tree.node(arrival)
    parent = "-" if node.parent is None else names[int(node.parent.arrival)]
    print(f"  stream {names[int(arrival)]} starts t={int(arrival):2d}  "
          f"length {int(length):2d}  merges into {parent}")
print()

print("Client H (arrives t=7, path A -> F -> H):")
prog = receive_two_program(tree, 7, L)
for r in sorted(prog.receptions, key=lambda r: (r.slot_end, r.stream)):
    print(f"  slot [{int(r.slot_end) - 1:2d},{int(r.slot_end):2d}]  "
          f"part {r.part:2d} from stream {names[int(r.stream)]}")
print(f"  complete={prog.is_complete()}  on-time={prog.is_on_time()}  "
      f"parallel streams <= {prog.max_parallel_streams()}  "
      f"buffer peak = {prog.max_buffer()} (Lemma 15: min(7, 15-7) = 7)")
print()

report = verify_forest(forest, L)
report.raise_if_failed()
print(f"Verification: {report.checks} checks passed "
      "(completeness, timing, 2-stream limit, Lemma 1 tightness, Lemma 15 buffers).")

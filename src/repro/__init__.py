"""repro — Stream merging for Media-on-Demand with guaranteed start-up delay.

A full reproduction of Bar-Noy, Goshi & Ladner, "Off-line and on-line
guaranteed start-up delay for Media-on-Demand with stream merging"
(SPAA 2003; Journal of Discrete Algorithms 4, 2006, 72-105).

Subpackages
-----------
``repro.core``
    Merge trees, the O(n) optimal off-line algorithm (Fibonacci closed
    forms), full-cost optimisation, receive-all model, buffer bounds, the
    on-line Delay Guaranteed algorithm, client receiving programs, and
    analytic bounds.
``repro.simulation``
    Event-driven Media-on-Demand server simulator and forest verification.
``repro.arrivals``
    Workload generators (constant-rate, Poisson, every-slot) and traces.
``repro.baselines``
    Comparators: (alpha, beta)-dyadic stream merging, batching, unicast,
    patching.
``repro.experiments``
    One module per paper table/figure plus a registry and CLI
    (``python -m repro <experiment>``).

Quickstart
----------
>>> from repro.core import build_optimal_forest
>>> forest = build_optimal_forest(L=15, n=8)
>>> forest.full_cost(15)
36
"""

__version__ = "1.0.0"

from . import core

__all__ = ["core", "__version__"]

"""The burn-in tier: standing-invariant contracts + fault-injected soak.

The perf tiers (fastpath, fleet, sweeps) are pinned by golden fixtures
and equivalence tests over *clean* runs; this package asserts the system
holds its inviolables when the runtime misbehaves.  Three layers:

* :mod:`~repro.burnin.contracts` — the invariants (capacity, delay
  guarantee, replay-clean folds, paper cost bounds, cache accounting) as
  re-checkable :class:`ContractReport` batteries over any
  ``FleetReport`` / ``SweepResult`` / ``AdmissionReport``;
* :mod:`~repro.burnin.faults` — deterministic injectors (worker kills,
  torn cache artifacts, malformed traces, flash overload) wired into the
  production hooks
  (:func:`repro.fleet.runner.install_task_fault_hook`,
  :attr:`repro.sweeps.cache.SweepCache.read_hook`);
* :mod:`~repro.burnin.soak` — the episode driver behind
  ``python -m repro burnin``, which cycles scenarios x policies x fault
  families, re-checks every contract after every episode, and writes a
  byte-reproducible JSON evidence report.
"""

from .contracts import (
    ContractOutcome,
    ContractReport,
    check_admission_report,
    check_columnar_store,
    check_fleet_report,
    check_sweep_result,
    fleet_reports_equal,
)
from .faults import (
    TornArtifact,
    TornSegment,
    WorkerKill,
    corrupt_times,
    flash_overload,
    installed_task_fault,
)
from .soak import FAULT_FAMILIES, SoakConfig, SoakReport, run_soak

__all__ = [
    "ContractOutcome",
    "ContractReport",
    "FAULT_FAMILIES",
    "SoakConfig",
    "SoakReport",
    "TornArtifact",
    "TornSegment",
    "WorkerKill",
    "check_admission_report",
    "check_columnar_store",
    "check_fleet_report",
    "check_sweep_result",
    "corrupt_times",
    "flash_overload",
    "fleet_reports_equal",
    "installed_task_fault",
    "run_soak",
]

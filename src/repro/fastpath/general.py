"""General-arrivals optimal merging with the Knuth speed-up — full solution.

The Bar-Noy & Ladner [6] interval DP (Lemma 2),

    M[i][j] = min_{i < h <= j} { M[i][h-1] + M[h][j] + (2 t_j - t_h - t_i) },

costs O(n^3) when every cell scans every split — that is the reference
oracle kept as :func:`repro.core.dp.general_arrivals_cost_reference` /
:func:`repro.core.general.optimal_forest_general_reference`.  The
per-split weight ``2 t_j - t_h - t_i`` decomposes as a cell weight
``w(i, j) = 2 t_j - t_i`` (which satisfies the quadrangle inequality and
is monotone on the lattice of intervals) minus ``t_h``, so the canonical
optimal split is monotone in both endpoints à la Knuth/Yao:

    K[i][j-1] <= K[i][j] <= K[i+1][j].

Restricting each cell's scan to that window makes every anti-diagonal
O(n) amortised and the whole table O(n^2).  The windows are tiny (O(1)
amortised), so a plain Python inner loop beats a vectorised one here —
per-cell numpy slicing overhead dominates windows of a few elements.

This module carries the *whole* general-arrivals solution, not just the
cost (PR 1 stopped at the cost):

* :func:`general_merge_tables` — the O(n^2) Knuth tables ``(cost, split)``
  with the reference's **largest-argmin** split convention, so
  reconstruction reproduces the reference trees node for node;
* :func:`optimal_flat_forest_general` — the span-constrained
  root-placement prefix DP over those tables, plus an iterative
  (explicit-stack) reconstruction straight into
  :class:`~repro.fastpath.flat_forest.FlatForest` parent arrays — no
  :class:`~repro.core.merge_tree.MergeNode` recursion anywhere;
* :func:`general_arrivals_cost` — the cost-only entry point.

Exactness contract: every candidate evaluates the exact float expression
of the reference DP, in the same association order.  On arrival times
that are exactly representable in binary floating point — integers,
slot-end grids, any dyadic-rational timeline — all arithmetic is exact,
Knuth/Yao monotonicity holds for the computed values, and the tables,
forests and costs are **bit-identical** to the cubic reference
(``tests/fastpath/test_general_forest.py`` asserts node-for-node
equality on randomized exact-grid traces).  On non-representable inputs
(e.g. a 1e-3 grid) an exact-rational tie between two splits can round
differently per candidate, so agreement there is mathematical rather
than bitwise — observed relative deviations are at the few-ULP level and
the tests bound them at 1e-9.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.validation import check_strictly_increasing
from ..scale.kernels import active_backend, knuth_tables

__all__ = [
    "general_arrivals_cost",
    "general_merge_tables",
    "general_forest_bounds",
    "optimal_flat_forest_general",
    "optimal_flat_tree_general",
]


def _knuth_tables(ts: List[float]) -> Tuple[List[List[float]], List[List[int]]]:
    """O(n^2) DP tables ``(cost, split)`` for validated increasing ``ts``.

    ``cost[i][j]`` is the optimal merge cost of arrivals ``i..j`` rooted
    at ``i``; ``split[i][j]`` the largest optimal ``h`` (the reference's
    ``<=`` tie-break), scanned only over the Knuth window
    ``[split[i][j-1], split[i+1][j]]``.

    Backend-dispatched: under the numba backend the window scan runs
    compiled on 2-D arrays (:func:`repro.scale.kernels.knuth_tables`,
    same expressions in the same association order, so the tables are
    bit-identical) and is converted back to the list-of-lists form this
    module's consumers index; the plain-Python DP below remains the
    numpy-backend path and the property-tested oracle.
    """
    if active_backend() == "numba":  # pragma: no cover - needs numba
        cost_arr, split_arr = knuth_tables(np.asarray(ts, dtype=np.float64))
        return cost_arr.tolist(), split_arr.tolist()
    n = len(ts)
    cost = [[0.0] * n for _ in range(n)]
    split = [[0] * n for _ in range(n)]
    for i in range(n - 1):
        # Same expression as the reference (h = j = i + 1).
        cost[i][i + 1] = 2 * ts[i + 1] - ts[i + 1] - ts[i]
        split[i][i + 1] = i + 1
    for width in range(2, n):
        for i in range(n - width):
            j = i + width
            lo = split[i][j - 1]
            hi = split[i + 1][j]
            row = cost[i]
            best = row[lo - 1] + cost[lo][j] + (2 * ts[j] - ts[lo] - ts[i])
            best_h = lo
            for h in range(lo + 1, hi + 1):
                v = row[h - 1] + cost[h][j] + (2 * ts[j] - ts[h] - ts[i])
                if v <= best:  # <=: prefer the largest h, like the reference
                    best = v
                    best_h = h
            cost[i][j] = best
            split[i][j] = best_h
    return cost, split


def general_merge_tables(
    arrivals: Sequence[float],
) -> Tuple[List[List[float]], List[List[int]]]:
    """Validated public wrapper around the Knuth ``(cost, split)`` tables.

    Drop-in for ``repro.core.general._merge_tables`` at O(n^2) instead of
    O(n^3); the split convention (largest optimal ``h``) matches, so the
    reference reconstruction applied to these tables yields its trees.
    """
    ts = [float(t) for t in arrivals]
    check_strictly_increasing(ts)
    return _knuth_tables(ts)


def general_arrivals_cost(arrivals: Sequence[float]) -> float:
    """Optimal merge cost for sorted arrival times in O(n^2) time/space.

    Exact drop-in for the reference cubic DP: same validation (plus
    non-finite rejection), same values, same int-collapsing of integral
    results.  See the module docstring for the exactness contract.
    """
    ts = [float(t) for t in arrivals]
    n = len(ts)
    if n == 0:
        return 0
    check_strictly_increasing(ts)
    if n == 1:
        return 0
    cost, _split = _knuth_tables(ts)
    value = cost[0][n - 1]
    return int(value) if float(value).is_integer() else value


def general_forest_bounds(
    ts: Sequence[float], cost: List[List[float]], L: float
) -> List[Tuple[int, int]]:
    """Span-constrained root placement over prefixes (Section 3.2 for [6]).

        best(j) = min_{i <= j} best(i - 1) + L + cost(i, j)   (t_i a root)

    subject to ``t_j - t_i <= L - 1``.  Returns the inclusive index
    bounds ``(i, j)`` of each tree, left to right — the same scan order,
    comparisons and tie-breaks as the cubic reference, so identical cost
    tables imply identical boundaries.  O(n * window) <= O(n^2).
    """
    n = len(ts)
    INF = float("inf")
    best = [0.0] * (n + 1)  # best[j]: optimal cost of serving ts[:j]
    choice: List[int] = [0] * (n + 1)  # root index for the last tree
    for j in range(1, n + 1):
        best_val, best_i = INF, -1
        for i in range(j - 1, -1, -1):
            if ts[j - 1] - ts[i] > L - 1:
                break  # spans only grow as i decreases
            c = best[i] + L + cost[i][j - 1]
            if c < best_val:
                best_val, best_i = c, i
        if best_i < 0:
            raise ValueError(
                f"no feasible forest: gap before arrival {ts[j - 1]} "
                f"exceeds L - 1 = {L - 1}"
            )
        best[j] = best_val
        choice[j] = best_i
    bounds: List[Tuple[int, int]] = []
    j = n
    while j > 0:
        i = choice[j]
        bounds.append((i, j - 1))
        j = i
    bounds.reverse()
    return bounds


def _fill_parents(
    parent: np.ndarray, split: List[List[int]], lo: int, hi: int
) -> None:
    """Parent pointers for the tree over arrivals ``lo..hi`` rooted at ``lo``.

    Iterative version of the reference ``_reconstruct``: the segment
    ``(i, j)`` splits at ``h = split[i][j]`` into ``(i, h-1)`` rooted at
    ``i`` and ``(h, j)`` rooted at ``h``, with ``h`` a child of ``i`` —
    an explicit work stack instead of recursion, O(1) amortised per node.
    """
    if lo == hi:
        return
    stack = [(lo, hi)]
    while stack:
        i, j = stack.pop()
        if i == j:
            continue
        h = split[i][j]
        parent[h] = i
        stack.append((i, h - 1))
        stack.append((h, j))


def optimal_flat_forest_general(arrivals: Sequence[float], L: float):
    """Optimal merge forest for arbitrary arrivals as a ``FlatForest``.

    Minimises ``s * L + sum of merge costs`` subject to every tree
    spanning at most ``L - 1`` — the same solution the cubic
    :func:`repro.core.general.optimal_forest_general_reference` builds,
    in O(n^2) time with no ``MergeNode`` allocation (the parent/z arrays
    are filled directly; ``.to_forest()`` recovers the object form
    losslessly when needed).
    """
    from .flat_forest import FlatForest

    ts = [float(t) for t in arrivals]
    if not ts:
        raise ValueError("need at least one arrival")
    check_strictly_increasing(ts)
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    cost, split = _knuth_tables(ts)
    bounds = general_forest_bounds(ts, cost, L)
    parent = np.full(len(ts), -1, dtype=np.intp)
    for lo, hi in bounds:
        _fill_parents(parent, split, lo, hi)
    forest = FlatForest(np.asarray(ts, dtype=np.float64), parent)
    forest.validate_for_length(L)
    return forest


def optimal_flat_tree_general(arrivals: Sequence[float]):
    """One optimal merge tree (all arrivals merge into the first) — flat.

    The unconstrained single-segment case of
    :func:`optimal_flat_forest_general`: no root-placement DP, no span
    check (use the forest builder when ``L`` matters).  O(n^2).
    """
    from .flat_forest import FlatForest

    ts = [float(t) for t in arrivals]
    if not ts:
        raise ValueError("need at least one arrival")
    check_strictly_increasing(ts)
    _cost, split = _knuth_tables(ts)
    parent = np.full(len(ts), -1, dtype=np.intp)
    _fill_parents(parent, split, 0, len(ts) - 1)
    return FlatForest(np.asarray(ts, dtype=np.float64), parent)

"""Closed-form analytic bounds from the paper's theorems.

These are the bands the benches check measured values against:

* Theorem 8:   ``n log_phi n - c n <= M(n) <= n log_phi n`` with
  ``c = phi^2 + 1``  (Eqs. (9)-(10)).
* Theorem 13:  ``F(L, n) = n log_phi L + Theta(n)`` for ``n > L``.
* Theorem 14:  batching alone costs ``n L``; merging wins by
  ``Theta(L / log L)``.
* Theorem 19:  ``M(n) / Mw(n) -> log_phi 2`` as ``n -> inf``.
* Theorem 21:  ``A(L, n) <= n log_phi L + O(n + L log_phi L)``.
* Theorem 22:  ``A(L, n) / F(L, n) <= 1 + 2 L / n`` for ``L >= 7`` and
  ``n > L^2 + 2``.
"""

from __future__ import annotations

import math

from .fibonacci import PHI

__all__ = [
    "log_phi",
    "RECEIVE_ALL_GAIN",
    "merge_cost_upper",
    "merge_cost_lower",
    "full_cost_leading_term",
    "batching_cost",
    "batching_gain_order",
    "online_ratio_bound",
    "online_ratio_bound_applies",
]

#: ``log_phi 2`` — the asymptotic receive-two / receive-all cost ratio
#: (Theorems 19 and 20), approximately 1.4404.
RECEIVE_ALL_GAIN: float = math.log(2.0) / math.log(PHI)


def log_phi(x: float) -> float:
    """Logarithm base the golden ratio."""
    if x <= 0:
        raise ValueError(f"log_phi requires x > 0, got {x}")
    return math.log(x) / math.log(PHI)


def merge_cost_upper(n: int) -> float:
    """Eq. (9): ``M(n) <= (log_phi n + 1) n - phi n + 2 <= n log_phi n``.

    We return the tighter intermediate expression; for ``n >= 2`` it is also
    ``<= n log_phi n`` because ``phi > 1``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (log_phi(n) + 1) * n - PHI * n + 2 if n > 1 else 0.0


def merge_cost_lower(n: int) -> float:
    """Eq. (10): ``M(n) >= (log_phi n - 1) n - phi^2 n + 2``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return (log_phi(n) - 1) * n - PHI**2 * n + 2 if n > 1 else 0.0


def full_cost_leading_term(L: int, n: int) -> float:
    """``n log_phi L``: the Theorem 13 leading term of ``F(L, n)``."""
    if L < 2:
        return 0.0
    return n * log_phi(L)


def batching_cost(L: int, n: int) -> int:
    """Cost of pure batching: one full stream per slot, ``n L`` units.

    (Section 1/Theorem 14: in a delay-guaranteed batching system the whole
    transmission is broadcast once per slot.)
    """
    return n * L


def batching_gain_order(L: int) -> float:
    """``L / log_phi L``: the Theorem 14 improvement order of merging."""
    if L < 2:
        return 1.0
    return L / log_phi(L)


def online_ratio_bound(L: int, n: int) -> float:
    """Theorem 22 bound: ``1 + 2 L / n``."""
    return 1.0 + 2.0 * L / n


def online_ratio_bound_applies(L: int, n: int) -> bool:
    """Hypotheses of Theorem 22: ``L >= 7`` and ``n > L^2 + 2``."""
    return L >= 7 and n > L * L + 2

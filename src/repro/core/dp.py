"""O(n^2) dynamic programs for optimal merge costs (the [6] baseline).

The paper's O(n) algorithm (Theorem 7) improves on the quadratic dynamic
program implied by the general-arrivals solution of Bar-Noy & Ladner [6].
This module implements that quadratic reference for both client models:

* receive-two, Eq. (5):   ``M(n)  = min_h { M(h) + M(n-h) + 2n - h - 2 }``
* receive-all, Eq. (19):  ``Mw(n) = min_h { Mw(h) + Mw(n-h) } + n - 1``

with ``M(1) = Mw(1) = 0`` and ``h`` ranging over ``1..n-1`` (``h`` is the
index of the last arrival to merge directly with the root; the left subtree
holds arrivals ``0..h-1`` and the right subtree ``h..n-1``).

Besides costs, the DP exposes the argmin sets ``I(n)`` (used to validate the
Fibonacci interval characterisation of Theorem 3 / Fig. 8) and reconstructs
explicit optimal :class:`~repro.core.merge_tree.MergeTree` objects, giving an
independent oracle for the closed-form and O(n) constructions.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

from .merge_tree import MergeNode, MergeTree

__all__ = [
    "merge_cost_table",
    "merge_cost",
    "argmin_sets",
    "argmin_set",
    "build_optimal_tree_dp",
    "receive_all_cost_table",
    "receive_all_cost",
    "receive_all_argmin_sets",
    "build_optimal_tree_dp_receive_all",
    "general_arrivals_cost",
    "general_arrivals_cost_reference",
]


def merge_cost_table(n: int) -> List[int]:
    """Return ``[M(0), M(1), ..., M(n)]`` via the Eq. (5) recurrence.

    ``M(0)`` is defined as 0 for convenience (an empty tree costs nothing).
    Runs in O(n^2) time, O(n) space.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    table = [0] * (n + 1)
    for size in range(2, n + 1):
        best = min(
            table[h] + table[size - h] + 2 * size - h - 2
            for h in range(1, size)
        )
        table[size] = best
    return table


def merge_cost(n: int) -> int:
    """``M(n)`` by dynamic programming (O(n^2))."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return merge_cost_table(n)[n]


def argmin_sets(n: int) -> List[List[int]]:
    """Return ``I(1), ..., I(n)`` as a list indexed by size (index 0 unused).

    ``I(size)`` is the set of ``h`` achieving the minimum in Eq. (5) — the
    arrivals that can be the last to merge to the root of an optimal merge
    tree for ``[0, size-1]``.  ``I(1)`` is the empty list.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    table = merge_cost_table(n)
    sets: List[List[int]] = [[] for _ in range(n + 1)]
    for size in range(2, n + 1):
        best = table[size]
        sets[size] = [
            h
            for h in range(1, size)
            if table[h] + table[size - h] + 2 * size - h - 2 == best
        ]
    return [sets[i] for i in range(1, n + 1)]


def argmin_set(n: int) -> List[int]:
    """``I(n)`` for a single ``n`` (O(n^2))."""
    return argmin_sets(n)[n - 1]


def _build_tree(
    start: int,
    size: int,
    split: Callable[[int], int],
) -> MergeNode:
    """Recursive Theorem-7-style constructor given a split choice function.

    Builds the optimal tree for arrivals ``start .. start+size-1`` where
    ``split(size)`` gives the relative index of the last arrival to merge
    with the root.
    """
    if size == 1:
        return MergeNode(start)
    h = split(size)
    if not 1 <= h <= size - 1:
        raise ValueError(f"split({size}) = {h} out of range")
    left = _build_tree(start, h, split)
    right = _build_tree(start + h, size - h, split)
    right.parent = left
    left.children.append(right)
    return left


def build_optimal_tree_dp(n: int, start: int = 0, prefer_max: bool = True) -> MergeTree:
    """Reconstruct an optimal receive-two merge tree from the DP (O(n^2)).

    ``prefer_max`` picks the largest argmin ``h`` at every level (matching
    the paper's ``r(i) = max I(i)`` convention); otherwise the smallest.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    table = merge_cost_table(n)

    def split(size: int) -> int:
        candidates = (
            h
            for h in range(1, size)
            if table[h] + table[size - h] + 2 * size - h - 2 == table[size]
        )
        return max(candidates) if prefer_max else min(candidates)

    return MergeTree(_build_tree(start, n, split))


# ---------------------------------------------------------------------------
# receive-all model
# ---------------------------------------------------------------------------


def receive_all_cost_table(n: int) -> List[int]:
    """Return ``[Mw(0), ..., Mw(n)]`` via the Eq. (19) recurrence."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    table = [0] * (n + 1)
    for size in range(2, n + 1):
        best = min(table[h] + table[size - h] for h in range(1, size))
        table[size] = best + size - 1
    return table


def receive_all_cost(n: int) -> int:
    """``Mw(n)`` by dynamic programming (O(n^2))."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return receive_all_cost_table(n)[n]


def receive_all_argmin_sets(n: int) -> List[List[int]]:
    """Argmin sets for Eq. (19), indexed like :func:`argmin_sets`.

    The paper proves (below Eq. (20)) that the minimum is achieved exactly
    at ``h = floor(size/2)`` and ``h = ceil(size/2)``; these sets let tests
    confirm that claim.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    table = receive_all_cost_table(n)
    sets: List[List[int]] = [[] for _ in range(n + 1)]
    for size in range(2, n + 1):
        best = table[size] - (size - 1)
        sets[size] = [
            h for h in range(1, size) if table[h] + table[size - h] == best
        ]
    return [sets[i] for i in range(1, n + 1)]


def build_optimal_tree_dp_receive_all(n: int, start: int = 0) -> MergeTree:
    """Reconstruct an optimal receive-all merge tree from the DP."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    table = receive_all_cost_table(n)

    def split(size: int) -> int:
        target = table[size] - (size - 1)
        return max(
            h for h in range(1, size) if table[h] + table[size - h] == target
        )

    return MergeTree(_build_tree(start, n, split))


# ---------------------------------------------------------------------------
# general (non-uniform) arrivals — the full [6] quadratic DP
# ---------------------------------------------------------------------------


def general_arrivals_cost(arrivals: Sequence[float]) -> float:
    """Optimal merge cost for arbitrary sorted arrival times (from [6]).

    Delegates to the Knuth-optimized O(n^2) implementation in
    :func:`repro.fastpath.general.general_arrivals_cost`, which returns
    bit-identical values to the O(n^3) reference DP kept below as
    :func:`general_arrivals_cost_reference` (the correctness oracle the
    fastpath equivalence tests compare against).
    """
    from ..fastpath.general import general_arrivals_cost as _fast

    return _fast(arrivals)


def general_arrivals_cost_reference(arrivals: Sequence[float]) -> float:
    """The O(n^3) reference DP for the general-arrivals merge cost.

    Generalises Eq. (5) via Lemma 2: for arrivals ``t_i < ... < t_j`` with
    ``x = t_h`` the last direct merge to the root,

        M[i][j] = min_h { M[i][h-1] + M[h][j] + (2 t_j - t_h - t_i) }.

    Used to cross-check slotted results and to score baseline merge trees
    (e.g. dyadic) against the true optimum on irregular workloads.
    O(n^3) time — reference oracle only, keep inputs small.
    """
    ts = list(arrivals)
    if not ts:
        return 0
    if any(b <= a for a, b in zip(ts, ts[1:])):
        raise ValueError("arrival times must be strictly increasing")
    n = len(ts)
    # cost[i][j]: optimal merge cost of arrivals i..j rooted at i.
    cost = [[0.0] * n for _ in range(n)]
    for width in range(1, n):
        for i in range(0, n - width):
            j = i + width
            cost[i][j] = min(
                cost[i][h - 1] + cost[h][j] + (2 * ts[j] - ts[h] - ts[i])
                for h in range(i + 1, j + 1)
            )
    value = cost[0][n - 1]
    return int(value) if float(value).is_integer() else value

"""Property tests: the batched slot-sweep kernel == the event-driven oracle.

The acceptance contract of the fleet engine: for every slot-sweepable
policy, ``simulate_batched`` must realise *exactly* the system
``Simulation`` realises — identical metric counters, identical interval
multisets, identical total bandwidth, identical ``flat_forest()`` labels
and parent arrays, identical per-client service.  Hypothesis drives
adversarial traces on a 1/8 grid, so a large fraction of arrivals land
*exactly* on slot boundaries — the edge the searchsorted bucketing must
get right (SlotEnd fires before an equal-timestamp Arrival, so a
boundary arrival belongs to the next slot).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals.traces import ArrivalTrace
from repro.baselines.dyadic import DyadicParams
from repro.fleet import (
    FleetPolicy,
    assert_equivalent_run,
    simulate_batched,
    simulate_event,
)

#: the policy matrix the ISSUE names: dyadic at alpha in {2, phi},
#: offline-optimal, and the batching baselines, plus DG and the
#: general-arrivals optimum.
POLICIES = [
    FleetPolicy.delay_guaranteed(),
    FleetPolicy.offline_optimal(),
    FleetPolicy.general_offline(),
    FleetPolicy.batched_dyadic(),  # alpha = phi
    FleetPolicy.batched_dyadic(DyadicParams(alpha=2.0, beta=0.5)),
    FleetPolicy.immediate_dyadic(),  # alpha = phi
    FleetPolicy.immediate_dyadic(DyadicParams(alpha=2.0, beta=0.5)),
    FleetPolicy.pure_batching(),
    FleetPolicy.unicast(),
]

NEEDS_ARRIVALS = {"general-offline"}


@st.composite
def edge_of_slot_traces(draw):
    """Strictly increasing arrivals on the 1/8 grid over 2..24 slots.

    Roughly a third of drawn points are exact integers — arrivals landing
    exactly on slot boundaries with ``slot = 1.0`` (and on boundaries of
    any power-of-two slot after scaling).
    """
    n_slots = draw(st.integers(min_value=2, max_value=24))
    grid = st.integers(min_value=0, max_value=n_slots * 8 - 1)
    ticks = draw(st.sets(grid, min_size=1, max_size=40))
    boundary_bias = draw(
        st.sets(
            st.integers(min_value=0, max_value=n_slots - 1), max_size=8
        )
    )
    ticks |= {8 * b for b in boundary_bias}
    times = tuple(sorted(t / 8.0 for t in ticks))
    return ArrivalTrace(times=times, horizon=float(n_slots))


@pytest.mark.parametrize("policy", POLICIES, ids=lambda p: f"{p.kind}-"
                         f"{'a2' if p.params and p.params.alpha == 2.0 else 'phi'}")
@settings(max_examples=25, deadline=None)
@given(trace=edge_of_slot_traces(), L=st.sampled_from([5, 9, 15]))
def test_policy_equivalence_on_edge_traces(policy, trace, L):
    event = simulate_event(L, trace, policy)
    batched = simulate_batched(L, trace, policy)
    assert_equivalent_run(event, batched)


@settings(max_examples=10, deadline=None)
@given(
    trace=edge_of_slot_traces(),
    slot=st.sampled_from([0.5, 0.25, 2.0]),
    L=st.sampled_from([7, 15]),
)
def test_equivalence_under_binary_slot_scaling(trace, slot, L):
    """The binary-exactness contract: any power-of-two slot is exact."""
    scaled = ArrivalTrace(
        times=tuple(t * slot for t in trace.times), horizon=trace.horizon * slot
    )
    for policy in (
        FleetPolicy.delay_guaranteed(),
        FleetPolicy.offline_optimal(),
        FleetPolicy.general_offline(),
        FleetPolicy.batched_dyadic(),
        FleetPolicy.pure_batching(),
    ):
        assert_equivalent_run(
            simulate_event(L, scaled, policy, slot=slot),
            simulate_batched(L, scaled, policy, slot=slot),
        )


@settings(max_examples=15, deadline=None)
@given(
    mean=st.sampled_from([0.2, 0.8, 3.0]),
    seed=st.integers(min_value=0, max_value=2**31),
    L=st.sampled_from([10, 20]),
)
def test_equivalence_on_poisson_traces(mean, seed, L):
    """Continuous (non-grid) arrival times, immediate and slotted."""
    from repro.arrivals import poisson

    trace = poisson(mean, 40.0, seed=seed)
    for policy in POLICIES:
        if not trace.times and policy.kind in NEEDS_ARRIVALS:
            continue
        assert_equivalent_run(
            simulate_event(L, trace, policy),
            simulate_batched(L, trace, policy),
        )


# ---------------------------------------------------------------------------
# the segmented hybrid kind (PR 10): thresholds x windows x slot geometry
# ---------------------------------------------------------------------------

#: (window_slots, rate_high, rate_low) with rate_low drawn as a fraction
#: of rate_high, so every draw satisfies the 0 <= low <= high contract;
#: frac=1.0 (low == high) and window=1 are the flapping-prone corners.
hybrid_knobs = st.builds(
    lambda w, rh, frac: (w, rh, rh * frac),
    st.integers(min_value=1, max_value=6),
    st.sampled_from([0.25, 0.5, 1.0, 2.0]),
    st.sampled_from([0.0, 0.5, 1.0]),
)


class TestHybridEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(
        trace=edge_of_slot_traces(),
        knobs=hybrid_knobs,
        L=st.sampled_from([5, 9, 15]),
    )
    def test_hybrid_equivalence_on_edge_traces(self, trace, knobs, L):
        w, rh, rl = knobs
        policy = FleetPolicy.hybrid(window_slots=w, rate_high=rh, rate_low=rl)
        event = simulate_event(L, trace, policy)
        batched = simulate_batched(L, trace, policy)
        assert_equivalent_run(event, batched)
        # Both logs are plain (int, str) tuples: byte-equal reprs, so the
        # golden table's rendered mode-log note cannot drift.
        assert repr(event.mode_log) == repr(batched.mode_log)

    @settings(max_examples=15, deadline=None)
    @given(
        trace=edge_of_slot_traces(),
        slot=st.sampled_from([0.5, 0.25, 2.0]),
        knobs=hybrid_knobs,
    )
    def test_hybrid_under_binary_slot_scaling(self, trace, slot, knobs):
        w, rh, rl = knobs
        scaled = ArrivalTrace(
            times=tuple(t * slot for t in trace.times),
            horizon=trace.horizon * slot,
        )
        policy = FleetPolicy.hybrid(window_slots=w, rate_high=rh, rate_low=rl)
        assert_equivalent_run(
            simulate_event(7, scaled, policy, slot=slot),
            simulate_batched(7, scaled, policy, slot=slot),
        )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31), L=st.sampled_from([10, 20]))
    def test_hybrid_on_bursty_poisson_traces(self, seed, L):
        """Alternating busy/quiet phases drive the rate across both
        thresholds, so the scan's segment cutting is actually exercised."""
        from repro.arrivals import poisson

        times = []
        for phase in range(4):
            lam = 0.3 if phase % 2 else 4.0
            sub = poisson(lam, 15.0, seed=seed + phase)
            times.extend(phase * 15.0 + t for t in sub)
        trace = ArrivalTrace(times=tuple(sorted(times)), horizon=60.0)
        policy = FleetPolicy.hybrid(window_slots=4, rate_high=1.0, rate_low=0.5)
        event = simulate_event(L, trace, policy)
        batched = simulate_batched(L, trace, policy)
        assert_equivalent_run(event, batched)

    def test_hybrid_segmented_run_verifies(self):
        trace = ArrivalTrace(
            times=tuple(i + 0.25 for i in range(16)), horizon=16.0
        )
        policy = FleetPolicy.hybrid(window_slots=2, rate_high=1.0, rate_low=0.5)
        simulate_batched(15, trace, policy).verify().raise_if_failed()


class TestDeterministicEdges:
    def test_boundary_arrival_lands_in_next_slot(self):
        # 2.0 is exactly the end of slot 1: SlotEnd(1) fires before the
        # arrival, so it is served at the end of slot 2 (time 3.0).
        trace = ArrivalTrace(times=(2.0,), horizon=4.0)
        policy = FleetPolicy.batched_dyadic()
        batched = simulate_batched(10, trace, policy)
        assert batched.client_service[0] == 3.0
        assert_equivalent_run(simulate_event(10, trace, policy), batched)

    def test_empty_trace_all_policies(self):
        empty = ArrivalTrace(times=(), horizon=12.0)
        for policy in POLICIES:
            if policy.kind in NEEDS_ARRIVALS:
                with pytest.raises(ValueError):
                    simulate_batched(15, empty, policy)
                continue
            assert_equivalent_run(
                simulate_event(15, empty, policy),
                simulate_batched(15, empty, policy),
            )

    def test_single_arrival_at_zero(self):
        trace = ArrivalTrace(times=(0.0,), horizon=3.0)
        for policy in POLICIES:
            assert_equivalent_run(
                simulate_event(8, trace, policy),
                simulate_batched(8, trace, policy),
            )

    def test_dg_forest_is_independent_of_arrivals(self):
        dense = ArrivalTrace(times=tuple(i / 4 for i in range(40)), horizon=10.0)
        sparse = ArrivalTrace(times=(9.5,), horizon=10.0)
        policy = FleetPolicy.delay_guaranteed()
        a = simulate_batched(15, dense, policy)
        b = simulate_batched(15, sparse, policy)
        assert a.metrics.total_units == b.metrics.total_units
        assert np.array_equal(a.flat_forest().parent, b.flat_forest().parent)

    def test_verify_replays_clean(self):
        trace = ArrivalTrace(
            times=tuple(i + 0.25 for i in range(16)), horizon=16.0
        )
        for policy in (
            FleetPolicy.delay_guaranteed(),
            FleetPolicy.offline_optimal(),
            FleetPolicy.batched_dyadic(),
        ):
            simulate_batched(15, trace, policy).verify().raise_if_failed()

    def test_rejects_unknown_kinds_and_bad_thresholds(self):
        with pytest.raises(ValueError, match="unknown policy kind"):
            FleetPolicy("multicast-magic")
        with pytest.raises(ValueError):
            FleetPolicy("unicast", DyadicParams())
        # hybrid is a first-class fleet kind now (PR 10), with validated
        # hysteresis knobs; dyadic params are allowed (its quiet mode).
        assert FleetPolicy("hybrid").uses_slots
        assert FleetPolicy.hybrid(DyadicParams()).params is not None
        with pytest.raises(ValueError, match="window_slots"):
            FleetPolicy.hybrid(window_slots=0)
        with pytest.raises(ValueError, match="rate_low"):
            FleetPolicy.hybrid(rate_high=1.0, rate_low=2.0)
        with pytest.raises(ValueError, match="rate_low"):
            FleetPolicy.hybrid(rate_low=-0.5)

    def test_rejects_bad_args(self):
        trace = ArrivalTrace(times=(0.5,), horizon=2.0)
        with pytest.raises(ValueError):
            simulate_batched(0, trace, FleetPolicy.unicast())
        with pytest.raises(ValueError):
            simulate_batched(5, trace, FleetPolicy.unicast(), slot=0.0)

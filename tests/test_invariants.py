"""Cross-module invariants: the properties that tie the whole system together.

Each test here spans at least two subsystems (closed forms <-> trees <->
receiving programs <-> simulator <-> channels) and asserts an identity the
paper's correctness rests on.  Hypothesis drives the instance generation.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import every_slot, poisson
from repro.baselines.dyadic import DyadicParams, dyadic_forest
from repro.core import dp, offline
from repro.core.analysis import bandwidth_timeline, merge_hop_histogram
from repro.core.buffers import buffer_requirement
from repro.core.full_cost import build_optimal_forest, optimal_full_cost
from repro.core.general import optimal_full_cost_general
from repro.core.merge_tree import MergeForest
from repro.core.online import build_online_forest, online_full_cost
from repro.core.receiving_program import forest_programs, required_stream_lengths
from repro.simulation import (
    DelayGuaranteedPolicy,
    Simulation,
    assign_forest_channels,
    verify_forest,
)

from tests.conftest import preorder_tree

small_L = st.integers(min_value=2, max_value=40)
small_n = st.integers(min_value=1, max_value=80)


class TestCostIdentities:
    @settings(max_examples=60, deadline=None)
    @given(small_L, small_n)
    def test_forest_cost_equals_closed_form(self, L, n):
        """Theorem 10/12 construction realises F(L, n) exactly."""
        forest = build_optimal_forest(L, n)
        assert forest.full_cost(L) == optimal_full_cost(L, n)

    @settings(max_examples=60, deadline=None)
    @given(small_L, small_n)
    def test_online_at_least_offline(self, L, n):
        assert online_full_cost(L, n) >= optimal_full_cost(L, n)

    @settings(max_examples=30, deadline=None)
    @given(small_L, st.integers(min_value=1, max_value=40))
    def test_general_solver_agrees_on_uniform(self, L, n):
        assert optimal_full_cost_general(list(range(n)), L) == optimal_full_cost(L, n)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=2, max_value=200))
    def test_merge_cost_superadditive_decomposition(self, n):
        """For every split h, M(h) + M(n-h) + 2n-h-2 >= M(n) with equality
        exactly on I(n) (ties the DP, the closed form and Theorem 3)."""
        lo, hi = offline.root_merge_interval(n)
        m = offline.merge_cost(n)
        for h in range(1, n):
            combined = offline.merge_cost(h) + offline.merge_cost(n - h) + 2 * n - h - 2
            if lo <= h <= hi:
                assert combined == m
            else:
                assert combined > m


class TestDemandMeetsSupply:
    @settings(max_examples=25, deadline=None)
    @given(small_L, st.integers(min_value=1, max_value=40))
    def test_lemma1_lengths_are_exact_demand(self, L, n):
        """What clients actually pull from each stream == Lemma 1 length."""
        forest = build_optimal_forest(L, n)
        programs = forest_programs(forest, L)
        need = required_stream_lengths(list(programs.values()))
        lengths = forest.stream_lengths(L)
        for tree in forest:
            for node in tree.root.preorder():
                if node.parent is not None:
                    assert need[node.arrival] == lengths[node.arrival]

    @settings(max_examples=25, deadline=None)
    @given(preorder_tree(max_n=14))
    def test_any_tree_buffer_law(self, tree):
        """Lemma 15 holds for arbitrary preorder trees, not just optimal."""
        L = 2 * int(tree.span()) + len(tree) + 2
        forest = MergeForest([tree])
        for arrival, prog in forest_programs(forest, L).items():
            assert prog.max_buffer() == buffer_requirement(
                arrival, tree.root.arrival, L
            )

    @settings(max_examples=20, deadline=None)
    @given(small_L, st.integers(min_value=1, max_value=30))
    def test_verify_forest_accepts_all_optimal(self, L, n):
        verify_forest(build_optimal_forest(L, n), L).raise_if_failed()


class TestChannelViewConsistency:
    @settings(max_examples=25, deadline=None)
    @given(small_L, st.integers(min_value=1, max_value=60))
    def test_channels_equal_timeline_peak(self, L, n):
        forest = build_optimal_forest(L, n)
        peak_timeline = max(lvl for _, lvl in bandwidth_timeline(forest, L))
        assert assign_forest_channels(forest, L).num_channels == peak_timeline

    @settings(max_examples=25, deadline=None)
    @given(small_L, st.integers(min_value=1, max_value=60))
    def test_histogram_conserves_clients(self, L, n):
        forest = build_online_forest(L, n)
        hist = merge_hop_histogram(forest)
        assert sum(hist.values()) == n


class TestSimulatorAgreesWithTheory:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=3, max_value=25), st.integers(min_value=1, max_value=60))
    def test_dg_simulation_identity(self, L, n):
        res = Simulation(L, every_slot(n), DelayGuaranteedPolicy(L)).run()
        assert res.metrics.total_units == online_full_cost(L, n)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_dyadic_forest_cost_scale_invariance(self, seed):
        """Scaling time and L together scales the dyadic cost linearly."""
        trace = poisson(1.3, 60.0, seed=seed)
        if len(trace) == 0:
            return
        ts = [float(t) for t in trace]
        params = DyadicParams()
        base = dyadic_forest(ts, 30, params).full_cost(30)
        scaled = dyadic_forest([3 * t for t in ts], 90, params).full_cost(90)
        assert scaled == pytest.approx(3 * base)


class TestFaultInjection:
    """Corrupt a correct solution; the verifier must notice."""

    def _forest_with_shortened_stream(self, L=15, n=8):
        forest = build_optimal_forest(L, n)
        # rebuild with one subtree cut off its parent: move node 5's
        # subtree to merge into node 3 instead (later parent => the
        # receiving program of its clients breaks timing / coverage)
        from repro.core.merge_tree import tree_from_parent_map

        pm = forest.trees[0].parent_map()
        pm[5] = 4  # paper tree has p(5) = 0; 4 is deeper and later
        return MergeForest([tree_from_parent_map(pm)])

    def test_rewired_parent_detected(self):
        corrupted = self._forest_with_shortened_stream()
        report = verify_forest(corrupted, 15)
        # the tree is still a valid merge tree, so verification passes on
        # structure; but cost changed — it must exceed the optimum
        assert corrupted.full_cost(15) > optimal_full_cost(15, 8)
        report.raise_if_failed()  # validity is preserved, only optimality lost

    def test_dropped_client_breaks_tightness(self):
        """Removing a leaf client leaves its stream's demand short."""
        forest = build_optimal_forest(15, 8)
        programs = forest_programs(forest, 15)
        del programs[7]  # client H vanishes
        need = required_stream_lengths(list(programs.values()))
        lengths = forest.stream_lengths(15)
        # stream 7 now has zero demand; stream 5 is no longer fully used
        assert need.get(7, 0) == 0
        assert need[5] < lengths[5]

    def test_undersized_L_detected(self):
        forest = build_optimal_forest(15, 8)
        report = verify_forest(forest, 7)  # span 7 == L-1+1 > 6
        assert not report.ok

    def test_buffer_cap_violation_detected(self):
        forest = build_optimal_forest(30, 40)
        report = verify_forest(forest, 30, buffer_bound=0.5)
        assert not report.ok

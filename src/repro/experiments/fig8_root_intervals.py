"""Fig. 8: the table of root-merge intervals ``I(n)`` for 2 <= n <= 55.

Theorem 3 characterises ``I(n)`` as one of three Fibonacci intervals; the
experiment prints the closed-form interval next to the DP argmin set and
the Theorem 3 case, confirming they coincide for every n.

Sweep-tier driver: a one-axis :class:`~repro.sweeps.SweepSpec` over ``n``;
each point scans the *memoised* fastpath cost table for its argmin set
(O(n) per point) instead of re-running the O(n^2) DP for the whole grid.
"""

from __future__ import annotations

from typing import List

from ..sweeps import Axis, SweepSpec, run_sweep
from ..sweeps.evaluators import root_interval_point
from .harness import ExperimentResult, register


def fig8_spec(n_max: int = 55) -> SweepSpec:
    return SweepSpec(
        name="fig8",
        evaluator=root_interval_point,
        axes=[Axis("n", tuple(range(2, n_max + 1)))],
        metrics=("lo", "hi", "k", "m", "case", "dp_lo", "dp_hi", "contiguous"),
    )


@register(
    "fig8",
    "Root-merge intervals I(n) (Fig. 8)",
    "Fig. 8 / Theorem 3",
    "Closed-form I_i(n) intervals vs exhaustive DP argmin sets.",
)
def run_fig8(n_max: int = 55) -> List[ExperimentResult]:
    sweep = run_sweep(fig8_spec(n_max))
    rows = []
    for n, lo, hi, k, m, case, dp_lo, dp_hi, contiguous in sweep.rows(
        "n", "lo", "hi", "k", "m", "case", "dp_lo", "dp_hi", "contiguous"
    ):
        match = "ok" if (contiguous and (lo, hi) == (dp_lo, dp_hi)) else "MISMATCH"
        rows.append(
            (n, f"[{lo},{hi}]", f"[{dp_lo},{dp_hi}]", f"F_{k}+{m}", f"I{case}", match)
        )
    return [
        ExperimentResult(
            title="I(n): Theorem 3 intervals vs DP argmin (Fig. 8)",
            headers=("n", "closed form", "DP", "n = F_k + m", "case", "status"),
            rows=rows,
            notes=[
                "Each I(n) is a contiguous interval; pattern follows the "
                "Fibonacci decomposition of n exactly as Fig. 8 shows."
            ],
            columns=sweep.columns_json(),
        )
    ]

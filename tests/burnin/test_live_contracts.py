"""The live standing invariants: pass on clean runs, catch seeded bugs."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.burnin.contracts import check_live_report
from repro.fleet.scenarios import scenario_workload
from repro.live import LiveConfig, LiveDaemon
from repro.multiplex.catalog import Catalog

HORIZON = 90.0


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(4, duration_minutes=40.0)


@pytest.fixture(scope="module")
def workload(catalog):
    return scenario_workload("zipf", catalog, 0.5, HORIZON, seed=5)


@pytest.fixture(scope="module")
def clean_report(catalog, workload):
    config = LiveConfig(
        delay_minutes=1.5,
        horizon_minutes=HORIZON,
        epoch_minutes=9.0,
        fence_minutes=12.0,
        policy="batched-dyadic",
    )
    return LiveDaemon(catalog, config).run(workload)


def _names(contracts):
    return {o.name: o.ok for o in contracts.outcomes}


class TestCleanRun:
    def test_all_live_contracts_pass(self, clean_report, catalog, workload):
        contracts = check_live_report(clean_report, catalog, workload=workload)
        assert contracts.ok, contracts.render()
        names = _names(contracts)
        for required in (
            "live.ahead-of-fence",
            "live.fence-monotone",
            "live.committed-prefix-immutability",
            "live.conservation",
            "live.schedule",
            "live.oracle-equality",
        ):
            assert names[required]

    def test_oracle_check_requires_catalog_and_workload(self, clean_report):
        names = _names(check_live_report(clean_report))
        assert "live.oracle-equality" not in names
        assert names["live.ahead-of-fence"]


class TestSeededViolations:
    def test_commit_past_fence_is_caught(self, clean_report):
        records = list(clean_report.records)
        victim = next(
            i
            for i, r in enumerate(records)
            if not r.drain and r.max_committed_cutoff is not None
        )
        records[victim] = dataclasses.replace(
            records[victim], max_committed_cutoff=records[victim].fence + 1.0
        )
        broken = dataclasses.replace(clean_report, records=records)
        assert not _names(check_live_report(broken))["live.ahead-of-fence"]

    def test_uncommitted_window_behind_fence_is_caught(self, clean_report):
        records = list(clean_report.records)
        victim = next(i for i, r in enumerate(records) if not r.drain and r.fence > 0)
        records[victim] = dataclasses.replace(
            records[victim], min_live_cutoff=records[victim].fence - 1.0
        )
        broken = dataclasses.replace(clean_report, records=records)
        assert not _names(check_live_report(broken))["live.ahead-of-fence"]

    def test_rewritten_committed_stream_is_caught(self, clean_report):
        # rewrite one already-committed interval: every later digest breaks
        objects = list(clean_report.fleet.objects)
        victim = next(i for i, o in enumerate(objects) if o.streams > 0)
        starts = objects[victim].starts.copy()
        starts[0] += 1e-9
        objects[victim] = dataclasses.replace(objects[victim], starts=starts)
        fleet = dataclasses.replace(clean_report.fleet, objects=objects)
        broken = dataclasses.replace(clean_report, fleet=fleet)
        assert not _names(check_live_report(broken))[
            "live.committed-prefix-immutability"
        ]

    def test_non_monotone_epochs_are_caught(self, clean_report):
        records = list(clean_report.records)
        records[2] = dataclasses.replace(records[2], epoch=5)
        broken = dataclasses.replace(clean_report, records=records)
        assert not _names(check_live_report(broken))["live.fence-monotone"]

    def test_shrinking_commit_counts_are_caught(self, clean_report):
        records = list(clean_report.records)
        last = records[-1]
        records[-1] = dataclasses.replace(
            last, committed_streams=last.committed_streams - 1
        )
        broken = dataclasses.replace(clean_report, records=records)
        names = _names(check_live_report(broken))
        assert not (names["live.fence-monotone"] and names["live.conservation"])

    def test_missing_drain_is_caught(self, clean_report):
        broken = dataclasses.replace(
            clean_report, records=list(clean_report.records[:-1])
        )
        assert not _names(check_live_report(broken))["live.conservation"]

    def test_wrong_channel_assignment_is_caught(self, clean_report):
        channels = dict(clean_report.channels)
        victim = next(n for n, c in channels.items() if c.size)
        tampered = channels[victim].copy()
        tampered[-1] += 1  # burn an extra channel: breaks greedy equality
        channels[victim] = tampered
        broken = dataclasses.replace(clean_report, channels=channels)
        assert not _names(check_live_report(broken))["live.schedule"]

    def test_oracle_divergence_is_caught(self, clean_report, catalog, workload):
        objects = list(clean_report.fleet.objects)
        objects[0] = dataclasses.replace(
            objects[0], total_units_minutes=objects[0].total_units_minutes + 1.0
        )
        fleet = dataclasses.replace(clean_report.fleet, objects=objects)
        broken = dataclasses.replace(clean_report, fleet=fleet)
        names = _names(check_live_report(broken, catalog, workload=workload))
        assert not names["live.oracle-equality"]

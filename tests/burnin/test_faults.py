"""Fault injectors land, and the stack recovers to fault-free results."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals import poisson
from repro.burnin import (
    TornArtifact,
    WorkerKill,
    check_fleet_report,
    corrupt_times,
    flash_overload,
    fleet_reports_equal,
    installed_task_fault,
)
from repro.fleet import FleetPolicy, run_fleet
from repro.fleet.runner import sanitize_times
from repro.multiplex import Catalog, split_requests
from repro.sweeps import Axis, SweepCache, SweepSpec, run_sweep
from repro.sweeps.evaluators import merge_cost_table_point

DELAY = 2.0
HORIZON = 150.0


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(6, duration_minutes=45.0)


@pytest.fixture(scope="module")
def workload(catalog):
    base = poisson(0.5, HORIZON, seed=5)
    return split_requests(base, catalog, seed=5)


class TestWorkerKillRecovery:
    def test_killed_worker_recovers_to_fault_free_result(
        self, catalog, workload, tmp_path
    ):
        """The acceptance equivalence: a worker hard-killed mid-fold must
        yield the exact fault-free report."""
        policy = FleetPolicy.batched_dyadic()
        baseline = run_fleet(
            catalog, DELAY, HORIZON, policy=policy, workload=workload
        )
        kill = WorkerKill(task_index=2, marker_dir=str(tmp_path))
        with installed_task_fault(kill):
            faulted = run_fleet(
                catalog, DELAY, HORIZON, policy=policy,
                workload=workload, workers=2,
            )
        assert kill.fired(), "the kill never reached a worker process"
        assert fleet_reports_equal(baseline, faulted) is None
        contracts = check_fleet_report(faulted, catalog, workload, policy)
        assert contracts.ok, contracts.render()

    def test_kill_at_every_index_recovers(self, catalog, workload, tmp_path):
        policy = FleetPolicy.batched_dyadic()
        baseline = run_fleet(
            catalog, DELAY, HORIZON, policy=policy, workload=workload
        )
        for index in range(len(catalog.objects)):
            kill = WorkerKill(
                task_index=index, marker_dir=str(tmp_path / f"k{index}")
            )
            (tmp_path / f"k{index}").mkdir()
            with installed_task_fault(kill):
                faulted = run_fleet(
                    catalog, DELAY, HORIZON, policy=policy,
                    workload=workload, workers=2,
                )
            assert kill.fired()
            assert fleet_reports_equal(baseline, faulted) is None

    def test_hook_restored_after_block(self, tmp_path):
        import repro.fleet.runner as runner

        kill = WorkerKill(task_index=0, marker_dir=str(tmp_path))
        with installed_task_fault(kill):
            assert runner._TASK_FAULT_HOOK is kill
        assert runner._TASK_FAULT_HOOK is None

    def test_kill_never_fires_in_parent(self, tmp_path):
        kill = WorkerKill(task_index=0, marker_dir=str(tmp_path))
        # Called in the parent process (this one): must be a no-op.
        kill(0, "arg")
        assert not kill.fired()


class TestMalformedTraceRecovery:
    def test_sanitize_recovers_exact_multiset(self, workload):
        for trace in workload.values():
            clean = np.asarray(trace.times)
            mangled = corrupt_times(clean, seed=3, horizon=HORIZON)
            recovered, repaired = sanitize_times(mangled, HORIZON)
            assert np.array_equal(recovered, clean)
            assert repaired == mangled.size - clean.size

    def test_corrupted_workload_recovers_fault_free_run(
        self, catalog, workload
    ):
        policy = FleetPolicy.batched_dyadic()
        baseline = run_fleet(
            catalog, DELAY, HORIZON, policy=policy, workload=workload
        )
        corrupted = {
            name: corrupt_times(
                np.asarray(trace.times), seed=i, horizon=HORIZON
            )
            for i, (name, trace) in enumerate(workload.items())
        }
        faulted = run_fleet(
            catalog, DELAY, HORIZON, policy=policy,
            workload=corrupted, workers=2,
        )
        assert faulted.repaired > 0, "the corruption never landed"
        assert fleet_reports_equal(baseline, faulted) is None

    def test_all_garbage_trace_degrades_to_quiet_object(self, catalog):
        policy = FleetPolicy.batched_dyadic()
        garbage = {
            o.name: np.array([np.nan, np.inf, -5.0, HORIZON * 2])
            for o in catalog
        }
        report = run_fleet(
            catalog, DELAY, HORIZON, policy=policy, workload=garbage
        )
        assert report.clients == 0
        assert report.repaired == 4 * len(catalog.objects)


class TestTornCacheRecovery:
    def _spec(self, n0: int = 1):
        return SweepSpec(
            name="torn-test",
            evaluator=merge_cost_table_point,
            axes=[Axis("n", tuple(range(n0, n0 + 6)))],
            metrics=("closed", "via_dp"),
        )

    def test_torn_reads_quarantined_and_recomputed(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = self._spec()
        warm = run_sweep(spec, cache=cache)
        tear = TornArtifact(every=2)
        cache.read_hook = tear
        faulted = run_sweep(spec, cache=cache)
        cache.read_hook = None
        assert tear.corrupted > 0
        assert cache.quarantined == tear.corrupted
        assert faulted.evaluated == tear.corrupted
        assert faulted.rows() == warm.rows()
        # quarantined artifacts moved aside, fresh ones written back
        assert cache.quarantine_dir.exists()
        assert len(list(cache.quarantine_dir.glob("*.json"))) > 0
        clean = run_sweep(spec, cache=cache)
        assert clean.evaluated == 0
        assert clean.rows() == warm.rows()

    def test_every_corruption_mode_cycles(self, tmp_path):
        cache = SweepCache(tmp_path)
        spec = self._spec()
        run_sweep(spec, cache=cache)
        tear = TornArtifact(every=1)  # corrupt every read
        cache.read_hook = tear
        faulted = run_sweep(spec, cache=cache)
        assert tear.corrupted == spec.n_points  # hit all four modes
        assert cache.quarantined == spec.n_points
        assert faulted.evaluated == spec.n_points

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown corruption modes"):
            TornArtifact(modes=("melt",))


class TestFlashOverload:
    def test_surge_lands_on_target_only(self, catalog, workload):
        top = catalog.popularity_rank()[0].name
        surged = flash_overload(
            workload, top, at=HORIZON / 3, clients=300, seed=9
        )
        assert len(surged[top].times) > len(workload[top].times)
        for name in workload:
            if name != top:
                assert surged[name] is workload[name]

    def test_missing_target_rejected(self, workload):
        with pytest.raises(KeyError, match="not in the workload"):
            flash_overload(workload, "no-such-object", at=1.0, clients=10)

    def test_delay_guarantee_survives_overload(self, catalog, workload):
        top = catalog.popularity_rank()[0].name
        surged = flash_overload(
            workload, top, at=HORIZON / 3, clients=300, seed=9
        )
        policy = FleetPolicy.batched_dyadic()
        report = run_fleet(
            catalog, DELAY, HORIZON, policy=policy, workload=surged
        )
        contracts = check_fleet_report(report, catalog, surged, policy)
        assert contracts.ok, contracts.render()

"""Sliding-window and fence accounting for the live serving tier.

The daemon's time model, kept free of any simulation state so the epoch
arithmetic is testable in isolation:

* the horizon ``[0, horizon_minutes)`` is cut into **epochs** of
  ``epoch_minutes`` (the last one truncated); epoch ``k`` ingests the
  arrivals in ``[k * epoch, min((k+1) * epoch, horizon))``;
* after ingesting through ``ingest_clock = t1``, everything whose merge
  window closed before the **fence** ``max(0, t1 - fence_minutes)`` is
  committed — the fence lag is the daemon's decision margin: a tree is
  only emitted once no future arrival can still join it *and* the clock
  has moved ``fence_minutes`` past its window, so commit decisions are
  always at least the lag ahead of the data they depend on;
* a **drain** (end of stream) commits everything that remains; drained
  records carry no fence (there is none — the stream ended).

``fence_minutes`` must be strictly positive: with a zero lag a future
arrival exactly on a committed tree's cutoff could still belong to it,
breaking committed-prefix immutability.  ``LiveHorizon`` additionally
enforces the monotonicity every record sequence must satisfy — epochs
advance one at a time and fences never move backwards — so a daemon bug
surfaces as a loud error instead of a silently reordered schedule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..fleet.engine import FleetPolicy

__all__ = ["LIVE_POLICIES", "LiveConfig", "LiveHorizon"]

#: policy kinds the live tier serves: those whose merge structure is a
#: pure function of the arrivals seen so far (slotted or immediate).
#: The template policies (delay-guaranteed, offline-optimal) build their
#: forest over *every* slot of the whole horizon up front — nothing about
#: them is online — and general-offline optimises over the completed
#: trace; all three stay batch-only.
LIVE_POLICIES = (
    "batched-dyadic",
    "immediate-dyadic",
    "pure-batching",
    "unicast",
)


@dataclass(frozen=True)
class LiveConfig:
    """Time model + policy of one daemon run (see module docstring)."""

    delay_minutes: float
    horizon_minutes: float
    epoch_minutes: float
    fence_minutes: float
    policy: str = "batched-dyadic"

    def __post_init__(self) -> None:
        for name in ("delay_minutes", "horizon_minutes", "epoch_minutes"):
            value = getattr(self, name)
            if not (isinstance(value, (int, float)) and math.isfinite(value) and value > 0):
                raise ValueError(f"{name} must be a positive finite number, got {value!r}")
        if not (math.isfinite(self.fence_minutes) and self.fence_minutes > 0):
            raise ValueError(
                f"fence_minutes must be strictly positive (a zero lag lets a "
                f"boundary arrival join a committed tree), got {self.fence_minutes!r}"
            )
        if self.epoch_minutes > self.horizon_minutes:
            raise ValueError(
                f"epoch_minutes {self.epoch_minutes} exceeds the horizon "
                f"{self.horizon_minutes}"
            )
        if self.policy not in LIVE_POLICIES:
            raise ValueError(
                f"policy {self.policy!r} is not live-servable; "
                f"choose from {LIVE_POLICIES}"
            )

    @property
    def num_epochs(self) -> int:
        return int(math.ceil(self.horizon_minutes / self.epoch_minutes))

    def epoch_bounds(self, k: int) -> Tuple[float, float]:
        """``[t0, t1)`` of epoch ``k`` in minutes (last epoch truncated)."""
        if not 0 <= k < self.num_epochs:
            raise ValueError(f"epoch {k} outside [0, {self.num_epochs})")
        t0 = k * self.epoch_minutes
        t1 = min((k + 1) * self.epoch_minutes, self.horizon_minutes)
        return t0, t1

    def fence_at(self, ingest_clock: float) -> float:
        """Commit fence after ingesting through ``ingest_clock`` minutes."""
        return max(0.0, ingest_clock - self.fence_minutes)

    def fleet_policy(self) -> FleetPolicy:
        return FleetPolicy(self.policy)

    def to_payload(self) -> dict:
        return {
            "delay_minutes": self.delay_minutes,
            "horizon_minutes": self.horizon_minutes,
            "epoch_minutes": self.epoch_minutes,
            "fence_minutes": self.fence_minutes,
            "policy": self.policy,
        }

    @staticmethod
    def from_payload(payload: dict) -> "LiveConfig":
        return LiveConfig(
            delay_minutes=float(payload["delay_minutes"]),
            horizon_minutes=float(payload["horizon_minutes"]),
            epoch_minutes=float(payload["epoch_minutes"]),
            fence_minutes=float(payload["fence_minutes"]),
            policy=str(payload["policy"]),
        )


class LiveHorizon:
    """Monotone epoch/fence cursor over a :class:`LiveConfig`.

    ``begin_epoch(k)`` validates the advance (exactly one epoch at a
    time, starting at 0) and returns the epoch's ``(t0, t1)``;
    afterwards :attr:`ingest_clock` and :attr:`fence` reflect the epoch
    just ingested.  ``mark_drained`` ends the stream: the fence
    disappears (everything commits) and no further epoch may begin.
    """

    def __init__(self, config: LiveConfig):
        self.config = config
        self.epoch = -1  # last ingested epoch; -1 = nothing yet
        self.ingest_clock = 0.0
        self.fence: Optional[float] = 0.0
        self.drained = False

    @property
    def exhausted(self) -> bool:
        """True when every epoch has been ingested."""
        return self.epoch + 1 >= self.config.num_epochs

    def begin_epoch(self, k: int) -> Tuple[float, float]:
        if self.drained:
            raise RuntimeError("the stream was drained; no further epochs")
        if k != self.epoch + 1:
            raise ValueError(
                f"epochs must advance one at a time: got {k} after {self.epoch}"
            )
        t0, t1 = self.config.epoch_bounds(k)
        self.epoch = k
        self.ingest_clock = t1
        fence = self.config.fence_at(t1)
        assert self.fence is not None and fence >= self.fence  # lag is constant
        self.fence = fence
        return t0, t1

    def mark_drained(self) -> None:
        if self.drained:
            raise RuntimeError("already drained")
        self.drained = True
        self.fence = None

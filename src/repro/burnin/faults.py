"""Deterministic, seed-driven fault injectors for the soak harness.

Every injector is a plain picklable object (it may travel to worker
processes) whose firing is a pure function of its construction
parameters plus explicit state — no wall clock, no global randomness —
so a soak episode that injects faults is exactly as reproducible as a
clean one.  The injection points live in the production modules:

* :func:`repro.fleet.runner.install_task_fault_hook` — called as
  ``hook(index, arg)`` in the process about to execute a pooled task
  (:class:`WorkerKill` hard-exits the worker there);
* :attr:`repro.sweeps.cache.SweepCache.read_hook` — called with the
  artifact path before every cache read (:class:`TornArtifact` corrupts
  the bytes there);
* workload ingestion — :func:`corrupt_times` malforms a valid arrival
  array (NaN/inf, reordering, duplicates, out-of-window entries) in a
  *non-destructive* way: the finite in-window multiset is preserved, so
  :func:`repro.fleet.runner.sanitize_times` recovers the fault-free run
  exactly;
* :func:`flash_overload` — grafts a crowd far beyond the provisioned
  budget onto one object's trace (the admission/shedding path must then
  degrade gracefully, never violate an admitted guarantee).
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Sequence, Tuple

import numpy as np

from ..arrivals.traces import ArrivalTrace
from ..fleet.runner import install_task_fault_hook
from ..fleet.scenarios import flash_crowd
from ..sweeps.cache import ARTIFACT_SCHEMA

__all__ = [
    "WorkerKill",
    "TornArtifact",
    "TornSegment",
    "corrupt_times",
    "flash_overload",
    "installed_task_fault",
]


@dataclass(frozen=True)
class WorkerKill:
    """Hard-kill the worker process the first time it runs one task.

    ``os._exit`` (no cleanup, no exception) is the closest stand-in for
    an OOM kill or segfault the pool can experience; the executor
    surfaces it as ``BrokenProcessPool`` and
    :func:`repro.fleet.runner.pool_map` must recover by retrying the
    task in-process.  Two guards keep the fault deterministic and safe:

    * a marker file under ``marker_dir`` latches the kill to *exactly
      once* across processes — the retry (and any chunk-mate re-runs)
      see the marker and proceed;
    * the kill never fires in the parent process, so the in-process
      fallback can never take the driver down.
    """

    task_index: int
    marker_dir: str
    exit_code: int = 113

    def _marker(self) -> Path:
        return Path(self.marker_dir) / f"killed-{self.task_index}"

    def __call__(self, index: int, arg: object) -> None:
        if index != self.task_index:
            return
        if multiprocessing.parent_process() is None:
            return  # never kill the driver process
        try:
            self._marker().touch(exist_ok=False)
        except FileExistsError:
            return  # already fired once
        os._exit(self.exit_code)

    def fired(self) -> bool:
        """Whether the kill actually happened (the marker exists)."""
        return self._marker().exists()


@contextlib.contextmanager
def installed_task_fault(hook) -> Iterator:
    """Install a pool-task fault hook for the duration of a block,
    restoring whatever was installed before."""
    previous = install_task_fault_hook(hook)
    try:
        yield hook
    finally:
        install_task_fault_hook(previous)


class TornArtifact:
    """Corrupt every ``every``-th cache artifact read, cycling through
    corruption modes.

    Installed as :attr:`SweepCache.read_hook`; cache reads happen in the
    driver process, so plain counters keep the injection deterministic.
    ``corrupted`` afterwards equals the cache's ``quarantined`` delta if
    — and only if — the quarantine recovery path worked.
    """

    MODES: Tuple[str, ...] = ("truncate", "garbage", "wrong-schema", "wrong-key")

    def __init__(self, every: int = 2, modes: Sequence[str] = MODES):
        if every < 1:
            raise ValueError("every must be >= 1")
        unknown = set(modes) - set(self.MODES)
        if unknown:
            raise ValueError(f"unknown corruption modes {sorted(unknown)}")
        self.every = int(every)
        self.modes = tuple(modes)
        self.reads = 0
        self.corrupted = 0

    def __call__(self, path: Path) -> None:
        self.reads += 1
        if self.reads % self.every:
            return
        mode = self.modes[self.corrupted % len(self.modes)]
        if mode == "truncate":
            text = path.read_text()
            path.write_text(text[: max(1, len(text) // 2)])
        elif mode == "garbage":
            path.write_bytes(b"\x00\xffnot json at all\x00")
        elif mode == "wrong-schema":
            path.write_text(
                json.dumps({"schema": "bogus.v0", "metrics": {"x": 1}})
            )
        else:  # wrong-key: valid artifact recorded under a different hash
            path.write_text(
                json.dumps(
                    {
                        "schema": ARTIFACT_SCHEMA,
                        "key": "0" * 64,
                        "metrics": {"x": 1},
                    }
                )
            )
        self.corrupted += 1


class TornSegment:
    """Corrupt a :mod:`repro.scale.columnar` store on disk, one mode per call.

    The storage-tier sibling of :class:`TornArtifact`: each invocation
    applies the next corruption mode to the store at ``root`` —

    * ``truncate`` — chop the tail off ``segment.bin`` (torn write /
      partial copy; the length no longer matches the index);
    * ``flip`` — overwrite bytes *inside* the segment, length intact
      (bit rot / overlapping write; only the per-column checksums can
      catch this one);
    * ``garbage-index`` — replace ``index.json`` with non-JSON bytes;
    * ``wrong-schema`` — a well-formed index claiming another schema;
    * ``missing-index`` — delete ``index.json`` (spool died pre-publish).

    Every mode must make :func:`repro.burnin.contracts.check_columnar_store`
    report a violation — a torn store may never verify clean — and none
    may crash the checker.  Plain counters keep the cycling
    deterministic, as with :class:`TornArtifact`.
    """

    MODES: Tuple[str, ...] = (
        "truncate", "flip", "garbage-index", "wrong-schema", "missing-index",
    )

    def __init__(self, root, modes: Sequence[str] = MODES):
        unknown = set(modes) - set(self.MODES)
        if unknown:
            raise ValueError(f"unknown corruption modes {sorted(unknown)}")
        self.root = os.fspath(root)
        self.modes = tuple(modes)
        self.torn = 0

    def __call__(self) -> str:
        """Apply the next mode; returns the mode applied."""
        from ..scale.columnar import SCHEMA

        segment = Path(self.root) / "segment.bin"
        index = Path(self.root) / "index.json"
        mode = self.modes[self.torn % len(self.modes)]
        if mode == "truncate":
            raw = segment.read_bytes()
            segment.write_bytes(raw[: max(0, len(raw) - max(1, len(raw) // 3))])
        elif mode == "flip":
            raw = bytearray(segment.read_bytes())
            if raw:
                mid = len(raw) // 2
                for k in range(mid, min(mid + 16, len(raw))):
                    raw[k] ^= 0xFF
                segment.write_bytes(bytes(raw))
        elif mode == "garbage-index":
            index.write_bytes(b"\x00\xffnot json at all\x00")
        elif mode == "wrong-schema":
            index.write_text(
                json.dumps({"schema": "bogus.v0", "total": 0, "objects": []})
            )
        else:  # missing-index
            with contextlib.suppress(FileNotFoundError):
                index.unlink()
        self.torn += 1
        return mode


def corrupt_times(
    times: Sequence[float],
    seed,
    horizon: Optional[float] = None,
    kinds: Sequence[str] = ("nan", "duplicate", "beyond-horizon", "shuffle"),
) -> np.ndarray:
    """Malform a valid arrival array without touching its valid content.

    Each kind *adds* garbage or reorders — NaN/inf/negative entries,
    exact duplicates of existing arrivals, entries at/past the horizon,
    a full permutation — so the finite in-window multiset survives and
    :func:`repro.fleet.runner.sanitize_times` recovers the original
    (sorted, deduplicated) array exactly.  Deterministic in ``seed``.
    """
    rng = np.random.default_rng(seed)
    ts = np.asarray(times, dtype=np.float64)
    out = ts.copy()
    for kind in kinds:
        if kind == "nan":
            out = np.concatenate(
                [out, [np.nan, np.inf, -np.inf, -1.0, -1e9]]
            )
        elif kind == "duplicate":
            if ts.size:
                picks = rng.choice(ts, size=min(3, ts.size), replace=True)
                out = np.concatenate([out, picks])
        elif kind == "beyond-horizon":
            if horizon is not None:
                out = np.concatenate([out, [horizon, horizon * 2.0]])
        elif kind == "shuffle":
            out = rng.permutation(out)
        else:
            raise ValueError(f"unknown corruption kind {kind!r}")
    return out


def flash_overload(
    workload: Dict[str, ArrivalTrace],
    target: str,
    at: float,
    clients: int,
    spread: float = 1.0,
    seed=None,
) -> Dict[str, ArrivalTrace]:
    """A copy of ``workload`` with a crowd grafted onto ``target``.

    The overload fault: a surge sized past the provisioned budget.  The
    serving engine absorbs it (batching amortises the crowd); what the
    soak checks is the *capacity* side — admission control must shed
    honestly instead of violating an admitted guarantee.
    """
    if target not in workload:
        raise KeyError(f"overload target {target!r} not in the workload")
    surged = dict(workload)
    surged[target] = flash_crowd(at, clients, spread, seed=seed)(
        workload[target]
    )
    return surged

"""Tests for the discrete-event engine."""

from __future__ import annotations

import math

import pytest

from repro.simulation.events import EventQueue


class TestScheduling:
    def test_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        q.run()
        assert log == ["a", "b", "c"]
        assert q.now == 3.0

    def test_priority_breaks_ties(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append("low"), priority=5)
        q.schedule(1.0, lambda: log.append("high"), priority=0)
        q.run()
        assert log == ["high", "low"]

    def test_fifo_within_same_time_priority(self):
        q = EventQueue()
        log = []
        for i in range(5):
            q.schedule(1.0, lambda i=i: log.append(i))
        q.run()
        assert log == [0, 1, 2, 3, 4]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule(4.0, lambda: None)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(math.nan, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda: log.append("x"))
        q.schedule(2.0, lambda: log.append("y"))
        ev.cancel()
        q.run()
        assert log == ["y"]

    def test_len_ignores_tombstones(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 2.0


class TestRun:
    def test_run_until(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(5.0, lambda: log.append(5))
        q.run(until=2.0)
        assert log == [1]
        assert q.now == 2.0  # clock advanced to the horizon
        q.run()
        assert log == [1, 5]

    def test_self_scheduling(self):
        q = EventQueue()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                q.schedule(q.now + 1.0, tick)

        q.schedule(0.0, tick)
        q.run()
        assert count[0] == 10
        assert q.processed == 10

    def test_max_events_guard(self):
        q = EventQueue()

        def forever():
            q.schedule(q.now, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            q.run(max_events=100)

    def test_step_on_empty(self):
        assert EventQueue().step() is False

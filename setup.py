"""Packaging for the SPAA'03 stream-merging reproduction.

Kept as a plain ``setup.py`` (no pyproject): the execution environment
is offline and lacks the ``wheel`` package, so PEP 660 editable installs
(which shell out to ``bdist_wheel``) fail — this form lets
``pip install -e .`` fall back to ``setup.py develop``.

Extras:

* ``repro[fast]`` — numba, enabling the JIT-compiled scale-tier kernels
  (:mod:`repro.scale.kernels`).  Strictly optional: without it every
  kernel runs its contract-tested numpy fallback and the full test
  suite passes unchanged.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.8.0",
    description=(
        "Reproduction of guaranteed start-up delay media-on-demand "
        "stream merging (Bar-Noy, Goshi, Ladner, SPAA'03)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.24"],
    extras_require={
        "fast": ["numba>=0.57"],
    },
)

"""Workload generators and arrival traces for the MoD simulations."""

from .generators import bursty, constant_rate, every_slot, poisson, rng_from
from .serialization import (
    load_trace,
    save_trace,
    trace_from_json,
    trace_from_payload,
    trace_payload,
    trace_to_json,
)
from .traces import ArrivalTrace

__all__ = [
    "ArrivalTrace",
    "bursty",
    "constant_rate",
    "every_slot",
    "load_trace",
    "poisson",
    "rng_from",
    "save_trace",
    "trace_from_json",
    "trace_from_payload",
    "trace_payload",
    "trace_to_json",
]

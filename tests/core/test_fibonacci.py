"""Unit tests for repro.core.fibonacci."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import fibonacci as fm


class TestFib:
    def test_base_values(self):
        assert [fm.fib(k) for k in range(10)] == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            fm.fib(-1)

    @given(st.integers(min_value=2, max_value=300))
    def test_recurrence(self, k):
        assert fm.fib(k) == fm.fib(k - 1) + fm.fib(k - 2)

    def test_large_value_exact(self):
        # F_100 from the literature — exact integer arithmetic required.
        assert fm.fib(100) == 354224848179261915075


class TestFibUpto:
    def test_small(self):
        assert fm.fib_upto(1) == [0, 1, 1]
        assert fm.fib_upto(8) == [0, 1, 1, 2, 3, 5, 8]

    def test_negative(self):
        assert fm.fib_upto(-3) == []

    @given(st.integers(min_value=0, max_value=10_000))
    def test_all_leq(self, n):
        vals = fm.fib_upto(n)
        assert all(v <= n for v in vals)
        if vals:
            # the next Fibonacci number must exceed n
            k = len(vals) - 1
            assert fm.fib(k + 1) > n or fm.fib(k) == n


class TestFibIndex:
    def test_duplicate_one_resolves_up(self):
        assert fm.fib_index(1) == 2

    def test_known(self):
        assert fm.fib_index(0) == 0
        assert fm.fib_index(8) == 6
        assert fm.fib_index(55) == 10

    @pytest.mark.parametrize("bad", [4, 6, 7, 9, 100, -1])
    def test_non_fib_rejected(self, bad):
        with pytest.raises(ValueError):
            fm.fib_index(bad)


class TestBracketIndex:
    @given(st.integers(min_value=1, max_value=100_000))
    def test_bracket_invariant(self, n):
        k = fm.bracket_index(n)
        assert fm.fib(k) <= n
        assert n < fm.fib(k + 1) or n == fm.fib(k)

    def test_exact_fibonacci_gets_own_index(self):
        for k in range(2, 20):
            assert fm.bracket_index(fm.fib(k)) == k

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            fm.bracket_index(0)


class TestHelpers:
    @given(st.integers(min_value=1, max_value=50_000))
    def test_largest_smallest(self, n):
        lo = fm.largest_fib_leq(n)
        hi = fm.smallest_fib_geq(n)
        assert lo <= n <= hi
        assert fm.is_fib(lo) and fm.is_fib(hi)

    def test_is_fib(self):
        fibs = {0, 1, 2, 3, 5, 8, 13, 21, 34, 55}
        for x in range(60):
            assert fm.is_fib(x) == (x in fibs)
        assert not fm.is_fib(-5)

    def test_phi_identity(self):
        assert math.isclose(fm.PHI * fm.PHI, fm.PHI + 1)
        assert math.isclose(fm.PHI_HAT * fm.PHI_HAT, fm.PHI_HAT + 1)

    def test_fib_floor_log(self):
        assert math.isclose(fm.fib_floor_log(fm.PHI), 1.0)
        with pytest.raises(ValueError):
            fm.fib_floor_log(0)


class TestTreeSizeIndex:
    @pytest.mark.parametrize(
        "L,h",
        [(1, 2), (2, 3), (3, 3), (4, 4), (6, 4), (7, 5), (11, 5), (12, 6), (15, 6), (100, 10)],
    )
    def test_paper_brackets(self, L, h):
        assert fm.tree_size_index(L) == h

    @given(st.integers(min_value=1, max_value=100_000))
    def test_bracket_definition(self, L):
        h = fm.tree_size_index(L)
        assert fm.fib(h + 1) < L + 2 <= fm.fib(h + 2)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            fm.tree_size_index(0)

"""End-to-end verification of merge forests and simulation runs.

This module is the reproduction's safety net: it *replays* the Section 2
receiving programs against a forest (or against what a simulation actually
broadcast) and checks every claim the analysis makes:

* every client receives parts ``1..L`` exactly once (completeness);
* every part arrives no later than its playback slot (uninterrupted
  playback with start-up delay honoured);
* no client ever listens to more than two streams at once (receive-two) —
  or reports the true fan-in (receive-all);
* every stream is long enough for all its readers (Lemma 1 / Lemma 17
  sufficiency) and no longer than the last part anyone reads (tightness);
* client buffer high-water marks equal ``min(x - r, L - (x - r))``
  (Lemma 15) and respect an optional bound ``B``;
* a simulation's measured bandwidth equals the forest's analytic cost.

Integer-slotted forests get exact part-by-part replay; real-valued forests
(immediate dyadic) get the continuous-interval analogue.

Since the flat-simulation refactor the public entry points run the
*batched* replay of :mod:`repro.fastpath.replay` — vectorised per-stream
interval algebra on :class:`~repro.fastpath.flat_forest.FlatForest`
arrays, ~10^3x faster at 10^5 clients.  The original per-client object
walks survive here as :func:`verify_forest_reference` and
:func:`verify_forest_continuous_reference`; the fastpath property tests
assert report-for-report identity (same check counts, same failure sets)
between the two on valid *and* corrupted forests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, TYPE_CHECKING, Union

from ..core.buffers import buffer_requirement
from ..core.merge_tree import MergeForest
from ..core.receiving_program import (
    forest_programs,
    receive_all_program,
    receive_two_program,
)
from ..fastpath.flat_forest import FlatForest, as_flat_forest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .server import SimulationResult

__all__ = [
    "VerificationReport",
    "verify_forest",
    "verify_forest_continuous",
    "verify_forest_reference",
    "verify_forest_continuous_reference",
    "verify_simulation",
]


@dataclass
class VerificationReport:
    """Outcome of a verification pass."""

    ok: bool = True
    checks: int = 0
    failures: List[str] = field(default_factory=list)

    def record(self, condition: bool, message: str) -> None:
        self.checks += 1
        if not condition:
            self.ok = False
            self.failures.append(message)

    def raise_if_failed(self) -> None:
        if not self.ok:
            raise AssertionError(
                f"verification failed ({len(self.failures)} of "
                f"{self.checks} checks):\n" + "\n".join(self.failures[:20])
            )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        status = "OK" if self.ok else "FAILED"
        return f"VerificationReport({status}, {self.checks} checks, {len(self.failures)} failures)"


def verify_forest(
    forest: Union[MergeForest, FlatForest],
    L: int,
    model: str = "receive-two",
    buffer_bound: Optional[float] = None,
) -> VerificationReport:
    """Exact replay verification of an integer-slotted merge forest.

    Accepts either forest representation; runs entirely on the batched
    flat replay (:func:`repro.fastpath.replay.replay_verify_forest`).
    :func:`verify_forest_reference` is the per-client oracle it is
    property-tested against.
    """
    from ..fastpath.replay import replay_verify_forest

    return replay_verify_forest(forest, L, model=model, buffer_bound=buffer_bound)


def verify_forest_reference(
    forest: Union[MergeForest, FlatForest],
    L: int,
    model: str = "receive-two",
    buffer_bound: Optional[float] = None,
) -> VerificationReport:
    """Per-client object-walk replay — the verification oracle.

    Builds every client's :class:`~repro.core.receiving_program.
    ReceivingProgram` part by part and checks it directly; O(total parts)
    Python objects.  Kept as the reference the batched replay must match
    report-for-report.
    """
    report = VerificationReport()
    flat = as_flat_forest(forest)
    if isinstance(forest, FlatForest):
        forest = forest.to_forest()
    try:
        flat.validate_for_length(L)
    except ValueError as exc:
        report.record(False, f"forest infeasible for L={L}: {exc}")
        return report

    programs = forest_programs(forest, L, model=model)
    lengths = _model_stream_lengths(flat, L, model)
    demanded: dict = {}

    for arrival, prog in programs.items():
        report.record(prog.is_complete(), f"client {arrival}: parts missing or duplicated")
        report.record(prog.is_on_time(), f"client {arrival}: playback would stall")
        fan_in = prog.max_parallel_streams()
        if model == "receive-two":
            report.record(
                fan_in <= 2, f"client {arrival}: listens to {fan_in} > 2 streams"
            )
        for stream in prog.streams_used():
            last = prog.last_part_from(stream)
            demanded[stream] = max(demanded.get(stream, 0), last)
            report.record(
                last <= lengths[stream],
                f"client {arrival} needs part {last} of stream {stream}, "
                f"which only has {lengths[stream]}",
            )
        if model == "receive-two":
            tree, _node = forest.find(arrival)
            expected = buffer_requirement(arrival, tree.root.arrival, L)
            got = prog.max_buffer()
            report.record(
                got == expected,
                f"client {arrival}: buffer peak {got} != Lemma 15 value {expected}",
            )
            if buffer_bound is not None:
                report.record(
                    got <= buffer_bound,
                    f"client {arrival}: buffer peak {got} > bound {buffer_bound}",
                )

    # Tightness: every non-root stream's length is fully consumed.
    for label in flat.arrivals[flat.parent >= 0].tolist():
        report.record(
            demanded.get(label, 0) == lengths[label],
            f"stream {label}: length {lengths[label]} but only part "
            f"{demanded.get(label, 0)} ever read (not tight)",
        )
    return report


def _model_stream_lengths(flat: FlatForest, L: int, model: str) -> dict:
    """Per-stream lengths under the requested client model, vectorised.

    Receive-two: Lemma 1 (``2z - x - p``); receive-all: Lemma 17
    (``z - p``).  Roots carry ``L`` either way.
    """
    return flat.stream_length_map(L, model)


def _client_intervals_continuous(
    path: Tuple[float, ...], L: float
) -> List[Tuple[float, float, float]]:
    """Continuous receive-two demand: (stream, pos_from, pos_to] pieces.

    Mirrors the Section 2 stages with real-valued arrivals: media position
    ``q`` stands for the slot-model part ``ceil(q)``; stage ``i`` takes
    positions ``(2(y - u), 2y - u - u']`` from stream ``u = x_{k-i}`` and
    ``(2y - u - u', 2(y - u')]`` from ``u' = x_{k-i-1}``, clipped to ``L``.
    """
    y = path[-1]
    k = len(path) - 1
    pieces: List[Tuple[float, float, float]] = []
    for i in range(k):
        u = path[k - i]
        lo = path[k - i - 1]
        a, b = 2 * (y - u), 2 * y - u - lo
        if min(b, L) > a:
            pieces.append((u, a, min(b, L)))
        a2, b2 = 2 * y - u - lo, 2 * (y - lo)
        if min(b2, L) > a2:
            pieces.append((lo, a2, min(b2, L)))
    tail_from = 2 * (y - path[0])
    if L > tail_from:
        pieces.append((path[0], tail_from, float(L)))
    return pieces


def verify_forest_continuous(
    forest: Union[MergeForest, FlatForest], L: float
) -> VerificationReport:
    """Interval-based verification for real-valued (unslotted) forests.

    Runs on the batched flat replay; the per-client walk survives as
    :func:`verify_forest_continuous_reference`.
    """
    from ..fastpath.replay import replay_verify_forest_continuous

    return replay_verify_forest_continuous(forest, L)


def verify_forest_continuous_reference(
    forest: Union[MergeForest, FlatForest], L: float
) -> VerificationReport:
    """Per-client continuous-interval verification — the oracle."""
    report = VerificationReport()
    flat = as_flat_forest(forest)
    if isinstance(forest, FlatForest):
        forest = forest.to_forest()
    try:
        flat.validate_for_length(L)
    except ValueError as exc:
        report.record(False, f"forest infeasible for L={L}: {exc}")
        return report
    lengths = flat.stream_length_map(L)
    demanded: dict = {}
    eps = 1e-9

    for tree in forest:
        for arrival in tree.arrivals():
            path = tuple(n.arrival for n in tree.node(arrival).path_from_root())
            pieces = _client_intervals_continuous(path, L)
            # Coverage of (0, L] without gaps or overlaps.
            pieces_sorted = sorted(pieces, key=lambda p: p[1])
            pos = 0.0
            ok_cover = True
            for _stream, a, b in pieces_sorted:
                if abs(a - pos) > eps:
                    ok_cover = False
                    break
                pos = b
            ok_cover = ok_cover and abs(pos - L) <= eps
            report.record(
                ok_cover, f"client {arrival}: continuous coverage of (0, L] broken"
            )
            for stream, _a, b in pieces:
                demanded[stream] = max(demanded.get(stream, 0.0), b)
                report.record(
                    b <= lengths[stream] + eps,
                    f"client {arrival} needs position {b} of stream {stream} "
                    f"(length {lengths[stream]})",
                )

    for label in flat.arrivals[flat.parent >= 0].tolist():
        report.record(
            abs(demanded.get(label, 0.0) - lengths[label]) <= eps,
            f"stream {label}: length {lengths[label]} vs demand "
            f"{demanded.get(label, 0.0)} (not tight)",
        )
    return report


def verify_simulation(
    result: "SimulationResult", continuous: bool = False
) -> VerificationReport:
    """Check a simulation run against its own reconstructed forest.

    * measured total bandwidth == the forest's analytic full cost;
    * every client's recorded path exists in the forest and ends at its
      assigned stream;
    * per-model replay of the forest itself (exact or continuous).

    Everything runs on the flat forest the run reconstructs
    (:meth:`~repro.simulation.server.SimulationResult.flat_forest`) — no
    ``MergeNode`` graph is built at any client count.
    """
    flat = result.flat_forest()
    if continuous:
        report = verify_forest_continuous(flat, result.L)
    else:
        report = verify_forest(flat, result.L)

    measured = result.metrics.total_units
    analytic = flat.full_cost(result.L)
    report.record(
        abs(measured - analytic) <= 1e-6 * max(1.0, abs(analytic)),
        f"measured bandwidth {measured} != analytic full cost {analytic}",
    )
    paths = flat.paths()
    for client in result.clients:
        if client.tree_label is None:
            report.record(False, f"client {client.client_id} was never assigned")
            continue
        try:
            node = flat.find(client.tree_label)
        except KeyError:
            report.record(
                False,
                f"client {client.client_id} assigned to unknown stream "
                f"{client.tree_label}",
            )
            continue
        actual_path = paths[node]
        report.record(
            actual_path == client.path,
            f"client {client.client_id}: recorded path {client.path} != "
            f"forest path {actual_path}",
        )
    return report

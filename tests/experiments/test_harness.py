"""Tests for the experiment harness and registry."""

from __future__ import annotations

import pytest

from repro.experiments import all_experiments, format_table, get_experiment
from repro.experiments.harness import ExperimentResult


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        exps = all_experiments()
        required = {
            "fig1", "fig3", "fig6-7", "fig8", "fig9", "fig11", "fig12",
            "table-mn", "table-mw", "table-full",
            "thm8", "thm14", "thm19",
            "complexity", "buffer", "ablation-dyadic", "ablation-online-tree",
        }
        assert required <= set(exps)

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_metadata_present(self):
        for exp in all_experiments().values():
            assert exp.title
            assert exp.paper_ref


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(("a", "bb"), [(1, 22), (333, 4)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(l) == len(lines[0]) for l in lines[:2])

    def test_result_render_and_column(self):
        res = ExperimentResult(
            title="T", headers=("x", "y"), rows=[(1, 2), (3, 4)], notes=["n1"]
        )
        out = res.render()
        assert "T" in out and "note: n1" in out
        assert res.column("y") == [2, 4]
        with pytest.raises(ValueError):
            res.column("zz")

    def test_duplicate_registration_rejected(self):
        from repro.experiments.harness import register

        with pytest.raises(ValueError):
            register("fig1", "dup", "x")(lambda: [])

"""The batched slot-sweep simulation kernel.

:class:`~repro.simulation.server.Simulation` drives every policy through
a heap-ordered event queue: one Python callback per arrival, per slot
end, and per stream end, plus a reschedule (now a lazy postpone) per
Lemma 1 stream extension.  Since PR 3 every *policy decision* inside
those callbacks is flat, so the queue itself — O(n log n) heap churn and
O(n) Python frames — dominates every run.  This module retires the queue
for the policies whose realised run is a pure function of the slotted
trace, and keeps the event-driven ``Simulation`` as the oracle the
equivalence tests (``tests/fleet/test_engine_equivalence.py``) replay
against.

Which policies are slot-sweepable, and why
------------------------------------------

A policy can be swept instead of simulated when its final merge forest
and final stream lengths depend only on (a) the multiset of served slot
ends (or raw arrival times for immediate policies) and (b) per-node
quantities the flat forest already carries — the parent ``p(x)`` and the
subtree's last arrival ``z(x)``.  Every stream's realised interval is
then ``[x, x + len(x))`` with ``len`` the Lemma 1 value ``2 z - x - p``
(roots: ``L``), because the event-driven server only ever *extends* a
live stream monotonically toward exactly that value — the last extension
wins, and the batched kernel evaluates it directly:

* ``delay-guaranteed`` — forest is the static tiled Fibonacci template
  over *all* slots (:func:`~repro.core.online.build_online_flat_forest`);
* ``offline-optimal`` — the Theorem 10/12 forest over all slots
  (:func:`~repro.core.full_cost.build_optimal_flat_forest`);
* ``general-offline`` — the [6] optimum over the *served* slot ends
  (:func:`~repro.fastpath.general.optimal_flat_forest_general`);
* ``batched-dyadic`` — the (alpha, beta)-dyadic forest over served slot
  ends (:func:`~repro.fastpath.dyadic.dyadic_flat_forest`, bit-identical
  to the ``DyadicFlatOnline`` pushes the event policy performs);
* ``immediate-dyadic`` — the dyadic forest over the raw arrival times;
* ``pure-batching`` / ``unicast`` — every served slot end / every
  arrival is a root of length ``L``.

``HybridPolicy`` is **not** slot-sweepable and stays event-driven: its
DG/dyadic mode bit is a stateful function of a sliding rate window with
hysteresis, so the forest a slot contributes depends on the entire
arrival prefix through the mode trajectory, not on the slot multiset —
there is no closed-form flat construction to route through.  Any policy
with feedback from realised load to structure (admission control,
load-shedding) shares that fate.

Exactness contract
------------------

Arrivals are bucketed with ``searchsorted`` against the *float* slot-end
times the event loop itself uses (``(k+1) * slot``), so edge-of-slot
arrivals land in exactly the slot the event ordering (SlotEnd < Arrival
at equal timestamps) gives them.  Metrics and parent arrays are
bit-identical to the event-driven run for ``slot`` values that are
powers of two (including the default 1.0) — the same binary-exactness
contract as ``fastpath.general`` — because then the per-policy scale
conversions (``label / slot``, ``length * slot``) are exact in IEEE
arithmetic.  On other slot values, deviations are confined to the last
ULP of never-extended leaf stream lengths.

The one observable difference by construction: the oracle's
``BandwidthMetrics.intervals`` list is in stream *finish* order (end
time, ties by extension sequence), while the kernel records intervals
sorted by ``(end, start)``.  :func:`assert_equivalent_run` canonicalises
both sides before comparing; every derived metric is order-independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..arrivals.traces import ArrivalTrace
from ..baselines.dyadic import DyadicParams
from ..core.full_cost import build_optimal_flat_forest
from ..core.online import build_online_flat_forest
from ..fastpath.dyadic import dyadic_flat_forest
from ..fastpath.flat_forest import FlatForest
from ..scale.kernels import bucket_slots
from ..simulation.metrics import BandwidthMetrics
from ..simulation.server import Simulation
from ..simulation.verify import VerificationReport, verify_forest, verify_forest_continuous

__all__ = [
    "FleetPolicy",
    "SLOT_SWEEPABLE",
    "BatchedResult",
    "simulate_batched",
    "make_event_policy",
    "simulate_event",
    "assert_equivalent_run",
]

#: policy kinds the batched kernel accepts (see module docstring for why
#: ``hybrid`` is absent).
SLOT_SWEEPABLE = (
    "delay-guaranteed",
    "offline-optimal",
    "general-offline",
    "batched-dyadic",
    "immediate-dyadic",
    "pure-batching",
    "unicast",
)

_IMMEDIATE = ("immediate-dyadic", "unicast")


@dataclass(frozen=True)
class FleetPolicy:
    """A declarative policy spec the batched kernel can sweep.

    The event-driven :mod:`repro.simulation.policies` classes are
    callback objects; the kernel needs only the *kind* (plus dyadic
    parameters), and :func:`make_event_policy` builds the matching
    callback policy for oracle runs.
    """

    kind: str
    params: Optional[DyadicParams] = None

    def __post_init__(self) -> None:
        if self.kind not in SLOT_SWEEPABLE:
            raise ValueError(
                f"unknown or non-sweepable policy kind {self.kind!r}; "
                f"choose from {SLOT_SWEEPABLE} (hybrid policies are "
                "load-feedback-dependent and must stay event-driven)"
            )
        if self.params is not None and "dyadic" not in self.kind:
            raise ValueError(f"{self.kind} takes no dyadic params")

    @property
    def uses_slots(self) -> bool:
        return self.kind not in _IMMEDIATE

    # -- conveniences --------------------------------------------------------

    @staticmethod
    def delay_guaranteed() -> "FleetPolicy":
        return FleetPolicy("delay-guaranteed")

    @staticmethod
    def offline_optimal() -> "FleetPolicy":
        return FleetPolicy("offline-optimal")

    @staticmethod
    def general_offline() -> "FleetPolicy":
        return FleetPolicy("general-offline")

    @staticmethod
    def batched_dyadic(params: Optional[DyadicParams] = None) -> "FleetPolicy":
        return FleetPolicy("batched-dyadic", params)

    @staticmethod
    def immediate_dyadic(params: Optional[DyadicParams] = None) -> "FleetPolicy":
        return FleetPolicy("immediate-dyadic", params)

    @staticmethod
    def pure_batching() -> "FleetPolicy":
        return FleetPolicy("pure-batching")

    @staticmethod
    def unicast() -> "FleetPolicy":
        return FleetPolicy("unicast")


@dataclass
class BatchedResult:
    """Everything a batched run produces — flat arrays, no per-client objects.

    The array twin of :class:`~repro.simulation.server.SimulationResult`:
    ``client_node[i]`` indexes the stream node serving client ``i`` in
    :attr:`forest` (-1 when the client was never served — only possible
    for arrivals past the last slot end, which the event loop also leaves
    unassigned), ``client_service[i]`` its service time (NaN when
    unserved).
    """

    policy_name: str
    L: int
    slot: float
    horizon: float
    metrics: BandwidthMetrics
    #: realised forest with labels on the simulation clock; None when the
    #: run started no streams (empty trace under an arrival-driven policy)
    forest: Optional[FlatForest]
    #: per-node final stream lengths on the simulation clock
    lengths: np.ndarray
    client_arrival: np.ndarray
    client_service: np.ndarray
    client_node: np.ndarray
    _paths: Optional[List[Tuple[float, ...]]] = field(default=None, repr=False)

    def flat_forest(self) -> FlatForest:
        """The realised merge forest (same contract as the event result)."""
        if self.forest is None:
            raise ValueError("run started no streams — nothing to reconstruct")
        return self.forest

    def max_startup_delay(self) -> float:
        served = self.client_node >= 0
        if not served.any():
            return 0.0
        return float(
            np.max(self.client_service[served] - self.client_arrival[served])
        )

    def client_paths(self) -> List[Tuple[float, ...]]:
        """Per-client receiving paths (root-first label tuples), lazily.

        Shares tuple cells via ``FlatForest.paths``; unserved clients get
        an empty tuple.
        """
        if self._paths is None:
            node_paths = self.flat_forest().paths() if self.forest is not None else []
            self._paths = [
                node_paths[int(k)] if k >= 0 else () for k in self.client_node
            ]
        return self._paths

    def verify(self, continuous: bool = False) -> VerificationReport:
        """Replay-verify the realised forest, mirroring ``verify_simulation``.

        Checks the forest replay, measured-vs-analytic bandwidth, and that
        every client was assigned a node that exists in the forest.
        """
        flat = self.flat_forest()
        report = (
            verify_forest_continuous(flat, self.L)
            if continuous
            else verify_forest(flat, self.L)
        )
        measured = self.metrics.total_units
        analytic = flat.full_cost(self.L)
        report.record(
            abs(measured - analytic) <= 1e-6 * max(1.0, abs(analytic)),
            f"measured bandwidth {measured} != analytic full cost {analytic}",
        )
        report.record(
            bool((self.client_node >= 0).all()),
            "some clients were never served",
        )
        return report


def _served_slots(
    times: np.ndarray, slot_ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(client_slot, served_idx)`` via searchsorted pre-bucketing.

    ``client_slot[i]`` is the slot whose end serves arrival ``i`` under
    the event ordering (SlotEnd fires before an Arrival at the same
    timestamp, so an arrival exactly on a boundary belongs to the *next*
    slot — ``side="right"`` against the float end times encodes that
    rule exactly).  ``served_idx`` is the sorted set of non-empty slots.

    Backend-dispatched (:func:`repro.scale.kernels.bucket_slots`): the
    numpy path is the original ``searchsorted`` expression; the numba
    path a compiled two-pointer sweep, exact for the sorted arrivals the
    trace contract guarantees.  Arrivals past the last slot end are
    never flushed by any SlotEnd — the event loop leaves them parked
    forever; both backends mirror that as -1.
    """
    return bucket_slots(times, slot_ends)


def _metrics_from_arrays(
    L: int,
    n_clients: int,
    starts: np.ndarray,
    ends: np.ndarray,
    is_root: np.ndarray,
) -> BandwidthMetrics:
    """A ``BandwidthMetrics`` carrying the batched intervals.

    Intervals are recorded in ``(end, start)`` order — the deterministic
    stand-in for the oracle's finish order (ties there depend on
    extension sequence numbers; all derived metrics are order-free).
    """
    metrics = BandwidthMetrics(L=L)
    order = np.lexsort((starts, ends))
    metrics.intervals = list(
        zip(starts[order].tolist(), ends[order].tolist())
    )
    metrics.streams_started = int(starts.size)
    metrics.roots_started = int(np.count_nonzero(is_root))
    metrics.clients_served = n_clients
    return metrics


def simulate_batched(
    L: int,
    trace: ArrivalTrace,
    policy: FleetPolicy,
    slot: float = 1.0,
) -> BatchedResult:
    """Run one slot-sweepable policy without an event queue.

    The batched equivalent of ``Simulation(L, trace, policy, slot).run()``
    for every kind in :data:`SLOT_SWEEPABLE` — same metrics, same flat
    forest (see the module docstring for the exactness contract).
    """
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    if slot <= 0:
        raise ValueError(f"slot must be positive, got {slot}")
    times = np.asarray(trace.times, dtype=np.float64)
    n_clients = times.size
    kind = policy.kind
    params = policy.params or DyadicParams()

    if policy.uses_slots:
        nslots = trace.num_slots(slot)
        # The exact float end times the event loop schedules SlotEnd at.
        slot_ends = np.arange(1, nslots + 1, dtype=np.float64) * slot
        client_slot, served_idx = _served_slots(times, slot_ends)
        served_ends = slot_ends[served_idx]
    else:
        client_slot = served_idx = served_ends = None  # type: ignore[assignment]

    forest: Optional[FlatForest] = None
    lengths = np.empty(0, dtype=np.float64)
    client_node = np.full(n_clients, -1, dtype=np.intp)
    client_service = np.full(n_clients, math.nan, dtype=np.float64)

    if kind == "delay-guaranteed":
        # Static tiled Fibonacci template over *every* slot; the sim works
        # in the scaled frame throughout, so build z/lengths there too.
        parent = build_online_flat_forest(L, nslots).parent
        forest = FlatForest(slot_ends, parent)
        lengths = forest.stream_lengths(L * slot)
        client_node = np.where(client_slot >= 0, client_slot, -1)

    elif kind == "offline-optimal":
        flat_units = build_optimal_flat_forest(L, nslots)
        forest = FlatForest(slot_ends, flat_units.parent)
        lengths = flat_units.stream_lengths(L) * slot
        client_node = np.where(client_slot >= 0, client_slot, -1)

    elif kind == "general-offline":
        if served_idx.size == 0:
            raise ValueError("need at least one served slot")
        from ..fastpath.general import optimal_flat_forest_general

        push_vals = served_ends / slot  # the event policy's `label / scale`
        flat_units = optimal_flat_forest_general(push_vals.tolist(), L)
        forest = FlatForest(served_ends, flat_units.parent)
        lengths = flat_units.stream_lengths(L) * slot
        client_node = _nodes_among_served(client_slot, served_idx)

    elif kind == "batched-dyadic":
        if served_idx.size:
            push_vals = served_ends / slot
            flat_units = dyadic_flat_forest(push_vals, L, params)
            forest = FlatForest(served_ends, flat_units.parent)
            lengths = flat_units.stream_lengths(L) * slot
        client_node = _nodes_among_served(client_slot, served_idx)

    elif kind == "pure-batching":
        if served_idx.size:
            forest = FlatForest(
                served_ends, np.full(served_idx.size, -1, dtype=np.intp)
            )
            lengths = np.full(served_idx.size, L * slot, dtype=np.float64)
        client_node = _nodes_among_served(client_slot, served_idx)

    elif kind == "immediate-dyadic":
        if n_clients:
            forest = dyadic_flat_forest(times, L, params)
            lengths = forest.stream_lengths(L)
        client_node = np.arange(n_clients, dtype=np.intp)
        client_service = times.copy()

    elif kind == "unicast":
        if n_clients:
            forest = FlatForest(times, np.full(n_clients, -1, dtype=np.intp))
            lengths = np.full(n_clients, float(L), dtype=np.float64)
        client_node = np.arange(n_clients, dtype=np.intp)
        client_service = times.copy()

    if policy.uses_slots:
        served = client_slot >= 0
        client_service = np.where(
            served, slot_ends[np.maximum(client_slot, 0)], math.nan
        )
        client_node = np.where(served, client_node, -1)

    if forest is not None:
        starts = forest.arrivals
        is_root = forest.is_root
        metrics = _metrics_from_arrays(
            L, n_clients, starts, starts + lengths, is_root
        )
    else:
        metrics = BandwidthMetrics(L=L)
        metrics.clients_served = n_clients

    return BatchedResult(
        policy_name=kind,
        L=L,
        slot=slot,
        horizon=trace.horizon,
        metrics=metrics,
        forest=forest,
        lengths=lengths,
        client_arrival=times,
        client_service=client_service,
        client_node=client_node,
    )


def _nodes_among_served(
    client_slot: np.ndarray, served_idx: np.ndarray
) -> np.ndarray:
    """Map each client's slot to its node index among the served slots."""
    node = np.searchsorted(served_idx, np.maximum(client_slot, 0))
    return np.where(client_slot >= 0, node, -1).astype(np.intp)


# ---------------------------------------------------------------------------
# Oracle pairing: the matching event-driven run
# ---------------------------------------------------------------------------


def make_event_policy(policy: FleetPolicy, L: int, trace: ArrivalTrace, slot: float = 1.0):
    """The event-driven :class:`~repro.simulation.policies.Policy` that
    realises the same run ``simulate_batched`` sweeps — the oracle half
    of every equivalence test and benchmark."""
    from ..simulation.policies import (
        BatchedDyadicPolicy,
        DelayGuaranteedPolicy,
        GeneralOfflinePolicy,
        ImmediateDyadicPolicy,
        OfflineOptimalPolicy,
        PureBatchingPolicy,
        UnicastPolicy,
    )

    kind = policy.kind
    if kind == "delay-guaranteed":
        return DelayGuaranteedPolicy(L)
    if kind == "offline-optimal":
        return OfflineOptimalPolicy(L, trace.num_slots(slot))
    if kind == "general-offline":
        ends = [t / slot for t in trace.slot_end_times(slot)]
        return GeneralOfflinePolicy(L, ends)
    if kind == "batched-dyadic":
        return BatchedDyadicPolicy(L, policy.params)
    if kind == "immediate-dyadic":
        return ImmediateDyadicPolicy(L, policy.params)
    if kind == "pure-batching":
        return PureBatchingPolicy(L)
    if kind == "unicast":
        return UnicastPolicy(L)
    raise ValueError(f"no event policy for {kind!r}")  # pragma: no cover


def simulate_event(
    L: int, trace: ArrivalTrace, policy: FleetPolicy, slot: float = 1.0
):
    """Run the event-driven oracle for a :class:`FleetPolicy` spec."""
    return Simulation(L, trace, make_event_policy(policy, L, trace, slot), slot).run()


def assert_equivalent_run(event_result, batched: BatchedResult) -> None:
    """Assert an event-driven run and a batched run realised the same system.

    Canonical comparison (used by tests *and* asserted inside benchmark
    runs): identical metric counters, identical sorted interval arrays,
    identical total bandwidth, identical flat-forest labels and parent
    arrays, and identical per-client service times / serving labels.
    """
    em, bm = event_result.metrics, batched.metrics
    assert em.L == bm.L, (em.L, bm.L)
    assert em.streams_started == bm.streams_started, "streams_started differ"
    assert em.roots_started == bm.roots_started, "roots_started differ"
    assert em.clients_served == bm.clients_served, "clients_served differ"

    ea = np.asarray(em.intervals, dtype=np.float64).reshape(-1, 2)
    ba = np.asarray(bm.intervals, dtype=np.float64).reshape(-1, 2)
    e_order = np.lexsort((ea[:, 0], ea[:, 1])) if ea.size else slice(None)
    assert np.array_equal(ea[e_order], ba), "interval multisets differ"
    # The multisets are identical, so totals agree up to summation order
    # (bit-identical on slotted runs, last-ULP on continuous float traces).
    et, bt = float(em.total_units), float(bm.total_units)
    assert abs(et - bt) <= 1e-9 * max(1.0, abs(bt)), "total bandwidth differs"

    if event_result.streams:
        ef, bf = event_result.flat_forest(), batched.flat_forest()
        assert np.array_equal(ef.arrivals, bf.arrivals), "stream labels differ"
        assert np.array_equal(ef.parent, bf.parent), "parent arrays differ"
    else:
        assert batched.forest is None, "batched run invented streams"

    served_labels = {}
    if batched.forest is not None:
        labels = batched.forest.arrivals
        served_labels = {
            i: labels[int(k)] for i, k in enumerate(batched.client_node) if k >= 0
        }
    assert len(event_result.clients) == batched.client_arrival.size
    for i, client in enumerate(event_result.clients):
        if client.tree_label is None:
            assert i not in served_labels, f"client {i} served only in batch"
            continue
        assert client.tree_label == served_labels.get(i), f"client {i} label"
        assert client.service_time == batched.client_service[i], f"client {i} service"
        assert client.path == batched.client_paths()[i], f"client {i} path"

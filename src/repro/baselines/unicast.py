"""Unicast baseline: one dedicated full stream per client.

The "implausible" strawman of the paper's introduction — it upper-bounds
every policy and anchors the bandwidth-savings narrative of Fig. 1.
"""

from __future__ import annotations

from ..arrivals.traces import ArrivalTrace

__all__ = ["unicast_cost"]


def unicast_cost(trace: ArrivalTrace, L: int) -> float:
    """Total bandwidth: ``L`` units for every individual client."""
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    return len(trace) * L

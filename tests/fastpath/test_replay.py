"""Batched replay verification vs. the per-client oracle — report-for-report.

Satellite contract of the flat-simulation PR: on randomized forests
(optimal, on-line, buffer-bounded, receive-all, dyadic-continuous) the
batched replay must produce *identical* ``VerificationReport``s to the
object-walk oracle — same ok flag, same check count, same failure set —
including on corrupted forests with injected violations (mutated parent
pointers, shortened streams via tampered subtree maxima, buffer bound
breaches).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dyadic import dyadic_forest
from repro.core.buffers import build_optimal_bounded_forest
from repro.core.full_cost import build_optimal_forest
from repro.core.online import build_online_forest
from repro.core.receive_all import build_optimal_forest_receive_all
from repro.fastpath.flat_forest import FlatForest, as_flat_forest
from repro.fastpath.replay import (
    replay_verify_forest,
    replay_verify_forest_continuous,
)
from repro.simulation.verify import (
    verify_forest,
    verify_forest_continuous,
    verify_forest_continuous_reference,
    verify_forest_reference,
)

from tests.conftest import increasing_times_exact


def assert_reports_equal(ref, fast, ctx=""):
    assert fast.ok == ref.ok, (ctx, ref.failures, fast.failures)
    assert fast.checks == ref.checks, (ctx, ref.checks, fast.checks)
    assert sorted(fast.failures) == sorted(ref.failures), ctx


small_L = st.sampled_from([4, 7, 10, 15, 30])
small_n = st.integers(min_value=1, max_value=90)


class TestValidForests:
    @settings(max_examples=40, deadline=None)
    @given(small_L, small_n)
    def test_optimal_forests(self, L, n):
        forest = build_optimal_forest(L, n)
        for model in ("receive-two", "receive-all"):
            assert_reports_equal(
                verify_forest_reference(forest, L, model=model),
                replay_verify_forest(forest, L, model=model),
                (L, n, model),
            )

    @settings(max_examples=30, deadline=None)
    @given(small_L, small_n)
    def test_online_forests(self, L, n):
        forest = build_online_forest(L, n)
        assert_reports_equal(
            verify_forest_reference(forest, L),
            replay_verify_forest(forest, L),
            (L, n),
        )
        assert_reports_equal(
            verify_forest_continuous_reference(forest, L),
            replay_verify_forest_continuous(forest, L),
            (L, n, "continuous"),
        )

    def test_receive_all_forests(self):
        for L, n in [(20, 30), (10, 57), (8, 8)]:
            forest = build_optimal_forest_receive_all(L, n)
            assert_reports_equal(
                verify_forest_reference(forest, L, model="receive-all"),
                replay_verify_forest(forest, L, model="receive-all"),
                (L, n),
            )

    def test_bounded_forests_with_buffer_bound(self):
        forest = build_optimal_bounded_forest(30, 50, 10)
        for bound in (10, 3, 1):
            assert_reports_equal(
                verify_forest_reference(forest, 30, buffer_bound=bound),
                replay_verify_forest(forest, 30, buffer_bound=bound),
                bound,
            )

    @settings(max_examples=30, deadline=None)
    @given(increasing_times_exact(min_size=1, max_size=35, horizon=300.0))
    def test_dyadic_continuous(self, times):
        forest = dyadic_forest(times, 100)
        assert_reports_equal(
            verify_forest_continuous_reference(forest, 100),
            replay_verify_forest_continuous(forest, 100),
        )


def _mutate_parent(flat: FlatForest, rng: random.Random) -> FlatForest:
    """Reattach one non-root node to a different earlier node of its tree."""
    par = flat.parent.copy()
    candidates = [
        i
        for i in range(1, len(flat))
        if i - int(flat.root_index[i]) >= 2
    ]
    if not candidates:
        return flat
    i = rng.choice(candidates)
    lo = int(flat.root_index[i])
    choices = [j for j in range(lo, i) if j != int(par[i])]
    par[i] = rng.choice(choices)
    return FlatForest(flat.arrivals.copy(), par)


class TestInjectedViolations:
    """Corrupted forests must fail identically in both replays."""

    def test_mutated_parents(self):
        rng = random.Random(11)
        failing = 0
        for _ in range(60):
            L = rng.choice([6, 10, 15])
            n = rng.randint(4, 70)
            mutated = _mutate_parent(
                as_flat_forest(build_optimal_forest(L, n)), rng
            )
            for model in ("receive-two", "receive-all"):
                ref = verify_forest_reference(mutated, L, model=model)
                fast = replay_verify_forest(mutated, L, model=model)
                assert_reports_equal(ref, fast, (L, n, model))
                failing += 0 if ref.ok else 1
            assert_reports_equal(
                verify_forest_continuous_reference(mutated, L),
                replay_verify_forest_continuous(mutated, L),
                (L, n, "continuous"),
            )
        assert failing > 0  # the injection does produce real violations

    def test_shortened_stream(self):
        """Tampering z shortens Lemma 1 lengths: sufficiency must fail."""
        rng = random.Random(13)
        failing = 0
        for _ in range(40):
            L = rng.choice([8, 15])
            n = rng.randint(3, 60)
            flat = as_flat_forest(build_optimal_forest(L, n))
            j = rng.randrange(n)
            flat.z[j] = flat.arrivals[j]  # pretend the subtree ends at j
            ref = verify_forest_reference(flat, L)
            fast = replay_verify_forest(flat, L)
            assert_reports_equal(ref, fast, (L, n, j))
            failing += 0 if ref.ok else 1
        assert failing > 0

    def test_buffer_bound_breach(self):
        forest = build_optimal_forest(30, 50)
        ref = verify_forest_reference(forest, 30, buffer_bound=1)
        fast = replay_verify_forest(forest, 30, buffer_bound=1)
        assert_reports_equal(ref, fast)
        assert not ref.ok
        assert any("buffer" in f for f in fast.failures)

    def test_infeasible_span(self):
        from repro.core.merge_tree import MergeForest, star_tree

        forest = MergeForest([star_tree([0, 1, 12])])
        ref = verify_forest_reference(forest, 10)
        fast = replay_verify_forest(forest, 10)
        assert_reports_equal(ref, fast)
        assert not fast.ok and "infeasible" in fast.failures[0]


class TestErrorPaths:
    def test_non_integer_arrivals_raise(self):
        forest = dyadic_forest([0.0, 0.5, 1.5], 10)
        with pytest.raises(ValueError, match="slotted"):
            verify_forest_reference(forest, 10)
        with pytest.raises(ValueError, match="slotted"):
            replay_verify_forest(forest, 10)

    def test_unknown_model(self):
        forest = build_optimal_forest(10, 5)
        with pytest.raises(ValueError, match="unknown model"):
            replay_verify_forest(forest, 10, model="receive-three")

    def test_public_entry_points_are_flat(self):
        """verify_forest / verify_forest_continuous run the batched path
        and stay interchangeable with the oracle."""
        forest = build_optimal_forest(15, 40)
        assert_reports_equal(
            verify_forest_reference(forest, 15), verify_forest(forest, 15)
        )
        assert_reports_equal(
            verify_forest_continuous_reference(forest, 15),
            verify_forest_continuous(forest, 15),
        )

"""Shape assertions for every reproduced table/figure.

These are the reproduction's acceptance tests: we do not chase the paper's
absolute simulator numbers, but every *qualitative* claim — who wins, the
direction of every trend, the crossover locations — must hold.  Experiments
are run with reduced parameters to keep the suite fast.
"""

from __future__ import annotations

import pytest

from repro.experiments import get_experiment
from repro.experiments.fig1_delay_savings import run_fig1
from repro.experiments.fig8_root_intervals import run_fig8
from repro.experiments.fig9_online_ratio import run_fig9
from repro.experiments.policy_comparison import compare_policies, run_fig11, run_fig12
from repro.experiments.table_merge_cost import run_table_mn, run_table_mw
from repro.experiments.worked_examples import run_fig3, run_fig67, run_table_full
from repro.experiments.asymptotics import run_thm8, run_thm14, run_thm19
from repro.experiments.ablations import (
    run_ablation_dyadic,
    run_ablation_online_tree,
    run_buffer,
    run_complexity,
)


class TestTables:
    def test_table_mn_all_ok(self):
        (res,) = run_table_mn()
        assert all(row[-1] == "ok" for row in res.rows)
        assert len(res.rows) == 16

    def test_table_mw_all_ok(self):
        (res,) = run_table_mw()
        assert all(row[-1] == "ok" for row in res.rows)

    def test_table_full_all_ok(self):
        (res,) = run_table_full()
        assert all(row[-1] == "ok" for row in res.rows)

    def test_fig8_all_ok(self):
        (res,) = run_fig8(n_max=55)
        assert all(row[-1] == "ok" for row in res.rows)
        assert len(res.rows) == 54


class TestFig1:
    def test_monotone_and_close(self):
        (res,) = run_fig1(delays_pct=(1.0, 2.0, 5.0, 10.0, 20.0), horizon_media=20)
        offline = res.column("off-line opt (streams)")
        online = res.column("on-line DG (streams)")
        # bandwidth decreases as delay grows
        assert all(a > b for a, b in zip(offline, offline[1:]))
        assert all(a > b for a, b in zip(online, online[1:]))
        # on-line within 5% of off-line everywhere (paper: 'very close');
        # allow a hair below 1.0 from the 2-decimal rounding in the rows
        for f, a in zip(offline, online):
            assert 0.999 <= a / f < 1.05
        # savings vs batching are large at small delays and shrink as the
        # delay (and hence 1/L) grows — Theorem 14's L/log L gain
        batching = res.column("batching (streams)")
        gains = [b / f for b, f in zip(batching, offline)]
        assert gains[0] > 10
        assert all(a > b for a, b in zip(gains, gains[1:]))


class TestFig9:
    def test_ratio_to_one(self):
        results = run_fig9(Ls=(15, 50), ns=(20, 200, 2000, 20000))
        for res in results:
            ratios = res.column("ratio")
            # small-n ratios can wiggle (a tiny prefix tree may even be
            # optimal); the requirement is convergence to 1 at the tail.
            assert all(1.0 - 1e-9 <= r < 1.12 for r in ratios)
            assert ratios[-1] < 1.005
            assert all(row[-1] == "ok" for row in res.rows)


class TestFig11And12:
    def test_constant_rate_shape(self):
        (res,) = run_fig11(L=100, lambdas=(0.25, 0.5, 1.0, 2.0, 5.0), horizon_media=20)
        imm = res.column("immediate dyadic")
        bat = res.column("batched dyadic")
        dg = res.column("delay guaranteed")
        # DG flat
        assert len(set(dg)) == 1
        # immediate dyadic strictly decreasing with lam
        assert all(a > b for a, b in zip(imm, imm[1:]))
        # at low intensity, immediate worst; at high intensity immediate best
        assert imm[0] > dg[0] and imm[0] > bat[0]
        assert imm[-1] < dg[-1]
        assert bat[-1] < dg[-1]
        # immediate ~= batched once lam > delay (within 3%)
        assert abs(imm[-1] - bat[-1]) / bat[-1] < 0.03

    def test_poisson_shape_and_dg_penalty(self):
        (res,) = run_fig12(
            L=100, lambdas=(0.25, 0.5, 1.0, 2.0, 5.0), horizon_media=20, seeds=(0, 1)
        )
        imm = res.column("immediate dyadic")
        bat = res.column("batched dyadic")
        dg = res.column("delay guaranteed")
        assert len(set(dg)) == 1
        assert all(a > b for a, b in zip(imm, imm[1:]))
        assert imm[0] > dg[0]
        assert imm[-1] < dg[-1] and bat[-1] < dg[-1]

    def test_dg_worse_relative_on_poisson(self):
        """Paper: DG performs worse on Poisson than constant-rate because
        empty slots still start streams.  At lam just below the delay,
        batched dyadic already beats DG under Poisson but not under
        constant rate."""
        L, horizon = 100, 2000.0
        lam = 0.5
        c = compare_policies(L, lam, horizon, "constant")
        p = compare_policies(L, lam, horizon, "poisson", seeds=(0, 1, 2))
        margin_const = c["batched_dyadic"] / c["delay_guaranteed"]
        margin_pois = p["batched_dyadic"] / p["delay_guaranteed"]
        assert margin_pois < margin_const

    def test_compare_policies_validation(self):
        with pytest.raises(ValueError):
            compare_policies(100, 1.0, 100.0, "uniform")


class TestAsymptotics:
    def test_thm8_sandwich(self):
        (res,) = run_thm8(ns=(100, 10_000))
        assert all(row[-1] == "ok" for row in res.rows)

    def test_thm14_gain_grows(self):
        (res,) = run_thm14(Ls=(8, 32, 128), n_factor=10)
        gains = res.column("gain")
        assert gains[0] < gains[1] < gains[2]

    def test_thm19_ratio_growing_below_limit(self):
        merge_res, full_res = run_thm19(
            ns=(100, 10_000), Ls=(10, 100), full_cost_n_factor=20
        )
        ratios = merge_res.column("ratio")
        assert ratios == sorted(ratios)
        assert all(r < 1.4405 for r in ratios)
        full_ratios = full_res.column("ratio")
        assert all(1.0 <= r < 1.4405 for r in full_ratios)


class TestAblations:
    def test_online_tree_minimum_at_fh(self):
        (res,) = run_ablation_online_tree(L=100, n=3000)
        rows = res.rows
        by_size = {row[0]: row[2] for row in rows}
        fh_cost = next(row[2] for row in rows if row[1] == "F_h")
        assert fh_cost == min(by_size.values())

    def test_dyadic_ablation_runs(self):
        (res,) = run_ablation_dyadic(
            L=100, lam=0.5, horizon=500.0, alphas=(1.618, 2.0), betas=(0.5,), seeds=(0,)
        )
        assert len(res.rows) == 2
        assert all(row[2] > 0 for row in res.rows)

    def test_buffer_monotone(self):
        (res,) = run_buffer(L=60, n=500, Bs=(2, 5, 10, 20, 30))
        costs = res.column("F_B(L,n)")
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_complexity_costs_exact(self):
        (res,) = run_complexity(ns=(100, 200))
        from repro.core.offline import merge_cost

        for row in res.rows:
            assert row[-1] == merge_cost(row[0])


class TestWorkedExamples:
    def test_fig3_outputs(self):
        streams_res, prog_res = run_fig3()
        assert "36" in streams_res.title
        # stream F row: starts at 5, length 9
        by_name = {row[0]: row for row in streams_res.rows}
        assert by_name["F"][3] == 9
        assert by_name["H"][3] == 2
        assert by_name["A"][3] == 15
        assert len(prog_res.rows) == 15  # client H receives 15 parts

    def test_fig67_counts(self):
        counts_res, fib_res = run_fig67(n_enum_max=8)
        by_n = {row[0]: row[1] for row in counts_res.rows}
        assert by_n[4] == 2
        assert by_n[2] == by_n[3] == by_n[5] == by_n[8] == 1
        assert len(fib_res.notes) == 4


class TestCLI:
    def test_list_and_run(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig1" in out and "table-mn" in out

        assert main(["table-full"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out

    def test_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["fig99"]) == 2

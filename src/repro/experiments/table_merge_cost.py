"""In-text tables of Section 3.1 / 3.4: ``M(n)`` and ``Mw(n)`` for n=1..16.

Also cross-checks the closed forms (Eq. (6), Eq. (20)) against the O(n^2)
dynamic programs of [6] — the exact-match core of the reproduction.

Sweep-tier driver: one-axis sweeps over ``n``; the DP column reads the
incrementally memoised fastpath cost tables (entry-for-entry equal to
the quadratic reference DPs — property-tested in ``tests/fastpath``).
"""

from __future__ import annotations

from typing import List

from ..sweeps import Axis, SweepSpec, run_sweep
from ..sweeps.evaluators import merge_cost_table_point, receive_all_table_point
from .harness import ExperimentResult, register

#: The table printed below Eq. (5) in the paper.
PAPER_M = [0, 1, 3, 6, 9, 13, 17, 21, 26, 31, 36, 41, 46, 52, 58, 64]
#: The table printed below Eq. (19).
PAPER_MW = [0, 1, 3, 5, 8, 11, 14, 17, 21, 25, 29, 33, 37, 41, 45, 49]


def _rows(sweep, paper_values):
    rows = []
    for n, closed, via_dp in sweep.rows("n", "closed", "via_dp"):
        paper = paper_values[n - 1] if n <= len(paper_values) else ""
        match = (
            "ok"
            if (closed == via_dp and (paper == "" or closed == paper))
            else "MISMATCH"
        )
        rows.append((n, closed, via_dp, paper, match))
    return rows


def table_mn_spec(n_max: int = 16) -> SweepSpec:
    return SweepSpec(
        name="table-mn",
        evaluator=merge_cost_table_point,
        axes=[Axis("n", tuple(range(1, n_max + 1)))],
        metrics=("closed", "via_dp"),
    )


@register(
    "table-mn",
    "Optimal merge cost M(n), n = 1..16 (Section 3.1 in-text table)",
    "Section 3.1, sequence below Eq. (5)",
    "Closed form (Eq. 6) vs O(n^2) DP (Eq. 5) vs the paper's printed row.",
)
def run_table_mn(n_max: int = 16) -> List[ExperimentResult]:
    sweep = run_sweep(table_mn_spec(n_max))
    return [
        ExperimentResult(
            title="M(n): closed form vs DP vs paper",
            headers=("n", "Eq.(6)", "DP Eq.(5)", "paper", "status"),
            rows=_rows(sweep, PAPER_M),
            columns=sweep.columns_json(),
        )
    ]


def table_mw_spec(n_max: int = 16) -> SweepSpec:
    return SweepSpec(
        name="table-mw",
        evaluator=receive_all_table_point,
        axes=[Axis("n", tuple(range(1, n_max + 1)))],
        metrics=("closed", "via_dp"),
    )


@register(
    "table-mw",
    "Receive-all merge cost Mw(n), n = 1..16 (Section 3.4 in-text table)",
    "Section 3.4, sequence below Eq. (19)",
    "Closed form (Eq. 20) vs O(n^2) DP (Eq. 19) vs the paper's printed row.",
)
def run_table_mw(n_max: int = 16) -> List[ExperimentResult]:
    sweep = run_sweep(table_mw_spec(n_max))
    return [
        ExperimentResult(
            title="Mw(n): closed form vs DP vs paper",
            headers=("n", "Eq.(20)", "DP Eq.(19)", "paper", "status"),
            rows=_rows(sweep, PAPER_MW),
            columns=sweep.columns_json(),
        )
    ]

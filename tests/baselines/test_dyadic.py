"""Tests for the (alpha, beta)-dyadic stream merging baseline."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dyadic import (
    DyadicOnline,
    DyadicParams,
    dyadic_cost,
    dyadic_forest,
    dyadic_interval_index,
    dyadic_tree,
    paper_beta,
)
from repro.core import dp
from repro.core.fibonacci import PHI
from repro.simulation.verify import verify_forest_continuous

from tests.conftest import increasing_times


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            DyadicParams(alpha=1.0)
        with pytest.raises(ValueError):
            DyadicParams(beta=0.0)
        with pytest.raises(ValueError):
            DyadicParams(beta=1.5)

    def test_window(self):
        assert DyadicParams(beta=0.5).window(100) == 50

    def test_paper_beta(self):
        assert paper_beta(100, "poisson") == 0.5
        assert paper_beta(100, "constant") == 0.55  # F_10/L = 55/100
        assert paper_beta(15, "constant") == 8 / 15
        with pytest.raises(ValueError):
            paper_beta(100, "uniform")


class TestIntervalIndex:
    def test_alpha2_halves(self):
        # [0, 8]: I1 = [4, 8], I2 = [2, 4), I3 = [1, 2), ...
        assert dyadic_interval_index(8, 0, 8, 2.0) == 1
        assert dyadic_interval_index(4, 0, 8, 2.0) == 1
        assert dyadic_interval_index(3.999, 0, 8, 2.0) == 2
        assert dyadic_interval_index(2, 0, 8, 2.0) == 2
        assert dyadic_interval_index(1.5, 0, 8, 2.0) == 3
        assert dyadic_interval_index(0.01, 0, 8, 2.0) == 10

    def test_bounds_enforced(self):
        with pytest.raises(ValueError):
            dyadic_interval_index(0, 0, 8, 2.0)
        with pytest.raises(ValueError):
            dyadic_interval_index(9, 0, 8, 2.0)

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=0.001, max_value=0.9999, allow_nan=False),
        st.floats(min_value=1.1, max_value=3.0, allow_nan=False),
    )
    def test_index_definition(self, g, alpha):
        i = dyadic_interval_index(g, 0.0, 1.0, alpha)
        assert alpha ** (-i) <= g + 1e-12
        if i > 1:
            assert g < alpha ** (-(i - 1)) + 1e-12

    def test_monotone_in_time(self):
        params_alpha = 1.7
        idxs = [
            dyadic_interval_index(t, 0, 10, params_alpha)
            for t in [0.5, 1.0, 2.0, 3.0, 5.0, 8.0, 10.0]
        ]
        assert all(a >= b for a, b in zip(idxs, idxs[1:]))


class TestTreeConstruction:
    def test_single_arrival(self):
        t = dyadic_tree([5.0], 100)
        assert len(t) == 1

    def test_two_arrivals(self):
        t = dyadic_tree([0.0, 10.0], 100)
        assert t.node(10.0).parent.arrival == 0.0

    def test_alpha2_hand_example(self):
        # window [0, 50] (beta=0.5, L=100), alpha=2: I1=[25,50], I2=[12.5,25)
        params = DyadicParams(alpha=2.0, beta=0.5)
        t = dyadic_tree([0.0, 13.0, 20.0, 30.0, 40.0], 100, params)
        # 13 is earliest in I2 -> child of root; 20 in I2 too -> under 13
        # 30 earliest in I1 -> child of root; 40 in I1 -> under 30's window
        assert t.node(13.0).parent.arrival == 0.0
        assert t.node(30.0).parent.arrival == 0.0
        assert t.node(20.0).parent.arrival == 13.0
        # 40 within [30, 50]: interval of 40 in [30,50] window
        assert t.node(40.0).parent.arrival in (30.0, 0.0)
        assert t.has_preorder_property()

    def test_cutoff_overflow_rejected(self):
        with pytest.raises(ValueError):
            dyadic_tree([0.0, 60.0], 100, DyadicParams(beta=0.5))

    def test_requires_increasing(self):
        with pytest.raises(ValueError):
            dyadic_tree([0.0, 0.0], 100)


class TestForest:
    def test_new_root_after_cutoff(self):
        params = DyadicParams(beta=0.5)
        f = dyadic_forest([0.0, 10.0, 51.0], 100, params)
        assert f.roots() == [0.0, 51.0]

    def test_boundary_merges(self):
        params = DyadicParams(beta=0.5)
        f = dyadic_forest([0.0, 50.0], 100, params)
        assert f.roots() == [0.0]  # exactly at cutoff still merges

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dyadic_forest([], 100)

    @settings(max_examples=40, deadline=None)
    @given(increasing_times(min_size=1, max_size=30, horizon=300.0))
    def test_forest_covers_all_arrivals(self, times):
        f = dyadic_forest(times, 100)
        assert f.arrivals() == sorted(times)
        for tree in f:
            assert tree.has_preorder_property()
            assert tree.span() <= 50.0 + 1e-9

    @settings(max_examples=40, deadline=None)
    @given(increasing_times(min_size=1, max_size=30, horizon=300.0))
    def test_online_stack_matches_batch(self, times):
        params = DyadicParams()
        batch = dyadic_forest(times, 100, params)
        online = DyadicOnline(100, params)
        online.extend(times)
        stack = online.finish()
        assert [t.canonical() for t in batch] == [t.canonical() for t in stack]

    @settings(max_examples=25, deadline=None)
    @given(increasing_times(min_size=1, max_size=25, horizon=300.0))
    def test_forest_playable_continuous(self, times):
        f = dyadic_forest(times, 100)
        verify_forest_continuous(f, 100).raise_if_failed()


class TestCost:
    def test_cost_at_least_optimal(self):
        # dyadic is a heuristic: never beats the general-arrivals DP optimum
        for times in ([0, 1, 3, 4, 9], [0, 2, 5, 11, 12, 20], [0.0, 0.5, 1.5, 7.0]):
            f = dyadic_forest(times, 100)
            opt = dp.general_arrivals_cost(times) + 100 * len(f.roots())
            # compare merge cost under equal root counts is unfair; compare
            # total against (optimal merge over same arrivals + 1 root)
            total = f.full_cost(100)
            lower = dp.general_arrivals_cost(times) + 100
            assert total >= lower - 1e-9

    def test_cost_scale(self):
        c = dyadic_cost([0.0, 1.0, 2.0], 100)
        assert 100 < c < 110  # two tiny merges onto the root

    def test_dense_arrivals_much_cheaper_than_unicast(self):
        times = [i * 0.5 for i in range(200)]  # 100 time units
        c = dyadic_cost(times, 100)
        assert c < 0.2 * (len(times) * 100)


class TestOnlineStack:
    def test_push_returns_nodes(self):
        online = DyadicOnline(100)
        r = online.push(0.0)
        assert r.parent is None
        c = online.push(10.0)
        assert c.parent is r

    def test_monotonicity_enforced(self):
        online = DyadicOnline(100)
        online.push(5.0)
        with pytest.raises(ValueError):
            online.push(5.0)

    def test_finish_empty(self):
        with pytest.raises(ValueError):
            DyadicOnline(100).finish()

    def test_bad_L(self):
        with pytest.raises(ValueError):
            DyadicOnline(0)


class TestNonFiniteRejection:
    """Regression: NaN passed the pairwise strictly-increasing checks (every
    comparison against NaN is False) and walked into the window math."""

    def test_forest_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf")):
            with pytest.raises(ValueError, match="finite"):
                dyadic_forest([0.0, bad, 2.0], 100)

    def test_tree_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            dyadic_tree([0.0, float("nan")], 100)

    def test_online_push_rejects_nan(self):
        online = DyadicOnline(100)
        online.push(0.0)
        with pytest.raises(ValueError, match="finite"):
            online.push(float("nan"))
        with pytest.raises(ValueError, match="finite"):
            online.push(float("inf"))
        # the poisoned pushes must not have advanced the clock
        assert online.push(1.0).parent is not None

"""Bench: event-driven simulator throughput and exactness.

Not a paper figure, but the substrate all Section 4.2 numbers rest on:
the bench times full runs and asserts measured bandwidth equals the
analytic forest cost to the unit.
"""

from __future__ import annotations

from repro.arrivals import every_slot, poisson
from repro.baselines.dyadic import DyadicParams, dyadic_forest
from repro.core.online import online_full_cost
from repro.simulation import (
    DelayGuaranteedPolicy,
    ImmediateDyadicPolicy,
    Simulation,
    verify_simulation,
)


def test_dg_simulation_10k_slots(benchmark):
    L, n = 100, 10_000

    def run():
        return Simulation(L, every_slot(n), DelayGuaranteedPolicy(L)).run()

    res = benchmark(run)
    assert res.metrics.total_units == online_full_cost(L, n)


def test_immediate_dyadic_simulation(benchmark):
    L = 100
    trace = poisson(0.5, 2000.0, seed=0)
    params = DyadicParams()

    def run():
        return Simulation(L, trace, ImmediateDyadicPolicy(L, params)).run()

    res = benchmark(run)
    want = dyadic_forest(list(trace), L, params).full_cost(L)
    assert abs(res.metrics.total_units - want) < 1e-6


def test_verification_replay(benchmark):
    """Full receiving-program replay of a 500-slot DG run."""
    L, n = 20, 500
    res = Simulation(L, every_slot(n), DelayGuaranteedPolicy(L)).run()
    report = benchmark(verify_simulation, res)
    assert report.ok

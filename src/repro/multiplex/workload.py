"""Multi-object workloads: one global request process split by popularity.

Requests arrive as a single Poisson process (rate = 1 / mean inter-arrival
minutes); each request picks an object i.i.d. from the catalog's Zipf
weights.  The per-object sub-traces are then themselves Poisson (thinning
property), which the tests confirm statistically.
"""

from __future__ import annotations

from typing import Dict, List

from ..arrivals.generators import SeedLike, poisson, rng_from
from ..arrivals.traces import ArrivalTrace
from .catalog import Catalog

__all__ = ["split_requests", "catalog_workload"]


def split_requests(
    trace: ArrivalTrace, catalog: Catalog, seed: SeedLike = None
) -> Dict[str, ArrivalTrace]:
    """Assign each request in ``trace`` to a catalog object by popularity.

    Returns a per-object trace on the same horizon (possibly empty).
    """
    rng = rng_from(seed)
    picks = rng.choice(len(catalog), size=len(trace), p=catalog.weights())
    buckets: Dict[str, List[float]] = {o.name: [] for o in catalog}
    for t, k in zip(trace, picks):
        buckets[catalog[int(k)].name].append(t)
    return {
        name: ArrivalTrace(times=tuple(times), horizon=trace.horizon)
        for name, times in buckets.items()
    }


def catalog_workload(
    catalog: Catalog,
    mean_interarrival_minutes: float,
    horizon_minutes: float,
    seed: SeedLike = None,
) -> Dict[str, ArrivalTrace]:
    """Generate the global request stream and split it per object.

    Times are in *minutes* (callers rescale to slots per their delay).
    """
    rng = rng_from(seed)
    global_trace = poisson(mean_interarrival_minutes, horizon_minutes, seed=rng)
    return split_requests(global_trace, catalog, seed=rng)

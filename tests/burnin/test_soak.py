"""The soak driver: long fault-injected runs, reproducible evidence."""

from __future__ import annotations

import json

import pytest

from repro.burnin import FAULT_FAMILIES, SoakConfig, SoakReport, run_soak


class TestSoakAcceptance:
    @pytest.fixture(scope="class")
    def soak_pair(self, tmp_path_factory):
        """Two full 50-episode soaks with the same seed (the acceptance
        run, executed twice for the byte-reproducibility assertion)."""
        config = SoakConfig(episodes=50, seed=0)
        td = tmp_path_factory.mktemp("soak")
        first = run_soak(config)
        path_a = first.write(td / "a.json")
        path_b = run_soak(config).write(td / "b.json")
        return first, path_a, path_b

    def test_fifty_episodes_zero_violations(self, soak_pair):
        report, _, _ = soak_pair
        assert len(report.episodes) == 50
        assert report.ok, report.render()
        assert report.violations == 0
        assert report.checks > 0

    def test_all_fault_families_exercised(self, soak_pair):
        report, _, _ = soak_pair
        counts = report.fault_counts()
        assert set(counts) == set(FAULT_FAMILIES)
        episodes = len(report.episodes)
        for idx, family in enumerate(FAULT_FAMILIES):
            want = episodes // len(FAULT_FAMILIES) + (
                1 if idx < episodes % len(FAULT_FAMILIES) else 0
            )
            assert counts[family] == want, (
                f"{family} ran {counts[family]} episodes, wanted {want}"
            )

    def test_injected_faults_actually_landed(self, soak_pair):
        report, _, _ = soak_pair
        by_fault = {}
        for e in report.episodes:
            by_fault.setdefault(e["fault"], []).append(e["evidence"])
        assert all(ev["fired"] for ev in by_fault["worker-kill"])
        assert all(ev["quarantined"] > 0 for ev in by_fault["torn-cache"])
        assert all(ev["repaired"] > 0 for ev in by_fault["malformed-trace"])
        assert all(
            ev["dropped"] > 0 for ev in by_fault["flash-overload"]
        ), "undersized budgets must shed"
        assert all(
            ev["clients"] > 0 and ev["restore_epoch"] > 0
            for ev in by_fault["live-replay"]
        ), "live replays must serve traffic across a mid-run restore"

    def test_same_seed_reproduces_report_byte_for_byte(self, soak_pair):
        _, path_a, path_b = soak_pair
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_report_is_valid_json_with_schema(self, soak_pair):
        _, path_a, _ = soak_pair
        payload = json.loads(path_a.read_text())
        assert payload["schema"] == "repro.burnin-soak.v1"
        assert payload["ok"] is True
        assert payload["totals"]["episodes"] == 50
        assert payload["totals"]["violations"] == 0


class TestSoakBehaviour:
    def test_different_seed_different_report(self, tmp_path):
        a = run_soak(SoakConfig(episodes=5, seed=1)).write(tmp_path / "a.json")
        b = run_soak(SoakConfig(episodes=5, seed=2)).write(tmp_path / "b.json")
        assert a.read_bytes() != b.read_bytes()

    def test_selftest_violation_is_detected(self):
        report = run_soak(SoakConfig(episodes=2, seed=0, selftest_violation=True))
        assert not report.ok
        assert report.violations >= 1
        failed = [
            o["name"]
            for e in report.episodes
            for o in e["contracts"]["outcomes"]
            if not o["ok"]
        ]
        assert "fleet.delay-guarantee" in failed

    def test_serial_soak_also_passes(self):
        """workers=1 keeps everything in-process (the kill guard makes
        worker-kill episodes vacuous but still contract-checked)."""
        report = run_soak(SoakConfig(episodes=5, seed=4, workers=1))
        assert report.ok, report.render()

    def test_render_mentions_failures(self):
        report = run_soak(SoakConfig(episodes=1, seed=0, selftest_violation=True))
        text = report.render()
        assert "VIOLATED" in text and "episode 0" in text

    def test_report_roundtrip_totals(self):
        report = run_soak(SoakConfig(episodes=5, seed=7))
        payload = report.to_json()
        assert payload["totals"]["checks"] == report.checks
        assert len(payload["episodes"]) == 5

"""Flat simulation engine vs. the object-tree walks — the
``BENCH_sim.json`` trajectory.

Two modes (same layout as ``bench_fastpath.py`` / ``bench_general.py``):

* ``pytest benchmarks/bench_sim.py --benchmark-only`` — smoke-size
  pytest-benchmark runs (small n; every run asserts flat == reference);
* ``python benchmarks/bench_sim.py`` (or ``make bench-sim``) — the full
  sweep, writing ``BENCH_sim.json`` (schema ``repro.fastpath.bench.v1``)
  at the repo root.  The sweep replays the per-client verification
  oracle at 10^5 clients, which alone takes about a minute — that is the
  point being measured.

"Reference" timings exercise the frozen pre-flat paths — the per-client
``ReceivingProgram`` replay (O(total parts) Python objects, quadratic
buffer bookkeeping), the recursive ``MergeNode`` dyadic construction,
and an object-walk dyadic policy + ``tree_from_parent_map`` forest
reconstruction + per-client continuous verification pipeline.  "Fast"
timings exercise ``fastpath.replay`` (per-level vectorised interval
algebra), ``fastpath.dyadic`` (vectorised batch construction), and the
production policy/verify stack.  Every timed pair asserts exact
agreement — identical verification reports, node-for-node identical
forests — in the same run.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Optional

if __name__ == "__main__":  # script mode: make src importable before repro
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.arrivals import poisson
from repro.baselines.dyadic import DyadicOnline, DyadicParams, dyadic_forest
from repro.core.merge_tree import MergeForest, tree_from_parent_map
from repro.core.online import build_online_flat_forest
from repro.fastpath.dyadic import dyadic_flat_forest
from repro.fastpath.flat_forest import FlatForest
from repro.fastpath.replay import replay_verify_forest
from repro.simulation import ImmediateDyadicPolicy, Simulation, verify_simulation
from repro.simulation.policies import Policy
from repro.simulation.verify import (
    verify_forest_continuous_reference,
    verify_forest_reference,
)

import numpy as np

from repro.scale.kernels import (
    _replay_walk_numpy,
    active_backend,
    configure_backend,
    replay_walk,
)

from conftest import timeit_best, write_bench_json

#: stream length for the replay cases (DG envelope forests; small L keeps
#: the per-part oracle runnable at 10^5 clients).
REPLAY_L = 15

#: stream length for the dyadic construction / policy cases.
DYADIC_L = 100


def irregular_times(n: int, step: float = 1 / 64) -> List[float]:
    """Deterministic bursty arrivals on a binary-exact 1/64 grid."""
    ts, t = [], 0.0
    for i in range(n):
        t += step * (1 + (i % 7) * 3 + (40 if i % 23 == 0 else 0))
        ts.append(t)
    return ts


def grid_times(n: int, step: float = 1 / 64) -> np.ndarray:
    """Vectorised :func:`irregular_times` (same values) for the 10^7 rows."""
    i = np.arange(n)
    gaps = step * (1 + (i % 7) * 3 + np.where(i % 23 == 0, 40, 0))
    return np.cumsum(gaps)


def _scale_replay_forest(n: int) -> FlatForest:
    return dyadic_flat_forest(grid_times(n), DYADIC_L)


def _replay_equal(a, b) -> bool:
    """Whole-tuple equality for replay_walk outputs (arrays + scalars)."""
    return all(
        np.array_equal(x, y) if isinstance(x, np.ndarray) else x == y
        for x, y in zip(a, b)
    )


def _assert_reports_equal(ref, fast) -> None:
    assert fast.ok == ref.ok and fast.checks == ref.checks, (ref, fast)
    assert sorted(fast.failures) == sorted(ref.failures)


# -- frozen pre-flat policy pipeline (the policy-sweep reference) -----------


class _ObjectDyadicPolicy(Policy):
    """The pre-refactor ImmediateDyadicPolicy: MergeNode stack walks."""

    uses_slots = False

    def __init__(self, L: int, params: Optional[DyadicParams] = None):
        self.name = "immediate-dyadic-object"
        self.L = L
        self.params = params or DyadicParams()
        self._builder = DyadicOnline(L, self.params)

    def on_arrival(self, client, sim) -> None:
        node = self._builder.push(client.arrival)
        label = node.arrival
        if node.parent is None:
            sim.start_stream(label, planned_units=self.L, parent_label=None)
        else:
            sim.start_stream(
                label,
                planned_units=label - node.parent.arrival,
                parent_label=node.parent.arrival,
            )
            y = node.arrival
            ancestor = node.parent
            while ancestor is not None and ancestor.parent is not None:
                sim.extend_stream(
                    ancestor.arrival,
                    2 * y - ancestor.arrival - ancestor.parent.arrival,
                )
                ancestor = ancestor.parent
        client.assign(label, tuple(n.arrival for n in node.path_from_root()))


def _object_forest(result) -> MergeForest:
    """The pre-refactor SimulationResult.forest(): tree_from_parent_map."""
    parents = {s.label: s.parent_label for s in result.streams.values()}
    trees, current = [], {}
    for label in sorted(parents):
        if parents[label] is None and current:
            trees.append(tree_from_parent_map(current))
            current = {}
        current[label] = parents[label]
    if current:
        trees.append(tree_from_parent_map(current))
    return MergeForest(trees)


def _reference_policy_pipeline(L: int, trace) -> float:
    """Object policy + object forest reconstruction + per-client verify."""
    res = Simulation(L, trace, _ObjectDyadicPolicy(L)).run()
    forest = _object_forest(res)
    report = verify_forest_continuous_reference(forest, L)
    report.raise_if_failed()
    return res.metrics.total_units


def _flat_policy_pipeline(L: int, trace) -> float:
    """Production stack: flat policy + flat forest + batched verify."""
    res = Simulation(L, trace, ImmediateDyadicPolicy(L)).run()
    verify_simulation(res, continuous=True).raise_if_failed()
    return res.metrics.total_units


# ---------------------------------------------------------------------------
# pytest-benchmark smoke tests (small n, CI-friendly)
# ---------------------------------------------------------------------------


def test_replay_smoke(benchmark):
    flat = build_online_flat_forest(REPLAY_L, 3000)
    fast = benchmark(replay_verify_forest, flat, REPLAY_L)
    ref = verify_forest_reference(flat, REPLAY_L)
    assert ref.ok
    _assert_reports_equal(ref, fast)


def test_dyadic_flat_smoke(benchmark):
    ts = irregular_times(3000)
    fast = benchmark(dyadic_flat_forest, ts, DYADIC_L)
    ref = dyadic_forest(ts, DYADIC_L)
    assert fast.equals(FlatForest.from_forest(ref))


def test_scale_replay_smoke(benchmark):
    """10^6-client replay demand walk through the backend dispatcher;
    asserts whole-tuple equality against the vectorised walk in-run."""
    flat = _scale_replay_forest(1_000_000)
    lengths = flat.stream_lengths(DYADIC_L, "receive-two")
    out = benchmark.pedantic(
        replay_walk,
        args=(flat.arrivals, flat.parent, lengths, float(DYADIC_L),
              "receive-two"),
        rounds=1,
    )
    ref = _replay_walk_numpy(
        flat.arrivals, flat.parent, lengths, float(DYADIC_L), "receive-two"
    )
    assert _replay_equal(out, ref)
    assert ref[3].size == 0  # a clean dyadic forest replays clean


def test_policy_sweep_smoke(benchmark):
    trace = poisson(0.25, 400.0, seed=17)
    fast_units = benchmark(_flat_policy_pipeline, DYADIC_L, trace)
    assert fast_units == _reference_policy_pipeline(DYADIC_L, trace)


# ---------------------------------------------------------------------------
# full sweep (script mode): writes BENCH_sim.json
# ---------------------------------------------------------------------------


def _case(name: str, n: int, ref_s: float, fast_s: float, **extra) -> Dict:
    row = {
        "name": name,
        "n": n,
        "reference_seconds": round(ref_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 2),
        **extra,
    }
    print(
        f"  {name:28s} n={n:>7d}  ref {ref_s:10.4f}s  "
        f"fast {fast_s:10.6f}s  x{row['speedup']:.1f}"
    )
    return row


def run_sweep() -> Dict:
    rows: List[Dict] = []

    # -- batched replay vs per-client program replay ------------------------
    for n in (10_000, 100_000):
        flat = build_online_flat_forest(REPLAY_L, n)
        ref_s, ref_report = timeit_best(
            lambda: verify_forest_reference(flat, REPLAY_L), repeats=1
        )
        fast_s, fast_report = timeit_best(
            lambda: replay_verify_forest(flat, REPLAY_L), repeats=3
        )
        assert ref_report.ok
        _assert_reports_equal(ref_report, fast_report)
        rows.append(_case("verify_forest_replay", n, ref_s, fast_s, L=REPLAY_L))

    # -- flat dyadic construction vs MergeNode recursion --------------------
    for n in (10_000, 100_000):
        ts = irregular_times(n)
        ref_s, ref_forest = timeit_best(
            lambda: dyadic_forest(ts, DYADIC_L), repeats=2
        )
        fast_s, fast_forest = timeit_best(
            lambda: dyadic_flat_forest(ts, DYADIC_L), repeats=3
        )
        assert fast_forest.equals(FlatForest.from_forest(ref_forest))
        rows.append(_case("dyadic_forest", n, ref_s, fast_s, L=DYADIC_L))

    # -- end-to-end policy sweep: sim + reconstruct + verify ----------------
    for rate, horizon in ((0.08, 1200.0), (0.04, 1200.0)):
        trace = poisson(rate, horizon, seed=17)
        ref_s, ref_units = timeit_best(
            lambda: _reference_policy_pipeline(DYADIC_L, trace), repeats=1
        )
        fast_s, fast_units = timeit_best(
            lambda: _flat_policy_pipeline(DYADIC_L, trace), repeats=2
        )
        assert fast_units == ref_units
        rows.append(
            _case("policy_sweep_dyadic", len(trace), ref_s, fast_s, L=DYADIC_L)
        )

    # -- scale tier: backend-dispatched replay walk at 10^6 / 10^7 ----------
    backend = active_backend()
    for n in (1_000_000, 10_000_000):
        flat = _scale_replay_forest(n)
        lengths = flat.stream_lengths(DYADIC_L, "receive-two")
        args = (flat.arrivals, flat.parent, lengths, float(DYADIC_L),
                "receive-two")
        configure_backend(backend)
        replay_walk(*args)  # warm: pages, JIT compilation
        ref_s, ref = timeit_best(lambda: _replay_walk_numpy(*args), repeats=2)
        fast_s, fast = timeit_best(lambda: replay_walk(*args), repeats=3)
        assert _replay_equal(fast, ref)
        assert ref[3].size == 0, "dyadic forest must replay clean"
        rows.append(
            _case("scale_replay_walk", n, ref_s, fast_s,
                  L=DYADIC_L, backend=backend)
        )
    if backend == "numba":
        jit = [r for r in rows if r["name"] == "scale_replay_walk"]
        assert jit and all(r["speedup"] >= 3 for r in jit), jit

    # Acceptance floor for this PR's tentpole rows (ISSUE 3): >= 10x on
    # batched replay and dyadic construction at n = 10^5.
    for name in ("verify_forest_replay", "dyadic_forest"):
        big = [r for r in rows if r["name"] == name and r["n"] >= 100_000]
        assert big and all(r["speedup"] >= 10 for r in big), big

    return {
        "schema": "repro.fastpath.bench.v1",
        "description": (
            "Flat simulation engine: batched FlatForest replay verification "
            "vs per-client ReceivingProgram replay; vectorised dyadic forest "
            "construction vs MergeNode recursion; flat policy + verify "
            "pipeline vs the object-walk pipeline.  Best-of-k wall clock; "
            "every pair asserts identical reports/forests/costs in-run.  "
            "scale_replay_walk rows time the backend-dispatched demand walk "
            "at 10^6/10^7 against the vectorised level walk (floor >= 3x "
            "under numba; numpy-only rows record ~1x with an honest "
            "backend tag)."
        ),
        "benchmarks": rows,
    }


def main() -> int:
    print(
        "flat-simulation benchmark sweep "
        "(runs the per-client verification oracle at n=10^5 once; ~2 minutes)"
    )
    payload = run_sweep()
    path = write_bench_json("sim", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

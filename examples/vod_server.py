#!/usr/bin/env python
"""A video-on-demand server for a 2-hour movie with a 15-minute guarantee.

The paper's motivating scenario (Section 2): "a guaranteed delay of 15
minutes to watch a 2 hour movie implies that the movie is L = 8 units
long."  We serve a full day of requests (96 slots of 15 minutes) and
compare the server bandwidth of:

  * pure batching      — one full broadcast per slot,
  * the off-line optimum (requests known in advance, Theorem 12),
  * the on-line Delay Guaranteed algorithm (no horizon knowledge),

then show what the delay guarantee buys as it is tightened or relaxed,
and what the clients need in terms of receive bandwidth and buffer.

Run:  python examples/vod_server.py
"""

from repro.arrivals import every_slot
from repro.core import optimal_full_cost, online_full_cost, online_tree_size
from repro.core.buffers import optimal_bounded_full_cost
from repro.simulation import (
    DelayGuaranteedPolicy,
    OfflineOptimalPolicy,
    Simulation,
    verify_simulation,
)

MOVIE_MIN = 120          # 2-hour movie
DELAY_MIN = 15           # guaranteed start-up delay
L = MOVIE_MIN // DELAY_MIN   # = 8 units
SLOTS_PER_DAY = 24 * 60 // DELAY_MIN  # = 96

print(f"Movie: {MOVIE_MIN} min; guarantee: {DELAY_MIN} min  =>  L = {L} units")
print(f"One day = {SLOTS_PER_DAY} slots\n")

trace = every_slot(SLOTS_PER_DAY)

batching_units = SLOTS_PER_DAY * L
offline_units = optimal_full_cost(L, SLOTS_PER_DAY)
online_units = online_full_cost(L, SLOTS_PER_DAY)

print("Server bandwidth for one day (stream-slot units / complete movies):")
print(f"  pure batching     : {batching_units:5d} units = {batching_units / L:6.1f} movies")
print(f"  off-line optimal  : {offline_units:5d} units = {offline_units / L:6.1f} movies")
print(f"  on-line DG        : {online_units:5d} units = {online_units / L:6.1f} movies")
print(f"  savings vs batching: {batching_units / online_units:.1f}x "
      f"(on-line overhead vs optimal: "
      f"{100 * (online_units / offline_units - 1):.2f}%)\n")

# The event-driven server agrees with the closed forms to the unit.
res_online = Simulation(L, trace, DelayGuaranteedPolicy(L)).run()
res_offline = Simulation(L, trace, OfflineOptimalPolicy(L, SLOTS_PER_DAY)).run()
assert res_online.metrics.total_units == online_units
assert res_offline.metrics.total_units == offline_units
verify_simulation(res_online).raise_if_failed()
verify_simulation(res_offline).raise_if_failed()
print("Simulated day verified: playback uninterrupted for every slot's "
      "clients,\n<= 2 receive channels each, stream truncation exactly per Lemma 1.")
print(f"Peak concurrent streams: on-line {res_online.metrics.peak_concurrency()}, "
      f"off-line {res_offline.metrics.peak_concurrency()}, batching {L}\n")

print(f"The on-line server repeats the optimal tree for F_h = "
      f"{online_tree_size(L)} slots;")
print("every client receiving program is a table lookup — no run-time decisions.\n")

print("Tightening / relaxing the guarantee (one day horizon):")
print("  delay   L      off-line movies   on-line movies")
for delay in (5, 10, 15, 20, 30, 60):
    l = MOVIE_MIN // delay
    n = 24 * 60 // delay
    f = optimal_full_cost(l, n) / l
    a = online_full_cost(l, n) / l
    print(f"  {delay:3d}min  {l:3d}    {f:10.1f}        {a:10.1f}")
print()

print("Set-top boxes with small buffers (Lemma 15 / Theorem 16):")
print("  buffer B (units)  daily units   vs unbounded")
unbounded = optimal_full_cost(L, SLOTS_PER_DAY)
for B in (1, 2, 3, 4):
    cost = optimal_bounded_full_cost(L, SLOTS_PER_DAY, B)
    print(f"        {B}            {cost:5d}        {cost / unbounded:6.3f}x")
print(f"\n(B is in units of {DELAY_MIN} min of video; clients never need "
      f"more than L/2 = {L // 2} units.)")

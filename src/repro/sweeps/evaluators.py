"""Point evaluators: one grid point in, a dict of named metrics out.

These are the per-point kernels the figure/table sweeps are declared
over.  Every evaluator routes through the batched tier — the closed-form
``Acost``/``Mcost``/``Fcost`` evaluators, the memoised fastpath cost
tables, or :func:`repro.fleet.engine.simulate_batched` — never through
per-client event loops or ``MergeNode`` walks; the drivers keep their old
per-point loops only as benchmark/golden *references*.

All evaluators are module-level (picklable by reference, so the engine
can ship them to worker processes) and return JSON scalars only (so
their results are cacheable artifacts).  Keyword-only signatures keep
the fixed-vs-axis split explicit at the call site.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from ..arrivals import ArrivalTrace, constant_rate, poisson
from ..baselines.dyadic import DyadicParams, paper_beta
from ..core import bounds, offline, receive_all
from ..core.buffers import optimal_bounded_full_cost
from ..core.fibonacci import PHI, is_fib
from ..core.full_cost import optimal_full_cost
from ..core.online import online_full_cost_closed
from ..fastpath import cost_tables
from ..fleet.engine import FleetPolicy, simulate_batched

__all__ = [
    "delay_savings_point",
    "online_ratio_point",
    "root_interval_point",
    "merge_cost_table_point",
    "receive_all_table_point",
    "policy_comparison_point",
    "merge_ratio_point",
    "full_cost_ratio_point",
    "batching_gain_point",
    "merge_sandwich_point",
    "dyadic_sensitivity_point",
    "static_tree_point",
    "construction_timing_point",
    "bounded_buffer_point",
    "multiplex_point",
    "general_offline_point",
    "hybrid_threshold_point",
    "day_night_trace",
    "tree_multiplicity_point",
]


# ---------------------------------------------------------------------------
# batched-tier cost kernels
# ---------------------------------------------------------------------------


def _streams_served(trace: ArrivalTrace, L: int, policy: FleetPolicy) -> float:
    """``Fcost / L`` of one policy's realised forest via the batched kernel.

    The forest's ``full_cost`` (vectorised ``Fcost``) is the same
    evaluator the closed per-point computations used, so values are
    bit-identical to the retired loops.
    """
    result = simulate_batched(L, trace, policy, slot=1.0)
    return result.flat_forest().full_cost(L) / L


def _trace(kind: str, lam: float, horizon: float, seed: int) -> ArrivalTrace:
    if kind == "constant":
        return constant_rate(lam, horizon)
    return poisson(lam, horizon, seed=seed)


# ---------------------------------------------------------------------------
# Fig. 1 — bandwidth savings vs start-up delay
# ---------------------------------------------------------------------------


def delay_savings_point(*, pct: float, horizon_media: int) -> Dict[str, object]:
    """Off-line optimal and on-line DG cost at one delay percentage."""
    if not 0 < pct <= 100:
        raise ValueError(f"delay percent must be in (0, 100], got {pct}")
    L = max(1, round(100.0 / pct))
    n = horizon_media * L
    return {
        "L": L,
        "n": n,
        "offline_cost": optimal_full_cost(L, n),
        "online_cost": online_full_cost_closed(L, n),
    }


# ---------------------------------------------------------------------------
# Fig. 9 — on-line / off-line ratio vs horizon
# ---------------------------------------------------------------------------


def online_ratio_point(*, L: int, n: int) -> Dict[str, object]:
    a = online_full_cost_closed(L, n)
    f = optimal_full_cost(L, n)
    applies = bounds.online_ratio_bound_applies(L, n)
    return {
        "online_cost": a,
        "offline_cost": f,
        "applies": bool(applies),
        "bound": float(bounds.online_ratio_bound(L, n)),
    }


# ---------------------------------------------------------------------------
# Fig. 8 — root-merge intervals I(n)
# ---------------------------------------------------------------------------


def root_interval_point(*, n: int) -> Dict[str, object]:
    """Theorem 3 closed-form interval vs the DP argmin set at one ``n``.

    The argmin scan runs over the *memoised* fastpath cost table (equal
    entry for entry to ``core.dp.merge_cost_table`` — property-tested in
    ``tests/fastpath``), so a point costs O(n) instead of re-running the
    O(n^2) DP per point.
    """
    lo, hi = offline.root_merge_interval(n)
    k, m, case = offline.interval_case(n)
    table = cost_tables.merge_cost_table(n)
    best = table[n]
    dp_set = [
        h for h in range(1, n) if table[h] + table[n - h] + 2 * n - h - 2 == best
    ]
    dp_lo, dp_hi = dp_set[0], dp_set[-1]
    contiguous = dp_set == list(range(dp_lo, dp_hi + 1))
    return {
        "lo": lo,
        "hi": hi,
        "k": k,
        "m": m,
        "case": case,
        "dp_lo": dp_lo,
        "dp_hi": dp_hi,
        "contiguous": bool(contiguous),
    }


# ---------------------------------------------------------------------------
# Section 3.1 / 3.4 in-text tables — M(n), Mw(n)
# ---------------------------------------------------------------------------


def merge_cost_table_point(*, n: int) -> Dict[str, object]:
    return {
        "closed": offline.merge_cost(n),
        "via_dp": cost_tables.merge_cost(n),
    }


def receive_all_table_point(*, n: int) -> Dict[str, object]:
    return {
        "closed": receive_all.merge_cost_receive_all(n),
        "via_dp": cost_tables.receive_all_cost(n),
    }


# ---------------------------------------------------------------------------
# Figs. 11-12 — policy comparison under varying arrival intensity
# ---------------------------------------------------------------------------


def policy_comparison_point(
    *,
    lam: float,
    L: int,
    horizon: float,
    kind: str,
    seeds: Sequence[int],
    include_batching: bool = False,
) -> Dict[str, object]:
    """Immediate dyadic / batched dyadic / DG bandwidth at one intensity.

    Dyadic runs go through :func:`repro.fleet.engine.simulate_batched`;
    the DG term is the closed-form ``Acost`` (intensity-independent).
    """
    if kind not in ("constant", "poisson"):
        raise ValueError(f"unknown arrival kind {kind!r}")
    n_slots = int(np.ceil(horizon))
    dg = online_full_cost_closed(L, n_slots) / L

    dyadic = FleetPolicy.immediate_dyadic(DyadicParams(alpha=PHI, beta=0.5))
    batched = FleetPolicy.batched_dyadic(
        DyadicParams(alpha=PHI, beta=paper_beta(L, kind))
    )

    imm_vals, bat_vals, pure_vals = [], [], []
    for seed in seeds:
        trace = _trace(kind, lam, horizon, seed)
        if len(trace) == 0:
            continue
        imm_vals.append(_streams_served(trace, L, dyadic))
        bat_vals.append(_streams_served(trace, L, batched))
        if include_batching:
            pure_vals.append(_streams_served(trace, L, FleetPolicy.pure_batching()))
        if kind == "constant":
            break  # deterministic; one rep suffices
    out: Dict[str, object] = {
        "immediate_dyadic": float(np.mean(imm_vals)) if imm_vals else 0.0,
        "batched_dyadic": float(np.mean(bat_vals)) if bat_vals else 0.0,
        "delay_guaranteed": dg,
    }
    if include_batching:
        out["pure_batching"] = float(np.mean(pure_vals)) if pure_vals else 0.0
    return out


# ---------------------------------------------------------------------------
# Theorems 19/20, 14, 8 — asymptotics
# ---------------------------------------------------------------------------


def merge_ratio_point(*, n: int) -> Dict[str, object]:
    return {
        "m": offline.merge_cost(n),
        "mw": receive_all.merge_cost_receive_all(n),
    }


def full_cost_ratio_point(*, L: int, n_factor: int) -> Dict[str, object]:
    n = n_factor * L
    return {
        "n": n,
        "f2": optimal_full_cost(L, n),
        "fa": receive_all.optimal_full_cost_receive_all(L, n),
    }


def batching_gain_point(*, L: int, n_factor: int) -> Dict[str, object]:
    n = n_factor * L
    return {
        "n": n,
        "batching": bounds.batching_cost(L, n),
        "merged": optimal_full_cost(L, n),
        "order": float(bounds.batching_gain_order(L)),
    }


def merge_sandwich_point(*, n: int) -> Dict[str, object]:
    m = offline.merge_cost(n)
    return {
        "lower": float(bounds.merge_cost_lower(n)),
        "m": m,
        "upper": float(bounds.merge_cost_upper(n)),
        "normalised": m / (n * bounds.log_phi(n)),
    }


# ---------------------------------------------------------------------------
# Ablations
# ---------------------------------------------------------------------------


def dyadic_sensitivity_point(
    *,
    alpha: float,
    beta: float,
    L: int,
    lam: float,
    horizon: float,
    seeds: Sequence[int],
) -> Dict[str, object]:
    """Mean dyadic bandwidth at one (alpha, beta) over the seeded traces."""
    policy = FleetPolicy.immediate_dyadic(DyadicParams(alpha=alpha, beta=beta))
    costs = []
    for seed in seeds:
        trace = poisson(lam, horizon, seed=seed)
        if len(trace) == 0:
            continue
        costs.append(_streams_served(trace, L, policy))
    return {"mean_streams": sum(costs) / len(costs)}


def static_tree_point(*, size: int, L: int, n: int) -> Dict[str, object]:
    return {
        "cost": online_full_cost_closed(L, n, tree_size=size),
        "is_fib": bool(is_fib(size)),
    }


def construction_timing_point(*, n: int) -> Dict[str, object]:
    """Wall-clock of the O(n) builder vs the O(n^2) DP (not cacheable)."""
    from ..core import dp
    from ..core.offline import build_optimal_tree

    t0 = time.perf_counter()
    tree_fast = build_optimal_tree(n)
    t_fast = time.perf_counter() - t0
    t0 = time.perf_counter()
    dp.merge_cost_table(n)
    t_dp = time.perf_counter() - t0
    return {
        "t_fast": t_fast,
        "t_dp": t_dp,
        "m": int(tree_fast.merge_cost()),
    }


def bounded_buffer_point(*, B: int, L: int, n: int) -> Dict[str, object]:
    return {"cost": optimal_bounded_full_cost(L, n, B)}


# ---------------------------------------------------------------------------
# Section 5 extensions
# ---------------------------------------------------------------------------


def multiplex_point(
    *,
    delay: float,
    titles: int,
    horizon: float,
    mean_interarrival: float,
    seed: int,
    duration: float = 120.0,
    exponent: float = 0.8,
) -> Dict[str, object]:
    """DG vs dyadic provisioning for one delay guarantee.

    Catalog and workload are regenerated from the seed per point (cheap
    next to the serve), keeping the evaluator a pure function of its
    parameters — the property the content-hash cache relies on.
    """
    from ..multiplex import Catalog, catalog_workload, serve_catalog

    catalog = Catalog.zipf(titles, duration_minutes=duration, exponent=exponent)
    workload = catalog_workload(catalog, mean_interarrival, horizon, seed=seed)
    dg = serve_catalog(catalog, delay, horizon, policy="dg")
    dy = serve_catalog(catalog, delay, horizon, policy="dyadic", workload=workload)
    return {
        "dg_peak": dg.peak_channels,
        "dg_units": dg.total_units_minutes,
        "dy_peak": dy.peak_channels,
        "dy_units": dy.total_units_minutes,
    }


def day_night_trace(
    day_lam: float,
    night_lam: float,
    phase_slots: float,
    phases: int,
    seed: int,
) -> ArrivalTrace:
    """Alternating quiet/busy Poisson phases (the Section 5 hybrid workload).

    Phase ``p`` uses mean inter-arrival ``day_lam`` when odd, ``night_lam``
    when even, seeded per phase — exactly the trace the hybrid golden
    table has always been generated from.
    """
    times = []
    for phase in range(phases):
        lam = day_lam if phase % 2 else night_lam
        sub = poisson(lam, phase_slots, seed=seed + phase)
        times.extend(phase * phase_slots + t for t in sub)
    return ArrivalTrace(
        times=tuple(sorted(times)), horizon=phases * phase_slots
    )


def hybrid_threshold_point(
    *,
    rate_high: float,
    low_frac: float,
    L: int,
    window_slots: int,
    day_lam: float,
    night_lam: float,
    phase_slots: float,
    phases: int,
    seed: int,
) -> Dict[str, object]:
    """One hysteresis setting of the hybrid server on the day/night trace.

    ``rate_low = low_frac * rate_high`` keeps the sweep grid rectangular
    while satisfying the ``0 <= rate_low <= rate_high`` contract at every
    point.  Runs through the segmented batched kernel (``hybrid`` kind of
    :func:`repro.fleet.engine.simulate_batched`) — no event queue.
    """
    trace = day_night_trace(day_lam, night_lam, phase_slots, phases, seed)
    policy = FleetPolicy.hybrid(
        window_slots=window_slots,
        rate_high=rate_high,
        rate_low=low_frac * rate_high,
    )
    run = simulate_batched(L, trace, policy, slot=1.0)
    return {
        "streams": float(run.metrics.streams_served),
        "peak": int(run.metrics.peak_concurrency()),
        "switches": len(run.mode_log or []),
    }


def general_offline_point(
    *, lam: float, L: int, horizon: float, seed: int
) -> Dict[str, object]:
    """Clairvoyant optimum vs batched dyadic vs DG on one sparse trace.

    The optimum and the dyadic comparator both run through
    ``simulate_batched`` (general-offline / batched-dyadic kinds); slot
    ends are integers, so the forest ``Fcost`` equals the DP optimum
    exactly.  Traces with < 2 arrivals mark the point skipped (mirroring
    the reference loop, which drops the row).
    """
    trace = poisson(lam, horizon, seed=seed)
    if len(trace) < 2:
        return {
            "skip": True,
            "served_slots": 0,
            "opt": 0.0,
            "dyadic": 0.0,
            "dg": 0.0,
        }
    opt_run = simulate_batched(L, trace, FleetPolicy.general_offline(), slot=1.0)
    opt_forest = opt_run.flat_forest()
    dyadic = _streams_served(trace, L, FleetPolicy.batched_dyadic()) * L
    return {
        "skip": False,
        "served_slots": int(len(opt_forest)),
        "opt": float(opt_forest.full_cost(L)),
        "dyadic": float(dyadic),
        "dg": online_full_cost_closed(L, int(horizon)),
    }


# ---------------------------------------------------------------------------
# Figs. 6-7 — optimal tree multiplicity
# ---------------------------------------------------------------------------


def tree_multiplicity_point(*, n: int) -> Dict[str, object]:
    from ..core.offline import enumerate_optimal_trees

    trees = enumerate_optimal_trees(n)
    return {"count": len(trees), "m": int(trees[0].merge_cost())}

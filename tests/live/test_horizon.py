"""Tests for the live tier's time model (epochs, fence, drain)."""

from __future__ import annotations

import math

import pytest

from repro.live import LIVE_POLICIES, LiveConfig, LiveHorizon


def _config(**kw) -> LiveConfig:
    base = dict(
        delay_minutes=2.0,
        horizon_minutes=120.0,
        epoch_minutes=10.0,
        fence_minutes=15.0,
        policy="batched-dyadic",
    )
    base.update(kw)
    return LiveConfig(**base)


class TestLiveConfig:
    def test_epoch_partition_covers_horizon_exactly(self):
        config = _config(epoch_minutes=25.0)  # does not divide 120
        assert config.num_epochs == 5
        bounds = [config.epoch_bounds(k) for k in range(config.num_epochs)]
        assert bounds[0][0] == 0.0
        assert bounds[-1][1] == config.horizon_minutes
        for (_, t1), (t0, _) in zip(bounds, bounds[1:]):
            assert t1 == t0  # contiguous, no gap, no overlap
        assert bounds[-1] == (100.0, 120.0)  # last epoch truncated

    def test_epoch_bounds_rejects_out_of_range(self):
        config = _config()
        with pytest.raises(ValueError):
            config.epoch_bounds(-1)
        with pytest.raises(ValueError):
            config.epoch_bounds(config.num_epochs)

    def test_fence_lags_the_clock_and_clamps_at_zero(self):
        config = _config(fence_minutes=15.0)
        assert config.fence_at(10.0) == 0.0  # early epochs: nothing commits
        assert config.fence_at(15.0) == 0.0
        assert config.fence_at(40.0) == 25.0

    @pytest.mark.parametrize("field", ["delay_minutes", "horizon_minutes", "epoch_minutes"])
    @pytest.mark.parametrize("bad", [0.0, -1.0, math.nan, math.inf])
    def test_rejects_non_positive_dimensions(self, field, bad):
        with pytest.raises(ValueError):
            _config(**{field: bad})

    def test_rejects_zero_fence(self):
        # zero lag would let a boundary arrival join a committed tree
        with pytest.raises(ValueError, match="fence_minutes"):
            _config(fence_minutes=0.0)

    def test_rejects_epoch_longer_than_horizon(self):
        with pytest.raises(ValueError, match="exceeds the horizon"):
            _config(epoch_minutes=200.0)

    def test_rejects_batch_only_policies(self):
        for policy in ("delay-guaranteed", "offline-optimal", "general-offline"):
            with pytest.raises(ValueError, match="not live-servable"):
                _config(policy=policy)

    @pytest.mark.parametrize("policy", LIVE_POLICIES)
    def test_payload_round_trip(self, policy):
        config = _config(policy=policy, epoch_minutes=7.5)
        assert LiveConfig.from_payload(config.to_payload()) == config

    @pytest.mark.parametrize("policy", LIVE_POLICIES)
    def test_fleet_policy_kind_matches(self, policy):
        assert _config(policy=policy).fleet_policy().kind == policy


class TestLiveHorizon:
    def test_epochs_advance_one_at_a_time(self):
        horizon = LiveHorizon(_config())
        assert horizon.epoch == -1 and horizon.fence == 0.0
        with pytest.raises(ValueError):
            horizon.begin_epoch(1)  # must start at 0
        horizon.begin_epoch(0)
        with pytest.raises(ValueError):
            horizon.begin_epoch(0)  # no repeats
        with pytest.raises(ValueError):
            horizon.begin_epoch(2)  # no skips
        horizon.begin_epoch(1)
        assert horizon.epoch == 1

    def test_clock_and_fence_track_ingest(self):
        horizon = LiveHorizon(_config(epoch_minutes=10.0, fence_minutes=15.0))
        fences = []
        for k in range(4):
            horizon.begin_epoch(k)
            assert horizon.ingest_clock == (k + 1) * 10.0
            fences.append(horizon.fence)
        assert fences == [0.0, 5.0, 15.0, 25.0]  # monotone, lag 15

    def test_exhausted_after_last_epoch(self):
        config = _config(epoch_minutes=60.0)  # 2 epochs
        horizon = LiveHorizon(config)
        assert not horizon.exhausted
        horizon.begin_epoch(0)
        horizon.begin_epoch(1)
        assert horizon.exhausted

    def test_drain_removes_fence_and_refuses_further_epochs(self):
        horizon = LiveHorizon(_config())
        horizon.begin_epoch(0)
        horizon.mark_drained()
        assert horizon.drained and horizon.fence is None
        with pytest.raises(RuntimeError):
            horizon.begin_epoch(1)
        with pytest.raises(RuntimeError):
            horizon.mark_drained()

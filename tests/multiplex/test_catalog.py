"""Tests for media catalogs and Zipf popularity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.multiplex import Catalog, MediaObject, zipf_weights


class TestZipfWeights:
    def test_normalised(self):
        w = zipf_weights(10, 0.8)
        assert w.sum() == pytest.approx(1.0)
        assert (w > 0).all()

    def test_decreasing(self):
        w = zipf_weights(20, 1.0)
        assert (np.diff(w) < 0).all()

    def test_exponent_zero_uniform(self):
        w = zipf_weights(5, 0.0)
        assert np.allclose(w, 0.2)

    def test_errors(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(3, -1.0)


class TestMediaObject:
    def test_units(self):
        movie = MediaObject("m", 120.0, 1.0)
        assert movie.units(15.0) == 8
        assert movie.units(7.0) == 17
        assert MediaObject("short", 3.0, 1.0).units(10.0) == 1  # floor of 1

    def test_validation(self):
        with pytest.raises(ValueError):
            MediaObject("x", 0.0, 1.0)
        with pytest.raises(ValueError):
            MediaObject("x", 10.0, 0.0)
        with pytest.raises(ValueError):
            MediaObject("x", 10.0, 1.0).units(0)


class TestCatalog:
    def test_zipf_factory(self):
        cat = Catalog.zipf(8, duration_minutes=90.0, exponent=0.7)
        assert len(cat) == 8
        assert sum(o.weight for o in cat) == pytest.approx(1.0)
        assert cat[0].weight > cat[-1].weight
        assert all(o.duration_minutes == 90.0 for o in cat)

    def test_weights_renormalised(self):
        cat = Catalog([MediaObject("a", 60, 2.0), MediaObject("b", 60, 6.0)])
        assert cat[0].weight == pytest.approx(0.25)
        assert cat[1].weight == pytest.approx(0.75)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Catalog([MediaObject("a", 60, 1.0), MediaObject("a", 90, 1.0)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Catalog([])

    def test_popularity_rank(self):
        cat = Catalog([MediaObject("cold", 60, 1.0), MediaObject("hot", 60, 9.0)])
        assert [o.name for o in cat.popularity_rank()] == ["hot", "cold"]

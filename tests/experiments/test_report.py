"""Tests for result persistence and the --save CLI path."""

from __future__ import annotations

import json

import pytest

from repro.experiments import get_experiment
from repro.experiments.harness import ExperimentResult
from repro.experiments.report import results_to_json, save_results


class TestResultsToJson:
    def test_roundtrippable(self):
        res = ExperimentResult(
            title="T", headers=("a", "b"), rows=[(1, 2.5), (3, "x")], notes=["n"]
        )
        doc = json.loads(results_to_json("demo", [res]))
        assert doc["experiment"] == "demo"
        assert doc["tables"][0]["headers"] == ["a", "b"]
        assert doc["tables"][0]["rows"] == [[1, 2.5], [3, "x"]]
        assert doc["tables"][0]["notes"] == ["n"]

    def test_chart_notes_excluded_from_json(self):
        res = ExperimentResult(
            title="T", headers=("a",), rows=[(1,)], notes=["keep", "\nchart art"]
        )
        doc = json.loads(results_to_json("demo", [res]))
        assert doc["tables"][0]["notes"] == ["keep"]


class TestSaveResults:
    def test_writes_both_files(self, tmp_path):
        exp = get_experiment("table-full")
        results = exp()
        paths = save_results(exp, results, tmp_path)
        assert {p.name for p in paths} == {"table-full.txt", "table-full.json"}
        text = (tmp_path / "table-full.txt").read_text()
        assert "python -m repro table-full" in text
        assert "F(15, 8)" in text
        doc = json.loads((tmp_path / "table-full.json").read_text())
        assert doc["experiment"] == "table-full"

    def test_creates_directory(self, tmp_path):
        exp = get_experiment("table-mn")
        save_results(exp, exp(), tmp_path / "nested" / "dir")
        assert (tmp_path / "nested" / "dir" / "table-mn.txt").exists()


class TestCliSave:
    def test_save_flag(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["table-mn", "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "saved:" in out
        assert (tmp_path / "table-mn.json").exists()

    def test_no_save_by_default(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["table-mn"]) == 0
        assert not (tmp_path / "results").exists()

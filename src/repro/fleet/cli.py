"""``python -m repro fleet`` — catalog-scale serving + capacity planning.

Runs a named scenario over a Zipf catalog through the batched kernel,
prints the fleet report, and closes with the DG capacity frontier and an
admission verdict for the tightest budget.  Defaults run a 120-object
catalog end to end in seconds::

    python -m repro fleet
    python -m repro fleet --objects 200 --scenario flash --policy immediate-dyadic
    python -m repro fleet --budgets 150,250,400 --workers 4
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from ..multiplex.catalog import Catalog
from ..scale.columnar import is_store
from ..scale.kernels import configure_backend
from .capacity import (
    admission_report,
    capacity_frontier,
    default_delay_grid,
    dg_fleet_peak,
    render_frontier,
)
from .engine import FLEET_POLICIES, FleetPolicy
from .runner import run_fleet
from .scenarios import SCENARIOS, scenario_workload

__all__ = ["fleet_main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro fleet",
        description="Serve a media catalog through the batched fleet engine "
        "and plan channel capacity for a start-up-delay guarantee.",
    )
    parser.add_argument("--objects", type=int, default=120,
                        help="catalog size (Zipf popularity; default 120)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="media duration in minutes (default 120)")
    parser.add_argument("--exponent", type=float, default=0.8,
                        help="Zipf exponent (default 0.8)")
    parser.add_argument("--delay", type=float, default=2.0,
                        help="guaranteed start-up delay in minutes (default 2)")
    parser.add_argument("--horizon", type=float, default=360.0,
                        help="observation horizon in minutes (default 360)")
    parser.add_argument("--mean-interarrival", type=float, default=0.05,
                        help="global mean inter-arrival in minutes (default 0.05)")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS), default="zipf",
                        help="workload scenario (default zipf)")
    parser.add_argument("--policy", choices=FLEET_POLICIES,
                        default="batched-dyadic",
                        help="serving policy (default batched-dyadic)")
    parser.add_argument("--workers", type=int, default=0,
                        help="worker processes (default 0 = in-process)")
    parser.add_argument("--store", type=str, default=None, metavar="DIR",
                        help="ship the workload out-of-core through an "
                        "on-disk columnar store: an existing store dir "
                        "(repro.scale.columnar) is read directly; any "
                        "other DIR is used as a spool parent (removed "
                        "after the run)")
    parser.add_argument("--backend", choices=("auto", "numpy", "numba"),
                        default="auto",
                        help="kernel backend (default auto: numba when "
                        "installed, else the contract-equal numpy "
                        "fallback)")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--budgets", type=str, default=None,
                        help="comma-separated channel budgets for the "
                        "capacity frontier (default: derived from the run)")
    parser.add_argument("--no-frontier", action="store_true",
                        help="skip the capacity-planning section")
    parser.add_argument("--check", action="store_true",
                        help="also replay-verify every object's merge "
                        "forest (in-process re-simulation; roughly doubles "
                        "the runtime)")
    return parser


def fleet_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    backend = configure_backend(args.backend)
    if args.backend != "auto":
        print(f"kernel backend: {backend}")
    catalog = Catalog.zipf(
        args.objects, duration_minutes=args.duration, exponent=args.exponent
    )
    print(
        f"scenario {args.scenario!r}: {SCENARIOS[args.scenario]} "
        f"({args.objects} objects, horizon {args.horizon:g} min)"
    )
    t0 = time.perf_counter()
    store = None
    if args.store is not None:
        store = args.store
        if is_store(store):
            print(f"reading workload from columnar store {store}")
    if store is not None and is_store(store):
        workload = None
    else:
        workload = scenario_workload(
            args.scenario, catalog, args.mean_interarrival, args.horizon,
            seed=args.seed,
        )
    report = run_fleet(
        catalog,
        delay_minutes=args.delay,
        horizon_minutes=args.horizon,
        policy=FleetPolicy(args.policy),
        workload=workload,
        workers=args.workers,
        store=store,
    )
    elapsed = time.perf_counter() - t0
    print(report.render())
    print(f"[simulated {report.clients} requests in {elapsed:.2f}s]")

    # Standing invariants (repro.burnin.contracts) as the exit code: the
    # summary battery always runs; --check adds the replay contract.
    from ..burnin.contracts import check_admission_report, check_fleet_report

    contracts = check_fleet_report(
        report,
        catalog,
        workload,
        FleetPolicy(args.policy),
        replay=args.check,
    )
    print(contracts.render())
    exit_code = 0 if contracts.ok else 4

    if args.no_frontier:
        return exit_code
    print()
    if args.budgets:
        budgets = [int(b) for b in args.budgets.split(",") if b.strip()]
    else:
        # bracket the DG envelope at the requested delay (the frontier's
        # own policy) from comfortable to starved
        peak = dg_fleet_peak(catalog, args.delay, args.horizon)
        budgets = sorted(
            {max(1, int(peak * f)) for f in (1.5, 1.0, 0.75, 0.5, 0.25)}
        )
    # bracket the requested delay; keep lo < hi for tiny --delay values
    hi = args.delay * 16
    lo = min(max(0.25, args.delay / 8), hi / 2)
    grid = default_delay_grid(lo=lo, hi=hi)
    points = capacity_frontier(catalog, args.horizon, budgets, grid)
    print(render_frontier(points))
    print()
    verdict = admission_report(catalog, args.horizon, min(budgets), grid)
    print(verdict.render())
    admission = check_admission_report(verdict, catalog, args.horizon)
    if not admission.ok:
        print(admission.render())
        exit_code = 4
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(fleet_main())

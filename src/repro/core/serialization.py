"""Merge-forest serialization and client schedule export.

Two production-shaped artifacts:

* **Forest documents** — a JSON form of a merge forest (parent maps per
  tree), so off-line solutions can be computed once, shipped to a server,
  and audited later.  Round-trips exactly.
* **Receiving schedules** — the per-client instruction a server would
  push to a set-top box: the ordered list of (slot, stream, part)
  receptions of the Section 2 program, serialised compactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .merge_tree import MergeForest, tree_from_parent_map
from .receiving_program import ReceivingProgram, receive_two_program

__all__ = [
    "forest_to_json",
    "forest_from_json",
    "save_forest",
    "load_forest",
    "program_to_json",
]

_FOREST_SCHEMA = "repro.merge-forest.v1"
_PROGRAM_SCHEMA = "repro.receiving-program.v1"


def forest_to_json(forest: MergeForest, L: Union[float, None] = None) -> str:
    """Serialise a forest as per-tree parent maps (+ optional L metadata)."""
    trees = []
    for tree in forest:
        pm = tree.parent_map()
        trees.append(
            {
                "root": tree.root.arrival,
                # parent map as pairs: JSON keys must be strings, and
                # float-keyed dicts round-trip poorly through str().
                "edges": [
                    [arrival, parent]
                    for arrival, parent in sorted(pm.items())
                    if parent is not None
                ],
            }
        )
    payload = {
        "schema": _FOREST_SCHEMA,
        "L": L,
        "num_arrivals": forest.num_arrivals(),
        "trees": trees,
    }
    return json.dumps(payload)


def forest_from_json(text: str) -> MergeForest:
    """Rebuild a forest serialised by :func:`forest_to_json`."""
    payload = json.loads(text)
    if payload.get("schema") != _FOREST_SCHEMA:
        raise ValueError(
            f"not a merge-forest document (schema={payload.get('schema')!r})"
        )
    trees = []
    for doc in payload["trees"]:
        parents = {doc["root"]: None}
        for arrival, parent in doc["edges"]:
            parents[arrival] = parent
        trees.append(tree_from_parent_map(parents))
    forest = MergeForest(trees)
    if forest.num_arrivals() != payload.get("num_arrivals"):
        raise ValueError(
            f"corrupt forest: declared {payload.get('num_arrivals')} "
            f"arrivals, found {forest.num_arrivals()}"
        )
    return forest


def save_forest(
    forest: MergeForest, path: Union[str, Path], L: Union[float, None] = None
) -> None:
    Path(path).write_text(forest_to_json(forest, L))


def load_forest(path: Union[str, Path]) -> MergeForest:
    return forest_from_json(Path(path).read_text())


def program_to_json(program: ReceivingProgram) -> str:
    """The client-facing schedule: ordered (slot_end, stream, part) rows."""
    rows = sorted(
        ((r.slot_end, r.stream, r.part) for r in program.receptions),
    )
    payload = {
        "schema": _PROGRAM_SCHEMA,
        "client": program.client,
        "L": program.L,
        "path": list(program.path),
        "receptions": [list(row) for row in rows],
    }
    return json.dumps(payload)


def export_client_schedules(
    forest: MergeForest, L: int, out_dir: Union[str, Path]
) -> int:
    """Write one schedule file per client; returns the count written.

    Files are named ``client_<arrival>.json``; arrivals must be slotted
    (the receive-two program requires integer times).
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    count = 0
    for tree in forest:
        for arrival in tree.arrivals():
            prog = receive_two_program(tree, arrival, L)
            name = f"client_{int(arrival)}.json"
            (out / name).write_text(program_to_json(prog))
            count += 1
    return count

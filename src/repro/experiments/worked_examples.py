"""Worked examples of Sections 2-3: Figs. 3, 4, 6, 7 and the full-cost
numbers (F(15,8)=36, F(15,14)=64, F(4,16,s)=40/38/38).

``fig3`` renders the concrete stream diagram for n = 8, L = 15 — stream
start/lengths, the segment windows, and client H's stage-by-stage
receiving program — all generated from the library, matching the paper's
narrative exactly.
"""

from __future__ import annotations

from typing import List

from ..core.full_cost import (
    full_cost_given_streams,
    optimal_full_cost,
    optimal_stream_count,
)
from ..core.offline import build_optimal_tree, fibonacci_tree
from ..core.merge_tree import MergeForest
from ..core.receiving_program import receive_two_program
from ..sweeps import Axis, SweepSpec, run_sweep
from ..sweeps.evaluators import tree_multiplicity_point
from .harness import ExperimentResult, register


@register(
    "fig3",
    "Concrete optimal solution for n = 8, L = 15 (Figs. 3-4)",
    "Figs. 3-4 / Section 2",
    "Stream lengths, merge tree, and client H's receiving program.",
)
def run_fig3() -> List[ExperimentResult]:
    L, n = 15, 8
    tree = build_optimal_tree(n)
    forest = MergeForest([tree])
    lengths = forest.stream_lengths(L)
    names = "ABCDEFGH"
    rows = []
    for arrival in tree.arrivals():
        node = tree.node(arrival)
        rows.append(
            (
                names[int(arrival)],
                int(arrival),
                "root" if node.parent is None else names[int(node.parent.arrival)],
                int(lengths[arrival]),
                int(arrival + lengths[arrival]),
            )
        )
    res_streams = ExperimentResult(
        title=f"Streams of the optimal forest (n={n}, L={L}); "
        f"full cost = {forest.full_cost(L)}",
        headers=("stream", "start", "merges into", "length", "ends at"),
        rows=rows,
        notes=[
            f"Merge cost {tree.merge_cost()} + root {L} = "
            f"{forest.full_cost(L)} (paper: 36).",
            "Tree:\n" + tree.render(),
        ],
    )

    prog = receive_two_program(tree, 7, L)
    prog_rows = []
    for r in sorted(prog.receptions, key=lambda r: (r.slot_end, r.stream)):
        prog_rows.append(
            (int(r.slot_end) - 1, int(r.slot_end), names[int(r.stream)], r.part)
        )
    res_prog = ExperimentResult(
        title="Client H (arrival 7, path A->F->H) receiving program",
        headers=("slot start", "slot end", "from stream", "part"),
        rows=prog_rows,
        notes=[
            f"complete={prog.is_complete()}, on_time={prog.is_on_time()}, "
            f"max parallel streams={prog.max_parallel_streams()}, "
            f"buffer peak={prog.max_buffer()} (Lemma 15: min(7, 15-7) = 7)",
        ],
    )
    return [res_streams, res_prog]


def fig67_spec(n_enum_max: int = 10) -> SweepSpec:
    return SweepSpec(
        name="fig6-7",
        evaluator=tree_multiplicity_point,
        axes=[Axis("n", tuple(range(2, n_enum_max + 1)))],
        metrics=("count", "m"),
    )


@register(
    "fig6-7",
    "Optimal tree multiplicity (Fig. 6) and Fibonacci trees (Fig. 7)",
    "Figs. 6-7 / Theorem 3",
    "Exhaustive enumeration of optimal trees for small n; unique trees at "
    "Fibonacci sizes.",
)
def run_fig67(n_enum_max: int = 10) -> List[ExperimentResult]:
    sweep = run_sweep(fig67_spec(n_enum_max))
    rows = sweep.rows("n", "count", "m")
    res_counts = ExperimentResult(
        title="Number of optimal merge trees by n (exhaustive)",
        headers=("n", "# optimal trees", "M(n)"),
        rows=rows,
        notes=[
            "n = 4 has exactly two optimal trees (Fig. 6); Fibonacci n "
            "(2, 3, 5, 8, ...) have exactly one (Fig. 7).",
        ],
        columns=sweep.columns_json(),
    )
    renders = []
    for k in (4, 5, 6, 7):  # F_k = 3, 5, 8, 13
        t = fibonacci_tree(k)
        renders.append(f"n = F_{k} = {len(t)}, M = {t.merge_cost()}\n{t.render()}")
    res_fib = ExperimentResult(
        title="Fibonacci merge trees (Fig. 7)",
        headers=("tree",),
        rows=[],
        notes=renders,
    )
    return [res_counts, res_fib]


@register(
    "table-full",
    "Worked full-cost examples (Sections 2 / 3.2)",
    "Section 2 example; Section 3.2 examples after Theorem 12",
    "F(15,8)=36; F(15,14)=64 with s=2; F(4,16,s)=40/38/38 for s=4,5,6.",
)
def run_table_full() -> List[ExperimentResult]:
    rows = [
        ("F(15, 8)", optimal_full_cost(15, 8), 36),
        ("F(15, 14)", optimal_full_cost(15, 14), 64),
        ("s*(15, 14)", optimal_stream_count(15, 14), 2),
        ("F(4, 16, s=4)", full_cost_given_streams(4, 16, 4), 40),
        ("F(4, 16, s=5)", full_cost_given_streams(4, 16, 5), 38),
        ("F(4, 16, s=6)", full_cost_given_streams(4, 16, 6), 38),
    ]
    rows = [(name, got, want, "ok" if got == want else "MISMATCH") for name, got, want in rows]
    return [
        ExperimentResult(
            title="Full-cost worked examples vs paper values",
            headers=("quantity", "computed", "paper", "status"),
            rows=rows,
        )
    ]

"""Core algorithms of the paper: merge trees, optimal off-line and on-line
delay-guaranteed stream merging, receive-all variant, buffer bounds.

Public surface re-exported here; see individual modules for the maths.
"""

from .fibonacci import PHI, fib, tree_size_index
from .merge_tree import MergeForest, MergeNode, MergeTree, chain_tree, star_tree, tree_from_parent_map
from .offline import (
    build_optimal_parent_array,
    build_optimal_tree,
    enumerate_optimal_trees,
    fibonacci_tree,
    merge_cost,
    merge_cost_array,
    root_merge_interval,
)
from .full_cost import (
    build_optimal_flat_forest,
    build_optimal_forest,
    full_cost_breakdown,
    full_cost_given_streams,
    optimal_full_cost,
    optimal_stream_count,
)
from .receive_all import (
    build_optimal_forest_receive_all,
    build_optimal_tree_receive_all,
    merge_cost_receive_all,
    optimal_full_cost_receive_all,
)
from .buffers import (
    buffer_requirement,
    build_optimal_bounded_forest,
    optimal_bounded_full_cost,
)
from .online import (
    OnlineScheduler,
    build_online_flat_forest,
    build_online_forest,
    online_full_cost,
    online_over_optimal_ratio,
    online_tree_size,
)
from .receiving_program import (
    ReceivingProgram,
    forest_programs,
    receive_all_program,
    receive_two_program,
)
from .analysis import (
    bandwidth_timeline,
    forest_stats,
    is_fibonacci_tree,
    merge_hop_histogram,
    tree_stats,
)
from .general import (
    optimal_forest_general,
    optimal_forest_general_reference,
    optimal_full_cost_general,
    optimal_merge_cost_general,
    optimal_merge_tree_general,
)
from .serialization import (
    export_client_schedules,
    forest_from_json,
    forest_to_json,
    load_forest,
    save_forest,
)
from . import bounds, dp

__all__ = [
    "PHI",
    "fib",
    "tree_size_index",
    "MergeForest",
    "MergeNode",
    "MergeTree",
    "chain_tree",
    "star_tree",
    "tree_from_parent_map",
    "build_optimal_parent_array",
    "build_optimal_tree",
    "enumerate_optimal_trees",
    "fibonacci_tree",
    "merge_cost",
    "merge_cost_array",
    "root_merge_interval",
    "build_optimal_flat_forest",
    "build_optimal_forest",
    "full_cost_breakdown",
    "full_cost_given_streams",
    "optimal_full_cost",
    "optimal_stream_count",
    "build_optimal_forest_receive_all",
    "build_optimal_tree_receive_all",
    "merge_cost_receive_all",
    "optimal_full_cost_receive_all",
    "buffer_requirement",
    "build_optimal_bounded_forest",
    "optimal_bounded_full_cost",
    "OnlineScheduler",
    "build_online_flat_forest",
    "build_online_forest",
    "online_full_cost",
    "online_over_optimal_ratio",
    "online_tree_size",
    "ReceivingProgram",
    "forest_programs",
    "receive_all_program",
    "receive_two_program",
    "bandwidth_timeline",
    "forest_stats",
    "is_fibonacci_tree",
    "merge_hop_histogram",
    "tree_stats",
    "optimal_forest_general",
    "optimal_forest_general_reference",
    "optimal_full_cost_general",
    "optimal_merge_cost_general",
    "optimal_merge_tree_general",
    "export_client_schedules",
    "forest_from_json",
    "forest_to_json",
    "load_forest",
    "save_forest",
    "bounds",
    "dp",
]

"""The (alpha, beta)-dyadic stream merging algorithm (Coffman, Jelenkovic,
Momcilovic [9]) — the on-line comparator of Section 4.2.

For a root stream started at ``x``, arrivals up to the cutoff
``y = x + beta * L`` may merge into it.  The window ``[x, y]`` is split into
geometrically shrinking *dyadic intervals* (Fig. 10)

    I_1 = [x + (y-x)/alpha,   y]            (nearest the cutoff)
    I_i = [x + (y-x)/alpha^i, x + (y-x)/alpha^{i-1})   for i >= 2,

the earliest arrival inside each non-empty interval becomes a child of the
root, and the construction recurses inside each interval with the child as
the new root and the interval's right edge as the new cutoff.  Arrivals
after the cutoff start a new root.  The original paper used ``alpha = 2``
and ``beta = 0.5``; Bar-Noy et al. run it with ``alpha = phi`` and
``beta = 0.5`` for Poisson arrivals / ``beta = F_h / L`` for constant-rate
arrivals (Section 4.2).

Because arrivals are processed in increasing time order and interval
indices only decrease along time within a window, the algorithm is
implementable on-line with a stack holding the current rightmost path
(``DyadicOnline``); the batch recursion (:func:`dyadic_forest`) is the
specification.  Both produce identical forests (tested).  Both build
``MergeNode`` objects and serve as the *oracles* for the flat twins in
:mod:`repro.fastpath.dyadic` (``dyadic_flat_forest`` /
``DyadicFlatOnline``), which the simulation policies and catalog
provisioning sweeps actually run on.

Costs are the receive-two costs of the resulting merge forest: roots pay
``L``, a non-root ``v`` pays ``l(v) = 2 z(v) - v - p(v)`` (Lemma 1, valid
for general arrival times per [6]).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.fibonacci import PHI, fib, tree_size_index
from ..core.merge_tree import MergeForest, MergeNode, MergeTree
from ..core.validation import check_finite_value, check_strictly_increasing

__all__ = [
    "DyadicParams",
    "dyadic_interval_index",
    "dyadic_tree",
    "dyadic_forest",
    "dyadic_cost",
    "DyadicOnline",
    "paper_beta",
]


@dataclass(frozen=True)
class DyadicParams:
    """Algorithm parameters: interval ratio ``alpha`` and cutoff ``beta``.

    ``alpha > 1``; ``beta in (0, 1]`` is the root-merge window as a fraction
    of the stream length ``L``.  ``beta <= (L-1)/L`` keeps every tree span
    within ``L - 1`` (required for the last arrival to finish merging);
    the paper's choices (0.5 or F_h/L) always satisfy that for ``L >= 2``.
    """

    alpha: float = PHI
    beta: float = 0.5

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError(f"alpha must exceed 1, got {self.alpha}")
        if not 0.0 < self.beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {self.beta}")

    def window(self, L: float) -> float:
        """Root-merge window length ``beta * L``."""
        return self.beta * L


def paper_beta(L: int, arrivals: str) -> float:
    """The beta the paper uses per workload type (Section 4.2).

    ``beta = 0.5`` for Poisson arrivals and ``beta = F_h / L`` for
    constant-rate arrivals, where ``F_{h+1} < L + 2 <= F_{h+2}`` — chosen
    because the optimal number of arrivals per tree is roughly ``F_h``
    (Theorem 12).
    """
    if arrivals == "poisson":
        return 0.5
    if arrivals == "constant":
        return fib(tree_size_index(L)) / L
    raise ValueError(f"unknown arrival type {arrivals!r}")


#: Smallest allowed relative offset ``(t - x) / (y - x)`` of an arrival
#: inside a dyadic window.  Below this the interval index would exceed any
#: realistic tree depth (and float arithmetic degenerates); real media
#: timelines are nowhere near this resolution.
MIN_RELATIVE_GAP: float = 1e-12


def dyadic_interval_index(t: float, x: float, y: float, alpha: float) -> int:
    """Index ``i >= 1`` of the dyadic interval of ``[x, y]`` containing ``t``.

    ``t`` must satisfy ``x < t <= y``.  Interval 1 is nearest ``y``; the
    left edges are ``x + (y - x) / alpha^i``.  Computed from a logarithm
    and then corrected by +-1 steps so boundary arrivals land in the
    closed-left interval deterministically.
    """
    if not x < t <= y:
        raise ValueError(f"t={t} outside ({x}, {y}]")
    g = (t - x) / (y - x)
    if g < MIN_RELATIVE_GAP:
        raise ValueError(
            f"arrival {t} is within {g:.3e} of its window start {x} "
            f"(relative); below the {MIN_RELATIVE_GAP} resolution limit"
        )
    log_alpha = math.log(alpha)
    i = max(1, int(math.floor(-math.log(g) / log_alpha)) + 1)
    # Correct float-log drift: enforce alpha^-i <= g (< alpha^-(i-1) unless i=1).
    while alpha ** (-i) > g:
        i += 1
    while i > 1 and alpha ** (-(i - 1)) <= g:
        i -= 1
    return i


def _build_subtree(
    root_time: float,
    cutoff: float,
    arrivals: Sequence[float],
    alpha: float,
) -> MergeNode:
    """Recursive specification: subtree rooted at ``root_time`` over
    ``arrivals`` (all in ``(root_time, cutoff]``, increasing)."""
    node = MergeNode(root_time)
    if not arrivals:
        return node
    # Group consecutive arrivals by their dyadic interval index.  Indices
    # are non-increasing over increasing time, so groups are contiguous.
    groups: List[Tuple[int, List[float]]] = []
    for t in arrivals:
        idx = dyadic_interval_index(t, root_time, cutoff, alpha)
        if groups and groups[-1][0] == idx:
            groups[-1][1].append(t)
        else:
            groups.append((idx, [t]))
    # Earliest arrival of each group becomes a child; recurse on the rest.
    # Children must be attached in increasing time = reversed group order
    # (higher interval index = closer to the root's start time = earlier).
    for idx, members in sorted(groups, key=lambda g: -g[0]):
        child_time = members[0]
        span = cutoff - root_time
        hi = root_time + span / alpha ** (idx - 1)
        child = _build_subtree(child_time, hi, members[1:], alpha)
        child.parent = node
        node.children.append(child)
    return node


def dyadic_tree(
    arrivals: Sequence[float], L: float, params: DyadicParams = DyadicParams()
) -> MergeTree:
    """Dyadic merge tree for arrivals that all merge to the first one.

    All arrivals must lie within ``arrivals[0] + beta * L``.
    """
    ts = list(arrivals)
    if not ts:
        raise ValueError("need at least one arrival")
    check_strictly_increasing(ts, what="arrivals")
    root, rest = ts[0], ts[1:]
    cutoff = root + params.window(L)
    if rest and rest[-1] > cutoff:
        raise ValueError(
            f"arrival {rest[-1]} beyond the root cutoff {cutoff}; "
            "use dyadic_forest"
        )
    return MergeTree(_build_subtree(root, cutoff, rest, params.alpha))


def dyadic_forest(
    arrivals: Sequence[float], L: float, params: DyadicParams = DyadicParams()
) -> MergeForest:
    """Dyadic merge forest over an arbitrary increasing arrival sequence.

    A new root starts whenever an arrival falls beyond the current root's
    cutoff ``root + beta * L``.
    """
    ts = list(arrivals)
    if not ts:
        raise ValueError("need at least one arrival")
    check_strictly_increasing(ts, what="arrivals")
    trees: List[MergeTree] = []
    i = 0
    while i < len(ts):
        root = ts[i]
        cutoff = root + params.window(L)
        j = i + 1
        while j < len(ts) and ts[j] <= cutoff:
            j += 1
        trees.append(
            MergeTree(_build_subtree(root, cutoff, ts[i + 1 : j], params.alpha))
        )
        i = j
    return MergeForest(trees)


def dyadic_cost(
    arrivals: Sequence[float], L: float, params: DyadicParams = DyadicParams()
) -> float:
    """Total receive-two bandwidth of the dyadic solution (in slot units).

    Evaluated on the flat fast path (vectorised construction + ``Fcost``);
    the recursive :func:`dyadic_forest` above is the structural oracle it
    is property-tested against.
    """
    from ..fastpath.dyadic import dyadic_flat_forest

    return dyadic_flat_forest(arrivals, L, params).full_cost(L)


# ---------------------------------------------------------------------------
# On-line (stack) implementation
# ---------------------------------------------------------------------------


@dataclass
class _StackEntry:
    node: MergeNode
    cutoff: float  # right edge of the window this node owns
    last_child_interval: Optional[int]  # dyadic index of the last child


class DyadicOnline:
    """Incremental dyadic merging: feed arrivals one at a time.

    Maintains the rightmost path as a stack.  For each new arrival the
    placement walks down the rightmost path: at node ``v`` (window
    ``[v, cutoff_v]``) the arrival's dyadic interval index either equals the
    index of ``v``'s last child (descend into that child) or is strictly
    smaller (becomes a new last child of ``v``).  Indices along increasing
    time never grow, which is what makes the on-line construction agree
    with the batch recursion.

    ``finish()`` returns the accumulated :class:`MergeForest`.
    """

    def __init__(self, L: float, params: DyadicParams = DyadicParams()):
        if L <= 0:
            raise ValueError(f"L must be positive, got {L}")
        self.L = L
        self.params = params
        self._roots: List[MergeNode] = []
        self._stack: List[_StackEntry] = []
        self._last_time: Optional[float] = None

    def push(self, t: float) -> MergeNode:
        """Process the arrival at time ``t`` (strictly increasing).

        Returns the newly placed node (its ``parent`` chain gives the
        receiving path, which merging simulators use to extend ancestor
        streams per Lemma 1).
        """
        check_finite_value(t, what="arrival")
        if self._last_time is not None and t <= self._last_time:
            raise ValueError(
                f"arrivals must be strictly increasing: {t} after {self._last_time}"
            )
        self._last_time = t
        if not self._stack or t > self._stack[0].cutoff:
            root = MergeNode(t)
            self._roots.append(root)
            self._stack = [
                _StackEntry(root, t + self.params.window(self.L), None)
            ]
            return root
        # Walk down from the root of the current tree along the stack.
        depth = 0
        while True:
            entry = self._stack[depth]
            idx = dyadic_interval_index(
                t, entry.node.arrival, entry.cutoff, self.params.alpha
            )
            if entry.last_child_interval is not None and idx == entry.last_child_interval:
                depth += 1  # belongs inside the current last child's window
                continue
            if entry.last_child_interval is not None and idx > entry.last_child_interval:
                raise AssertionError(
                    "dyadic interval index increased along time — "
                    "ordering invariant broken"
                )
            # New child of entry.node in interval idx.
            span = entry.cutoff - entry.node.arrival
            hi = entry.node.arrival + span / self.params.alpha ** (idx - 1)
            child = MergeNode(t)
            child.parent = entry.node
            entry.node.children.append(child)
            entry.last_child_interval = idx
            del self._stack[depth + 1 :]
            self._stack.append(_StackEntry(child, hi, None))
            return child

    def extend(self, arrivals: Sequence[float]) -> None:
        for t in arrivals:
            self.push(t)

    def finish(self) -> MergeForest:
        if not self._roots:
            raise ValueError("no arrivals were pushed")
        return MergeForest([MergeTree(r) for r in self._roots])

"""The sweep engine: enumerate, cache-check, shard, evaluate, column-pack.

``run_sweep`` drives a :class:`~repro.sweeps.spec.SweepSpec` end to end:

1. enumerate the grid (row-major, last axis fastest);
2. look every point up in the artifact cache (content hash over
   evaluator + fixed params + point) — only *dirty* points evaluate;
3. fan dirty points over worker processes through the fleet tier's
   :func:`~repro.fleet.runner.pool_map` (same pool/fold machinery the
   catalog runner uses; results fold back in point order, so output is
   independent of the worker count);
4. pack results into a columnar :class:`SweepResult` — one numpy array
   per axis and per metric.

Process-wide defaults for ``workers`` and ``cache`` are set by the CLI
(:func:`configure_sweeps`); library callers can always pass explicit
values (``cache=False`` force-disables even a configured default).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..fleet.runner import pool_map
from ..scale.kernels import active_backend, configure_backend
from .cache import SweepCache
from .spec import SweepSpec

__all__ = [
    "SweepResult",
    "run_sweep",
    "configure_sweeps",
    "sweep_defaults",
]

_DEFAULTS: Dict[str, object] = {"workers": 0, "cache": None, "backend": None}


def configure_sweeps(
    workers: Optional[int] = None,
    cache: Union[SweepCache, str, None, bool] = None,
    backend: Optional[str] = None,
) -> None:
    """Set process-wide sweep defaults (the CLI's
    ``--workers/--cache/--backend``).  ``backend`` also reconfigures the
    kernel backend of *this* process (see
    :func:`repro.scale.kernels.configure_backend`)."""
    if workers is not None:
        _DEFAULTS["workers"] = int(workers)
    if cache is not None:
        _DEFAULTS["cache"] = _normalise_cache(cache)
    if backend is not None:
        _DEFAULTS["backend"] = configure_backend(backend)


def sweep_defaults() -> Dict[str, object]:
    return dict(_DEFAULTS)


def _normalise_cache(cache) -> Optional[SweepCache]:
    if cache is False:
        return None
    if cache is True:
        return SweepCache()
    if isinstance(cache, (str, bytes)) or hasattr(cache, "__fspath__"):
        return SweepCache(cache)
    return cache


def _column(values: Sequence) -> np.ndarray:
    """Pack one column, preserving Python value types exactly.

    All-int -> int64, all-float -> float64, all-bool -> bool; anything
    mixed or non-numeric stays an object array so ``rows()`` hands back
    the very objects the evaluator produced (no silent int->float
    coercion corrupting golden tables).
    """
    types = {type(v) for v in values}
    if types <= {bool}:
        return np.array(values, dtype=bool)
    if types <= {int}:
        return np.array(values, dtype=np.int64)
    if types <= {float}:
        return np.array(values, dtype=np.float64)
    out = np.empty(len(values), dtype=object)
    out[:] = list(values)
    return out


@dataclass
class SweepResult:
    """Columnar result table: one array per axis and per metric."""

    spec: SweepSpec
    columns: Dict[str, np.ndarray]
    cache_hits: int = 0
    cache_misses: int = 0
    evaluated: int = 0
    #: kernel backend the dirty points were evaluated under ("numpy" or
    #: "numba").  Informational: both backends are contract-tested
    #: bit-identical, which is also why cache keys ignore it — cached
    #: artifacts are backend-portable by construction.
    backend: str = "numpy"

    @property
    def n_points(self) -> int:
        return self.spec.n_points

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def values(self, name: str) -> List:
        """One column as Python scalars (numpy types collapsed)."""
        return self.columns[name].tolist()

    def rows(self, *names: str) -> List[Tuple]:
        """Point-order tuples over the requested columns (all by default)."""
        use = names or tuple(self.columns)
        cols = [self.values(n) for n in use]
        return list(zip(*cols))

    def records(self) -> List[Dict[str, object]]:
        names = list(self.columns)
        return [dict(zip(names, row)) for row in self.rows(*names)]

    def columns_json(self) -> Dict[str, object]:
        """Columnar JSON payload (the ``--save`` twin of the text table)."""
        return {
            "sweep": self.spec.name,
            "n_points": self.n_points,
            "axes": list(self.spec.axis_names),
            "metrics": list(self.spec.metrics),
            "backend": self.backend,
            "columns": {name: self.values(name) for name in self.columns},
        }


def _eval_point(args) -> Dict[str, object]:
    """Worker entry: apply the evaluator to fixed params + one point.

    The backend rides along with every task so spawned workers (which do
    not inherit the parent's in-process kernel configuration) evaluate
    under the same backend the parent resolved; configure_backend is a
    cached no-op when already set.
    """
    evaluator, params, backend = args
    configure_backend(backend)
    return dict(evaluator(**params))


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    cache: Union[SweepCache, str, None, bool] = None,
    seed=None,
    backend: Optional[str] = None,
) -> SweepResult:
    """Evaluate a sweep spec into a columnar result table.

    ``workers``/``cache``/``backend`` default to the process-wide
    configuration (:func:`configure_sweeps`); ``cache=False`` disables
    caching for this run regardless.  ``seed`` feeds the per-point
    ``SeedSequence`` spawn when ``spec.spawn_seeds`` — spawned points
    cache only under an explicit seed (entropy-seeded draws are not
    reproducible artifacts).  ``backend`` selects the kernel backend for
    this run's point evaluations (shipped to every worker); values are
    bit-identical either way, so it only changes speed.
    """
    workers = int(_DEFAULTS["workers"]) if workers is None else int(workers)
    cache = _DEFAULTS["cache"] if cache is None else _normalise_cache(cache)
    if backend is not None:
        backend = configure_backend(backend)
    elif _DEFAULTS["backend"] is not None:
        backend = configure_backend(str(_DEFAULTS["backend"]))
    else:
        backend = active_backend()
    if not spec.cacheable:
        cache = None

    points = spec.points()
    params: List[Dict[str, object]] = [dict(spec.fixed, **p) for p in points]
    keys: List[Optional[str]] = [None] * len(points)
    if spec.spawn_seeds:
        children = np.random.SeedSequence(seed).spawn(len(points))
        for i, (prm, child) in enumerate(zip(params, children)):
            prm["seed_seq"] = child
        if cache is not None and seed is not None:
            keys = [
                spec.point_key(p, extra={"base_seed": seed, "index": i})
                for i, p in enumerate(points)
            ]
    elif cache is not None:
        keys = [spec.point_key(p) for p in points]

    results: List[Optional[Dict[str, object]]] = [None] * len(points)
    hits = misses = 0
    if cache is not None:
        for i, key in enumerate(keys):
            if key is None:
                continue
            got = cache.get(key)
            if got is None:
                misses += 1
            else:
                hits += 1
                results[i] = got

    dirty = [i for i, r in enumerate(results) if r is None]
    args = [(spec.evaluator, params[i], backend) for i in dirty]
    for i, metrics in zip(dirty, pool_map(_eval_point, args, workers=workers)):
        missing = set(spec.metrics) - set(metrics)
        if missing:
            raise KeyError(
                f"evaluator {spec.evaluator_id} returned no "
                f"{sorted(missing)} for point {points[i]}"
            )
        results[i] = metrics
        if cache is not None and keys[i] is not None:
            cache.put(keys[i], metrics)

    columns: Dict[str, np.ndarray] = {}
    for axis in spec.axes:
        columns[axis.name] = _column([p[axis.name] for p in points])
    for metric in spec.metrics:
        columns[metric] = _column([r[metric] for r in results])
    return SweepResult(
        spec=spec,
        columns=columns,
        cache_hits=hits,
        cache_misses=misses,
        evaluated=len(dirty),
        backend=backend,
    )

# Developer entry points.  The repo is run in-place (no install step):
# everything goes through PYTHONPATH=src, matching ROADMAP's tier-1 line.

PY := PYTHONPATH=src$(if $(PYTHONPATH),:$(PYTHONPATH)) python

.PHONY: test bench bench-smoke

## tier-1 test suite (must stay green)
test:
	$(PY) -m pytest -x -q

## full fastpath sweep: regenerates BENCH_fastpath.json at the repo root
bench:
	$(PY) benchmarks/bench_fastpath.py

## quick pytest-benchmark pass over the fastpath smoke cases (CI job)
bench-smoke:
	$(PY) -m pytest benchmarks/bench_fastpath.py --benchmark-only -q

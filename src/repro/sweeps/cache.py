"""Content-addressed artifact cache for sweep points.

One JSON file per evaluated grid point, keyed by the point's content hash
(:meth:`repro.sweeps.spec.SweepSpec.point_key`), so re-rendering a figure
after a parameter tweak recomputes only the dirty points: untouched
points hit the cache, edited axes/fixed params/evaluators miss by
construction (the hash covers them all).

Values are restricted to JSON scalars (str/int/float/bool/None): Python's
``repr``-based float serialisation round-trips IEEE doubles exactly, so a
cache hit returns bit-identical metrics to a fresh evaluation.  Writes go
through a temp file + rename, making concurrent sweeps over one cache
directory safe (last writer wins with an intact artifact either way).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["SweepCache", "DEFAULT_CACHE_DIR"]

#: conventional cache location (repo-root relative); gitignored.
DEFAULT_CACHE_DIR = ".sweep-cache"

_SCALARS = (str, int, float, bool, type(None))


class SweepCache:
    """Directory-backed point-result store: ``<root>/<hh>/<hash>.json``."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """The cached metrics dict, or None on a miss (or torn artifact)."""
        try:
            payload = json.loads(self.path(key).read_text())
        except (FileNotFoundError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        return payload["metrics"]

    def put(self, key: str, metrics: Dict[str, object]) -> None:
        for name, value in metrics.items():
            if not isinstance(value, _SCALARS):
                raise TypeError(
                    f"metric {name!r} = {value!r} is not a JSON scalar; "
                    "sweep caching needs scalar metrics (mark the spec "
                    "cacheable=False for richer payloads)"
                )
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=target.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump({"schema": "repro.sweep-point.v1", "metrics": metrics}, fh)
            os.replace(tmp, target)
        except BaseException:
            with_suppress_unlink(tmp)
            raise

    def clear(self) -> int:
        """Delete every artifact under the root; returns the count."""
        removed = 0
        if self.root.exists():
            for p in self.root.rglob("*.json"):
                with_suppress_unlink(str(p))
                removed += 1
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.root.rglob("*.json")) if self.root.exists() else 0


def with_suppress_unlink(path: str) -> None:
    try:
        os.unlink(path)
    except OSError:
        pass

"""Tests for multi-object workloads and peak-bandwidth provisioning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import ArrivalTrace, poisson
from repro.multiplex import (
    Catalog,
    MediaObject,
    aggregate_peak,
    aggregate_profile,
    catalog_workload,
    dg_object_load,
    dyadic_object_load,
    min_delay_for_budget,
    serve_catalog,
    split_requests,
)
from repro.multiplex.server import ObjectLoad


def make_load(triples, name="synthetic", L=10, delay=1.0):
    """An ObjectLoad straight from (label, start, end) triples."""
    labels = np.array([t[0] for t in triples], dtype=np.float64)
    starts = np.array([t[1] for t in triples], dtype=np.float64)
    ends = np.array([t[2] for t in triples], dtype=np.float64)
    return ObjectLoad(
        name=name,
        L=L,
        delay_minutes=delay,
        total_units_minutes=float(np.sum(ends - starts)),
        labels=labels,
        starts=starts,
        ends=ends,
    )


def sweep_peak(loads):
    """The pre-vectorisation event-sweep aggregate peak (oracle).

    Keep in sync with ``reference_aggregate_peak`` in
    ``benchmarks/bench_general.py`` (same frozen sweep; benchmarks are
    not importable from here without path games, so the 12 lines are
    duplicated deliberately).
    """
    events = []
    for load in loads:
        for s in load.intervals:
            events.append((s.start, 1))
            events.append((s.end, -1))
    events.sort(key=lambda e: (e[0], e[1]))  # ends before starts at ties
    level = peak = 0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(6, duration_minutes=120.0, exponent=0.8)


class TestSplitRequests:
    def test_conserves_requests(self, catalog):
        trace = poisson(1.0, 300.0, seed=0)
        per_object = split_requests(trace, catalog, seed=1)
        assert sum(len(t) for t in per_object.values()) == len(trace)
        assert set(per_object) == {o.name for o in catalog}

    def test_popularity_ordering_statistical(self, catalog):
        trace = poisson(0.05, 2000.0, seed=0)  # ~40k requests
        per_object = split_requests(trace, catalog, seed=2)
        counts = [len(per_object[o.name]) for o in catalog]
        # top title clearly busier than bottom title
        assert counts[0] > 2 * counts[-1]

    def test_reproducible(self, catalog):
        trace = poisson(1.0, 200.0, seed=0)
        a = split_requests(trace, catalog, seed=3)
        b = split_requests(trace, catalog, seed=3)
        assert all(a[k].times == b[k].times for k in a)

    def test_catalog_workload_end_to_end(self, catalog):
        wl = catalog_workload(catalog, 2.0, 400.0, seed=4)
        assert set(wl) == {o.name for o in catalog}
        assert all(t.horizon == 400.0 for t in wl.values())


class TestObjectLoads:
    def test_dg_load_deterministic(self):
        obj = MediaObject("m", 120.0, 1.0)
        a = dg_object_load(obj, 15.0, 480.0)
        b = dg_object_load(obj, 15.0, 480.0)
        assert a.intervals == b.intervals
        assert a.L == 8
        assert a.total_units_minutes > 0
        assert a.peak >= 1

    def test_dg_load_peak_decreases_with_delay(self):
        obj = MediaObject("m", 120.0, 1.0)
        peaks = [dg_object_load(obj, d, 720.0).peak for d in (5.0, 15.0, 30.0)]
        assert peaks[0] >= peaks[1] >= peaks[2]

    def test_dyadic_load_empty_trace(self):
        obj = MediaObject("m", 120.0, 1.0)
        empty = ArrivalTrace(times=(), horizon=480.0)
        load = dyadic_object_load(obj, 15.0, empty)
        assert load.total_units_minutes == 0.0
        assert load.peak == 0

    def test_dyadic_load_scales_with_requests(self):
        obj = MediaObject("m", 120.0, 1.0)
        sparse = poisson(60.0, 960.0, seed=5)
        dense = poisson(5.0, 960.0, seed=5)
        lo = dyadic_object_load(obj, 15.0, sparse)
        hi = dyadic_object_load(obj, 15.0, dense)
        assert hi.total_units_minutes > lo.total_units_minutes


class TestAggregation:
    def test_aggregate_peak_sums_overlaps(self):
        obj = MediaObject("m", 60.0, 1.0)
        load = dg_object_load(obj, 15.0, 240.0)
        assert aggregate_peak([load, load]) == 2 * load.peak

    def test_profile_matches_peak(self):
        obj = MediaObject("m", 120.0, 1.0)
        load = dg_object_load(obj, 15.0, 480.0)
        prof = aggregate_profile([load], 0.0, 720.0, resolution=1.0)
        assert prof.max() == load.peak

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            aggregate_profile([], 10.0, 5.0, 1.0)

    def test_aggregate_peak_matches_event_sweep(self, catalog):
        wl = catalog_workload(catalog, 2.0, 480.0, seed=11)
        report = serve_catalog(catalog, 15.0, 480.0, policy="dyadic", workload=wl)
        assert aggregate_peak(report.loads) == sweep_peak(report.loads)

    def test_aggregate_peak_empty(self):
        assert aggregate_peak([]) == 0

    def test_short_stream_counts_in_profile(self):
        # Regression: ceil on both bin edges made any stream shorter than
        # the resolution vanish from the profile entirely.
        load = make_load([(0.5, 0.2, 0.8)])
        prof = aggregate_profile([load], 0.0, 1.0, resolution=1.0)
        assert prof.tolist() == [1]
        assert prof.max() >= aggregate_peak([load])

    def test_profile_over_approximates_peak(self):
        # Bin-occupancy semantics: a stream touching a bin counts for the
        # whole bin, so the profile can exceed — never undercut — the peak.
        load = make_load([(1, 0.0, 1.5), (2, 1.6, 3.0)])  # never concurrent
        prof = aggregate_profile([load], 0.0, 3.0, resolution=1.0)
        assert aggregate_peak([load]) == 1
        assert prof.max() == 2  # both touch bin [1, 2)
        assert prof.max() >= aggregate_peak([load])

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=200),
                st.integers(min_value=1, max_value=80),
            ),
            min_size=1,
            max_size=30,
        ),
        st.floats(min_value=0.1, max_value=7.0, allow_nan=False),
    )
    def test_profile_max_dominates_peak_randomized(self, raw, resolution):
        load = make_load(
            [(i, s / 3.0, (s + d) / 3.0) for i, (s, d) in enumerate(raw)]
        )
        t1 = float(load.ends.max()) + resolution
        prof = aggregate_profile([load], 0.0, t1, resolution=resolution)
        assert prof.max() >= aggregate_peak([load])
        assert aggregate_peak([load]) == sweep_peak([load])

    def test_profile_max_dominates_peak_catalog(self, catalog):
        report = serve_catalog(catalog, 13.0, 480.0, policy="dg")
        t1 = max(float(l.ends.max()) for l in report.loads) + 1.0
        prof = aggregate_profile(report.loads, 0.0, t1, resolution=7.3)
        assert prof.max() >= report.peak_channels


class TestServeCatalog:
    def test_dg_report(self, catalog):
        report = serve_catalog(catalog, 15.0, 480.0, policy="dg")
        assert len(report.loads) == len(catalog)
        assert report.peak_channels >= len(catalog)  # one live stream each min.
        assert report.total_units_minutes > 0

    def test_dyadic_requires_workload(self, catalog):
        with pytest.raises(ValueError):
            serve_catalog(catalog, 15.0, 480.0, policy="dyadic")

    def test_unknown_policy(self, catalog):
        with pytest.raises(ValueError):
            serve_catalog(catalog, 15.0, 480.0, policy="quantum")

    def test_dyadic_report(self, catalog):
        wl = catalog_workload(catalog, 2.0, 480.0, seed=6)
        report = serve_catalog(catalog, 15.0, 480.0, policy="dyadic", workload=wl)
        assert report.clients == sum(len(t) for t in wl.values())
        assert report.peak_channels > 0

    def test_busiest_objects(self, catalog):
        report = serve_catalog(catalog, 15.0, 480.0, policy="dg")
        top = report.busiest_objects(3)
        assert len(top) == 3
        assert top[0].total_units_minutes >= top[-1].total_units_minutes


class TestDelayForBudget:
    def test_monotone_knob(self, catalog):
        peaks = [
            serve_catalog(catalog, d, 480.0, policy="dg").peak_channels
            for d in (5.0, 10.0, 20.0)
        ]
        assert peaks[0] >= peaks[1] >= peaks[2]

    def test_finds_smallest_feasible(self, catalog):
        candidates = (5.0, 10.0, 20.0, 40.0)
        peak_at_10 = serve_catalog(catalog, 10.0, 480.0, policy="dg").peak_channels
        chosen = min_delay_for_budget(catalog, 480.0, peak_at_10, candidates)
        assert chosen is not None and chosen <= 10.0

    def test_infeasible_budget(self, catalog):
        assert min_delay_for_budget(catalog, 480.0, 1, (5.0, 10.0)) is None

    def test_bad_budget(self, catalog):
        with pytest.raises(ValueError):
            min_delay_for_budget(catalog, 480.0, 0, (5.0,))


class TestSplitRequestsVectorised:
    """The argsort/grouping split must reproduce the retired per-request
    Python bucket loop byte for byte (same RNG draws, same traces)."""

    @staticmethod
    def reference_split(trace, catalog, seed=None):
        """The pre-vectorisation implementation, frozen as the oracle."""
        from repro.arrivals.generators import rng_from

        rng = rng_from(seed)
        picks = rng.choice(len(catalog), size=len(trace), p=catalog.weights())
        buckets = {o.name: [] for o in catalog}
        for t, k in zip(trace, picks):
            buckets[catalog[int(k)].name].append(t)
        return {
            name: ArrivalTrace(times=tuple(times), horizon=trace.horizon)
            for name, times in buckets.items()
        }

    @pytest.mark.parametrize("seed", [0, 7, 12345])
    def test_byte_identical_to_reference_loop(self, seed):
        catalog = Catalog.zipf(13, duration_minutes=45.0)
        trace = poisson(0.2, 240.0, seed=99)
        fast = split_requests(trace, catalog, seed=seed)
        slow = self.reference_split(trace, catalog, seed=seed)
        assert fast.keys() == slow.keys()
        for name in fast:
            assert fast[name].times == slow[name].times
            assert fast[name].horizon == slow[name].horizon

    def test_empty_trace(self):
        catalog = Catalog.zipf(4)
        empty = ArrivalTrace(times=(), horizon=10.0)
        out = split_requests(empty, catalog, seed=1)
        assert set(out) == {o.name for o in catalog}
        assert all(len(t) == 0 and t.horizon == 10.0 for t in out.values())

    def test_single_object_catalog_gets_everything(self):
        catalog = Catalog([MediaObject("only", 60.0, 1.0)])
        trace = poisson(0.5, 60.0, seed=2)
        out = split_requests(trace, catalog, seed=3)
        assert out["only"].times == trace.times

"""Incremental flat merge forests for the rolling-horizon live tier.

The batch builder :func:`~repro.fastpath.dyadic.dyadic_flat_forest` and
the stack machine :class:`~repro.fastpath.dyadic.DyadicFlatOnline` both
assume the full arrival sequence is available (or at least retained): the
batch path rebuilds from scratch, and the online path grows its arrays
forever.  A long-running daemon needs three operations neither provides:

* **append-arrival** — place one strictly-later arrival, amortised
  O(log n) (the rightmost-path walk of ``DyadicFlatOnline``);
* **extend-stream** — maintain the subtree maxima ``z`` *as arrivals
  land*, so every node's Lemma 1 receive-two length ``2 z - x - p`` is
  current at all times (the batch path only knows ``z`` after the fact);
  an append updates exactly the rightmost path, O(depth);
* **evict-completed-tree** — pop finished trees off the front and forget
  their nodes, so live memory is O(open window), not O(history).

:class:`IncrementalFlatForest` provides all three plus a vectorised bulk
ingest (:meth:`push_batch`) for epoch batches: arrivals that open *and
close* whole dyadic windows inside one batch are routed through the
vectorised ``dyadic_flat_forest`` (tree structure depends only on the
tree's own members, so building completed windows wholesale is exact),
and the still-open final window is absorbed by reconstructing the
rightmost-path stack from its built tree — bit-identical to pushing every
arrival through the scalar stack machine, which the equivalence tests
assert on every prefix.

Eviction contract.  A tree rooted at ``r`` can only change while an
arrival ``t <= r + window`` may still arrive (later arrivals start new
roots).  ``evict_committable(fence)`` therefore pops every leading tree
whose window end (``cutoff = r + window``) lies strictly before
``fence``; the caller promises no future push at or below any committed
cutoff, and the forest enforces it — a push at or below the committed
watermark raises rather than silently corrupting an already-emitted
tree.  Committed trees come back as contiguous, self-contained
:class:`~repro.fastpath.flat_forest.FlatForest` slices (with their final
``z`` arrays), in tree order, which is also global arrival order — so
concatenating committed trees with the live remainder reproduces the
batch construction node for node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..baselines.dyadic import DyadicParams, dyadic_interval_index
from ..core.validation import check_finite_value
from .dyadic import dyadic_flat_forest
from .flat_forest import FlatForest

__all__ = ["CommittedTree", "IncrementalFlatForest"]

#: batch-prefix size above which extending the open tree switches from
#: scalar pushes to a vectorised whole-tree rebuild.
_BULK_REBUILD_MIN = 16


@dataclass(frozen=True)
class CommittedTree:
    """One finished tree popped off the front of the incremental forest.

    ``root_id`` is the tree root's global node id (ids count every node
    ever pushed, evicted or not); ``cutoff`` the tree's window end —
    strictly before the fence that committed it; ``forest`` the tree as a
    self-contained single-tree :class:`FlatForest` (local parent indices,
    final ``z``).
    """

    root_id: int
    cutoff: float
    forest: FlatForest

    def __len__(self) -> int:
        return len(self.forest)


class _StackEntry:
    __slots__ = ("node", "arrival", "cutoff", "last_child_interval")

    def __init__(
        self,
        node: int,
        arrival: float,
        cutoff: float,
        last_child_interval: Optional[int],
    ):
        self.node = node
        self.arrival = arrival
        self.cutoff = cutoff
        self.last_child_interval = last_child_interval


class IncrementalFlatForest:
    """A dyadic merge forest that grows at the right and shrinks at the left.

    Node ids are global and monotone (the id of the k-th push is ``k``,
    forever); live nodes occupy ids ``[offset, offset + live)`` where
    ``offset`` counts evicted nodes.  All times are in the caller's units
    (the live daemon works in slot units of its delay guarantee).
    """

    def __init__(self, L: float, params: DyadicParams = DyadicParams()):
        if L <= 0:
            raise ValueError(f"L must be positive, got {L}")
        self.L = L
        self.params = params
        self._window = params.window(L)
        # Live node storage, local index = global id - offset.  Parents
        # are stored as global ids (-1 for roots); they never cross tree
        # boundaries, so every live node's parent is live.
        self._arrivals: List[float] = []
        self._parent: List[int] = []
        self._z: List[float] = []
        self._offset = 0
        # Live trees, oldest first: global root ids and window ends.
        self._tree_roots: List[int] = []
        self._tree_cutoffs: List[float] = []
        # Rightmost path of the newest tree (the only tree that can grow).
        self._stack: List[_StackEntry] = []
        self._last_time: Optional[float] = None
        #: highest committed window end; pushes must land strictly above.
        self._watermark = -math.inf

    # -- queries ---------------------------------------------------------------

    def __len__(self) -> int:
        """Number of *live* (unevicted) nodes."""
        return len(self._arrivals)

    @property
    def total_appended(self) -> int:
        """Nodes ever pushed, evicted or not (== next global id)."""
        return self._offset + len(self._arrivals)

    @property
    def evicted(self) -> int:
        return self._offset

    def num_live_trees(self) -> int:
        return len(self._tree_roots)

    def min_live_cutoff(self) -> Optional[float]:
        """Window end of the oldest live tree (None when empty)."""
        return self._tree_cutoffs[0] if self._tree_cutoffs else None

    def live_forest(self) -> Optional[FlatForest]:
        """The live remainder as a :class:`FlatForest` (None when empty).

        A snapshot copy — local parent indices, current ``z`` (final for
        every tree but the newest, monotone-growing for that one).
        """
        if not self._arrivals:
            return None
        off = self._offset
        parent = np.asarray(self._parent, dtype=np.intp)
        parent[parent >= 0] -= off
        return FlatForest(
            np.asarray(self._arrivals, dtype=np.float64),
            parent,
            z=np.asarray(self._z, dtype=np.float64),
        )

    # -- append / extend -------------------------------------------------------

    def _check_push(self, t: float) -> None:
        check_finite_value(t, what="arrival")
        if self._last_time is not None and t <= self._last_time:
            raise ValueError(
                f"arrivals must be strictly increasing: {t} after {self._last_time}"
            )
        if t <= self._watermark:
            raise RuntimeError(
                f"arrival {t} at or below the committed watermark "
                f"{self._watermark}: a committed tree would have to change"
            )

    def push(self, t: float) -> int:
        """Place one arrival; returns its global node id.

        The ``DyadicFlatOnline`` rightmost-path walk, plus the
        extend-stream half: every rightmost-path ancestor's subtree now
        ends at ``t``, so their ``z`` entries advance — O(depth) total.
        """
        self._check_push(t)
        self._last_time = t
        node = self.total_appended
        off = self._offset
        if not self._stack or t > self._stack[0].cutoff:
            self._arrivals.append(t)
            self._parent.append(-1)
            self._z.append(t)
            cutoff = t + self._window
            self._tree_roots.append(node)
            self._tree_cutoffs.append(cutoff)
            self._stack = [_StackEntry(node, t, cutoff, None)]
            return node
        depth = 0
        while True:
            entry = self._stack[depth]
            idx = dyadic_interval_index(
                t, entry.arrival, entry.cutoff, self.params.alpha
            )
            if entry.last_child_interval is not None and idx == entry.last_child_interval:
                depth += 1  # inside the current last child's window
                continue
            if entry.last_child_interval is not None and idx > entry.last_child_interval:
                raise AssertionError(
                    "dyadic interval index increased along time — "
                    "ordering invariant broken"
                )
            span = entry.cutoff - entry.arrival
            hi = entry.arrival + span / self.params.alpha ** (idx - 1)
            self._arrivals.append(t)
            self._parent.append(entry.node)
            self._z.append(t)
            entry.last_child_interval = idx
            del self._stack[depth + 1 :]
            # extend-stream: t is the new subtree maximum of every node
            # on its receiving path (the surviving stack prefix).
            for anc in self._stack:
                self._z[anc.node - off] = t
            self._stack.append(_StackEntry(node, t, hi, None))
            return node

    def extend(self, arrivals: Sequence[float]) -> None:
        for t in arrivals:
            self.push(t)

    def push_batch(self, arrivals: Union[np.ndarray, Sequence[float]]) -> int:
        """Vectorised bulk append of a sorted arrival batch; returns count.

        Arrivals still inside the open window go through :meth:`push`;
        the rest split into whole dyadic windows.  Every window that is
        *superseded inside the batch* (a later window opened after it)
        is final, so those trees are built in one
        :func:`dyadic_flat_forest` call; the batch's last window becomes
        the new open tree, built the same way and then re-expressed as
        the rightmost-path stack (:meth:`push` continues from it
        seamlessly).  State after ``push_batch(b)`` is identical to
        ``for t in b: push(t)`` — asserted by the fastpath equivalence
        tests — at O(batch) numpy cost instead of O(batch) Python frames.
        """
        ts = np.ascontiguousarray(arrivals, dtype=np.float64)
        if ts.ndim != 1:
            raise ValueError("arrivals must be a 1-D sequence")
        if ts.size == 0:
            return 0
        if not np.isfinite(ts).all():
            raise ValueError("arrivals must be finite")
        if np.any(ts[1:] <= ts[:-1]):
            raise ValueError("arrivals must be strictly increasing")
        self._check_push(float(ts[0]))

        # Prefix that extends the currently open tree.  Small prefixes go
        # through scalar pushes (amortised O(log n) each); large ones
        # rebuild the open tree wholesale with the batch builder — a
        # tree's structure depends only on its own members, so rebuilding
        # from (existing members + prefix) is exact, and vectorised
        # construction beats per-arrival Python walks by orders of
        # magnitude on epoch-sized batches.
        split = 0
        if self._stack:
            split = int(
                np.searchsorted(ts, self._stack[0].cutoff, side="right")
            )
            if split >= _BULK_REBUILD_MIN:
                self._rebuild_open_tree(ts[:split])
            else:
                for t in ts[:split].tolist():
                    self.push(t)
        rest = ts[split:]
        if rest.size == 0:
            return int(ts.size)

        # Window boundaries of the remainder (same rule as the batch
        # builder: a root's window is [r, r + window]).
        starts: List[int] = []
        i = 0
        n = int(rest.size)
        while i < n:
            starts.append(i)
            i = int(np.searchsorted(rest, rest[i] + self._window, side="right"))
        last_start = starts[-1]

        if last_start > 0:
            self._append_built(dyadic_flat_forest(rest[:last_start], self.L, self.params))
        open_tree = dyadic_flat_forest(rest[last_start:], self.L, self.params)
        base = self.total_appended
        self._append_built(open_tree)
        self._rebuild_stack(open_tree, base)
        self._last_time = float(ts[-1])
        return int(ts.size)

    def _rebuild_open_tree(self, prefix: np.ndarray) -> None:
        """Vectorised absorb of a batch prefix into the open tree.

        Every ``prefix`` arrival lies at or below the open root's cutoff,
        so all of it belongs to the open tree; the tree is rebuilt from
        (existing members + prefix) in one :func:`dyadic_flat_forest`
        call.  Node ids are preserved — members keep arrival order, new
        nodes take the next global ids — and the rebuilt parents/``z`` of
        the existing members are bit-identical to what the scalar pushes
        would have left (the builder and the stack machine agree node for
        node on every prefix).
        """
        root = self._tree_roots[-1]
        start = root - self._offset
        members = np.asarray(self._arrivals[start:], dtype=np.float64)
        tree = dyadic_flat_forest(
            np.concatenate([members, prefix]), self.L, self.params
        )
        assert tree.num_trees() == 1, "open-window arrivals split a tree"
        del self._arrivals[start:]
        del self._parent[start:]
        del self._z[start:]
        self._arrivals.extend(tree.arrivals.tolist())
        parent = tree.parent + root
        parent[tree.parent < 0] = -1
        self._parent.extend(parent.tolist())
        self._z.extend(tree.z.tolist())
        self._rebuild_stack(tree, root)
        self._last_time = float(prefix[-1])

    def _append_built(self, built: FlatForest) -> None:
        """Append a batch-built forest's nodes under fresh global ids."""
        base = self.total_appended
        self._arrivals.extend(built.arrivals.tolist())
        parent = built.parent + base
        parent[built.parent < 0] = -1
        self._parent.extend(parent.tolist())
        self._z.extend(built.z.tolist())
        for r in np.nonzero(built.is_root)[0].tolist():
            self._tree_roots.append(base + r)
            self._tree_cutoffs.append(float(built.arrivals[r]) + self._window)

    def _rebuild_stack(self, tree: FlatForest, base: int) -> None:
        """Recompute the rightmost-path stack of a batch-built open tree.

        Walks root -> last child, re-deriving each entry's cutoff and
        ``last_child_interval`` with the exact scalar expressions the
        push path uses, so subsequent pushes continue bit-identically.
        """
        parent = tree.parent
        # last child of each node, by arrival order (children have larger
        # indices; the rightmost path is the chain of last children).
        last_child = np.full(len(tree), -1, dtype=np.intp)
        nonroot = np.nonzero(parent >= 0)[0]
        last_child[parent[nonroot]] = nonroot  # later children overwrite
        node = 0  # tree built from one window: node 0 is the root
        arrival = float(tree.arrivals[0])
        cutoff = arrival + self._window
        stack = []
        while True:
            child = int(last_child[node])
            if child < 0:
                stack.append(_StackEntry(base + node, arrival, cutoff, None))
                break
            child_arrival = float(tree.arrivals[child])
            idx = dyadic_interval_index(
                child_arrival, arrival, cutoff, self.params.alpha
            )
            stack.append(_StackEntry(base + node, arrival, cutoff, idx))
            span = cutoff - arrival
            cutoff = arrival + span / self.params.alpha ** (idx - 1)
            node, arrival = child, child_arrival
        self._stack = stack

    # -- evict -----------------------------------------------------------------

    def evict_committable(self, fence: float) -> List[CommittedTree]:
        """Pop every leading tree whose window end is strictly below ``fence``.

        ``fence = math.inf`` drains everything (end of stream).  After a
        tree is committed, any push at or below its cutoff raises — the
        committed prefix is immutable by construction.
        """
        out: List[CommittedTree] = []
        while self._tree_cutoffs and self._tree_cutoffs[0] < fence:
            root = self._tree_roots.pop(0)
            cutoff = self._tree_cutoffs.pop(0)
            end = (
                self._tree_roots[0]
                if self._tree_roots
                else self._offset + len(self._arrivals)
            )
            count = end - root
            arr = np.asarray(self._arrivals[:count], dtype=np.float64)
            parent = np.asarray(self._parent[:count], dtype=np.intp)
            parent[parent >= 0] -= root
            z = np.asarray(self._z[:count], dtype=np.float64)
            del self._arrivals[:count]
            del self._parent[:count]
            del self._z[:count]
            self._offset += count
            if not self._tree_roots:
                self._stack = []  # the open tree itself was committed
            self._watermark = max(self._watermark, cutoff)
            out.append(
                CommittedTree(
                    root_id=root,
                    cutoff=cutoff,
                    forest=FlatForest(arr, parent, z=z),
                )
            )
        return out

"""Flat (alpha, beta)-dyadic merging — the array twin of ``baselines.dyadic``.

The recursive specification :func:`~repro.baselines.dyadic.dyadic_forest`
and the stack machine :class:`~repro.baselines.dyadic.DyadicOnline` both
materialise a :class:`~repro.core.merge_tree.MergeNode` per arrival, which
makes the dyadic comparator the slowest per-object step in
``multiplex.serve_catalog`` provisioning sweeps and in the dyadic
simulation policies.  This module re-expresses both constructions on
parent-index arrays:

* :func:`dyadic_flat_forest` — the batch construction, vectorised level
  by level: every tree level of every window is classified into dyadic
  intervals in one numpy pass (log + the same +-1 boundary corrections as
  the scalar :func:`~repro.baselines.dyadic.dyadic_interval_index`), run
  boundaries mark the new children, and the remainder of each run drops
  into its child's window for the next pass.  O(total tree depth) numpy
  work, no per-node Python objects.
* :class:`DyadicFlatOnline` — the incremental stack machine with the
  rightmost path held as parallel Python lists and the forest accumulated
  as a parent array; ``push`` is the same O(amortised 1) walk as
  ``DyadicOnline.push`` minus every ``MergeNode`` allocation.

Exactness contract (same shape as ``fastpath.general``): every interval
classification evaluates the exact float expressions of the reference —
``g = (t - x) / (y - x)`` against a table of ``alpha ** (-i)`` powers
computed by the *scalar* interpreter, and child windows
``x + (y - x) / alpha ** (i - 1)`` — so the resulting parent arrays are
**bit-identical** to ``dyadic_forest`` / ``DyadicOnline`` on every input
both accept, including arrivals exactly on interval edges or on the
cutoff.  ``tests/fastpath/test_dyadic_flat.py`` asserts node-for-node
equality on adversarial edge-grid traces for ``alpha = 2`` and
``alpha = phi``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..baselines.dyadic import (
    MIN_RELATIVE_GAP,
    DyadicParams,
    dyadic_interval_index,
)
from ..core.validation import check_finite_value
from .flat_forest import FlatForest

__all__ = ["dyadic_flat_forest", "dyadic_flat_cost", "DyadicFlatOnline"]


def _neg_powers(alpha: float, count: int) -> np.ndarray:
    """``[alpha**0, alpha**-1, ..., alpha**-count]`` via the scalar ``**``.

    The scalar reference compares ``g`` against ``alpha ** (-i)`` computed
    by CPython's float power; building the table with the same operator
    (rather than ``np.power``, whose SIMD path may differ in the last ULP)
    keeps edge-of-interval classifications bit-identical.
    """
    return np.asarray([alpha ** (-i) for i in range(count + 1)], dtype=np.float64)


def _pos_powers(alpha: float, count: int) -> np.ndarray:
    """``[alpha**0, alpha**1, ..., alpha**count]`` via the scalar ``**``."""
    return np.asarray([alpha ** i for i in range(count + 1)], dtype=np.float64)


def _interval_indices(
    g: np.ndarray, alpha: float, log_alpha: float, ts: np.ndarray, m: np.ndarray, x: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`dyadic_interval_index` over relative offsets ``g``.

    ``ts[m]`` / ``x`` are only consulted to phrase the resolution-limit
    error exactly like the scalar path.
    """
    small = g < MIN_RELATIVE_GAP
    if np.any(small):
        j = int(np.nonzero(small)[0][0])
        raise ValueError(
            f"arrival {ts[m[j]]} is within {g[j]:.3e} of its window start "
            f"{x[j]} (relative); below the {MIN_RELATIVE_GAP} resolution limit"
        )
    idx = np.maximum(1, np.floor(-np.log(g) / log_alpha).astype(np.int64) + 1)
    # Correct float-log drift exactly as the scalar loops do: enforce
    # alpha^-i <= g (< alpha^-(i-1) unless i = 1) against scalar powers.
    table = _neg_powers(alpha, int(idx.max()) + 1)
    while True:
        over = table[idx] > g
        if not over.any():
            break
        idx[over] += 1
        if int(idx.max()) >= table.size - 1:
            table = _neg_powers(alpha, int(idx.max()) + 2)
    while True:
        under = (idx > 1) & (table[idx - 1] <= g)
        if not under.any():
            break
        idx[under] -= 1
    return idx


def dyadic_flat_forest(
    arrivals: Union[np.ndarray, Sequence[float]],
    L: float,
    params: DyadicParams = DyadicParams(),
) -> FlatForest:
    """Dyadic merge forest as a :class:`FlatForest`, vectorised (O(n)-ish).

    Structure is bit-identical to
    ``FlatForest.from_forest(dyadic_forest(arrivals, L, params))`` — the
    recursive builder stays in ``baselines.dyadic`` as the oracle.
    """
    ts = np.ascontiguousarray(arrivals, dtype=np.float64)
    if ts.ndim != 1:
        raise ValueError("arrivals must be a 1-D sequence")
    n = ts.size
    if n == 0:
        raise ValueError("need at least one arrival")
    if not np.isfinite(ts).all():
        bad = ts[~np.isfinite(ts)][0]
        raise ValueError(f"arrivals must be finite, got {bad!r}")
    if np.any(ts[1:] <= ts[:-1]):
        raise ValueError("arrivals must be strictly increasing")
    if L <= 0:
        raise ValueError(f"L must be positive, got {L}")
    window = params.window(L)
    alpha = params.alpha
    log_alpha = math.log(alpha)

    parent = np.full(n, -1, dtype=np.intp)
    # Roots: a new root whenever an arrival falls beyond the current
    # root's cutoff; members of each root window seed the level walk.
    root_starts: List[int] = []
    root_ends: List[int] = []
    i = 0
    while i < n:
        j = int(np.searchsorted(ts, ts[i] + window, side="right"))
        root_starts.append(i)
        root_ends.append(j)
        i = j
    starts = np.asarray(root_starts, dtype=np.intp)
    ends = np.asarray(root_ends, dtype=np.intp)
    counts = ends - starts - 1  # members exclude the root itself
    # Member index list: for each root r, indices starts[r]+1 .. ends[r]-1.
    m = np.concatenate(
        [np.arange(s + 1, e, dtype=np.intp) for s, e in zip(root_starts, root_ends)]
    )
    owner = np.repeat(starts, counts)  # owning node index per member
    cutoff = np.repeat(ts[starts] + window, counts)
    # Subtree maxima come for free: a window's subtree is its member
    # slice, and a run's subtree is the run itself, so z is the last
    # member — no reverse pass needed at the end.
    z = ts.copy()
    z[starts] = ts[ends - 1]

    while m.size:
        x = ts[owner]
        g = (ts[m] - x) / (cutoff - x)
        idx = _interval_indices(g, alpha, log_alpha, ts, m, x)
        # Runs of consecutive members with the same (owner, interval):
        # the first member of a run becomes a child; the rest fall into
        # that child's window.
        first = np.empty(m.size, dtype=bool)
        first[0] = True
        first[1:] = (owner[1:] != owner[:-1]) | (idx[1:] != idx[:-1])
        parent[m[first]] = owner[first]
        first_pos = np.nonzero(first)[0]
        last_pos = np.append(first_pos[1:] - 1, m.size - 1)
        z[m[first]] = ts[m[last_pos]]
        # Child window right edge: x + span / alpha ** (idx - 1), with the
        # power from the scalar-computed table (see module docstring).
        pow_table = _pos_powers(alpha, int(idx[first].max()) - 1)
        child_hi = x[first] + (cutoff[first] - x[first]) / pow_table[idx[first] - 1]
        rest = ~first
        run_id = np.cumsum(first) - 1
        owner = m[first][run_id[rest]]
        cutoff = child_hi[run_id[rest]]
        m = m[rest]
    return FlatForest(ts, parent, z=z)


def dyadic_flat_cost(
    arrivals: Union[np.ndarray, Sequence[float]],
    L: float,
    params: DyadicParams = DyadicParams(),
) -> float:
    """Total receive-two bandwidth of the dyadic solution, flat path."""
    return dyadic_flat_forest(arrivals, L, params).full_cost(L)


class _FlatStackEntry:
    __slots__ = ("node", "cutoff", "last_child_interval")

    def __init__(self, node: int, cutoff: float, last_child_interval: Optional[int]):
        self.node = node
        self.cutoff = cutoff
        self.last_child_interval = last_child_interval


class DyadicFlatOnline:
    """Incremental dyadic merging into a parent array — no ``MergeNode``s.

    The drop-in flat twin of :class:`~repro.baselines.dyadic.DyadicOnline`
    for the simulation policies: ``push`` places one strictly-later
    arrival and returns its node index; :meth:`current_path` exposes the
    receiving path (root down to the arrival just placed) that merging
    policies hand to clients and walk for Lemma 1 ancestor extensions.
    Placement decisions replicate ``DyadicOnline.push`` exactly (same
    interval classifier, same window arithmetic), which the fastpath
    equivalence tests assert node for node; ``finish()`` returns the
    accumulated :class:`FlatForest`.
    """

    def __init__(self, L: float, params: DyadicParams = DyadicParams()):
        if L <= 0:
            raise ValueError(f"L must be positive, got {L}")
        self.L = L
        self.params = params
        self.arrivals: List[float] = []
        self.parent: List[int] = []
        self._stack: List[_FlatStackEntry] = []
        self._last_time: Optional[float] = None

    def __len__(self) -> int:
        return len(self.arrivals)

    def push(self, t: float) -> int:
        """Place the arrival at time ``t``; returns its node index."""
        check_finite_value(t, what="arrival")
        if self._last_time is not None and t <= self._last_time:
            raise ValueError(
                f"arrivals must be strictly increasing: {t} after {self._last_time}"
            )
        self._last_time = t
        node = len(self.arrivals)
        if not self._stack or t > self._stack[0].cutoff:
            self.arrivals.append(t)
            self.parent.append(-1)
            self._stack = [_FlatStackEntry(node, t + self.params.window(self.L), None)]
            return node
        depth = 0
        while True:
            entry = self._stack[depth]
            idx = dyadic_interval_index(
                t, self.arrivals[entry.node], entry.cutoff, self.params.alpha
            )
            if entry.last_child_interval is not None and idx == entry.last_child_interval:
                depth += 1  # belongs inside the current last child's window
                continue
            if entry.last_child_interval is not None and idx > entry.last_child_interval:
                raise AssertionError(
                    "dyadic interval index increased along time — "
                    "ordering invariant broken"
                )
            start = self.arrivals[entry.node]
            span = entry.cutoff - start
            hi = start + span / self.params.alpha ** (idx - 1)
            self.arrivals.append(t)
            self.parent.append(entry.node)
            entry.last_child_interval = idx
            del self._stack[depth + 1 :]
            self._stack.append(_FlatStackEntry(node, hi, None))
            return node

    def extend(self, arrivals: Sequence[float]) -> None:
        for t in arrivals:
            self.push(t)

    def current_path(self) -> Tuple[float, ...]:
        """Arrivals along the rightmost path, root first — the receiving
        path of the most recently pushed node."""
        return tuple(self.arrivals[e.node] for e in self._stack)

    def finish(self) -> FlatForest:
        if not self.arrivals:
            raise ValueError("no arrivals were pushed")
        return FlatForest(
            np.asarray(self.arrivals, dtype=np.float64),
            np.asarray(self.parent, dtype=np.intp),
        )

"""General-arrivals optimal merge cost with the Knuth speed-up.

The Bar-Noy & Ladner [6] interval DP (Lemma 2),

    M[i][j] = min_{i < h <= j} { M[i][h-1] + M[h][j] + (2 t_j - t_h - t_i) },

costs O(n^3) when every cell scans every split — that is the reference
oracle kept as :func:`repro.core.dp.general_arrivals_cost_reference`.
The per-split weight ``2 t_j - t_h - t_i`` decomposes as a cell weight
``w(i, j) = 2 t_j - t_i`` (which satisfies the quadrangle inequality and
is monotone on the lattice of intervals) minus ``t_h``, so the canonical
(smallest) optimal split is monotone in both endpoints à la Knuth/Yao:

    K[i][j-1] <= K[i][j] <= K[i+1][j].

Restricting each cell's scan to that window makes every anti-diagonal
O(n) amortised and the whole table O(n^2).  The windows are tiny (O(1)
amortised), so a plain Python inner loop beats a vectorised one here —
per-cell numpy slicing overhead dominates windows of a few elements.
Each candidate evaluates the exact expression of the reference DP (same
association order), so results agree bit-for-bit, not merely to
tolerance; ``tests/fastpath/test_general_fast.py`` asserts exact
equality against the O(n^3) oracle on randomized inputs.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["general_arrivals_cost"]


def general_arrivals_cost(arrivals: Sequence[float]) -> float:
    """Optimal merge cost for sorted arrival times in O(n^2) time/space.

    Exact drop-in for the reference cubic DP: same validation, same
    values (bit-for-bit), same int-collapsing of integral results.
    """
    ts = [float(t) for t in arrivals]
    n = len(ts)
    if n == 0:
        return 0
    if any(b <= a for a, b in zip(ts, ts[1:])):
        raise ValueError("arrival times must be strictly increasing")
    if n == 1:
        return 0

    # cost[i][j]: optimal merge cost of arrivals i..j rooted at i.
    # split[i][j]: canonical (smallest) optimal h for that cell.
    cost = [[0.0] * n for _ in range(n)]
    split = [[0] * n for _ in range(n)]
    for i in range(n - 1):
        # Same expression as the reference (h = j = i + 1).
        cost[i][i + 1] = 2 * ts[i + 1] - ts[i + 1] - ts[i]
        split[i][i + 1] = i + 1
    for width in range(2, n):
        for i in range(n - width):
            j = i + width
            lo = split[i][j - 1]
            hi = split[i + 1][j]
            row = cost[i]
            best = row[lo - 1] + cost[lo][j] + (2 * ts[j] - ts[lo] - ts[i])
            best_h = lo
            for h in range(lo + 1, hi + 1):
                v = row[h - 1] + cost[h][j] + (2 * ts[j] - ts[h] - ts[i])
                if v < best:
                    best = v
                    best_h = h
            cost[i][j] = best
            split[i][j] = best_h
    value = cost[0][n - 1]
    return int(value) if float(value).is_integer() else value

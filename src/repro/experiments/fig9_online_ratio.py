"""Fig. 9: ratio of the on-line DG bandwidth to the off-line optimum.

The paper plots ``A(L, n) / F(L, n)`` against the time horizon and shows
it approaching 1; Theorem 22 bounds it by ``1 + 2L/n`` once ``L >= 7`` and
``n > L^2 + 2``.  The experiment sweeps horizons for several stream
lengths and reports the measured ratio next to the bound.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.bounds import online_ratio_bound, online_ratio_bound_applies
from ..core.full_cost import optimal_full_cost
from ..core.online import online_full_cost
from .charts import render_chart
from .harness import ExperimentResult, register

DEFAULT_LS = (15, 50, 100)
DEFAULT_NS = (10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000)


@register(
    "fig9",
    "On-line / off-line bandwidth ratio vs horizon (Fig. 9)",
    "Fig. 9 / Theorems 21-22",
    "A(L,n)/F(L,n) for several L as the horizon n grows, with the "
    "Theorem 22 bound 1 + 2L/n where it applies.",
)
def run_fig9(
    Ls: Sequence[int] = DEFAULT_LS, ns: Sequence[int] = DEFAULT_NS
) -> List[ExperimentResult]:
    results = []
    for L in Ls:
        rows = []
        for n in ns:
            a = online_full_cost(L, n)
            f = optimal_full_cost(L, n)
            ratio = a / f
            applies = online_ratio_bound_applies(L, n)
            bound = online_ratio_bound(L, n)
            within = (not applies) or ratio <= bound + 1e-12
            rows.append(
                (
                    n,
                    a,
                    f,
                    round(ratio, 5),
                    round(bound, 5) if applies else "-",
                    "ok" if within else "VIOLATION",
                )
            )
        results.append(
            ExperimentResult(
                title=f"A(L,n)/F(L,n) for L = {L}",
                headers=("n", "A(L,n)", "F(L,n)", "ratio", "Thm22 bound", "status"),
                rows=rows,
                notes=[
                    "Shape target: ratio -> 1 as the horizon grows.",
                    "\n"
                    + render_chart(
                        [r[0] for r in rows],
                        [("A/F ratio", [r[3] for r in rows])],
                        x_label="time horizon n (slots, log scale)",
                        logx=True,
                    ),
                ],
            )
        )
    return results

"""Multi-object Media-on-Demand provisioning (Section 5 future work).

The paper closes with two observations this module turns into code:

* "studying the maximum bandwidth rather than average bandwidth usage is
  likely to be important" for servers carrying many objects, and
* with the Delay Guaranteed algorithm "by increasing the guaranteed
  delay, we can ensure that we never go over the fixed maximum bandwidth
  and still never have to decline a client request".

For each catalog object we build the merge forest its policy would
produce over the horizon, take the stream intervals (Lemma 1 lengths) and
aggregate them across objects on a common timeline.  The aggregate *peak*
is the number of physical channels the server must own.  The DG envelope
is deterministic — independent of the workload — so channel provisioning
reduces to a search over the delay guarantee (:func:`min_delay_for_budget`).
Dyadic merging is load-dependent; :func:`serve_catalog` quantifies both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..arrivals.traces import ArrivalTrace
from ..baselines.dyadic import DyadicParams
from ..core.online import build_online_flat_forest
from ..fastpath.dyadic import dyadic_flat_forest
from ..simulation.channels import (
    StreamInterval,
    flat_forest_intervals,
    interval_profile,
    peak_concurrency,
)
from .catalog import Catalog, MediaObject

__all__ = [
    "ObjectLoad",
    "MultiplexReport",
    "dg_object_load",
    "dyadic_envelope",
    "dyadic_object_load",
    "aggregate_peak",
    "aggregate_profile",
    "serve_catalog",
    "min_delay_for_budget",
]


@dataclass(frozen=True, eq=False)
class ObjectLoad:
    """One object's stream intervals over the horizon, in minutes.

    The intervals live as parallel numpy arrays (``labels``, ``starts``,
    ``ends``) so catalog-wide aggregation never walks per-stream Python
    objects; :attr:`intervals` materialises ``StreamInterval`` tuples on
    demand for rendering and tests.
    """

    name: str
    L: int
    delay_minutes: float
    total_units_minutes: float
    labels: np.ndarray
    starts: np.ndarray
    ends: np.ndarray
    clients: int = 0

    @property
    def intervals(self) -> Tuple[StreamInterval, ...]:
        return tuple(
            StreamInterval(label=l, start=s, end=e)
            for l, s, e in zip(
                self.labels.tolist(), self.starts.tolist(), self.ends.tolist()
            )
        )

    @property
    def peak(self) -> int:
        return aggregate_peak([self])


_EMPTY = np.empty(0, dtype=np.float64)


def _load_from_arrays(
    name: str,
    L: int,
    delay_minutes: float,
    labels: np.ndarray,
    starts: np.ndarray,
    ends: np.ndarray,
    clients: int,
) -> ObjectLoad:
    """Build an ``ObjectLoad`` from slot-unit interval arrays (scaled here)."""
    scale = delay_minutes
    return ObjectLoad(
        name=name,
        L=L,
        delay_minutes=delay_minutes,
        total_units_minutes=float(np.sum(ends - starts) * scale),
        labels=labels * scale,
        starts=starts * scale,
        ends=ends * scale,
        clients=clients,
    )


def dg_object_load(
    obj: MediaObject, delay_minutes: float, horizon_minutes: float
) -> ObjectLoad:
    """The Delay Guaranteed envelope for one object — workload-independent.

    A stream starts every ``delay_minutes``; the merge forest is the
    static Fibonacci-tree forest over ``horizon / delay`` slots (built
    flat — no ``MergeNode`` objects at any catalog scale).
    """
    if horizon_minutes <= 0:
        raise ValueError("horizon must be positive")
    L = obj.units(delay_minutes)
    n_slots = max(1, int(np.ceil(horizon_minutes / delay_minutes)))
    forest = build_online_flat_forest(L, n_slots)
    labels, starts, ends = forest.intervals(L)
    return _load_from_arrays(
        obj.name, L, delay_minutes, labels, starts, ends, clients=0
    )


@lru_cache(maxsize=1024)
def dyadic_envelope(
    trace_minutes: ArrivalTrace,
    delay_minutes: float,
    L: int,
    params: DyadicParams,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One object's dyadic stream intervals in slot units, memoised.

    The dyadic counterpart of :func:`repro.fleet.capacity.dg_envelope`:
    the forest — hence its ``(labels, starts, ends)`` — is a pure
    function of ``(trace, delay, L, params)``, and provisioning sweeps
    repeat exactly those keys (objects sharing a duration under one
    workload, the same catalog re-provisioned across candidate budgets
    or parameter grids).  Each repeat reuses the built arrays instead of
    rebuilding the forest.  The returned arrays are read-only; callers
    scale *copies* into minutes (``_load_from_arrays`` multiplies into
    fresh arrays).
    """
    ts = [t / delay_minutes for t in trace_minutes]
    forest = dyadic_flat_forest(ts, L, params)
    labels, starts, ends = flat_forest_intervals(forest, L)
    for a in (labels, starts, ends):
        a.setflags(write=False)
    return labels, starts, ends


def dyadic_object_load(
    obj: MediaObject,
    delay_minutes: float,
    trace_minutes: ArrivalTrace,
    params: Optional[DyadicParams] = None,
) -> ObjectLoad:
    """Immediate-service dyadic load for one object's request trace.

    ``delay_minutes`` only sets the slot scale for ``L`` (the dyadic
    algorithm itself serves immediately).  Empty traces cost nothing
    (and never touch the envelope memo).
    """
    L = obj.units(delay_minutes)
    if len(trace_minutes) == 0:
        return ObjectLoad(
            name=obj.name,
            L=L,
            delay_minutes=delay_minutes,
            total_units_minutes=0.0,
            labels=_EMPTY,
            starts=_EMPTY,
            ends=_EMPTY,
            clients=0,
        )
    params = params or DyadicParams()
    labels, starts, ends = dyadic_envelope(
        trace_minutes, delay_minutes, L, params
    )
    return _load_from_arrays(
        obj.name, L, delay_minutes, labels, starts, ends,
        clients=len(trace_minutes),
    )


def _stacked_intervals(
    loads: Sequence[ObjectLoad],
) -> Tuple[np.ndarray, np.ndarray]:
    """All loads' ``(starts, ends)`` concatenated (possibly empty)."""
    if not loads:
        return _EMPTY, _EMPTY
    starts = np.concatenate([l.starts for l in loads])
    ends = np.concatenate([l.ends for l in loads])
    return starts, ends


def aggregate_peak(loads: Sequence[ObjectLoad]) -> int:
    """Peak number of simultaneously live streams across all objects.

    Vectorised over the stacked interval arrays via
    :func:`~repro.simulation.channels.peak_concurrency`; half-open
    intervals, so a stream ending exactly when another starts never
    double-counts (the old event sweep sorted ends before starts at
    ties — ``searchsorted(..., side="right")`` encodes the same rule).
    """
    starts, ends = _stacked_intervals(loads)
    return peak_concurrency(starts, ends)


def aggregate_profile(
    loads: Sequence[ObjectLoad], t0: float, t1: float, resolution: float
) -> np.ndarray:
    """Per-bin concurrent-stream counts on [t0, t1) at ``resolution``.

    Bin-occupancy semantics: bin ``b`` covers ``[t0 + b*r, t0 + (b+1)*r)``
    and counts every stream that is live during *any part* of it —
    ``floor`` for the low edge, ``ceil`` for the high edge.  This
    over-approximates instantaneous concurrency (a stream touching a bin
    is charged for the whole bin), so whenever ``[t0, t1)`` covers the
    intervals, ``aggregate_profile(...).max() >= aggregate_peak(...)``;
    with ``ceil`` on both edges sub-resolution streams vanished entirely
    and the profile *under*-reported the true peak.

    Implemented by the shared difference-array kernel
    :func:`repro.simulation.channels.interval_profile` over the stacked
    interval arrays — no per-stream Python objects.
    """
    starts, ends = _stacked_intervals(loads)
    return interval_profile(starts, ends, t0, t1, resolution)


@dataclass
class MultiplexReport:
    """Catalog-level provisioning summary."""

    delay_minutes: float
    horizon_minutes: float
    policy: str
    loads: List[ObjectLoad] = field(default_factory=list)

    @property
    def peak_channels(self) -> int:
        return aggregate_peak(self.loads)

    @property
    def total_units_minutes(self) -> float:
        return sum(l.total_units_minutes for l in self.loads)

    @property
    def clients(self) -> int:
        return sum(l.clients for l in self.loads)

    def busiest_objects(self, k: int = 5) -> List[ObjectLoad]:
        return sorted(self.loads, key=lambda l: -l.total_units_minutes)[:k]


def serve_catalog(
    catalog: Catalog,
    delay_minutes: float,
    horizon_minutes: float,
    policy: str = "dg",
    workload: Optional[Dict[str, ArrivalTrace]] = None,
    params: Optional[DyadicParams] = None,
) -> MultiplexReport:
    """Provision a whole catalog under one policy.

    ``policy``: ``"dg"`` (deterministic envelope; workload optional and
    ignored) or ``"dyadic"`` (requires per-object traces in minutes).
    """
    report = MultiplexReport(
        delay_minutes=delay_minutes,
        horizon_minutes=horizon_minutes,
        policy=policy,
    )
    if policy == "dg":
        for obj in catalog:
            report.loads.append(dg_object_load(obj, delay_minutes, horizon_minutes))
    elif policy == "dyadic":
        if workload is None:
            raise ValueError("dyadic provisioning needs a workload")
        for obj in catalog:
            trace = workload.get(
                obj.name, ArrivalTrace(times=(), horizon=horizon_minutes)
            )
            report.loads.append(
                dyadic_object_load(obj, delay_minutes, trace, params)
            )
    else:
        raise ValueError(f"unknown policy {policy!r}")
    return report


def min_delay_for_budget(
    catalog: Catalog,
    horizon_minutes: float,
    budget_channels: int,
    candidate_delays: Sequence[float],
) -> Optional[float]:
    """Smallest delay guarantee whose DG envelope fits the channel budget.

    The Section 5 knob: the DG peak is deterministic and decreasing in the
    delay, so the server can *guarantee* it never exceeds the budget while
    never declining a request.  Returns None when even the largest
    candidate delay does not fit.
    """
    if budget_channels < 1:
        raise ValueError("budget must be >= 1 channel")
    for delay in sorted(candidate_delays):
        report = serve_catalog(catalog, delay, horizon_minutes, policy="dg")
        if report.peak_channels <= budget_channels:
            return delay
    return None

"""Tests for trace serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given

from repro.arrivals import ArrivalTrace, poisson
from repro.arrivals.serialization import (
    load_trace,
    save_trace,
    trace_from_json,
    trace_to_json,
)

from tests.conftest import increasing_times


class TestRoundTrip:
    def test_simple(self):
        t = ArrivalTrace(times=(0.5, 1.25, 7.0), horizon=10.0)
        assert trace_from_json(trace_to_json(t)) == t

    def test_empty(self):
        t = ArrivalTrace(times=(), horizon=3.0)
        assert trace_from_json(trace_to_json(t)) == t

    def test_poisson_exact(self):
        t = poisson(0.9, 200.0, seed=5)
        back = trace_from_json(trace_to_json(t))
        assert back.times == t.times
        assert back.horizon == t.horizon

    @given(increasing_times(min_size=0, max_size=30, horizon=50.0))
    def test_property_roundtrip(self, times):
        t = ArrivalTrace(times=tuple(times), horizon=50.0)
        assert trace_from_json(trace_to_json(t)) == t

    def test_meta_carried(self):
        t = ArrivalTrace(times=(1.0,), horizon=2.0)
        doc = json.loads(trace_to_json(t, meta={"seed": 7, "kind": "poisson"}))
        assert doc["meta"]["seed"] == 7


class TestFiles:
    def test_save_load(self, tmp_path):
        t = poisson(1.5, 60.0, seed=3)
        path = tmp_path / "trace.json"
        save_trace(t, path, meta={"note": "test"})
        assert load_trace(path) == t

    def test_load_accepts_str_path(self, tmp_path):
        t = ArrivalTrace(times=(0.5,), horizon=1.0)
        path = tmp_path / "t.json"
        save_trace(t, str(path))
        assert load_trace(str(path)) == t


class TestValidation:
    def test_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            trace_from_json(json.dumps({"schema": "something-else", "times": []}))

    def test_count_mismatch(self):
        doc = json.loads(trace_to_json(ArrivalTrace(times=(1.0,), horizon=2.0)))
        doc["count"] = 5
        with pytest.raises(ValueError, match="corrupt"):
            trace_from_json(json.dumps(doc))

    def test_invalid_times_rejected_on_load(self):
        doc = {
            "schema": "repro.arrival-trace.v1",
            "horizon": 2.0,
            "count": 2,
            "times": [1.0, 1.0],
            "meta": {},
        }
        with pytest.raises(ValueError):
            trace_from_json(json.dumps(doc))

"""Client receiving programs (Section 2) — the executable model semantics.

A client arriving at ``x_k`` whose root path in the merge tree is
``x_0 < x_1 < ... < x_k`` follows the *stream merging rules*:

Stage ``i`` (``0 <= i <= k-1``), lasting ``x_{k-i} - x_{k-i-1}`` slots from
time ``2 x_k - x_{k-i}`` to ``2 x_k - x_{k-i-1}``: the client receives

* parts ``2x_k - 2x_{k-i} + 1 .. 2x_k - x_{k-i} - x_{k-i-1}`` from stream
  ``x_{k-i}`` and
* parts ``2x_k - x_{k-i} - x_{k-i-1} + 1 .. 2x_k - 2x_{k-i-1}`` from stream
  ``x_{k-i-1}``,

i.e. it always listens to a consecutive pair of path streams, hopping one
step rootward per stage (a *merge operation*).  Stage ``k`` (only when
``2(x_k - x_0) < L``): parts ``2(x_k - x_0) + 1 .. L`` from the root stream.
Part numbers beyond ``L`` are clipped (they do not exist; coverage of
``1..L`` is preserved because stage ranges are contiguous).

A stream ``y`` broadcasts part ``j`` during the slot ``[y+j-1, y+j]``; the
client plays part ``j`` during ``[x_k+j-1, x_k+j]``.  Playback is
uninterrupted iff every part is received in a slot ending no later than its
playback slot ends (play-while-receive is allowed, as in the paper's
Fig. 2).  These schedules are what :mod:`repro.simulation.verify` checks
wholesale for every client of a forest.

The receive-all analogue (from the proof of Lemma 17): the client listens to
*all* path streams at once from its arrival, taking parts
``1 + (x_k - x_i) .. x_k - x_{i-1}`` from stream ``x_i`` (own stream:
``1 .. x_k - x_{k-1}``; root: up to ``L``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from .merge_tree import MergeForest, MergeTree

__all__ = [
    "Reception",
    "ReceivingProgram",
    "receive_two_program",
    "receive_all_program",
    "forest_programs",
]


@dataclass(frozen=True)
class Reception:
    """One part received from one stream in one slot.

    ``slot_end`` is the integer end time of the reception slot; the part was
    transmitted during ``[slot_end - 1, slot_end]``.
    """

    part: int
    stream: float
    slot_end: float


@dataclass
class ReceivingProgram:
    """The full reception schedule for one client."""

    client: float
    path: Tuple[float, ...]
    L: int
    receptions: List[Reception]

    # -- derived views -------------------------------------------------------

    def parts_received(self) -> List[int]:
        return sorted(r.part for r in self.receptions)

    def reception_by_part(self) -> Dict[int, Reception]:
        out: Dict[int, Reception] = {}
        for r in self.receptions:
            if r.part in out:
                raise AssertionError(f"part {r.part} received twice")
            out[r.part] = r
        return out

    def streams_used(self) -> List[float]:
        return sorted({r.stream for r in self.receptions})

    def max_parallel_streams(self) -> int:
        """Largest number of distinct streams listened to in one slot."""
        per_slot: Dict[float, set] = {}
        for r in self.receptions:
            per_slot.setdefault(r.slot_end, set()).add(r.stream)
        return max((len(s) for s in per_slot.values()), default=0)

    def playback_deadline(self, part: int) -> float:
        """Playback of ``part`` occupies ``[client+part-1, client+part]``."""
        return self.client + part

    def is_complete(self) -> bool:
        """All parts 1..L received exactly once."""
        return self.parts_received() == list(range(1, self.L + 1))

    def is_on_time(self) -> bool:
        """Every part arrives by the end of its playback slot."""
        return all(r.slot_end <= self.playback_deadline(r.part) for r in self.receptions)

    def buffer_occupancy(self) -> Dict[float, int]:
        """Buffer level (parts held) after each integer-slot boundary.

        A part ``j`` occupies the buffer from its reception slot end until
        the end of its playback slot ``client + j`` (exclusive): a part that
        is received in its own playback slot never touches the buffer.
        """
        by_part = self.reception_by_part()
        boundaries = sorted(
            {r.slot_end for r in self.receptions}
            | {self.playback_deadline(p) for p in by_part}
        )
        levels: Dict[float, int] = {}
        for t in boundaries:
            level = sum(
                1
                for part, r in by_part.items()
                if r.slot_end <= t < self.playback_deadline(part)
            )
            levels[t] = level
        return levels

    def max_buffer(self) -> int:
        occ = self.buffer_occupancy()
        return max(occ.values(), default=0)

    def last_part_from(self, stream: float) -> int:
        """Largest part number this client takes from ``stream`` (0 if none)."""
        parts = [r.part for r in self.receptions if r.stream == stream]
        return max(parts, default=0)


def _path_arrivals(tree: MergeTree, client: float) -> Tuple[float, ...]:
    path = tuple(n.arrival for n in tree.node(client).path_from_root())
    for t in path:
        if float(t) != int(t):
            raise ValueError(
                "receiving programs are defined on slotted (integer) "
                f"arrival times; got {t!r} — slot the trace first"
            )
    return path


def receive_two_program(tree: MergeTree, client: float, L: int) -> ReceivingProgram:
    """Build the Section 2 receive-two schedule for ``client`` in ``tree``."""
    path = _path_arrivals(tree, client)
    xk = path[-1]
    receptions: List[Reception] = []
    k = len(path) - 1

    # Stages 0..k-1: listen to the pair (x_{k-i}, x_{k-i-1}).
    for i in range(k):
        upper = path[k - i]  # x_{k-i}, the later stream of the pair
        lower = path[k - i - 1]  # x_{k-i-1}
        # From the later stream of the pair:
        first = int(2 * xk - 2 * upper + 1)
        last = int(2 * xk - upper - lower)
        for part in range(first, min(last, L) + 1):
            receptions.append(Reception(part=part, stream=upper, slot_end=upper + part))
        # From the earlier stream of the pair:
        first = int(2 * xk - upper - lower + 1)
        last = int(2 * xk - 2 * lower)
        for part in range(first, min(last, L) + 1):
            receptions.append(Reception(part=part, stream=lower, slot_end=lower + part))

    # Stage k: the tail of the root stream.
    x0 = path[0]
    first = int(2 * (xk - x0) + 1)
    for part in range(first, L + 1):
        receptions.append(Reception(part=part, stream=x0, slot_end=x0 + part))

    return ReceivingProgram(client=client, path=path, L=L, receptions=receptions)


def receive_all_program(tree: MergeTree, client: float, L: int) -> ReceivingProgram:
    """The receive-all schedule (proof of Lemma 17)."""
    path = _path_arrivals(tree, client)
    xk = path[-1]
    receptions: List[Reception] = []
    k = len(path) - 1
    for idx in range(k, -1, -1):
        stream = path[idx]
        first = int(1 + (xk - stream))
        if idx == 0:
            last = L
        else:
            last = int(xk - path[idx - 1])
        for part in range(first, min(last, L) + 1):
            receptions.append(Reception(part=part, stream=stream, slot_end=stream + part))
    return ReceivingProgram(client=client, path=path, L=L, receptions=receptions)


def forest_programs(
    forest: MergeForest, L: int, model: str = "receive-two"
) -> Dict[float, ReceivingProgram]:
    """Receiving programs for every client of a forest.

    ``model`` is ``"receive-two"`` or ``"receive-all"``.
    """
    if model == "receive-two":
        builder = receive_two_program
    elif model == "receive-all":
        builder = receive_all_program
    else:
        raise ValueError(f"unknown model {model!r}")
    out: Dict[float, ReceivingProgram] = {}
    for tree in forest:
        for arrival in tree.arrivals():
            out[arrival] = builder(tree, arrival, L)
    return out


def required_stream_lengths(
    programs: Sequence[ReceivingProgram],
) -> Dict[float, int]:
    """Per-stream minimum length implied by actual client demand.

    The simulation-side counterpart of Lemma 1/17: stream ``y`` must run
    until the last part any client takes from it.
    """
    need: Dict[float, int] = {}
    for prog in programs:
        for stream in prog.streams_used():
            last = prog.last_part_from(stream)
            need[stream] = max(need.get(stream, 0), last)
    return need

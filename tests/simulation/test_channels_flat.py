"""``assign_channels_flat`` vs. the greedy heap oracle, plus the
``ChannelAssignment`` bugfixes (horizon-clipped utilisation, indexed
``channel_of``)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.full_cost import build_optimal_forest
from repro.core.online import build_online_flat_forest
from repro.simulation.channels import (
    StreamInterval,
    assign_channels,
    assign_channels_flat,
    assign_forest_channels,
    flat_forest_intervals,
    forest_intervals,
    min_forest_channels,
    peak_concurrency,
)


def iv(label, start, end):
    return StreamInterval(label=label, start=start, end=end)


#: integer endpoints — duplicate start/end times everywhere (the heap's
#: tie-break order is exercised hard)
tied_intervals = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=1, max_value=12),
    ),
    min_size=0,
    max_size=40,
)

#: float endpoints — realistically tie-free
loose_intervals = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        st.floats(min_value=0.01, max_value=12.0, allow_nan=False),
    ),
    min_size=0,
    max_size=40,
)


class TestAgainstHeapOracle:
    @settings(max_examples=120, deadline=None)
    @given(tied_intervals)
    def test_channel_for_channel_with_ties(self, raw):
        self._assert_matches(raw)

    @settings(max_examples=120, deadline=None)
    @given(loose_intervals)
    def test_channel_for_channel_float_times(self, raw):
        self._assert_matches(raw)

    @staticmethod
    def _assert_matches(raw):
        starts = np.array([s for s, _ in raw], dtype=np.float64)
        ends = np.array([s + d for s, d in raw], dtype=np.float64)
        ch = assign_channels_flat(starts, ends)
        oracle = assign_channels(
            [iv(i, s, e) for i, (s, e) in enumerate(zip(starts, ends))]
        )
        oracle.validate()
        assert ch.shape == starts.shape
        for i in range(len(raw)):
            assert int(ch[i]) == oracle.channel_of(i)
        if len(raw):
            assert int(ch.max()) + 1 == oracle.num_channels
            assert oracle.num_channels == peak_concurrency(starts, ends)

    def test_empty(self):
        assert assign_channels_flat([], []).size == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_channels_flat([0.0], [0.0])  # empty interval
        with pytest.raises(ValueError):
            assign_channels_flat([0.0, 1.0], [2.0])  # length mismatch
        with pytest.raises(ValueError):
            assign_channels_flat([0.0], [float("nan")])


class TestForestRoundTrip:
    @pytest.mark.parametrize("L,n", [(15, 8), (15, 57), (10, 100)])
    def test_schedule_identical_to_heap_path(self, L, n):
        forest = build_optimal_forest(L, n)
        via_heap = assign_channels(forest_intervals(forest, L))
        via_flat = assign_forest_channels(forest, L)
        assert via_flat.channels == via_heap.channels

    def test_flat_round_trip_through_channel_of(self):
        # The per-stream index array and the rendered assignment agree via
        # the label -> channel dict.
        L, n = 500, 5000
        flat = build_online_flat_forest(L, n)
        labels, starts, ends = flat_forest_intervals(flat, L)
        ch = assign_channels_flat(starts, ends)
        assignment = assign_forest_channels(flat, L)
        for label, c in zip(labels.tolist(), ch.tolist()):
            assert assignment.channel_of(label) == c
        assert assignment.num_channels == min_forest_channels(flat, L)


class TestChannelAssignmentFixes:
    def test_channel_of_indexed_lookup(self):
        a = assign_channels([iv(1, 0, 5), iv(2, 5, 9), iv(3, 2, 4)])
        # stream 3 overlaps 1 -> channel 1; stream 2 reuses the earliest
        # freed channel, which is 1 (free at 4) rather than 0 (free at 5).
        for _ in range(2):  # second pass hits the cached dict
            assert a.channel_of(1) == 0
            assert a.channel_of(3) == a.channel_of(2) == 1
        with pytest.raises(KeyError):
            a.channel_of(99)

    def test_utilisation_clips_to_horizon(self):
        # Regression: streams outliving the horizon used to push the busy
        # fraction above 1.0.
        a = assign_channels([iv(1, 0, 20)])
        assert a.utilisation(10.0) == 1.0
        a2 = assign_channels([iv(1, 0, 20), iv(2, 5, 40)])
        assert a2.utilisation(10.0) == 0.75  # ch0 busy 10/10, ch1 busy 5/10

    def test_utilisation_clips_negative_start(self):
        a = assign_channels([iv(1, -5.0, 5.0)])
        assert a.utilisation(10.0) == 0.5

    @settings(max_examples=60, deadline=None)
    @given(tied_intervals, st.integers(min_value=1, max_value=40))
    def test_utilisation_never_exceeds_one(self, raw, horizon):
        a = assign_channels([iv(i, s, s + d) for i, (s, d) in enumerate(raw)])
        assert 0.0 <= a.utilisation(float(horizon)) <= 1.0


class TestLazyArrayAssignment:
    """``assign_forest_channels`` is array-backed: no ``StreamInterval``
    objects exist until ``.channels`` is read, and every query must match
    the object-list oracle (:func:`assign_channels`)."""

    def _pair(self, L=15, n=57):
        forest = build_optimal_forest(L, n)
        flat = assign_forest_channels(forest, L)
        oracle = assign_channels(forest_intervals(forest, L))
        return flat, oracle, forest, L

    def test_no_objects_before_channels_is_read(self):
        flat, _oracle, _forest, _L = self._pair()
        assert flat._channels is None  # still lazy
        assert flat.num_channels > 0  # answered from arrays
        assert flat._channels is None

    def test_channel_of_matches_oracle(self):
        flat, oracle, forest, L = self._pair()
        for label in flat_forest_intervals(forest, L)[0].tolist():
            assert flat.channel_of(label) == oracle.channel_of(label)
        assert flat._channels is None  # lookups never materialised objects
        with pytest.raises(KeyError):
            flat.channel_of(-123.0)

    def test_utilisation_matches_oracle(self):
        flat, oracle, _forest, _L = self._pair()
        for horizon in (10.0, 57.0, 200.0):
            assert flat.utilisation(horizon) == pytest.approx(
                oracle.utilisation(horizon), rel=1e-12
            )
        assert flat.utilisation(0.0) == 0.0
        assert flat._channels is None

    def test_materialised_channels_equal_oracle(self):
        flat, oracle, _forest, _L = self._pair()
        assert flat.channels == oracle.channels  # property builds lazily
        assert flat._channels is not None
        assert flat.render() == oracle.render()

    def test_validate_on_arrays_accepts_greedy_and_rejects_overlap(self):
        from repro.simulation.channels import ChannelAssignment

        flat, _oracle, _forest, _L = self._pair()
        flat.validate()  # greedy plan is overlap-free, still lazy
        assert flat._channels is None

        bad = ChannelAssignment.from_arrays(
            labels=np.array([1.0, 2.0]),
            starts=np.array([0.0, 3.0]),
            ends=np.array([5.0, 8.0]),
            channel=np.array([0, 0]),
        )
        with pytest.raises(AssertionError, match="overlap"):
            bad.validate()

    def test_empty_assignment(self):
        from repro.simulation.channels import ChannelAssignment

        empty = ChannelAssignment.from_arrays(
            labels=np.empty(0),
            starts=np.empty(0),
            ends=np.empty(0),
            channel=np.empty(0, dtype=np.intp),
        )
        assert empty.num_channels == 0
        assert empty.utilisation(10.0) == 0.0
        assert empty.channels == []

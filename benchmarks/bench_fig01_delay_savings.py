"""Bench: Fig. 1 — bandwidth savings vs guaranteed start-up delay.

Regenerates the figure's two series (off-line optimal and on-line DG, in
complete-media-stream units) over a 100-media-length horizon and asserts
the paper's shape: steep monotone decrease, on-line hugging off-line.
"""

from __future__ import annotations

from repro.experiments.fig1_delay_savings import run_fig1

from conftest import assert_strictly_decreasing


def test_fig1_full_grid(benchmark):
    (res,) = benchmark(run_fig1)
    offline = res.column("off-line opt (streams)")
    online = res.column("on-line DG (streams)")
    assert_strictly_decreasing(offline, "off-line streams")
    assert_strictly_decreasing(online, "on-line streams")
    for f, a in zip(offline, online):
        assert 0.999 <= a / f < 1.05, "on-line should hug off-line"


def test_fig1_savings_magnitude(benchmark):
    """At 1% delay the saving vs batching is order tens of x (paper's
    motivating observation)."""
    (res,) = benchmark(run_fig1, delays_pct=(1.0,), horizon_media=100)
    row = res.rows[0]
    offline_streams = row[3]
    batching_streams = row[5]
    assert batching_streams / offline_streams > 10

"""Committed-stream channel emission for the live tier.

The offline tiers assign channels after the fact with the heap greedy
(:func:`repro.simulation.channels.assign_channels`) or its array twin
(:func:`~repro.simulation.channels.assign_channels_flat`).  The live
daemon must emit a stream's channel the moment the stream is committed —
long before the full interval set exists — so :class:`ChannelPlanner`
runs the *same* greedy incrementally: streams are fed in start order
(which is exactly the order trees commit in: a tree's members all start
at or before its cutoff, and the next tree's root starts strictly after
it), and each stream either reuses the channel that freed up earliest
(free-time ties broken FIFO by release order, matching the oracle's
sequence-numbered heap) or opens a new one.

Because the greedy is online in start order *by definition*, the
incremental assignment is not merely close to the batch one — it is the
identical array, which ``burnin.contracts.check_live_report`` asserts
stream for stream against ``assign_channels_flat`` over the daemon's
final committed intervals, along with ``channels == peak_concurrency``
(the greedy's optimality).
"""

from __future__ import annotations

import heapq
from typing import List, Tuple, Union

import numpy as np

__all__ = ["ChannelPlanner"]


class ChannelPlanner:
    """Incremental first-free channel assignment (see module docstring)."""

    def __init__(self) -> None:
        # (becomes free at, release sequence, channel idx) — identical
        # key to the assign_channels heap, so pop order matches exactly.
        self._free: List[Tuple[float, int, int]] = []
        self._seq = 0
        self._channels = 0
        self._last_start = -np.inf

    @property
    def channels(self) -> int:
        """Channels opened so far (== peak concurrency of the streams fed)."""
        return self._channels

    def assign(
        self,
        starts: Union[np.ndarray, List[float]],
        ends: Union[np.ndarray, List[float]],
    ) -> np.ndarray:
        """Channel indices for one committed batch of streams.

        ``starts`` must continue the global nondecreasing start order
        across calls — the planner refuses out-of-order feeds (they
        would silently diverge from the batch greedy).
        """
        s = np.ascontiguousarray(starts, dtype=np.float64)
        e = np.ascontiguousarray(ends, dtype=np.float64)
        if s.ndim != 1 or e.ndim != 1 or s.size != e.size:
            raise ValueError("starts and ends must be 1-D arrays of equal length")
        if s.size == 0:
            return np.empty(0, dtype=np.intp)
        if not (np.isfinite(s).all() and np.isfinite(e).all()):
            raise ValueError("stream intervals must be finite")
        if np.any(e <= s):
            raise ValueError("empty or reversed stream interval")
        if s[0] < self._last_start or np.any(s[1:] < s[:-1]):
            raise ValueError(
                "streams must be fed in nondecreasing start order "
                f"(got {float(s.min())} after {self._last_start})"
            )
        out = np.empty(s.size, dtype=np.intp)
        free = self._free
        for i, (start, end) in enumerate(zip(s.tolist(), e.tolist())):
            if free and free[0][0] <= start:
                _t, _rel, idx = heapq.heappop(free)
            else:
                idx = self._channels
                self._channels += 1
            out[i] = idx
            heapq.heappush(free, (end, self._seq, idx))
            self._seq += 1
        self._last_start = float(s[-1])
        return out

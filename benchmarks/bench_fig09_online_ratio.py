"""Bench: Fig. 9 — on-line/off-line bandwidth ratio vs time horizon.

Asserts ratio -> 1 and the Theorem 22 bound wherever its hypotheses hold.
"""

from __future__ import annotations

from repro.core.bounds import online_ratio_bound, online_ratio_bound_applies
from repro.core.full_cost import optimal_full_cost
from repro.core.online import online_full_cost
from repro.experiments.fig9_online_ratio import run_fig9

from conftest import assert_all_ok


def test_fig9_series(benchmark):
    results = benchmark(run_fig9, Ls=(15, 50, 100), ns=(10, 100, 1000, 10000, 100000))
    for res in results:
        assert_all_ok(res.rows, res.title)
        ratios = res.column("ratio")
        assert ratios[-1] < 1.005, f"{res.title}: no convergence, {ratios}"


def test_theorem22_bound_grid(benchmark):
    """Dense bound check across the theorem's hypothesis region."""

    def check():
        violations = []
        for L in (7, 9, 12, 15, 20, 30):
            for mult in (1.1, 2, 5, 20):
                n = int(mult * (L * L + 3))
                ratio = online_full_cost(L, n) / optimal_full_cost(L, n)
                if online_ratio_bound_applies(L, n) and ratio > online_ratio_bound(L, n):
                    violations.append((L, n, ratio))
        return violations

    violations = benchmark(check)
    assert not violations

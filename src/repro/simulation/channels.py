"""Channel assignment: packing streams onto physical multicast channels.

The paper's model speaks of "channels on which the transmissions are
broadcast" with *dynamic* allocation (Section 1): a stream occupies a
channel from its start until it truncates.  Given a merge forest (or any
set of stream intervals) this module assigns streams to the minimum
number of channels — streams are intervals, so greedy first-fit on sorted
start times is optimal and the channel count equals the peak overlap
(interval-graph colouring) — and renders per-channel schedules.

This is the bridge between the abstract "total bandwidth" objective the
paper optimises and the "how many transmitters do I need" question the
multiplex extension (Section 5 future work) asks.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.merge_tree import MergeForest, _as_int_if_exact
from ..fastpath.flat_forest import FlatForest, as_flat_forest

__all__ = [
    "StreamInterval",
    "ChannelAssignment",
    "assign_channels",
    "assign_channels_flat",
    "forest_intervals",
    "flat_forest_intervals",
    "interval_profile",
    "peak_concurrency",
    "min_forest_channels",
    "assign_forest_channels",
]


@dataclass(frozen=True)
class StreamInterval:
    """A stream's occupancy of a channel: half-open [start, end)."""

    label: float
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"stream {self.label}: empty or reversed interval "
                f"[{self.start}, {self.end})"
            )

    @property
    def units(self) -> float:
        return self.end - self.start


class ChannelAssignment:
    """Streams mapped to numbered channels.

    Two storage modes, one API.  The heap oracle (:func:`assign_channels`)
    builds the per-channel ``StreamInterval`` lists directly; the flat
    constructors (:meth:`from_arrays`, used by
    :func:`assign_forest_channels`) keep only parallel numpy arrays —
    labels, starts, ends, per-stream channel index — and materialise the
    object lists lazily behind the :attr:`channels` property, so
    provisioning sweeps that only read ``num_channels`` / ``channel_of``
    / ``utilisation`` never allocate a single interval object.

    Treated as immutable once built (the constructors in this module
    finish all appends before handing the object out); ``channel_of``
    relies on that to index labels once instead of rescanning every
    channel per query.
    """

    def __init__(
        self, channels: Optional[List[List[StreamInterval]]] = None
    ) -> None:
        self._channels: Optional[List[List[StreamInterval]]] = (
            channels if channels is not None else []
        )
        self._arrays: Optional[Tuple[np.ndarray, ...]] = None
        self._n_channels: Optional[int] = None
        #: lazy label -> channel index, built on first ``channel_of`` call
        self._label_index: Optional[Dict[float, int]] = None

    @classmethod
    def from_arrays(
        cls,
        labels: np.ndarray,
        starts: np.ndarray,
        ends: np.ndarray,
        channel: np.ndarray,
    ) -> "ChannelAssignment":
        """Array-backed assignment (``channel[i]`` hosts stream ``i``)."""
        out = cls()
        out._channels = None
        out._arrays = (
            np.asarray(labels, dtype=np.float64),
            np.asarray(starts, dtype=np.float64),
            np.asarray(ends, dtype=np.float64),
            np.asarray(channel, dtype=np.intp),
        )
        out._n_channels = int(channel.max()) + 1 if len(channel) else 0
        return out

    @property
    def channels(self) -> List[List[StreamInterval]]:
        """Per-channel interval lists, each in start order (lazy)."""
        if self._channels is None:
            labels, starts, ends, ch = self._arrays
            built: List[List[StreamInterval]] = [
                [] for _ in range(self._n_channels)
            ]
            order = np.lexsort((ends, starts))
            lab, st, en = labels.tolist(), starts.tolist(), ends.tolist()
            for i in order.tolist():
                built[int(ch[i])].append(
                    StreamInterval(
                        label=_as_int_if_exact(lab[i]), start=st[i], end=en[i]
                    )
                )
            self._channels = built
        return self._channels

    @property
    def num_channels(self) -> int:
        if self._channels is None:
            return self._n_channels
        return len(self._channels)

    def channel_of(self, label: float) -> int:
        if self._label_index is None:
            if self._channels is None:
                labels, _s, _e, ch = self._arrays
                self._label_index = dict(
                    zip(labels.tolist(), ch.tolist())
                )
            else:
                self._label_index = {
                    s.label: idx
                    for idx, ch in enumerate(self._channels)
                    for s in ch
                }
        try:
            return self._label_index[label]
        except KeyError:
            raise KeyError(f"stream {label} not assigned") from None

    def utilisation(self, horizon: float) -> float:
        """Busy fraction across all channels over [0, horizon).

        Streams routinely outlive the horizon (they run to the media
        end), so each interval is clipped to ``[0, horizon)`` before
        summing — the fraction is always in ``[0, 1]``.
        """
        if horizon <= 0 or self.num_channels == 0:
            return 0.0
        if self._channels is None:
            _labels, starts, ends, _ch = self._arrays
            busy = float(
                np.sum(
                    np.maximum(
                        0.0,
                        np.minimum(ends, horizon) - np.maximum(starts, 0.0),
                    )
                )
            )
        else:
            busy = sum(
                max(0.0, min(s.end, horizon) - max(s.start, 0.0))
                for ch in self._channels
                for s in ch
            )
        return busy / (self.num_channels * horizon)

    def validate(self) -> None:
        """No two streams on one channel may overlap."""
        if self._channels is None:
            labels, starts, ends, ch = self._arrays
            order = np.lexsort((starts, ch))
            same = ch[order][1:] == ch[order][:-1]
            clash = same & (starts[order][1:] < ends[order][:-1])
            if clash.any():
                j = int(np.nonzero(clash)[0][0])
                a, b = order[j], order[j + 1]
                raise AssertionError(
                    f"channel {int(ch[a])}: {labels[a]} and {labels[b]} overlap"
                )
            return
        for idx, ch_list in enumerate(self._channels):
            ordered = sorted(ch_list, key=lambda s: s.start)
            for a, b in zip(ordered, ordered[1:]):
                if b.start < a.end:
                    raise AssertionError(
                        f"channel {idx}: {a.label} and {b.label} overlap"
                    )

    def render(self) -> str:
        lines = []
        for idx, ch in enumerate(self.channels):
            parts = ", ".join(
                f"{s.label}@[{s.start:g},{s.end:g})"
                for s in sorted(ch, key=lambda s: s.start)
            )
            lines.append(f"channel {idx}: {parts}")
        return "\n".join(lines)


def assign_channels(intervals: Sequence[StreamInterval]) -> ChannelAssignment:
    """Greedy first-free assignment; optimal for intervals.

    Sort by start time and reuse the channel that freed up earliest
    (min-heap keyed on free time); the channel count equals the peak
    number of concurrently live streams.  Free-time ties are broken FIFO
    — the channel that was *released* first is reused first (heap entries
    carry a release sequence number), which rotates evenly through a
    transmitter pool and gives the greedy a deterministic pop order that
    :func:`assign_channels_flat` reproduces with pure array ops.
    O(n log n).
    """
    assignment = ChannelAssignment()
    if not intervals:
        return assignment
    # (becomes free at, release sequence, channel idx)
    free_heap: List[Tuple[float, int, int]] = []
    for seq, stream in enumerate(sorted(intervals, key=lambda s: (s.start, s.end))):
        if free_heap and free_heap[0][0] <= stream.start:
            _t, _seq, idx = heapq.heappop(free_heap)
        else:
            idx = len(assignment.channels)
            assignment.channels.append([])
        assignment.channels[idx].append(stream)
        heapq.heappush(free_heap, (stream.end, seq, idx))
    return assignment


def assign_channels_flat(
    starts: Union[np.ndarray, Sequence[float]],
    ends: Union[np.ndarray, Sequence[float]],
) -> np.ndarray:
    """Per-stream channel indices, equal to the greedy heap stream for stream.

    The array analogue of :func:`assign_channels` (which stays as the
    oracle): given half-open occupancy intervals ``[starts[i], ends[i])``
    it returns ``ch`` with ``ch[i]`` the exact channel index the heap
    greedy assigns to stream ``i``.  ``ch.max() + 1`` equals
    :func:`peak_concurrency` of the intervals.

    Why it is the same assignment.  In start order (ties by end, then
    input order — the oracle's sort is stable), stream ``k`` reuses a
    channel iff one has been freed (``#{ends <= start_k}`` exceeds the
    reuses so far), which happens exactly when the running live count
    does *not* reach a new maximum — so the new-channel decisions are a
    running-max computation.  Freed channels are popped in globally
    sorted ``(end, release sequence)`` order: a release with a smaller
    key is available no later than any larger one, and the oracle's heap
    breaks free-time ties FIFO, so the pop sequence is precisely the
    stable end-sort of the streams.  The j-th reusing stream therefore
    inherits the channel of the j-th stream in stable end order, and the
    inheritance chains (a reused channel is itself whatever its releaser
    inherited) resolve by pointer doubling — every predecessor starts
    strictly earlier, so O(log n) vectorised passes reach the chain
    roots, the channel-opening streams.  O(n log n), no Python loop.
    """
    s = np.ascontiguousarray(starts, dtype=np.float64)
    e = np.ascontiguousarray(ends, dtype=np.float64)
    if s.ndim != 1 or e.ndim != 1 or s.size != e.size:
        raise ValueError("starts and ends must be 1-D arrays of equal length")
    n = s.size
    if n == 0:
        return np.empty(0, dtype=np.intp)
    if not (np.isfinite(s).all() and np.isfinite(e).all()):
        raise ValueError("stream intervals must be finite")
    if np.any(e <= s):
        raise ValueError("empty or reversed stream interval")

    order = np.lexsort((e, s))  # stable (start, end) sort, like the oracle
    ss, ee = s[order], e[order]
    # Freed channels before each start: all n ends may count — a stream
    # with end <= ss[k] necessarily started (strictly) earlier.
    avail = np.searchsorted(np.sort(e), ss, side="right")
    live = np.arange(1, n + 1) - avail
    running = np.maximum.accumulate(live)
    prev_max = np.concatenate(([0], running[:-1]))
    new_mask = live > prev_max  # stream opens channel #(live-1)
    new_ids = np.cumsum(new_mask) - 1  # valid at new-channel positions
    rel_order = np.argsort(ee, kind="stable")  # heap pop order (FIFO ties)
    jrank = np.cumsum(~new_mask) - 1  # valid at reusing positions

    # pred[k]: the stream whose channel k inherits (itself when it opens
    # a new channel); chase chains to their roots by pointer doubling.
    pred = np.arange(n)
    reusing = ~new_mask
    pred[reusing] = rel_order[jrank[reusing]]
    while True:
        nxt = pred[pred]
        if np.array_equal(nxt, pred):
            break
        pred = nxt
    ch_sorted = new_ids[pred]

    ch = np.empty(n, dtype=np.intp)
    ch[order] = ch_sorted
    return ch


def forest_intervals(
    forest: Union[MergeForest, FlatForest], L: float
) -> List[StreamInterval]:
    """The stream intervals a merge forest occupies (Lemma 1 lengths).

    Accepts either representation; lengths come from the vectorised
    fast path (``FlatForest.intervals``) in both cases.
    """
    labels, starts, ends = flat_forest_intervals(forest, L)
    return [
        StreamInterval(label=_as_int_if_exact(label), start=start, end=end)
        for label, start, end in zip(labels.tolist(), starts.tolist(), ends.tolist())
    ]


def flat_forest_intervals(
    forest: Union[MergeForest, FlatForest], L: float
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Interval arrays ``(labels, starts, ends)`` without object wrappers.

    The large-n entry point: at n ~ 10^5 building StreamInterval objects
    dominates, so channel math (see :func:`peak_concurrency`) consumes
    these arrays directly.
    """
    return as_flat_forest(forest).intervals(L)


def interval_profile(
    starts: np.ndarray,
    ends: np.ndarray,
    t0: float,
    t1: float,
    resolution: float,
) -> np.ndarray:
    """Per-bin live-interval counts on ``[t0, t1)`` (bin-occupancy rule).

    Bin ``b`` covers ``[t0 + b*r, t0 + (b+1)*r)`` and counts every
    interval live during *any part* of it — ``floor`` for the low edge,
    ``ceil`` for the high edge — so a stream touching a bin is charged
    for the whole bin and the profile max never under-reports the true
    peak.  One ``np.add.at`` difference-array pass; the single shared
    kernel behind ``multiplex.aggregate_profile`` and
    ``fleet.fleet_profile``.
    """
    if t1 <= t0 or resolution <= 0:
        raise ValueError("need t1 > t0 and positive resolution")
    nbins = int(np.ceil((t1 - t0) / resolution))
    diff = np.zeros(nbins + 1, dtype=np.int64)
    lo_t = np.maximum(starts, t0)
    hi_t = np.minimum(ends, t1)
    visible = hi_t > lo_t
    lo = np.floor((lo_t[visible] - t0) / resolution).astype(np.int64)
    hi = np.ceil((hi_t[visible] - t0) / resolution).astype(np.int64)
    np.add.at(diff, lo, 1)
    np.add.at(diff, hi, -1)
    return np.cumsum(diff[:-1])


def peak_concurrency(starts: np.ndarray, ends: np.ndarray) -> int:
    """Peak number of concurrently live half-open intervals, vectorised.

    Equals the optimal channel count (interval-graph colouring): at the
    k-th start (sorted), ``k + 1`` streams have started and
    ``#{ends <= start}`` have freed their channel.  O(n log n) in numpy.
    """
    if len(starts) == 0:
        return 0
    s = np.sort(np.asarray(starts, dtype=np.float64))
    e = np.sort(np.asarray(ends, dtype=np.float64))
    live = np.arange(1, s.size + 1) - np.searchsorted(e, s, side="right")
    return int(live.max())


def min_forest_channels(forest: Union[MergeForest, FlatForest], L: float) -> int:
    """Minimum channel count for a forest, without building a schedule.

    Agrees with ``assign_forest_channels(...).num_channels`` (greedy
    first-fit is optimal for intervals, and :func:`assign_channels_flat`
    opens exactly ``peak_concurrency`` channels) but never materialises a
    schedule — the fast path for provisioning sweeps over large forests.
    """
    _labels, starts, ends = flat_forest_intervals(forest, L)
    return peak_concurrency(starts, ends)


def assign_forest_channels(
    forest: Union[MergeForest, FlatForest], L: float
) -> ChannelAssignment:
    """Channel plan for a merge forest; count == peak concurrency.

    The schedule comes from the vectorised :func:`assign_channels_flat`
    and is returned array-backed: no ``StreamInterval`` object exists
    until someone reads :attr:`ChannelAssignment.channels` (rendering,
    serialization), which materialises the lists in the same order the
    heap greedy appends them.  ``channel_of`` / ``utilisation`` /
    ``validate`` run on the arrays directly.
    """
    labels, starts, ends = flat_forest_intervals(forest, L)
    ch = assign_channels_flat(starts, ends)
    assignment = ChannelAssignment.from_arrays(labels, starts, ends, ch)
    # Keep the pre-refactor self-check: the array-mode validate is one
    # vectorised lexsort pass and still materialises no objects.
    assignment.validate()
    return assignment

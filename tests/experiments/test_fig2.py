"""Shape tests for the Fig. 2 mechanism replay experiment."""

from __future__ import annotations

import pytest

from repro.experiments.fig2_mechanism import run_fig2


class TestFig2:
    def test_client_h_slots(self):
        (res,) = run_fig2(n=8, L=15, client=7)
        assert len(res.rows) == 8  # client H is busy for 8 slots
        # double reception during the merge phases, single at the tail
        assert res.rows[0][1] == "5, 7"
        assert res.rows[-1][1] == "0"
        # buffer ramps to the Lemma 15 peak then holds
        levels = [row[4] for row in res.rows]
        assert max(levels) == 7
        assert levels == sorted(levels[: levels.index(7) + 1]) + levels[
            levels.index(7) + 1 :
        ]

    def test_root_client_trivial(self):
        (res,) = run_fig2(n=8, L=15, client=0)
        assert all(row[1] == "0" for row in res.rows)
        assert all(row[4] == 0 for row in res.rows)

    def test_unknown_client(self):
        with pytest.raises(ValueError):
            run_fig2(n=8, L=15, client=12)

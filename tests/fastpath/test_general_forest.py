"""Fast general-arrivals forests vs. the O(n^3) reference oracle.

The contract (see :mod:`repro.fastpath.general`): on exactly-representable
arrival times — integers, dyadic grids, i.e. everything the slotted
simulation and provisioning paths actually feed in — the fastpath forest
is **bit-identical** to :func:`optimal_forest_general_reference`: same
parent structure node for node, same tree boundaries, same full cost
under the same evaluator.  On non-representable grids (1e-3 decimals)
agreement is mathematical, bounded here at 1e-9 relative.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.general import (
    optimal_forest_general,
    optimal_forest_general_reference,
    optimal_full_cost_general,
    optimal_merge_tree_general,
)
from repro.fastpath.flat_forest import FlatForest
from repro.fastpath.general import (
    general_arrivals_cost,
    general_merge_tables,
    optimal_flat_forest_general,
    optimal_flat_tree_general,
)

from tests.conftest import increasing_times, increasing_times_exact


def feasible_L(times, extra: int) -> int:
    """A stream length that makes the trace feasible (gaps <= L - 1)."""
    max_gap = max(
        (b - a for a, b in zip(times, times[1:])), default=0.0
    )
    return int(math.ceil(max_gap)) + 1 + extra


class TestBitIdenticalOnExactGrids:
    @settings(max_examples=100, deadline=None)
    @given(increasing_times_exact(min_size=1, max_size=28), st.integers(0, 40))
    def test_forest_node_for_node(self, times, extra):
        L = feasible_L(times, extra)
        ref = optimal_forest_general_reference(times, L)
        fast = optimal_flat_forest_general(times, L)
        assert fast.equals(FlatForest.from_forest(ref))
        # Same boundaries and, evaluated identically, the same full cost.
        assert fast.to_forest().full_cost(L) == ref.full_cost(L)
        assert [t.root.arrival for t in fast.to_forest()] == [
            t.root.arrival for t in ref
        ]

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=400),
            min_size=1,
            max_size=30,
            unique=True,
        ),
        st.integers(0, 30),
    )
    def test_forest_integer_traces(self, ticks, extra):
        times = sorted(ticks)
        L = feasible_L(times, extra)
        ref = optimal_forest_general_reference(times, L)
        fast = optimal_forest_general(times, L)
        assert [t.canonical() for t in fast] == [t.canonical() for t in ref]
        assert fast.full_cost(L) == ref.full_cost(L)

    @settings(max_examples=60, deadline=None)
    @given(increasing_times_exact(min_size=1, max_size=26))
    def test_single_tree_matches_reference_reconstruction(self, times):
        from repro.core.general import _merge_tables, _reconstruct
        from repro.core.merge_tree import MergeTree

        _cost, split = _merge_tables(times)
        ref_tree = MergeTree(_reconstruct(times, split, 0, len(times) - 1))
        tree = optimal_merge_tree_general(times)
        assert tree.canonical() == ref_tree.canonical()
        assert tree.merge_cost() == general_arrivals_cost(times)
        assert tree.has_preorder_property()

    def test_merge_tables_match_reference_scan(self):
        # Direct table-level check on a tie-heavy integer trace.
        from repro.core.general import _merge_tables

        ts = [0.0, 1.0, 2.0, 4.0, 5.0, 6.0, 8.0, 12.0, 13.0]
        cost_ref, split_ref = _merge_tables(ts)
        cost_fast, split_fast = general_merge_tables(ts)
        assert cost_fast == cost_ref
        assert split_fast == split_ref


class TestToleranceOnDecimalGrids:
    @settings(max_examples=60, deadline=None)
    @given(increasing_times(min_size=1, max_size=24), st.integers(0, 40))
    def test_cost_and_boundaries_agree(self, times, extra):
        # 1e-3 decimals are not binary-exact: an exact-rational tie between
        # two splits can round differently per candidate, so assert
        # mathematical (1e-9 relative) rather than bitwise agreement.
        L = feasible_L(times, extra)
        ref = optimal_forest_general_reference(times, L)
        fast = optimal_flat_forest_general(times, L)
        fast.validate_for_length(L)
        assert fast.to_forest().full_cost(L) == pytest.approx(
            ref.full_cost(L), rel=1e-9, abs=1e-9
        )
        assert sorted(np.asarray(fast.arrivals).tolist()) == sorted(times)

    @settings(max_examples=60, deadline=None)
    @given(increasing_times(min_size=1, max_size=24))
    def test_cost_only_agrees(self, times):
        from repro.core import dp

        assert general_arrivals_cost(times) == pytest.approx(
            dp.general_arrivals_cost_reference(times), rel=1e-9, abs=1e-9
        )


class TestRewiredCoreEntryPoints:
    def test_forest_general_is_the_fast_path(self):
        ts = [0, 1, 3, 7, 8, 9, 15]
        L = 12
        obj = optimal_forest_general(ts, L)
        flat = optimal_flat_forest_general(ts, L)
        assert FlatForest.from_forest(obj).equals(flat)
        assert optimal_full_cost_general(ts, L) == obj.full_cost(L)

    def test_reference_kept_and_equal_here(self):
        ts = [0, 2, 5, 11, 12, 20, 21]
        L = 25
        ref = optimal_forest_general_reference(ts, L)
        assert optimal_forest_general(ts, L).full_cost(L) == ref.full_cost(L)

    def test_wide_gaps_force_separate_roots(self):
        # A gap wider than L - 1 can never merge across; both paths split
        # the trace identically (infeasibility proper cannot arise: any
        # arrival may always root its own tree).
        ts = [0.0, 100.0]
        fast = optimal_forest_general(ts, 5)
        ref = optimal_forest_general_reference(ts, 5)
        assert fast.roots() == ref.roots() == [0.0, 100.0]

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            optimal_flat_forest_general([], 10)
        with pytest.raises(ValueError):
            optimal_flat_forest_general([0.0, 0.0], 10)
        with pytest.raises(ValueError):
            optimal_flat_forest_general([0.0], 0)
        with pytest.raises(ValueError):
            optimal_flat_tree_general([])


class TestNonFiniteRejection:
    """Regression: NaN passed every strictly-increasing check (all pairwise
    comparisons against NaN are False) and corrupted the DPs silently."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_fastpath_cost_rejects(self, bad):
        with pytest.raises(ValueError, match="finite"):
            general_arrivals_cost([0.0, bad, 2.0])

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_fastpath_forest_rejects(self, bad):
        with pytest.raises(ValueError, match="finite"):
            optimal_flat_forest_general([0.0, 1.0, bad], 10)

    def test_core_general_rejects(self):
        nan = float("nan")
        with pytest.raises(ValueError, match="finite"):
            optimal_forest_general([nan], 10)
        with pytest.raises(ValueError, match="finite"):
            optimal_forest_general_reference([0.0, nan], 10)
        with pytest.raises(ValueError, match="finite"):
            optimal_merge_tree_general([0.0, nan, 2.0])

    def test_all_nan_sequence_rejected(self):
        # all-NaN even *looks* sorted to pairwise comparisons
        nan = float("nan")
        with pytest.raises(ValueError, match="finite"):
            general_arrivals_cost([nan, nan, nan])

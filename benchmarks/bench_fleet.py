"""Batched fleet engine vs. the event-driven ``Simulation`` — the
``BENCH_fleet.json`` trajectory.

Two modes (same layout as ``bench_sim.py``):

* ``pytest benchmarks/bench_fleet.py --benchmark-only`` — smoke-size
  pytest-benchmark runs (small n; every run asserts batched == event);
* ``python benchmarks/bench_fleet.py`` (or ``make bench-fleet``) — the
  full sweep, writing ``BENCH_fleet.json`` (schema
  ``repro.fastpath.bench.v1``) at the repo root.

"Reference" timings run the event-driven ``Simulation`` (heap-ordered
queue, per-event Python callbacks, lazy-postpone stream ends) through
the production policies; "fast" timings run the slot-sweep kernel
``repro.fleet.simulate_batched`` on the same trace and policy.  Every
timed pair asserts full equivalence in-run — identical metric counters,
interval multisets, total bandwidth, flat-forest parent arrays, and
per-client service — via ``assert_equivalent_run``.  The sweep enforces
the ISSUE 4 acceptance floor: >= 10x at n = 10^5 clients for every
engine case.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # script mode: make src importable before repro
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.arrivals import poisson
from repro.fleet import (
    FleetPolicy,
    assert_equivalent_run,
    run_fleet,
    simulate_batched,
    simulate_event,
)
from repro.multiplex import Catalog, serve_catalog, split_requests

from conftest import timeit_best, write_bench_json

#: stream length for the engine cases (slot units).
ENGINE_L = 100

#: engine case matrix: policy kind -> (trace horizon, mean gap) per n.
ENGINE_TRACES = {
    10_000: (1_000.0, 0.1),
    100_000: (1_000.0, 0.01),
}

#: catalog shape for the runner case.
CATALOG_TITLES = 120
CATALOG_HORIZON_MIN = 480.0
CATALOG_DELAY_MIN = 2.0


def _engine_pair(kind: str, n: int):
    horizon, mean = ENGINE_TRACES[n]
    trace = poisson(mean, horizon, seed=17)
    policy = FleetPolicy(kind)
    return trace, policy


def _reference_catalog_sweep(catalog, workload):
    """Per-object event-driven sims + interval aggregation (the pre-fleet
    path a catalog run had to take)."""
    from repro.arrivals.traces import ArrivalTrace

    peaks = 0.0
    total = 0.0
    import numpy as np

    all_starts, all_ends = [], []
    for obj in catalog:
        trace_min = workload.get(obj.name)
        if trace_min is None or len(trace_min) == 0:
            continue
        L = obj.units(CATALOG_DELAY_MIN)
        ts = tuple(t / CATALOG_DELAY_MIN for t in trace_min)
        horizon = trace_min.horizon / CATALOG_DELAY_MIN
        if ts and ts[-1] >= horizon:
            horizon = float(np.nextafter(ts[-1], np.inf))
        trace = ArrivalTrace(times=ts, horizon=horizon)
        res = simulate_event(L, trace, FleetPolicy.immediate_dyadic())
        starts, ends = res.metrics.interval_arrays()
        all_starts.append(starts * CATALOG_DELAY_MIN)
        all_ends.append(ends * CATALOG_DELAY_MIN)
        total += float(np.sum(ends - starts)) * CATALOG_DELAY_MIN
    from repro.simulation.channels import peak_concurrency

    peaks = peak_concurrency(np.concatenate(all_starts), np.concatenate(all_ends))
    return peaks, total


# ---------------------------------------------------------------------------
# pytest-benchmark smoke tests (small n, CI-friendly)
# ---------------------------------------------------------------------------


def test_engine_dyadic_smoke(benchmark):
    trace = poisson(0.1, 300.0, seed=17)
    policy = FleetPolicy.immediate_dyadic()
    fast = benchmark(simulate_batched, ENGINE_L, trace, policy)
    assert_equivalent_run(simulate_event(ENGINE_L, trace, policy), fast)


def test_engine_dg_smoke(benchmark):
    trace = poisson(0.5, 300.0, seed=17)
    policy = FleetPolicy.delay_guaranteed()
    fast = benchmark(simulate_batched, 15, trace, policy)
    assert_equivalent_run(simulate_event(15, trace, policy), fast)


def test_fleet_runner_smoke(benchmark):
    catalog = Catalog.zipf(12, duration_minutes=60.0)
    workload = split_requests(poisson(0.2, 120.0, seed=5), catalog, seed=5)
    report = benchmark(
        run_fleet,
        catalog,
        CATALOG_DELAY_MIN,
        120.0,
        FleetPolicy.immediate_dyadic(),
        workload,
    )
    oracle = serve_catalog(
        catalog, CATALOG_DELAY_MIN, 120.0, policy="dyadic", workload=workload
    )
    assert report.peak_channels == oracle.peak_channels


# ---------------------------------------------------------------------------
# full sweep (script mode): writes BENCH_fleet.json
# ---------------------------------------------------------------------------


def _case(name: str, n: int, ref_s: float, fast_s: float, **extra) -> Dict:
    row = {
        "name": name,
        "n": n,
        "reference_seconds": round(ref_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 2),
        **extra,
    }
    print(
        f"  {name:28s} n={n:>7d}  ref {ref_s:10.4f}s  "
        f"fast {fast_s:10.6f}s  x{row['speedup']:.1f}"
    )
    return row


def run_sweep() -> Dict:
    rows: List[Dict] = []

    # -- batched kernel vs the event queue, per policy family ---------------
    for kind in ("immediate-dyadic", "batched-dyadic", "delay-guaranteed"):
        for n in (10_000, 100_000):
            trace, policy = _engine_pair(kind, n)
            ref_s, ref_res = timeit_best(
                lambda: simulate_event(ENGINE_L, trace, policy), repeats=1
            )
            fast_s, fast_res = timeit_best(
                lambda: simulate_batched(ENGINE_L, trace, policy), repeats=3
            )
            assert_equivalent_run(ref_res, fast_res)
            rows.append(
                _case(f"engine_{kind}", len(trace), ref_s, fast_s, L=ENGINE_L)
            )

    # -- sharded catalog runner vs per-object event sims --------------------
    catalog = Catalog.zipf(CATALOG_TITLES, duration_minutes=120.0)
    workload = split_requests(
        poisson(0.005, CATALOG_HORIZON_MIN, seed=23), catalog, seed=23
    )
    n_requests = sum(len(t) for t in workload.values())
    ref_s, ref = timeit_best(
        lambda: _reference_catalog_sweep(catalog, workload), repeats=1
    )
    fast_s, report = timeit_best(
        lambda: run_fleet(
            catalog,
            CATALOG_DELAY_MIN,
            CATALOG_HORIZON_MIN,
            FleetPolicy.immediate_dyadic(),
            workload,
        ),
        repeats=2,
    )
    ref_peak, ref_total = ref
    assert report.peak_channels == ref_peak, (report.peak_channels, ref_peak)
    assert abs(report.total_units_minutes - ref_total) <= 1e-6 * max(1.0, ref_total)
    rows.append(
        _case(
            "fleet_runner_catalog",
            n_requests,
            ref_s,
            fast_s,
            objects=CATALOG_TITLES,
        )
    )

    # Acceptance floor (ISSUE 4): >= 10x for the batched kernel at 10^5.
    big = [r for r in rows if r["name"].startswith("engine_") and r["n"] >= 100_000]
    assert big and all(r["speedup"] >= 10 for r in big), big

    return {
        "schema": "repro.fastpath.bench.v1",
        "description": (
            "Batched fleet engine: slot-sweep kernel vs the event-driven "
            "Simulation per policy family, and the sharded catalog runner "
            "vs per-object event sims.  Best-of-k wall clock; every pair "
            "asserts full run equivalence (metrics, forests, clients) "
            "in-run.  Floor: >= 10x at n = 10^5 for every engine case."
        ),
        "benchmarks": rows,
    }


def main() -> int:
    print(
        "fleet benchmark sweep "
        "(runs the event-driven oracle at n = 10^5 per policy; ~1 minute)"
    )
    payload = run_sweep()
    path = write_bench_json("fleet", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

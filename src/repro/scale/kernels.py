"""Backend-selected hot-loop kernels: numba JIT with a numpy/pure-Python
fallback contract-tested equal.

ROADMAP item 1 names the three kernels that stayed pure-numpy-bound after
the flat refactors: slot bucketing + flat-forest construction in
:func:`repro.fleet.engine.simulate_batched`, the per-tree-level replay
algebra in :mod:`repro.fastpath.replay`, and the Knuth window scan in
:mod:`repro.fastpath.general`; the segmented hybrid engine adds the
sequential hysteresis mode scan (:func:`hysteresis_scan`, driving
:func:`repro.fleet.engine.simulate_segmented`).  This module carries
each of them twice:

* a **scalar body** written in the numba-compatible subset of Python
  (plain loops over contiguous arrays, no allocation beyond outputs) —
  compiled with ``numba.njit`` when numba is importable, and still
  runnable (slowly) as plain Python so numpy-only environments can
  contract-test the exact code that would be JIT-compiled;
* the **fallback path** — the vectorised numpy (or, for the inherently
  sequential passes, list-loop) implementation that was the production
  code before this module existed.

Backend selection: ``auto`` (the default) uses numba when importable and
falls back to numpy otherwise, logging a one-time notice.  Requesting
``numba`` explicitly without numba installed degrades the same way (a
one-time warning, never an ImportError) — the ``repro[fast]`` extra
installs it.  Every public kernel is a pure function of its inputs and
the two backends are **bit-identical** by construction: the scalar
bodies evaluate the same IEEE expressions in the same association order
as the fallbacks (``tests/scale/test_kernels.py`` asserts equality on
adversarial grids for every kernel, on the plain-Python bodies always
and on the JIT-compiled ones whenever numba is present).
"""

from __future__ import annotations

import logging
import os
from typing import Tuple

import numpy as np

__all__ = [
    "HAVE_NUMBA",
    "active_backend",
    "configure_backend",
    "bucket_slots",
    "forest_z",
    "hysteresis_scan",
    "knuth_tables",
    "replay_walk",
]

_log = logging.getLogger("repro.scale")

try:  # pragma: no cover - exercised only when numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:  # graceful degradation (satellite contract)
    _njit = None
    HAVE_NUMBA = False
    _log.info(
        "numba is not installed — repro.scale.kernels falls back to the "
        "pure-numpy backend (install the `repro[fast]` extra to enable "
        "the JIT kernels)"
    )

#: the active backend: "numba" or "numpy".  ``REPRO_BACKEND`` seeds it so
#: forked/spawned workers and subprocess benches inherit the selection.
_BACKEND = "numpy"
_WARNED_NUMBA_MISSING = False


def configure_backend(name: str = "auto") -> str:
    """Select the kernel backend; returns the backend actually active.

    ``auto`` picks numba when importable, else numpy.  Asking for
    ``numba`` without numba installed logs a one-time warning and stays
    on numpy — never an exception, so a ``--backend numba`` run degrades
    to a correct (slower) run on a numpy-only box.
    """
    global _BACKEND, _WARNED_NUMBA_MISSING
    if name not in ("auto", "numpy", "numba"):
        raise ValueError(f"unknown backend {name!r}; choose auto|numpy|numba")
    if name == "numpy":
        _BACKEND = "numpy"
    elif HAVE_NUMBA:
        _BACKEND = "numba"
    else:
        if name == "numba" and not _WARNED_NUMBA_MISSING:
            _WARNED_NUMBA_MISSING = True
            _log.warning(
                "backend 'numba' requested but numba is not installed; "
                "using the numpy fallback kernels (contract-equal, slower)"
            )
        _BACKEND = "numpy"
    return _BACKEND


def active_backend() -> str:
    """The backend public kernels dispatch to ("numpy" or "numba")."""
    return _BACKEND


# ---------------------------------------------------------------------------
# scalar bodies (numba-compatible; compiled below when numba is present)
# ---------------------------------------------------------------------------


def _bucket_slots_body(times, slot_ends, client_slot, served):
    """Two-pointer slot bucketing over sorted arrivals.

    Exactly ``searchsorted(slot_ends, times, side="right")`` with the
    past-the-last-slot -1 rule: ``client_slot[i]`` is the first slot end
    strictly after ``times[i]`` (SlotEnd fires before Arrival at equal
    timestamps), and ``served[k]`` flags slots that caught an arrival.
    """
    ns = slot_ends.shape[0]
    j = 0
    for i in range(times.shape[0]):
        t = times[i]
        while j < ns and slot_ends[j] <= t:
            j += 1
        if j >= ns:
            client_slot[i] = -1
        else:
            client_slot[i] = j
            served[j] = True


def _forest_z_body(arrivals, parent, z):
    """Reverse subtree-maximum propagation (children have larger indices)."""
    for i in range(arrivals.shape[0] - 1, 0, -1):
        p = parent[i]
        if p >= 0 and z[i] > z[p]:
            z[p] = z[i]


def _hysteresis_scan_body(counts, window, rate_high, rate_low, mode):
    """Sequential sliding-window rate scan with hysteresis.

    The mode recurrence of ``HybridPolicy``: at slot ``k`` the window
    holds the last ``min(k+1, window)`` per-slot arrival counts
    *including* slot ``k`` (the policy appends before deciding), the
    rate is their integer sum over the window length (one exact int/int
    IEEE division — identical to ``sum(deque)/len(deque)``), and the
    mode bit flips dyadic->dg at ``rate >= rate_high``, dg->dyadic at
    ``rate < rate_low``.  ``mode[k]`` is the bit the slot is *served*
    under (1 = dg).
    """
    running = 0
    m = 0
    for k in range(counts.shape[0]):
        running += counts[k]
        if k >= window:
            running -= counts[k - window]
        length = k + 1 if k + 1 < window else window
        rate = running / length
        if m == 0:
            if rate >= rate_high:
                m = 1
        elif rate < rate_low:
            m = 0
        mode[k] = m


def _knuth_tables_body(ts, cost, split):
    """The Knuth-windowed interval DP of ``fastpath.general`` on 2-D arrays.

    Same expressions, same association order, same ``<=`` largest-h
    tie-break as the list-based ``_knuth_tables_py`` — bit-identical
    tables on every input (the float arithmetic is identical IEEE ops).
    """
    n = ts.shape[0]
    for i in range(n - 1):
        cost[i, i + 1] = 2 * ts[i + 1] - ts[i + 1] - ts[i]
        split[i, i + 1] = i + 1
    for width in range(2, n):
        for i in range(n - width):
            j = i + width
            lo = split[i, j - 1]
            hi = split[i + 1, j]
            best = cost[i, lo - 1] + cost[lo, j] + (2 * ts[j] - ts[lo] - ts[i])
            best_h = lo
            for h in range(lo + 1, hi + 1):
                v = cost[i, h - 1] + cost[h, j] + (2 * ts[j] - ts[h] - ts[i])
                if v <= best:
                    best = v
                    best_h = h
            cost[i, j] = best
            split[i, j] = best_h


def _replay_walk_body(x, par, lengths, L, receive_two, demanded, t2max):
    """Per-client ancestor walk of the replay demand algebra.

    The scalar twin of the per-level vectorised walk in
    ``fastpath.replay``: same Lemma 1/17 demand expressions in the same
    IEEE evaluation order, ``max`` accumulation instead of
    ``np.maximum.at`` (order-free for finite floats).  Returns
    ``(used_total, fail_count)``; failure *records* are produced by the
    numpy path only — a positive count triggers that (cold) path, so
    clean forests never leave compiled code.
    """
    n = x.shape[0]
    used_total = 0
    fail_count = 0
    for i in range(n):
        p = par[i]
        if p >= 0:
            own = x[i] - x[p]
            if own > L:
                own = L
        else:
            own = L
        demanded[i] = own
        if own > lengths[i]:
            fail_count += 1
    for i in range(n):
        if par[i] < 0:
            continue
        y = x[i]
        wprev = i
        wcur = par[i]
        while True:
            a_prev = x[wprev]
            a_cur = x[wcur]
            pcur = par[wcur]
            if receive_two:
                used = (2 * y - a_prev - a_cur) < L
                if pcur < 0:
                    demand = L
                else:
                    demand = 2 * y - a_cur - x[pcur]
                    if demand > L:
                        demand = L
                tu = 2 * y - a_cur
                if a_cur + L < tu:
                    tu = a_cur + L
                if tu > 2 * y - a_prev and tu > t2max[i]:
                    t2max[i] = tu
            else:
                used = (y - a_cur) < L
                if pcur < 0:
                    demand = L
                else:
                    demand = y - x[pcur]
                    if demand > L:
                        demand = L
            if used:
                used_total += 1
                if demand > lengths[wcur]:
                    fail_count += 1
                if demand > demanded[wcur]:
                    demanded[wcur] = demand
            if pcur < 0:
                break
            wprev = wcur
            wcur = pcur
    return used_total, fail_count


if HAVE_NUMBA:  # pragma: no cover - exercised only when numba is installed
    _cache = os.environ.get("REPRO_NUMBA_CACHE", "1") != "0"
    _bucket_slots_jit = _njit(cache=_cache)(_bucket_slots_body)
    _forest_z_jit = _njit(cache=_cache)(_forest_z_body)
    _hysteresis_scan_jit = _njit(cache=_cache)(_hysteresis_scan_body)
    _knuth_tables_jit = _njit(cache=_cache)(_knuth_tables_body)
    _replay_walk_jit = _njit(cache=_cache)(_replay_walk_body)
else:
    _bucket_slots_jit = _bucket_slots_body
    _forest_z_jit = _forest_z_body
    _hysteresis_scan_jit = _hysteresis_scan_body
    _knuth_tables_jit = _knuth_tables_body
    _replay_walk_jit = _replay_walk_body


# ---------------------------------------------------------------------------
# public dispatchers
# ---------------------------------------------------------------------------


def bucket_slots(
    times: np.ndarray, slot_ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(client_slot, served_idx)`` for sorted arrivals against slot ends.

    ``client_slot[i]`` is the slot whose end serves arrival ``i`` (-1
    past the last slot end); ``served_idx`` the sorted non-empty slots.
    ``times`` must be non-decreasing (the :class:`ArrivalTrace` contract)
    and ``slot_ends`` strictly increasing.  Both backends reproduce
    ``searchsorted(..., side="right")`` exactly.
    """
    times = np.ascontiguousarray(times, dtype=np.float64)
    slot_ends = np.ascontiguousarray(slot_ends, dtype=np.float64)
    if _BACKEND == "numba":
        client_slot = np.empty(times.size, dtype=np.intp)
        served = np.zeros(slot_ends.size, dtype=np.bool_)
        _bucket_slots_jit(times, slot_ends, client_slot, served)
        served_idx = np.nonzero(served)[0]
        return client_slot, served_idx
    client_slot = np.searchsorted(slot_ends, times, side="right")
    client_slot = np.where(client_slot >= slot_ends.size, -1, client_slot)
    served_idx = np.unique(client_slot[client_slot >= 0])
    return client_slot.astype(np.intp, copy=False), served_idx.astype(np.intp, copy=False)


def forest_z(arrivals: np.ndarray, parent: np.ndarray) -> np.ndarray:
    """Subtree maxima ``z[i] = max arrival in subtree(i)`` in one reverse pass.

    The construction half of "slot bucketing + flat-forest construction":
    builders that cannot hand a trusted ``z`` to
    :class:`~repro.fastpath.flat_forest.FlatForest` pay this O(n) pass on
    every forest they create.  The numpy backend is the original
    list-loop; the numba backend runs the same recurrence compiled.
    """
    if _BACKEND == "numba":
        z = arrivals.copy()
        _forest_z_jit(arrivals, parent, z)
        return z
    zl = arrivals.tolist()
    pl = parent.tolist()
    for i in range(len(zl) - 1, 0, -1):
        p = pl[i]
        if p >= 0:
            zi = zl[i]
            if zi > zl[p]:
                zl[p] = zi
    return np.asarray(zl, dtype=np.float64)


def hysteresis_scan(
    counts: np.ndarray, window: int, rate_high: float, rate_low: float
) -> np.ndarray:
    """Per-slot DG/dyadic mode bits for the hybrid policy, in one pass.

    ``counts[k]`` is the number of arrivals slot ``k`` caught
    (``np.bincount`` over ``bucket_slots`` output); the return is an
    int8 array with ``mode[k] = 1`` when slot ``k`` is served in DG mode
    and 0 for dyadic — exactly the trajectory the event-driven
    ``HybridPolicy`` realises (append count, update mode with hysteresis,
    serve under the updated mode).  The rate at slot ``k`` is the integer
    sum of the last ``min(k+1, window)`` counts divided by that length —
    int/int division, so both backends (and the oracle's running-sum
    ``_rate``) evaluate the identical IEEE quotient.  Inherently
    sequential (the mode bit feeds back), like :func:`forest_z`: the
    numpy backend runs the same recurrence as a plain list loop.
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    if not 0 <= rate_low <= rate_high:
        raise ValueError("need 0 <= rate_low <= rate_high")
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    mode = np.empty(counts.size, dtype=np.int8)
    if _BACKEND == "numba":
        _hysteresis_scan_jit(counts, window, rate_high, rate_low, mode)
        return mode
    cl = counts.tolist()
    running = 0
    m = 0
    for k in range(len(cl)):
        running += cl[k]
        if k >= window:
            running -= cl[k - window]
        length = k + 1 if k + 1 < window else window
        rate = running / length
        if m == 0:
            if rate >= rate_high:
                m = 1
        elif rate < rate_low:
            m = 0
        mode[k] = m
    return mode


def knuth_tables(ts: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Knuth-windowed merge DP tables ``(cost, split)`` as 2-D arrays.

    Array twin of ``fastpath.general._knuth_tables_py`` (which remains
    the numpy-backend path and the property-tested oracle); ``split``
    carries the reference's largest-optimal-``h`` tie-break.  O(n^2)
    time *and* memory — callers keep ``n`` at DP scale, this kernel
    makes the window scan compiled, not the table asymptotics smaller.
    """
    ts = np.ascontiguousarray(ts, dtype=np.float64)
    n = ts.size
    cost = np.zeros((n, n), dtype=np.float64)
    split = np.zeros((n, n), dtype=np.int64)
    if n > 1:
        _knuth_tables_jit(ts, cost, split)
    return cost, split


def replay_walk(
    x: np.ndarray,
    par: np.ndarray,
    lengths: np.ndarray,
    L: float,
    model: str,
) -> Tuple[np.ndarray, np.ndarray, int, np.ndarray, np.ndarray, np.ndarray]:
    """The replay demand walk over a flat forest, backend-dispatched.

    Returns ``(demanded, t2max, used_total, fail_client, fail_stream,
    fail_demand)``:

    * ``demanded[u]`` — the largest part any client ever takes from
      stream ``u`` (each client's own stream included);
    * ``t2max[i]`` — client ``i``'s last two-delivery slot (-inf when it
      never listens to two streams; receive-two only);
    * ``used_total`` — number of (client, ancestor) stream uses beyond
      the client's own stream (the oracle's ``streams_used`` count);
    * the ``fail_*`` triples — every over-demand ``(client node, stream
      node, demand)``, the numeric halves of the oracle's failure
      messages.

    The numba path computes the demand algebra compiled and only falls
    back to the numpy walk to *enumerate* failures when its failure
    count is non-zero — corrupted forests pay a second pass, clean ones
    never leave compiled code.  Failure record ordering differs between
    backends (level order vs client order); the failure *multiset* is
    identical, matching the documented replay contract.
    """
    if model not in ("receive-two", "receive-all"):
        raise ValueError(f"unknown model {model!r}")
    if _BACKEND == "numba":
        demanded = np.empty(x.size, dtype=np.float64)
        t2max = np.full(x.size, -np.inf)
        used_total, fail_count = _replay_walk_jit(
            x, par, lengths, float(L), model == "receive-two", demanded, t2max
        )
        if fail_count:
            return _replay_walk_numpy(x, par, lengths, L, model)
        empty_i = np.empty(0, dtype=np.intp)
        return (
            demanded,
            t2max,
            int(used_total),
            empty_i,
            empty_i,
            np.empty(0, dtype=np.float64),
        )
    return _replay_walk_numpy(x, par, lengths, L, model)


def _replay_walk_numpy(
    x: np.ndarray,
    par: np.ndarray,
    lengths: np.ndarray,
    L: float,
    model: str,
) -> Tuple[np.ndarray, np.ndarray, int, np.ndarray, np.ndarray, np.ndarray]:
    """The per-tree-level vectorised walk (the pre-JIT production code)."""
    n = x.size
    nonroot = par >= 0
    fail_client: list = []
    fail_stream: list = []
    fail_demand: list = []

    p_safe = np.where(nonroot, par, 0)
    own_demand = np.where(nonroot, np.minimum(x - x[p_safe], float(L)), float(L))
    demanded = own_demand.copy()
    bad = np.nonzero(own_demand > lengths)[0]
    for i in bad.tolist():
        fail_client.append(i)
        fail_stream.append(i)
        fail_demand.append(float(own_demand[i]))

    cl = np.nonzero(nonroot)[0]
    wprev = cl
    wcur = par[cl]
    t2max = np.full(n, -np.inf)
    used_total = 0
    while cl.size:
        y = x[cl]
        a_prev = x[wprev]
        a_cur = x[wcur]
        pcur = par[wcur]
        cur_is_root = pcur < 0
        q = x[np.where(cur_is_root, 0, pcur)]
        if model == "receive-two":
            used = (2 * y - a_prev - a_cur) < L
            demand = np.where(
                cur_is_root, float(L), np.minimum(2 * y - a_cur - q, float(L))
            )
            tu = np.minimum(2 * y - a_cur, a_cur + L)
            valid = tu > 2 * y - a_prev
            np.maximum.at(t2max, cl[valid], tu[valid])
        else:  # receive-all (Lemma 17 programs)
            used = (y - a_cur) < L
            demand = np.where(
                cur_is_root, float(L), np.minimum(y - q, float(L))
            )
        used_total += int(np.count_nonzero(used))
        fail = used & (demand > lengths[wcur])
        for j in np.nonzero(fail)[0].tolist():
            fail_client.append(int(cl[j]))
            fail_stream.append(int(wcur[j]))
            fail_demand.append(float(demand[j]))
        np.maximum.at(demanded, wcur[used], demand[used])
        step = pcur >= 0
        cl = cl[step]
        wprev = wcur[step]
        wcur = pcur[step]
    return (
        demanded,
        t2max,
        used_total,
        np.asarray(fail_client, dtype=np.intp),
        np.asarray(fail_stream, dtype=np.intp),
        np.asarray(fail_demand, dtype=np.float64),
    )


# Seed the backend from the environment so worker processes and bench
# subprocesses inherit an explicit selection; default is auto.
configure_backend(os.environ.get("REPRO_BACKEND", "auto"))

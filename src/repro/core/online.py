"""The on-line Delay Guaranteed algorithm (Section 4).

The on-line algorithm does not know the time horizon ``n``.  It statically
picks the merge-tree size ``F_h`` where ``F_{h+1} < L + 2 <= F_{h+2}``
(mirroring what Theorem 12 says the off-line optimum does) and simply stamps
out the optimal (Fibonacci) merge tree for ``F_h`` arrivals over and over:
full streams start at times ``0, F_h, 2 F_h, ...`` and the stream started at
slot ``t`` plays the role of node ``t mod F_h`` of the precomputed tree.

Because every decision is static the server can precompute all receiving
programs in O(L) time and answer each client in O(1) — no on-line decisions
at all, which is the algorithm's selling point over dyadic merging.

Costs: the last (possibly partial) tree is the *prefix* of the Fibonacci
tree induced by the remaining arrivals (prefixes of a preorder traversal are
parent-closed, hence valid merge trees), and stream lengths adapt to the
arrivals actually present — exactly what a real server does when no client
needs the stream any more.  ``A(L, n)`` denotes the resulting full cost;
Theorem 21 shows ``A(L, n) <= n log_phi L + O(n + L log_phi L)`` and
Theorem 22 that ``A(L, n) / F(L, n) <= 1 + 2L/n`` for ``L >= 7`` and
``n > L^2 + 2``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Optional, Tuple

import numpy as np

from .fibonacci import fib, tree_size_index
from .merge_tree import MergeForest, MergeNode, MergeTree
from .offline import build_optimal_parent_array, build_optimal_tree
from .full_cost import optimal_full_cost

__all__ = [
    "online_tree_size",
    "prefix_tree",
    "shift_tree",
    "build_online_forest",
    "build_online_flat_forest",
    "online_full_cost",
    "online_full_cost_closed",
    "online_over_optimal_ratio",
    "OnlineScheduler",
    "StreamOrder",
]


def online_tree_size(L: int) -> int:
    """The static tree size ``F_h`` with ``F_{h+1} < L + 2 <= F_{h+2}``."""
    return fib(tree_size_index(L))


def prefix_tree(tree: MergeTree, count: int) -> MergeTree:
    """The sub-merge-tree induced by the first ``count`` preorder arrivals.

    For trees with the preorder property the first ``count`` arrivals in
    time are exactly the first ``count`` preorder nodes, and a preorder
    prefix is parent-closed, so the result is a valid merge tree over the
    earliest ``count`` arrivals.
    """
    if not 1 <= count <= len(tree):
        raise ValueError(f"count {count} outside 1..{len(tree)}")
    if not tree.has_preorder_property():
        raise ValueError("prefix_tree requires the preorder property")
    keep = set(tree.preorder_arrivals()[:count])

    def rec(node: MergeNode) -> MergeNode:
        copy = MergeNode(node.arrival)
        for child in node.children:
            if child.arrival in keep:
                cc = rec(child)
                cc.parent = copy
                copy.children.append(cc)
        return copy

    return MergeTree(rec(tree.root))


def build_online_forest(L: int, n: int, tree_size: Optional[int] = None) -> MergeForest:
    """The forest the on-line DG algorithm produces over ``n`` slots.

    Full trees of ``F_h`` arrivals at offsets ``0, F_h, 2 F_h, ...``; the
    final tree is the prefix of the Fibonacci tree on the leftover arrivals.
    ``tree_size`` overrides the static size (used by the tree-size ablation;
    the default ``F_h`` is the paper's choice).

    This is the object-graph *reference*: no production path calls it any
    more — the simulation tier runs on :func:`build_online_flat_forest`
    (same structure, parent arrays only), which the fastpath tests check
    against this builder node for node.
    """
    if L < 1 or n < 1:
        raise ValueError(f"need L >= 1 and n >= 1, got L={L}, n={n}")
    size = online_tree_size(L) if tree_size is None else tree_size
    # a tree of `size` consecutive arrivals spans size - 1 <= L - 1 slots
    if not 1 <= size <= L:
        raise ValueError(f"tree size {size} infeasible for L={L}")
    template = build_optimal_tree(size)
    trees: List[MergeTree] = []
    offset = 0
    while offset < n:
        remaining = n - offset
        if remaining >= size:
            trees.append(build_optimal_tree(size, start=offset))
            offset += size
        else:
            partial = prefix_tree(template, remaining)
            trees.append(shift_tree(partial, offset))
            offset = n
    forest = MergeForest(trees)
    forest.validate_for_length(L)
    return forest


def shift_tree(tree: MergeTree, delta: float) -> MergeTree:
    """Copy of ``tree`` with every label shifted by ``delta``."""
    def rec(node: MergeNode) -> MergeNode:
        copy = MergeNode(node.arrival + delta)
        for child in node.children:
            cc = rec(child)
            cc.parent = copy
            copy.children.append(cc)
        return copy

    return MergeTree(rec(tree.root))


def build_online_flat_forest(L: int, n: int, tree_size: Optional[int] = None):
    """Flat-array version of :func:`build_online_forest`.

    Identical structure and costs (the fastpath equivalence tests prove
    it), but materialises only parent-index arrays: the template parent
    array is tiled across the full trees and truncated for the final
    partial tree (a preorder prefix is parent-closed, so truncation *is*
    the prefix tree).  O(L + n) with no per-node Python objects.
    """
    if L < 1 or n < 1:
        raise ValueError(f"need L >= 1 and n >= 1, got L={L}, n={n}")
    size = online_tree_size(L) if tree_size is None else tree_size
    if not 1 <= size <= L:
        raise ValueError(f"tree size {size} infeasible for L={L}")
    from ..fastpath.flat_forest import FlatForest

    template = build_optimal_parent_array(size)
    q, rem = divmod(n, size)
    parts = []
    if q:
        tiled = np.tile(template, q)
        base = np.repeat(np.arange(q, dtype=np.intp) * size, size)
        parts.append(np.where(tiled < 0, -1, tiled + base))
    if rem:
        tail = template[:rem]
        parts.append(np.where(tail < 0, -1, tail + q * size))
    parent = np.concatenate(parts)
    forest = FlatForest(np.arange(n, dtype=np.float64), parent)
    forest.validate_for_length(L)
    return forest


def online_full_cost(L: int, n: int, tree_size: Optional[int] = None) -> int:
    """``A(L, n)``: total bandwidth of the on-line DG algorithm.

    Evaluated on the flat fast path (vectorised ``Fcost``); equal by
    construction — and by test — to the object forest's ``full_cost``.
    ``tree_size`` overrides the static ``F_h`` choice (ablation use).
    """
    return int(build_online_flat_forest(L, n, tree_size=tree_size).full_cost(L))


@lru_cache(maxsize=None)
def _online_prefix_costs(size: int, L: int) -> Tuple[int, ...]:
    """``A``-costs of the template-prefix forests: index ``rem`` holds the
    full cost of the first ``rem`` preorder nodes of the size-``size``
    optimal tree (``rem = 0..size``; index ``size`` is the full tree).

    Built incrementally in integer arithmetic: appending preorder node
    ``k`` adds its own Lemma 1 length (``k - p`` for non-roots, ``L`` for
    the root) and, since ``k`` becomes the new subtree maximum ``z`` of
    every ancestor, extends each non-root ancestor ``a`` by
    ``2 (k - z_old(a))``.  O(size log size) total (ancestor chains of the
    Fibonacci template have logarithmic depth).
    """
    parent = build_optimal_parent_array(size).tolist()
    z = list(range(size))
    prefix = [0] * (size + 1)
    total = 0
    for k in range(size):
        p = parent[k]
        total += L if p < 0 else k - p
        a = p
        while a >= 0:
            if parent[a] >= 0:  # the root's stream length stays L
                total += 2 * (k - z[a])
            z[a] = k
            a = parent[a]
        prefix[k + 1] = total
    return tuple(prefix)


def online_full_cost_closed(L: int, n: int, tree_size: Optional[int] = None) -> int:
    """``A(L, n)`` in closed form — no forest is materialised.

    The DG forest is ``q = n // size`` copies of the static template plus
    a preorder prefix of ``rem = n % size`` nodes; per-tree costs are
    shift-invariant integers, so ``A(L, n) = q * A_template + A_prefix``.
    Exactly equal to :func:`online_full_cost` (the flat-forest evaluator,
    kept as the per-point reference) for every valid ``(L, n, tree_size)``
    — property-tested in ``tests/sweeps/test_closed_forms.py``.  The
    per-``(size, L)`` prefix table is memoised, making each call O(log n)
    after the first — the ``Acost`` evaluator the sweep tier feeds on.
    """
    if L < 1 or n < 1:
        raise ValueError(f"need L >= 1 and n >= 1, got L={L}, n={n}")
    size = online_tree_size(L) if tree_size is None else tree_size
    if not 1 <= size <= L:
        raise ValueError(f"tree size {size} infeasible for L={L}")
    prefix = _online_prefix_costs(size, L)
    q, rem = divmod(n, size)
    return q * prefix[size] + prefix[rem]


def online_over_optimal_ratio(L: int, n: int) -> float:
    """``A(L, n) / F(L, n)`` — the Fig. 9 series; -> 1 as n grows (Thm 22)."""
    return online_full_cost(L, n) / optimal_full_cost(L, n)


# ---------------------------------------------------------------------------
# Incremental scheduler: the server-side view
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class StreamOrder:
    """An instruction the scheduler emits at a slot boundary.

    ``start``: begin multicasting the media from part 1 at time ``slot``.
    ``length`` is the number of slots the stream must run *if the horizon
    ends at the current tree's last possible arrival*; a real server keeps
    the stream until its subtree's last actual client merges away.  The
    scheduler also reports ``receiving_parent``: the earlier stream this one
    will merge into (None for full streams).
    """

    slot: int
    tree_index: int
    node_in_tree: int
    is_root: bool
    parent_slot: Optional[int]
    planned_length: int


class OnlineScheduler:
    """Slot-by-slot emitter of the DG algorithm's stream orders.

    The constructor precomputes the Fibonacci template tree once (O(L));
    :meth:`order_for_slot` is then an O(1) table lookup, matching the
    paper's complexity argument ("the server can precompute receiving
    programs and use a look-up table ... O(1) amortised time").
    """

    def __init__(self, L: int):
        if L < 1:
            raise ValueError(f"L must be >= 1, got {L}")
        self.L = L
        self.size = online_tree_size(L)
        # Flat lookup tables indexed by node label (0..size-1 within a
        # tree): parent index (-1 for the root) and planned stream length.
        # Built from the parent array alone — no MergeNode graph.
        from ..fastpath.flat_forest import FlatForest

        self._parent = build_optimal_parent_array(self.size)
        flat = FlatForest(np.arange(self.size, dtype=np.float64), self._parent)
        self._planned_length = (
            flat.stream_lengths(L).astype(np.int64).tolist()
        )
        self._parent_list = self._parent.tolist()
        self._template: Optional[MergeTree] = None

    @property
    def template(self) -> MergeTree:
        """The optimal tree as a MergeTree (built lazily, cached)."""
        if self._template is None:
            self._template = build_optimal_tree(self.size)
        return self._template

    def order_for_slot(self, slot: int) -> StreamOrder:
        """The stream order for the slot ending at integer time ``slot``."""
        if slot < 0:
            raise ValueError(f"slot must be >= 0, got {slot}")
        tree_index, node = divmod(slot, self.size)
        base = tree_index * self.size
        parent = self._parent_list[node]
        return StreamOrder(
            slot=slot,
            tree_index=tree_index,
            node_in_tree=node,
            is_root=parent < 0,
            parent_slot=None if parent < 0 else base + parent,
            planned_length=self._planned_length[node],
        )

    def orders(self, n: int) -> Iterator[StreamOrder]:
        """Orders for slots ``0..n-1``."""
        for slot in range(n):
            yield self.order_for_slot(slot)

    def receiving_path(self, slot: int) -> List[int]:
        """The client receiving program for an arrival at slot ``slot``:
        the path of stream start-slots from the tree root down to the
        client's own stream (``[x_0, ..., x_k]`` of Section 2)."""
        tree_index, node = divmod(slot, self.size)
        base = tree_index * self.size
        path: List[int] = []
        label = node
        while label >= 0:
            path.append(base + label)
            label = self._parent_list[label]
        path.reverse()
        return path

"""Unit and property tests for repro.core.merge_tree."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.core.merge_tree import (
    MergeForest,
    MergeNode,
    MergeTree,
    chain_tree,
    star_tree,
    tree_from_parent_map,
)

from tests.conftest import preorder_tree


class TestMergeNode:
    def test_add_child_ordering(self):
        root = MergeNode(0)
        root.add_child(MergeNode(2))
        with pytest.raises(ValueError):
            root.add_child(MergeNode(1))  # out of sibling order
        with pytest.raises(ValueError):
            root.add_child(MergeNode(0))  # not after parent

    def test_preorder_and_last_descendant(self):
        t = chain_tree([0, 1, 2, 3])
        assert [n.arrival for n in t.root.preorder()] == [0, 1, 2, 3]
        assert t.root.last_descendant().arrival == 3

    def test_depth_and_path(self):
        t = chain_tree([0, 2, 5])
        node = t.node(5)
        assert node.depth() == 2
        assert [n.arrival for n in node.path_from_root()] == [0, 2, 5]


class TestMergeTreeBasics:
    def test_duplicate_labels_rejected(self):
        root = MergeNode(0)
        a = MergeNode(1)
        root.children.append(a)
        a.parent = root
        b = MergeNode(1)
        root.children.append(b)
        b.parent = root
        with pytest.raises(ValueError):
            MergeTree(root)

    def test_single(self):
        t = MergeTree.single(3)
        assert len(t) == 1
        assert t.span() == 0
        assert t.has_preorder_property()

    def test_contains_and_node(self):
        t = star_tree([0, 1, 2])
        assert 2 in t and 5 not in t
        assert t.node(1).parent.arrival == 0
        with pytest.raises(KeyError):
            t.node(9)

    def test_preorder_property_detection(self):
        # star and chain always have it
        assert star_tree([0, 1, 2, 3]).has_preorder_property()
        assert chain_tree([0, 1, 2, 3]).has_preorder_property()
        # a valid merge tree *without* it: 0 -> {1 -> 3, 2};
        # preorder walk 0, 1, 3, 2 is not sorted.
        root = MergeNode(0)
        c1 = MergeNode(1)
        c1.parent = root
        root.children.append(c1)
        c2 = MergeNode(2)
        c2.parent = root
        root.children.append(c2)
        grand = MergeNode(3)
        grand.parent = c1
        c1.children.append(grand)
        t = MergeTree(root)
        assert not t.has_preorder_property()


class TestLengths:
    def test_paper_lengths_n8(self, paper_tree8):
        # Fig. 3: l(F=5) = 9, l(H=7) = 2, l(B=1) = 1
        assert paper_tree8.length(5) == 9
        assert paper_tree8.length(7) == 2
        assert paper_tree8.length(1) == 1
        with pytest.raises(ValueError):
            paper_tree8.length(0)  # root has no l(x)

    def test_leaf_length_closes_gap(self):
        t = star_tree([0, 3, 7])
        assert t.length(3) == 3
        assert t.length(7) == 7

    def test_receive_all_lengths(self, paper_tree8):
        # omega(x) = z(x) - p(x)
        assert paper_tree8.length_receive_all(5) == 7 - 0
        assert paper_tree8.length_receive_all(7) == 7 - 5
        with pytest.raises(ValueError):
            paper_tree8.length_receive_all(0)

    def test_merge_cost_paper(self, paper_tree8):
        assert paper_tree8.merge_cost() == 21

    def test_alternative_length_expressions(self, paper_tree8):
        # Eq. (2)/(3): l(x) = (x - p) + 2(z - x) = (z - x) + (z - p)
        for node in paper_tree8.root.preorder():
            if node.parent is None:
                continue
            x, p = node.arrival, node.parent.arrival
            z = node.last_descendant().arrival
            length = paper_tree8.length(x)
            assert length == (x - p) + 2 * (z - x)
            assert length == (z - x) + (z - p)


class TestLemma2Split:
    def test_split_paper_tree(self, paper_tree8):
        t_prime, t_double = paper_tree8.split_last_root_child()
        assert t_prime.arrivals() == [0, 1, 2, 3, 4]
        assert t_double.arrivals() == [5, 6, 7]
        assert t_prime.merge_cost() == 9
        assert t_double.merge_cost() == 3
        # Lemma 2: Mcost(T) = Mcost(T') + Mcost(T'') + (2z - x - r)
        x, z, r = 5, 7, 0
        assert paper_tree8.merge_cost() == 9 + 3 + (2 * z - x - r)

    def test_split_bare_root_fails(self):
        with pytest.raises(ValueError):
            MergeTree.single(0).split_last_root_child()

    def test_attach_inverse_of_split(self, paper_tree8):
        t_prime, t_double = paper_tree8.split_last_root_child()
        rebuilt = t_prime.attach(t_double)
        assert rebuilt.canonical() == paper_tree8.canonical()

    @given(preorder_tree(max_n=20))
    def test_lemma2_decomposition_random(self, tree):
        if len(tree) < 2:
            return
        t_prime, t_double = tree.split_last_root_child()
        x = t_double.root.arrival
        z = tree.last_arrival()
        r = tree.root.arrival
        assert tree.merge_cost() == (
            t_prime.merge_cost() + t_double.merge_cost() + (2 * z - x - r)
        )

    @given(preorder_tree(max_n=20))
    def test_split_attach_roundtrip_random(self, tree):
        if len(tree) < 2:
            return
        t_prime, t_double = tree.split_last_root_child()
        assert t_prime.attach(t_double).canonical() == tree.canonical()


class TestParentMapAndFactories:
    def test_round_trip(self, paper_tree8):
        rebuilt = tree_from_parent_map(paper_tree8.parent_map())
        assert rebuilt.canonical() == paper_tree8.canonical()

    def test_bad_parent_maps(self):
        with pytest.raises(ValueError):
            tree_from_parent_map({0: None, 1: None})  # two roots
        with pytest.raises(ValueError):
            tree_from_parent_map({1: 0})  # missing root/parent

    def test_chain_star_costs(self):
        # chain over 0..3: l(i) = 2*3 - i - (i-1)
        chain = chain_tree([0, 1, 2, 3])
        assert chain.merge_cost() == sum(2 * 3 - i - (i - 1) for i in [1, 2, 3])
        star = star_tree([0, 1, 2, 3])
        assert star.merge_cost() == 1 + 2 + 3

    def test_render_contains_all_labels(self, paper_tree8):
        text = paper_tree8.render()
        for a in paper_tree8.arrivals():
            assert str(a) in text


class TestMergeForest:
    def test_overlap_rejected(self):
        t1 = star_tree([0, 1, 2])
        t2 = star_tree([2, 3])
        with pytest.raises(ValueError):
            MergeForest([t1, t2])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MergeForest([])

    def test_full_cost_paper(self, paper_tree8):
        forest = MergeForest([paper_tree8])
        assert forest.full_cost(15) == 36
        assert forest.merge_cost() == 21
        assert forest.roots() == [0]
        assert forest.num_arrivals() == 8

    def test_validate_for_length(self):
        forest = MergeForest([star_tree([0, 1, 10])])
        with pytest.raises(ValueError):
            forest.full_cost(10)  # span 10 > L-1 = 9
        assert forest.full_cost(11) == 11 + 1 + 10

    def test_find(self, paper_tree8):
        forest = MergeForest([paper_tree8])
        tree, node = forest.find(6)
        assert node.arrival == 6 and tree is paper_tree8
        with pytest.raises(KeyError):
            forest.find(99)

    def test_stream_lengths(self, paper_tree8):
        lengths = MergeForest([paper_tree8]).stream_lengths(15)
        assert lengths[0] == 15  # root carries L
        assert lengths[5] == 9
        assert sum(v for k, v in lengths.items() if k != 0) == 21

    def test_multi_tree_costs(self):
        f = MergeForest([star_tree([0, 1]), star_tree([5, 6])])
        assert f.merge_cost() == 2
        assert f.full_cost(4) == 2 * 4 + 2
        assert f.arrivals() == [0, 1, 5, 6]

"""General-arrivals fastpath vs. the cubic oracle, plus channel schedules
and multiplex aggregation — the ``BENCH_general.json`` trajectory.

Two modes (same layout as ``bench_fastpath.py``):

* ``pytest benchmarks/bench_general.py --benchmark-only`` — smoke-size
  pytest-benchmark runs (small n; every run asserts fast == reference);
* ``python benchmarks/bench_general.py`` (or ``make bench-general``) —
  the full sweep, writing ``BENCH_general.json`` (schema
  ``repro.fastpath.bench.v1``) at the repo root.  The sweep times the
  O(n^3) forest oracle once at n = 2000, which alone takes a few
  minutes — that is the point being measured.

"Reference" timings exercise the frozen pre-fastpath paths — the cubic
full-scan forest DP with recursive MergeNode reconstruction, the heap
greedy channel loop over StreamInterval objects, and the per-object
Python aggregation loops.  "Fast" timings exercise the O(n^2)
Knuth-windowed flat forest, ``assign_channels_flat`` and the stacked
interval-array aggregation.  Every timed pair asserts exact agreement.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # script mode: make src importable before repro
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from repro.core.general import (
    optimal_forest_general_reference,
)
from repro.core.online import build_online_flat_forest
from repro.fastpath.flat_forest import FlatForest
from repro.fastpath.general import optimal_flat_forest_general
from repro.multiplex import Catalog, aggregate_peak, aggregate_profile, serve_catalog
from repro.simulation.channels import (
    StreamInterval,
    assign_channels,
    assign_channels_flat,
    flat_forest_intervals,
)

from repro.fastpath.general import _knuth_tables
from repro.scale.kernels import active_backend, configure_backend

from conftest import timeit_best, write_bench_json

#: stream length for the general-arrivals forest cases: large enough that
#: trees merge dozens of irregular arrivals.
GENERAL_L = 60

#: stream length for the channel-schedule cases (DG envelope forests).
FOREST_L = 500


def irregular_times(n: int) -> List[float]:
    """A deterministic non-uniform arrival pattern (bursts + lulls)."""
    ts, t = [], 0.0
    for i in range(n):
        t += 0.1 + (i % 7) * 0.35 + (3.0 if i % 23 == 0 else 0.0)
        ts.append(t)
    return ts


def reference_aggregate_peak(loads) -> int:
    """The pre-vectorisation event sweep over StreamInterval objects.

    Keep in sync with ``sweep_peak`` in
    ``tests/multiplex/test_workload_server.py`` — both freeze the deleted
    production sweep as an oracle (not shared: ``tests`` is not
    importable from benchmark script mode).
    """
    events = []
    for load in loads:
        for s in load.intervals:
            events.append((s.start, 1))
            events.append((s.end, -1))
    events.sort(key=lambda e: (e[0], e[1]))
    level = peak = 0
    for _, delta in events:
        level += delta
        peak = max(peak, level)
    return peak


def reference_aggregate_profile(loads, t0, t1, resolution) -> np.ndarray:
    """The pre-vectorisation per-stream loop (with the bin-edge fix)."""
    nbins = int(np.ceil((t1 - t0) / resolution))
    diff = np.zeros(nbins + 1, dtype=np.int64)
    for load in loads:
        for s in load.intervals:
            lo_t, hi_t = max(s.start, t0), min(s.end, t1)
            if hi_t > lo_t:
                lo = int(np.floor((lo_t - t0) / resolution))
                hi = int(np.ceil((hi_t - t0) / resolution))
                diff[lo] += 1
                diff[hi] -= 1
    return np.cumsum(diff[:-1])


def _channel_case(n: int):
    """(interval objects, starts, ends) for a DG forest with ~n streams."""
    flat = build_online_flat_forest(FOREST_L, n)
    labels, starts, ends = flat_forest_intervals(flat, FOREST_L)
    objs = [
        StreamInterval(label=l, start=s, end=e)
        for l, s, e in zip(labels.tolist(), starts.tolist(), ends.tolist())
    ]
    return objs, starts, ends


def _assert_assignments_equal(oracle, ch: np.ndarray, objs) -> None:
    for i, s in enumerate(objs):
        assert int(ch[i]) == oracle.channel_of(s.label)


# ---------------------------------------------------------------------------
# pytest-benchmark smoke tests (small n, CI-friendly)
# ---------------------------------------------------------------------------


def test_general_forest_smoke(benchmark):
    ts = irregular_times(110)
    fast = benchmark(optimal_flat_forest_general, ts, GENERAL_L)
    ref = optimal_forest_general_reference(ts, GENERAL_L)
    assert fast.equals(FlatForest.from_forest(ref))
    assert fast.to_forest().full_cost(GENERAL_L) == ref.full_cost(GENERAL_L)


def test_assign_channels_flat_smoke(benchmark):
    objs, starts, ends = _channel_case(2000)
    ch = benchmark(assign_channels_flat, starts, ends)
    _assert_assignments_equal(assign_channels(objs), ch, objs)


def test_aggregate_profile_smoke(benchmark):
    catalog = Catalog.zipf(8, duration_minutes=120.0, exponent=0.8)
    report = serve_catalog(catalog, 10.0, 480.0, policy="dg")
    t1 = max(float(l.ends.max()) for l in report.loads) + 1.0
    prof = benchmark(aggregate_profile, report.loads, 0.0, t1, 5.0)
    assert prof.max() >= report.peak_channels
    assert aggregate_peak(report.loads) == reference_aggregate_peak(report.loads)


# ---------------------------------------------------------------------------
# full sweep (script mode): writes BENCH_general.json
# ---------------------------------------------------------------------------


def _case(name: str, n: int, ref_s: float, fast_s: float, **extra) -> Dict:
    row = {
        "name": name,
        "n": n,
        "reference_seconds": round(ref_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 2),
        **extra,
    }
    print(
        f"  {name:32s} n={n:>7d}  ref {ref_s:10.4f}s  "
        f"fast {fast_s:10.6f}s  x{row['speedup']:.1f}"
    )
    return row


def run_sweep() -> Dict:
    rows: List[Dict] = []

    # -- O(n^2) optimal forest vs the O(n^3) oracle -------------------------
    for n, repeats in ((500, 2), (2000, 1)):
        ts = irregular_times(n)
        ref_s, ref_forest = timeit_best(
            lambda: optimal_forest_general_reference(ts, GENERAL_L), repeats=1
        )
        fast_s, fast_forest = timeit_best(
            lambda: optimal_flat_forest_general(ts, GENERAL_L), repeats=repeats + 1
        )
        assert fast_forest.equals(FlatForest.from_forest(ref_forest))
        assert (
            fast_forest.to_forest().full_cost(GENERAL_L)
            == ref_forest.full_cost(GENERAL_L)
        )
        rows.append(_case("optimal_forest_general", n, ref_s, fast_s))

    # -- scale tier: Knuth window scan, backend-dispatched ------------------
    # O(n^2) time AND memory, so n stays at DP scale; the row times the
    # window scan itself under the active backend (compiled under numba,
    # the list DP otherwise — numpy-only rows honestly record ~1x).
    backend = active_backend()
    ts4k = irregular_times(4000)
    configure_backend(backend)
    _knuth_tables(ts4k)  # warm: pages, JIT compilation
    fast_s, (fast_cost, fast_split) = timeit_best(
        lambda: _knuth_tables(ts4k), repeats=2
    )
    configure_backend("numpy")
    ref_s, (ref_cost, ref_split) = timeit_best(
        lambda: _knuth_tables(ts4k), repeats=2
    )
    configure_backend(backend)
    assert fast_cost == ref_cost and fast_split == ref_split
    rows.append(
        _case("knuth_tables_backend", len(ts4k), ref_s, fast_s, backend=backend)
    )

    # -- vectorised channel schedule vs the heap greedy ---------------------
    for n in (10_000, 100_000):
        objs, starts, ends = _channel_case(n)
        ref_s, oracle = timeit_best(lambda: assign_channels(objs), repeats=2)
        fast_s, ch = timeit_best(
            lambda: assign_channels_flat(starts, ends), repeats=3
        )
        _assert_assignments_equal(oracle, ch, objs)
        rows.append(_case("assign_channels", len(objs), ref_s, fast_s))

    # -- catalog aggregation on stacked arrays vs object loops --------------
    catalog = Catalog.zipf(120, duration_minutes=180.0, exponent=0.8)
    report = serve_catalog(catalog, 5.0, 2880.0, policy="dg")
    n_streams = int(sum(l.starts.size for l in report.loads))
    t1 = max(float(l.ends.max()) for l in report.loads) + 1.0
    # materialise the object tuples outside the timers: the reference cost
    # being measured is the aggregation walk, not the (lazy) construction.
    object_views = [l.intervals for l in report.loads]

    class _ObjLoad:  # minimal stand-in exposing .intervals for the reference
        __slots__ = ("intervals",)

        def __init__(self, intervals):
            self.intervals = intervals

    obj_loads = [_ObjLoad(iv) for iv in object_views]
    ref_s, ref_peak = timeit_best(
        lambda: reference_aggregate_peak(obj_loads), repeats=3
    )
    fast_s, fast_peak = timeit_best(lambda: aggregate_peak(report.loads), repeats=3)
    assert fast_peak == ref_peak
    rows.append(_case("aggregate_peak", n_streams, ref_s, fast_s))

    ref_s, ref_prof = timeit_best(
        lambda: reference_aggregate_profile(obj_loads, 0.0, t1, 5.0), repeats=3
    )
    fast_s, fast_prof = timeit_best(
        lambda: aggregate_profile(report.loads, 0.0, t1, 5.0), repeats=3
    )
    assert np.array_equal(fast_prof, ref_prof)
    assert fast_prof.max() >= fast_peak
    rows.append(_case("aggregate_profile", n_streams, ref_s, fast_s))

    payload = {
        "schema": "repro.fastpath.bench.v1",
        "L": GENERAL_L,
        "description": (
            "General-arrivals fastpath: O(n^3) full-scan forest DP vs the "
            "Knuth-windowed O(n^2) flat reconstruction; heap-greedy channel "
            "assignment vs assign_channels_flat; object-loop multiplex "
            "aggregation vs stacked interval arrays.  Best-of-k wall clock, "
            "exact agreement asserted on every pair.  knuth_tables_backend "
            "times the backend-dispatched Knuth window scan at n = 4000 "
            "(compiled under numba; numpy-only rows record ~1x with an "
            "honest backend tag)."
        ),
        "benchmarks": rows,
    }
    return payload


def main() -> int:
    print(
        "general-arrivals benchmark sweep "
        "(runs the O(n^3) forest oracle at n=2000 once; several minutes)"
    )
    payload = run_sweep()
    path = write_bench_json("general", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

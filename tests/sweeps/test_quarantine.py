"""SweepCache corruption handling: quarantine, recount, recompute."""

from __future__ import annotations

import json

import pytest

from repro.sweeps import ARTIFACT_SCHEMA, Axis, SweepCache, SweepSpec, run_sweep
from repro.sweeps.evaluators import merge_cost_table_point


def _spec():
    return SweepSpec(
        name="quarantine-test",
        evaluator=merge_cost_table_point,
        axes=[Axis("n", (1, 2, 3))],
        metrics=("closed", "via_dp"),
    )


def _artifacts(cache: SweepCache):
    return [
        p
        for p in cache.root.rglob("*.json")
        if p.parent != cache.quarantine_dir
    ]


CORRUPTIONS = {
    "truncated": lambda text: text[: len(text) // 2],
    "not-json": lambda text: "{definitely not json",
    "wrong-schema": lambda text: json.dumps(
        {"schema": "bogus.v9", "metrics": {"x": 1}}
    ),
    "non-dict": lambda text: json.dumps([1, 2, 3]),
    "non-scalar-metric": lambda text: json.dumps(
        {"schema": ARTIFACT_SCHEMA, "metrics": {"x": [1, 2]}}
    ),
    "wrong-key": lambda text: json.dumps(
        {"schema": ARTIFACT_SCHEMA, "key": "f" * 64, "metrics": {"x": 1}}
    ),
}


class TestQuarantine:
    @pytest.mark.parametrize("mode", sorted(CORRUPTIONS))
    def test_corrupt_artifact_quarantined_and_recomputed(self, tmp_path, mode):
        cache = SweepCache(tmp_path)
        warm = run_sweep(_spec(), cache=cache)
        victim = _artifacts(cache)[0]
        victim.write_text(CORRUPTIONS[mode](victim.read_text()))
        res = run_sweep(_spec(), cache=cache)
        assert cache.quarantined == 1
        assert res.evaluated == 1 and res.cache_hits == 2
        assert res.rows() == warm.rows()
        # the bad artifact is preserved for post-mortem, out of the path
        assert len(list(cache.quarantine_dir.glob("*.json"))) == 1

    def test_binary_garbage_quarantined(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(_spec(), cache=cache)
        victim = _artifacts(cache)[0]
        victim.write_bytes(b"\x00\xff\xfe binary trash")
        res = run_sweep(_spec(), cache=cache)
        assert cache.quarantined == 1 and res.evaluated == 1

    def test_quarantined_artifacts_not_counted_live(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(_spec(), cache=cache)
        assert len(cache) == 3
        victim = _artifacts(cache)[0]
        victim.write_text("{torn")
        run_sweep(_spec(), cache=cache)
        # recomputed artifact replaced the torn one; quarantine not counted
        assert len(cache) == 3
        assert cache.quarantined == 1

    def test_clear_removes_quarantine_too(self, tmp_path):
        cache = SweepCache(tmp_path)
        run_sweep(_spec(), cache=cache)
        _artifacts(cache)[0].write_text("{torn")
        run_sweep(_spec(), cache=cache)
        removed = cache.clear()
        assert removed == 4  # 3 live + 1 quarantined
        assert len(cache) == 0

    def test_missing_artifact_is_plain_miss(self, tmp_path):
        cache = SweepCache(tmp_path)
        assert cache.get("ab" * 32) is None
        assert cache.misses == 1 and cache.quarantined == 0

    def test_legacy_artifact_without_key_still_hits(self, tmp_path):
        """Artifacts written before the ``key`` field existed must keep
        hitting (schema compatibility)."""
        cache = SweepCache(tmp_path)
        key = "cd" * 32
        path = cache.path(key)
        path.parent.mkdir(parents=True)
        path.write_text(
            json.dumps({"schema": ARTIFACT_SCHEMA, "metrics": {"x": 1}})
        )
        assert cache.get(key) == {"x": 1}
        assert cache.hits == 1 and cache.quarantined == 0

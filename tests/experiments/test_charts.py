"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.experiments.charts import AsciiChart, Series, render_chart


class TestBasics:
    def test_single_series_renders(self):
        out = render_chart([1, 2, 3], [("line", [1.0, 2.0, 3.0])])
        assert "o line" in out
        assert "1" in out and "3" in out

    def test_multiple_series_distinct_markers(self):
        out = render_chart(
            [1, 2, 3],
            [("a", [1, 1, 1]), ("b", [3, 3, 3])],
        )
        assert "o a" in out and "x b" in out
        # flat series occupy one row each
        lines = [l for l in out.splitlines() if "|" in l]
        a_rows = [l for l in lines if "o" in l.split("|")[-1]]
        b_rows = [l for l in lines if "x" in l.split("|")[-1]]
        assert len(a_rows) == 1 and len(b_rows) == 1
        assert lines.index(b_rows[0]) < lines.index(a_rows[0])  # larger y on top

    def test_y_autoscale_labels(self):
        out = render_chart([0, 1], [("s", [10.0, 20.0])])
        assert "20" in out and "10" in out

    def test_dimensions(self):
        chart = AsciiChart(xs=(0.0, 1.0), width=30, height=7)
        chart.add("s", [0.0, 1.0])
        body = [l for l in chart.render().splitlines() if "|" in l]
        assert len(body) == 7
        assert all(len(l.split("|")[1]) == 30 for l in body)


class TestValidation:
    def test_length_mismatch(self):
        chart = AsciiChart(xs=(0.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            chart.add("bad", [1.0, 2.0])

    def test_empty_chart(self):
        with pytest.raises(ValueError):
            AsciiChart(xs=(0.0, 1.0)).render()

    def test_log_scale_guards(self):
        with pytest.raises(ValueError):
            render_chart([0, 1], [("s", [1, 2])], logx=True)
        with pytest.raises(ValueError):
            render_chart([1, 2], [("s", [0, 2])], logy=True)


class TestLogScales:
    def test_logx_spreads_decades(self):
        # a peak at x=100 over [10, 1000]: centre column under logx,
        # far-left (~9%) under linear x
        def peak_col(logx):
            out = render_chart(
                [10, 100, 1000], [("s", [1.0, 5.0, 1.0])], logx=logx
            )
            lines = [l for l in out.splitlines() if "|" in l]
            top = next(l.split("|")[1] for l in lines if "o" in l)
            return top.index("o"), len(top)

        log_col, width = peak_col(True)
        lin_col, _ = peak_col(False)
        assert abs(log_col - width // 2) <= 2
        assert lin_col < width // 4

    def test_logy_labels_delogged(self):
        out = render_chart([0, 1], [("s", [10.0, 1000.0])], logy=True)
        assert "1000" in out and "10" in out

    def test_constant_series_ok(self):
        # degenerate y-range must not divide by zero
        out = render_chart([0, 1, 2], [("s", [5.0, 5.0, 5.0])])
        assert "o s" in out


class TestSeries:
    def test_factory(self):
        s = Series.of("n", [1, 2])
        assert s.ys == (1.0, 2.0)

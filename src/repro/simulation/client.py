"""Client entities: playback heads, two-stream tuners, buffer accounting.

Clients in the simulator are bookkeeping objects: the *policy* decides
which streams exist; a client records which slot it was served in, the
merge-tree path it was handed, and — for slotted runs — its expected
buffer high-water mark from Lemma 15, which the simulation cross-checks
against the receiving-program replay in :mod:`repro.simulation.verify`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Client"]


@dataclass
class Client:
    """One (possibly batched) client request."""

    client_id: int
    arrival: float  # true arrival time
    service_time: float  # when its stream group starts (slot end for batching)
    tree_label: Optional[float] = None  # the merge-tree node serving it
    path: Tuple[float, ...] = ()
    receive_channels: int = 2
    notes: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.service_time < self.arrival:
            raise ValueError(
                f"client {self.client_id}: service at {self.service_time} "
                f"precedes arrival at {self.arrival}"
            )

    @property
    def startup_delay(self) -> float:
        """Experienced start-up delay (slot-end batching makes it <= D)."""
        return self.service_time - self.arrival

    def assign(self, tree_label: float, path: Tuple[float, ...]) -> None:
        if self.tree_label is not None:
            raise RuntimeError(f"client {self.client_id} assigned twice")
        if path and path[-1] != tree_label:
            raise ValueError("path must end at the client's own stream label")
        self.tree_label = tree_label
        self.path = path

    def merge_hops(self) -> int:
        """Number of merge operations the client performs (path length - 1)."""
        return max(0, len(self.path) - 1)

"""Fig. 9: ratio of the on-line DG bandwidth to the off-line optimum.

The paper plots ``A(L, n) / F(L, n)`` against the time horizon and shows
it approaching 1; Theorem 22 bounds it by ``1 + 2L/n`` once ``L >= 7`` and
``n > L^2 + 2``.  The experiment sweeps horizons for several stream
lengths and reports the measured ratio next to the bound.

Sweep-tier driver: one two-axis :class:`~repro.sweeps.SweepSpec` over
``(L, n)``, each point evaluated by the closed-form ``Acost``/``Fcost``
kernels (O(log n) per point after the per-``L`` template memo);
:func:`run_fig9_reference` keeps the retired loop — which built an
``n``-node flat forest per point — as the benchmark oracle.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.bounds import online_ratio_bound, online_ratio_bound_applies
from ..core.full_cost import optimal_full_cost
from ..core.online import online_full_cost
from ..sweeps import Axis, SweepSpec, run_sweep
from ..sweeps.evaluators import online_ratio_point
from .charts import render_chart
from .harness import ExperimentResult, register

DEFAULT_LS = (15, 50, 100)
DEFAULT_NS = (10, 30, 100, 300, 1000, 3000, 10000, 30000, 100000)


def fig9_spec(
    Ls: Sequence[int] = DEFAULT_LS, ns: Sequence[int] = DEFAULT_NS
) -> SweepSpec:
    return SweepSpec(
        name="fig9",
        evaluator=online_ratio_point,
        axes=[Axis("L", tuple(Ls)), Axis("n", tuple(ns))],
        metrics=("online_cost", "offline_cost", "applies", "bound"),
    )


def _row(n, a, f, applies, bound):
    ratio = a / f
    within = (not applies) or ratio <= bound + 1e-12
    return (
        n,
        a,
        f,
        round(ratio, 5),
        round(bound, 5) if applies else "-",
        "ok" if within else "VIOLATION",
    )


def _table(L: int, rows, columns=None) -> ExperimentResult:
    return ExperimentResult(
        title=f"A(L,n)/F(L,n) for L = {L}",
        headers=("n", "A(L,n)", "F(L,n)", "ratio", "Thm22 bound", "status"),
        rows=rows,
        notes=[
            "Shape target: ratio -> 1 as the horizon grows.",
            "\n"
            + render_chart(
                [r[0] for r in rows],
                [("A/F ratio", [r[3] for r in rows])],
                x_label="time horizon n (slots, log scale)",
                logx=True,
            ),
        ],
        columns=columns,
    )


@register(
    "fig9",
    "On-line / off-line bandwidth ratio vs horizon (Fig. 9)",
    "Fig. 9 / Theorems 21-22",
    "A(L,n)/F(L,n) for several L as the horizon n grows, with the "
    "Theorem 22 bound 1 + 2L/n where it applies.",
)
def run_fig9(
    Ls: Sequence[int] = DEFAULT_LS, ns: Sequence[int] = DEFAULT_NS
) -> List[ExperimentResult]:
    sweep = run_sweep(fig9_spec(Ls, ns))
    columns = sweep.columns_json()
    results = []
    # Points are row-major over (L, n): slice the flat table back into
    # one per-L figure panel.
    per_l = len(tuple(ns))
    all_rows = sweep.rows("L", "n", "online_cost", "offline_cost", "applies", "bound")
    for i, L in enumerate(Ls):
        block = all_rows[i * per_l : (i + 1) * per_l]
        rows = [_row(n, a, f, applies, bound) for _, n, a, f, applies, bound in block]
        results.append(_table(L, rows, columns=columns if i == 0 else None))
    return results


def run_fig9_reference(
    Ls: Sequence[int] = DEFAULT_LS, ns: Sequence[int] = DEFAULT_NS
) -> List[ExperimentResult]:
    """The retired per-point loop (one flat forest per (L, n) point).

    Benchmark oracle only; asserted row-identical to :func:`run_fig9`.
    """
    results = []
    for L in Ls:
        rows = []
        for n in ns:
            a = online_full_cost(L, n)
            f = optimal_full_cost(L, n)
            applies = online_ratio_bound_applies(L, n)
            bound = online_ratio_bound(L, n)
            rows.append(_row(n, a, f, applies, bound))
        results.append(_table(L, rows))
    return results

"""Tests for the rolling-horizon live serving tier."""

"""Trace serialization: save/load workloads for reproducible experiments.

Experiments that compare policies must run them on *identical* traces;
persisting the trace (rather than the seed) also survives RNG-algorithm
changes across numpy versions.  Format: a small JSON envelope with a
schema version, the horizon, and the times array.

The payload-level helpers (:func:`trace_payload` /
:func:`trace_from_payload`) expose the envelope as a plain dict so
composite documents — the live daemon's checkpoint embeds one envelope
per catalog object — can nest traces without double-encoding JSON
strings.  Both directions run the full validation (schema tag, declared
count, ArrivalTrace invariants), so a partial trace cut mid-horizon, a
zero-arrival object, or a single-client object round-trips exactly or
fails loudly (``tests/arrivals/test_serialization.py``).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from .traces import ArrivalTrace

__all__ = [
    "trace_payload",
    "trace_from_payload",
    "trace_to_json",
    "trace_from_json",
    "save_trace",
    "load_trace",
]

_SCHEMA = "repro.arrival-trace.v1"


def trace_payload(trace: ArrivalTrace, meta: Union[dict, None] = None) -> dict:
    """The serialisable envelope of a trace, as a plain dict."""
    return {
        "schema": _SCHEMA,
        "horizon": trace.horizon,
        "count": len(trace),
        "times": list(trace.times),
        "meta": meta or {},
    }


def trace_from_payload(payload: dict) -> ArrivalTrace:
    """Rebuild a trace from a :func:`trace_payload` dict.

    Validates the schema tag and the declared count, then re-runs the
    ArrivalTrace invariants (strictly increasing, inside the horizon).
    """
    if payload.get("schema") != _SCHEMA:
        raise ValueError(
            f"not an arrival-trace document (schema={payload.get('schema')!r})"
        )
    times = tuple(float(t) for t in payload["times"])
    if payload.get("count") != len(times):
        raise ValueError(
            f"corrupt trace: declared {payload.get('count')} times, "
            f"found {len(times)}"
        )
    return ArrivalTrace(times=times, horizon=float(payload["horizon"]))


def trace_to_json(trace: ArrivalTrace, meta: Union[dict, None] = None) -> str:
    """Serialise a trace (and optional metadata) to a JSON string."""
    return json.dumps(trace_payload(trace, meta))


def trace_from_json(text: str) -> ArrivalTrace:
    """Parse a trace serialised by :func:`trace_to_json`."""
    return trace_from_payload(json.loads(text))


def save_trace(trace: ArrivalTrace, path: Union[str, Path], meta: Union[dict, None] = None) -> None:
    """Write a trace to ``path`` as JSON."""
    Path(path).write_text(trace_to_json(trace, meta))


def load_trace(path: Union[str, Path]) -> ArrivalTrace:
    """Read a trace written by :func:`save_trace`."""
    return trace_from_json(Path(path).read_text())

"""Scheduling policies for the MoD server simulation.

Each policy translates client arrivals into stream starts/extensions via
the :class:`~repro.simulation.server.Simulation` services.  Merging
policies share the Lemma 1 bookkeeping: when a new node ``y`` with root
path ``x_0 < ... < x_k = y`` appears, the stream for ``y`` starts with the
leaf length ``y - p(y)`` and every non-root ancestor ``a`` is extended to
``2 y - a - p(a)`` (its subtree's last arrival ``z(a)`` just became ``y``).
Streams are only ever extended while still live — guaranteed for
consecutive slotted arrivals and for dyadic windows with ``alpha <= 2``
(see ``baselines.dyadic``); the :class:`~repro.simulation.stream.Stream`
entity asserts it.

Since the flat-simulation refactor no policy constructs or traverses
``MergeNode`` objects: the off-line replays precompute flat parent
arrays (``build_optimal_flat_forest`` / the ``OnlineScheduler`` tables),
and the dyadic policies place arrivals with
:class:`~repro.fastpath.dyadic.DyadicFlatOnline`, whose stack *is* the
receiving path the Lemma 1 extensions walk.

Policies implemented (the paper's Section 4.2 cast plus baselines):

* :class:`DelayGuaranteedPolicy` — the paper's on-line algorithm: a stream
  at every slot end regardless of arrivals, static Fibonacci-tree merging.
* :class:`OfflineOptimalPolicy` — replay of the Theorem 10/12 optimal
  forest (delay-guaranteed: one imaginary client per slot).
* :class:`ImmediateDyadicPolicy` — dyadic merging, zero start-up delay.
* :class:`BatchedDyadicPolicy` — dyadic merging over non-empty slot ends.
* :class:`PureBatchingPolicy` — a full stream per non-empty slot end.
* :class:`UnicastPolicy` — a full stream per client.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..baselines.dyadic import DyadicParams
from ..core.full_cost import build_optimal_flat_forest
from ..core.online import OnlineScheduler
from ..fastpath.dyadic import DyadicFlatOnline

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .client import Client
    from .server import Simulation

__all__ = [
    "Policy",
    "DelayGuaranteedPolicy",
    "OfflineOptimalPolicy",
    "GeneralOfflinePolicy",
    "ImmediateDyadicPolicy",
    "BatchedDyadicPolicy",
    "PureBatchingPolicy",
    "UnicastPolicy",
]


class Policy:
    """Base policy.  Subclasses set ``name`` and ``uses_slots``."""

    name: str = "abstract"
    #: slotted policies receive ``on_slot_end``; immediate ones ``on_arrival``
    uses_slots: bool = True

    def on_arrival(self, client: "Client", sim: "Simulation") -> None:
        raise NotImplementedError(f"{self.name} does not serve immediate arrivals")

    def on_slot_end(
        self, slot_index: int, clients: List["Client"], sim: "Simulation"
    ) -> None:
        raise NotImplementedError(f"{self.name} does not use slots")

    def on_finish(self, sim: "Simulation") -> None:
        """Called once after the event queue drains."""


def _serve_dyadic_path(
    sim: "Simulation",
    path_slots: Tuple[float, ...],
    L: float,
    scale: float,
    label: float,
) -> Tuple[float, ...]:
    """Start the stream for a freshly placed dyadic node and apply the
    Lemma 1 ancestor extensions, all from the receiving path alone.

    ``path_slots`` is the root path in the dyadic builder's (slot-unit)
    frame; ``label`` is the new stream's label on the simulation clock
    (``path_slots[-1] * scale`` up to the caller's arithmetic).  Returns
    the scaled path for client assignment.
    """
    path = tuple(p * scale for p in path_slots)
    if len(path) == 1:
        sim.start_stream(label, planned_units=L * scale, parent_label=None)
        return path
    parent_label = path[-2]
    sim.start_stream(
        label, planned_units=label - parent_label, parent_label=parent_label
    )
    # z(a) updates for every non-root strict ancestor, in slot units.
    y = path_slots[-1]
    for depth in range(len(path_slots) - 2, 0, -1):
        a, pa = path_slots[depth], path_slots[depth - 1]
        sim.extend_stream(a * scale, (2 * y - a - pa) * scale)
    return path


class DelayGuaranteedPolicy(Policy):
    """The paper's on-line Delay Guaranteed algorithm (Section 4).

    Starts a stream at the end of *every* slot — arrivals or not — and
    merges them along the precomputed optimal tree for ``F_h`` arrivals.
    All decisions are static: the per-slot work is one table lookup.
    """

    uses_slots = True

    def __init__(self, L: int):
        self.name = "delay-guaranteed"
        self.scheduler = OnlineScheduler(L)
        self.L = L

    def on_slot_end(
        self, slot_index: int, clients: List["Client"], sim: "Simulation"
    ) -> None:
        order = self.scheduler.order_for_slot(slot_index)
        # Work in slot-end time units: slot k's stream starts at (k+1)*slot.
        scale = sim.slot
        label = (slot_index + 1) * scale
        path_slots = self.scheduler.receiving_path(slot_index)
        path = tuple((s + 1) * scale for s in path_slots)
        if order.is_root:
            sim.start_stream(label, planned_units=self.L * scale, parent_label=None)
        else:
            parent_label = (order.parent_slot + 1) * scale
            sim.start_stream(
                label,
                planned_units=label - parent_label,
                parent_label=parent_label,
            )
            # z(a) updates for every non-root strict ancestor.
            for depth in range(len(path) - 2, 0, -1):
                a, pa = path[depth], path[depth - 1]
                sim.extend_stream(a, 2 * label - a - pa)
        for c in clients:
            c.assign(label, path)


class OfflineOptimalPolicy(Policy):
    """Clairvoyant replay of the optimal delay-guaranteed forest.

    Requires the number of slots up front (it is the off-line algorithm);
    starts a stream every slot like the DG algorithm, but merges along the
    Theorem 10/12 optimal forest, with final lengths known at start time.
    """

    uses_slots = True

    def __init__(self, L: int, n_slots: int):
        self.name = "offline-optimal"
        self.L = L
        # Flat construction: parent arrays only, no MergeNode graph.
        self.forest = build_optimal_flat_forest(L, n_slots)
        self._lengths = self.forest.stream_lengths(L).tolist()
        self._parent = self.forest.parent.tolist()
        self._path = self.forest.paths(range(n_slots))

    def on_slot_end(
        self, slot_index: int, clients: List["Client"], sim: "Simulation"
    ) -> None:
        scale = sim.slot
        label = (slot_index + 1) * scale
        parent = self._parent[slot_index]
        parent_label = None if parent < 0 else (parent + 1) * scale
        sim.start_stream(
            label,
            planned_units=self._lengths[slot_index] * scale,
            parent_label=parent_label,
        )
        path = tuple((p + 1) * scale for p in self._path[slot_index])
        for c in clients:
            c.assign(label, path)


class GeneralOfflinePolicy(Policy):
    """Clairvoyant optimum over the *non-empty* slot ends.

    Unlike :class:`OfflineOptimalPolicy` (the delay-guaranteed every-slot
    model), this replays the general-arrivals optimal forest of [6]
    (``repro.fastpath.general``, Knuth-windowed O(n^2)) over only the
    slots that contain clients — the fair clairvoyant comparator for
    batched dyadic on sparse workloads, usable at thousands of non-empty
    slots.
    """

    uses_slots = True

    def __init__(self, L: int, served_slot_ends: Sequence[float]):
        """``served_slot_ends``: the slot-end times *in slot units* that
        will contain at least one client, known in advance (it is an
        off-line policy).  ``trace.slot_end_times(slot)`` returns absolute
        times, so divide by the slot — ``[t / slot for t in
        trace.slot_end_times(slot)]`` — which is the identity for the
        default ``slot = 1.0``."""
        from ..fastpath.general import optimal_flat_forest_general

        self.name = "general-offline"
        self.L = L
        ends = list(served_slot_ends)
        if not ends:
            raise ValueError("need at least one served slot")
        # The O(n^2) fastpath solution, consumed straight off the flat
        # parent arrays — no MergeNode graph is ever built.
        self.forest = optimal_flat_forest_general(ends, L)
        arrivals = self.forest.arrivals.tolist()
        parent = self.forest.parent.tolist()
        paths = self.forest.paths()
        self._lengths = self.forest.stream_length_map(L)
        self._parent = {
            a: (None if parent[i] < 0 else arrivals[parent[i]])
            for i, a in enumerate(arrivals)
        }
        self._path = dict(zip(arrivals, paths))

    def on_slot_end(
        self, slot_index: int, clients: List["Client"], sim: "Simulation"
    ) -> None:
        if not clients:
            return
        scale = sim.slot
        label = (slot_index + 1) * scale
        key = label / scale
        if key not in self._parent:
            raise RuntimeError(
                f"slot end {key} was not in the precomputed served set"
            )
        parent = self._parent[key]
        sim.start_stream(
            label,
            planned_units=self._lengths[key] * scale,
            parent_label=None if parent is None else parent * scale,
        )
        path = tuple(p * scale for p in self._path[key])
        for c in clients:
            c.assign(label, path)


class ImmediateDyadicPolicy(Policy):
    """Immediate-service dyadic stream merging (alpha, beta) [9]."""

    uses_slots = False

    def __init__(self, L: int, params: Optional[DyadicParams] = None):
        self.name = "immediate-dyadic"
        self.L = L
        self.params = params or DyadicParams()
        self._builder = DyadicFlatOnline(L, self.params)

    def on_arrival(self, client: "Client", sim: "Simulation") -> None:
        self._builder.push(client.arrival)
        path = _serve_dyadic_path(
            sim, self._builder.current_path(), self.L, 1.0, client.arrival
        )
        client.assign(client.arrival, path)


class BatchedDyadicPolicy(Policy):
    """Dyadic merging over slot ends, skipping empty slots (Section 4.2)."""

    uses_slots = True

    def __init__(self, L: int, params: Optional[DyadicParams] = None):
        self.name = "batched-dyadic"
        self.L = L
        self.params = params or DyadicParams()
        self._builder = DyadicFlatOnline(L, self.params)

    def on_slot_end(
        self, slot_index: int, clients: List["Client"], sim: "Simulation"
    ) -> None:
        if not clients:
            return  # unlike Delay Guaranteed, empty slots start nothing
        scale = sim.slot
        label = (slot_index + 1) * scale
        # Dyadic windows are in the same units as L; work in slot units.
        self._builder.push(label / scale)
        path = _serve_dyadic_path(
            sim, self._builder.current_path(), self.L, scale, label
        )
        for c in clients:
            c.assign(label, path)


class PureBatchingPolicy(Policy):
    """One full stream per non-empty slot; no merging at all."""

    uses_slots = True

    def __init__(self, L: int):
        self.name = "pure-batching"
        self.L = L

    def on_slot_end(
        self, slot_index: int, clients: List["Client"], sim: "Simulation"
    ) -> None:
        if not clients:
            return
        scale = sim.slot
        label = (slot_index + 1) * scale
        sim.start_stream(label, planned_units=self.L * scale, parent_label=None)
        for c in clients:
            c.assign(label, (label,))


class UnicastPolicy(Policy):
    """A dedicated full stream per client — the strawman upper bound."""

    uses_slots = False

    def __init__(self, L: int):
        self.name = "unicast"
        self.L = L

    def on_arrival(self, client: "Client", sim: "Simulation") -> None:
        sim.start_stream(client.arrival, planned_units=self.L, parent_label=None)
        client.assign(client.arrival, (client.arrival,))

"""Bandwidth metrics for simulation runs.

The paper's headline metric is *total server bandwidth* in stream-slot
units (equivalently "number of complete media streams served" = units/L,
the Fig. 1 y-axis; or average bandwidth = units/n).  The simulator also
reports what the analytic formulas cannot: the concurrent-stream (channel)
profile over time and its peak, which Section 5 flags as the quantity that
matters for servers carrying many media objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

__all__ = ["BandwidthMetrics"]


@dataclass
class BandwidthMetrics:
    """Accumulates per-stream usage intervals and summarises them."""

    L: float
    intervals: List[Tuple[float, float]] = field(default_factory=list)
    streams_started: int = 0
    roots_started: int = 0
    clients_served: int = 0

    def record_stream(self, start: float, end: float, is_root: bool) -> None:
        if end < start:
            raise ValueError(f"stream interval reversed: [{start}, {end}]")
        self.intervals.append((start, end))
        self.streams_started += 1
        if is_root:
            self.roots_started += 1

    def record_client(self) -> None:
        self.clients_served += 1

    # -- summaries ----------------------------------------------------------

    @property
    def total_units(self) -> float:
        """Total bandwidth in slot units (the paper's Fcost)."""
        total = sum(e - s for s, e in self.intervals)
        return int(total) if float(total).is_integer() else total

    @property
    def streams_served(self) -> float:
        """Bandwidth in complete-media units: ``total_units / L`` (Fig. 1)."""
        return self.total_units / self.L

    def average_bandwidth(self) -> float:
        """Units per served client (``Fcost / n``)."""
        if self.clients_served == 0:
            return 0.0
        return self.total_units / self.clients_served

    def interval_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The recorded intervals as ``(starts, ends)`` float arrays."""
        if not self.intervals:
            empty = np.empty(0, dtype=np.float64)
            return empty, empty
        arr = np.asarray(self.intervals, dtype=np.float64)
        return arr[:, 0], arr[:, 1]

    def concurrency_profile(
        self, t0: float, t1: float, resolution: float = 1.0
    ) -> np.ndarray:
        """Concurrent active streams sampled on ``[t0, t1)``.

        Sample points are the left edges of bins of width ``resolution``;
        a stream [s, e) counts at sample t iff s <= t < e.  One
        difference-array pass over the stacked interval arrays — the
        former per-stream Python loop is retired.
        """
        if t1 <= t0 or resolution <= 0:
            raise ValueError("need t1 > t0 and positive resolution")
        nbins = int(np.ceil((t1 - t0) / resolution))
        diff = np.zeros(nbins + 1, dtype=np.int64)
        starts, ends = self.interval_arrays()
        lo = np.ceil((np.maximum(starts, t0) - t0) / resolution).astype(np.int64)
        hi = np.ceil((np.minimum(ends, t1) - t0) / resolution).astype(np.int64)
        visible = hi > lo
        np.add.at(diff, lo[visible], 1)
        np.add.at(diff, hi[visible], -1)
        return np.cumsum(diff[:-1])

    def peak_concurrency(self) -> int:
        """Maximum number of simultaneously active streams (exact).

        Routed through the vectorised half-open interval sweep of
        :func:`repro.simulation.channels.peak_concurrency` (a stream
        ending exactly when another starts does not overlap it, matching
        the retired event sort that put ends before starts at ties).
        """
        from .channels import peak_concurrency

        starts, ends = self.interval_arrays()
        return peak_concurrency(starts, ends)

    def summary(self) -> Dict[str, float]:
        return {
            "total_units": float(self.total_units),
            "streams_served": float(self.streams_served),
            "streams_started": float(self.streams_started),
            "roots_started": float(self.roots_started),
            "clients_served": float(self.clients_served),
            "avg_bandwidth_per_client": float(self.average_bandwidth()),
            "peak_concurrency": float(self.peak_concurrency()),
        }

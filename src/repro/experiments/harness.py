"""Experiment harness: registry, result tables, ASCII rendering.

Every paper table/figure has a module registering an
:class:`Experiment`; ``python -m repro <id>`` regenerates it and prints the
rows the paper reports.  Benchmarks reuse the same entry points with
smaller parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

__all__ = [
    "ExperimentResult",
    "Experiment",
    "register",
    "get_experiment",
    "all_experiments",
    "format_table",
]

_REGISTRY: Dict[str, "Experiment"] = {}


@dataclass
class ExperimentResult:
    """A titled table plus free-form notes.

    Sweep-backed experiments additionally attach the raw columnar payload
    (:meth:`repro.sweeps.SweepResult.columns_json`) as :attr:`columns`;
    the report writer includes it in the saved JSON so downstream tooling
    gets unrounded column arrays next to the formatted rows.
    """

    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: List[str] = field(default_factory=list)
    columns: Optional[Dict[str, object]] = None

    def render(self) -> str:
        out = [self.title, "=" * len(self.title), ""]
        out.append(format_table(self.headers, self.rows))
        if self.notes:
            out.append("")
            out.extend(f"note: {n}" for n in self.notes)
        return "\n".join(out)

    def column(self, name: str) -> List[object]:
        """Extract one column by header name."""
        idx = list(self.headers).index(name)
        return [row[idx] for row in self.rows]


@dataclass
class Experiment:
    """A registered, regenerable paper artifact."""

    exp_id: str
    title: str
    paper_ref: str
    run: Callable[..., List[ExperimentResult]]
    description: str = ""

    def __call__(self, **kwargs) -> List[ExperimentResult]:
        return self.run(**kwargs)


def register(
    exp_id: str, title: str, paper_ref: str, description: str = ""
) -> Callable:
    """Decorator: register ``fn`` as the generator for ``exp_id``."""

    def deco(fn: Callable[..., List[ExperimentResult]]) -> Callable:
        if exp_id in _REGISTRY:
            raise ValueError(f"duplicate experiment id {exp_id!r}")
        _REGISTRY[exp_id] = Experiment(
            exp_id=exp_id,
            title=title,
            paper_ref=paper_ref,
            run=fn,
            description=description,
        )
        return fn

    return deco


def get_experiment(exp_id: str) -> Experiment:
    # Import the experiment modules lazily so the registry is populated.
    from . import _load_all  # noqa: F401 - side-effect import

    _load_all()
    if exp_id not in _REGISTRY:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[exp_id]


def all_experiments() -> Dict[str, Experiment]:
    from . import _load_all

    _load_all()
    return dict(_REGISTRY)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}" if abs(value) < 1e6 else f"{value:.4e}"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Plain aligned text table."""
    cells = [[_fmt(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)

"""Runner hardening: pool crash recovery and shared-memory hygiene."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.arrivals import poisson
from repro.burnin import WorkerKill, installed_task_fault
from repro.fleet import pool_map, sanitize_times, shared_workload
from repro.multiplex import Catalog, split_requests


def _square(x: int) -> int:
    return x * x


def _raise_on_three(x: int) -> int:
    if x == 3:
        raise ValueError("task error")
    return x


class TestPoolMapCrashRecovery:
    def test_killed_worker_retried_in_process(self, tmp_path):
        kill = WorkerKill(task_index=3, marker_dir=str(tmp_path))
        with installed_task_fault(kill):
            results = list(pool_map(_square, list(range(10)), workers=2))
        assert kill.fired()
        assert results == [x * x for x in range(10)]

    def test_kill_at_first_task(self, tmp_path):
        kill = WorkerKill(task_index=0, marker_dir=str(tmp_path))
        with installed_task_fault(kill):
            results = list(pool_map(_square, list(range(6)), workers=2))
        assert kill.fired()
        assert results == [x * x for x in range(6)]

    def test_kill_at_last_task(self, tmp_path):
        kill = WorkerKill(task_index=5, marker_dir=str(tmp_path))
        with installed_task_fault(kill):
            results = list(pool_map(_square, list(range(6)), workers=2))
        assert kill.fired()
        assert results == [x * x for x in range(6)]

    def test_serial_path_runs_hook_without_kill(self, tmp_path):
        kill = WorkerKill(task_index=2, marker_dir=str(tmp_path))
        with installed_task_fault(kill):
            results = list(pool_map(_square, list(range(6)), workers=0))
        # parent-process guard: serial execution must never die
        assert not kill.fired()
        assert results == [x * x for x in range(6)]

    def test_ordinary_task_exceptions_still_propagate(self):
        with pytest.raises(ValueError, match="task error"):
            list(pool_map(_raise_on_three, list(range(6)), workers=2))


class TestSharedWorkloadCleanup:
    @pytest.fixture()
    def catalog(self):
        return Catalog.zipf(4, duration_minutes=30.0)

    @pytest.fixture()
    def workload(self, catalog):
        base = poisson(1.0, 60.0, seed=2)
        return split_requests(base, catalog, seed=2)

    @staticmethod
    def _segment_path(views) -> Path:
        name = next(iter(views.values())).name
        return Path("/dev/shm") / name.lstrip("/")

    def test_unlinked_on_clean_exit(self, catalog, workload):
        with shared_workload(catalog, workload) as views:
            path = self._segment_path(views)
            assert path.exists()
        assert not path.exists()

    def test_unlinked_on_crash_path(self, catalog, workload):
        """The regression the burn-in harness guards: an exception (or a
        worker crash surfacing as one) mid-fold must not leak /dev/shm
        segments."""
        with pytest.raises(RuntimeError, match="mid-fold"):
            with shared_workload(catalog, workload) as views:
                path = self._segment_path(views)
                assert path.exists()
                raise RuntimeError("worker crashed mid-fold")
        assert not path.exists()

    def test_empty_workload_ships_nothing(self, catalog):
        empty = {o.name: np.empty(0) for o in catalog}
        with shared_workload(catalog, empty) as views:
            assert views == {}


class TestSanitizeTimes:
    def test_clean_trace_untouched(self):
        clean = np.array([0.0, 1.5, 7.25])
        out, repaired = sanitize_times(clean, 10.0)
        assert np.array_equal(out, clean) and repaired == 0

    def test_all_failure_modes_repaired(self):
        times = np.array(
            [5.0, np.nan, np.inf, -np.inf, -1.0, 12.0, 5.0, 2.0, 10.0]
        )
        out, repaired = sanitize_times(times, 10.0)
        assert np.array_equal(out, [2.0, 5.0])
        assert repaired == 7

    def test_empty_input(self):
        out, repaired = sanitize_times(np.empty(0), 10.0)
        assert out.size == 0 and repaired == 0

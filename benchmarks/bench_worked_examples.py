"""Bench: the worked examples (Figs. 3-4, 6-7 and the full-cost numbers).

Cheap but they pin the exact integers the paper prints; regressions here
mean the model semantics drifted.
"""

from __future__ import annotations

from repro.experiments.worked_examples import run_fig3, run_fig67, run_table_full

from conftest import assert_all_ok


def test_fig3_example(benchmark):
    streams_res, prog_res = benchmark(run_fig3)
    assert "36" in streams_res.title
    assert len(prog_res.rows) == 15


def test_fig67_enumeration(benchmark):
    counts_res, _fib = benchmark(run_fig67, n_enum_max=9)
    by_n = {row[0]: row[1] for row in counts_res.rows}
    assert by_n[4] == 2 and by_n[8] == 1


def test_full_cost_examples(benchmark):
    (res,) = benchmark(run_table_full)
    assert_all_ok(res.rows, "full-cost examples")

"""Integration tests: simulation runs equal analytic costs for every policy."""

from __future__ import annotations

import pytest

from repro.arrivals import ArrivalTrace, constant_rate, every_slot, poisson
from repro.baselines.batching import batched_dyadic_cost, pure_batching_cost
from repro.baselines.dyadic import DyadicParams, dyadic_forest
from repro.baselines.unicast import unicast_cost
from repro.core.full_cost import optimal_full_cost
from repro.core.online import online_full_cost, online_tree_size
from repro.simulation import (
    BatchedDyadicPolicy,
    DelayGuaranteedPolicy,
    ImmediateDyadicPolicy,
    OfflineOptimalPolicy,
    PureBatchingPolicy,
    Simulation,
    UnicastPolicy,
    verify_simulation,
)


class TestDelayGuaranteed:
    @pytest.mark.parametrize("L,n", [(15, 8), (15, 57), (20, 100), (7, 33)])
    def test_cost_equals_analytic_A(self, L, n):
        res = Simulation(L, every_slot(n), DelayGuaranteedPolicy(L)).run()
        assert res.metrics.total_units == online_full_cost(L, n)
        verify_simulation(res).raise_if_failed()

    def test_intensity_independence(self):
        """DG cost depends only on the horizon, never on the arrivals."""
        L, horizon = 20, 57.0
        dense = poisson(0.2, horizon, seed=0)
        sparse = poisson(10.0, horizon, seed=0)
        r_dense = Simulation(L, dense, DelayGuaranteedPolicy(L)).run()
        r_sparse = Simulation(L, sparse, DelayGuaranteedPolicy(L)).run()
        assert r_dense.metrics.total_units == r_sparse.metrics.total_units
        assert r_dense.metrics.total_units == online_full_cost(L, 57)

    def test_startup_delay_bounded_by_slot(self):
        L = 15
        trace = poisson(0.7, 40.0, seed=3)
        res = Simulation(L, trace, DelayGuaranteedPolicy(L)).run()
        assert 0 < res.max_startup_delay() <= 1.0
        for c in res.clients:
            assert c.service_time == float(int(c.arrival)) + 1.0

    def test_roots_every_fh(self):
        L, n = 15, 40
        res = Simulation(L, every_slot(n), DelayGuaranteedPolicy(L)).run()
        fh = online_tree_size(L)
        roots = sorted(s.label for s in res.streams.values() if s.is_root)
        assert roots == [float(k * fh + 1) for k in range(-(-n // fh))]


class TestOfflineOptimal:
    @pytest.mark.parametrize("L,n", [(15, 8), (15, 14), (4, 16), (10, 60)])
    def test_cost_equals_F(self, L, n):
        res = Simulation(L, every_slot(n), OfflineOptimalPolicy(L, n)).run()
        assert res.metrics.total_units == optimal_full_cost(L, n)
        verify_simulation(res).raise_if_failed()

    def test_beats_or_ties_online(self):
        L, n = 12, 95
        off = Simulation(L, every_slot(n), OfflineOptimalPolicy(L, n)).run()
        onl = Simulation(L, every_slot(n), DelayGuaranteedPolicy(L)).run()
        assert off.metrics.total_units <= onl.metrics.total_units


class TestImmediateDyadic:
    def test_cost_matches_forest(self):
        trace = poisson(0.9, 120.0, seed=5)
        params = DyadicParams()
        res = Simulation(100, trace, ImmediateDyadicPolicy(100, params)).run()
        want = dyadic_forest(list(trace), 100, params).full_cost(100)
        assert abs(res.metrics.total_units - want) < 1e-6
        verify_simulation(res, continuous=True).raise_if_failed()

    def test_zero_startup_delay(self):
        trace = poisson(1.5, 60.0, seed=8)
        res = Simulation(100, trace, ImmediateDyadicPolicy(100)).run()
        assert res.max_startup_delay() == 0.0

    def test_alpha2_variant(self):
        trace = constant_rate(0.8, 90.0)
        params = DyadicParams(alpha=2.0, beta=0.5)
        res = Simulation(100, trace, ImmediateDyadicPolicy(100, params)).run()
        want = dyadic_forest(list(trace), 100, params).full_cost(100)
        assert abs(res.metrics.total_units - want) < 1e-6


class TestBatchedDyadic:
    def test_cost_matches_analytic(self):
        trace = poisson(1.3, 150.0, seed=6)
        params = DyadicParams()
        res = Simulation(100, trace, BatchedDyadicPolicy(100, params)).run()
        want = batched_dyadic_cost(trace, 100, 1.0, params)
        assert abs(res.metrics.total_units - want) < 1e-6
        verify_simulation(res).raise_if_failed()

    def test_empty_slots_start_nothing(self):
        trace = ArrivalTrace(times=(0.5, 10.5), horizon=20.0)
        res = Simulation(100, trace, BatchedDyadicPolicy(100)).run()
        assert res.metrics.streams_started == 2

    def test_all_clients_assigned(self):
        trace = poisson(0.4, 80.0, seed=7)
        res = Simulation(100, trace, BatchedDyadicPolicy(100)).run()
        assert all(c.tree_label is not None for c in res.clients)
        # clients in the same slot share a stream
        by_slot = {}
        for c in res.clients:
            by_slot.setdefault(int(c.arrival), set()).add(c.tree_label)
        assert all(len(s) == 1 for s in by_slot.values())


class TestSimplePolicies:
    def test_pure_batching(self):
        trace = poisson(2.2, 100.0, seed=4)
        res = Simulation(50, trace, PureBatchingPolicy(50)).run()
        assert res.metrics.total_units == pure_batching_cost(trace, 50)
        assert res.metrics.roots_started == res.metrics.streams_started

    def test_unicast(self):
        trace = poisson(2.2, 100.0, seed=4)
        res = Simulation(50, trace, UnicastPolicy(50)).run()
        assert res.metrics.total_units == unicast_cost(trace, 50)
        assert res.metrics.streams_started == len(trace)


class TestCostOrdering:
    def test_policy_hierarchy_dense_arrivals(self):
        """For dense arrivals: offline <= DG, merging << batching << unicast."""
        L, horizon = 20, 80.0
        trace = poisson(0.3, horizon, seed=11)
        n = 80
        costs = {}
        costs["offline"] = Simulation(L, trace, OfflineOptimalPolicy(L, n)).run().metrics.total_units
        costs["dg"] = Simulation(L, trace, DelayGuaranteedPolicy(L)).run().metrics.total_units
        costs["batch"] = Simulation(L, trace, PureBatchingPolicy(L)).run().metrics.total_units
        costs["unicast"] = Simulation(L, trace, UnicastPolicy(L)).run().metrics.total_units
        assert costs["offline"] <= costs["dg"] < costs["batch"] < costs["unicast"]


class TestSimulationPlumbing:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            Simulation(0, every_slot(5), DelayGuaranteedPolicy(5))
        with pytest.raises(ValueError):
            Simulation(5, every_slot(5), DelayGuaranteedPolicy(5), slot=0)

    def test_duplicate_stream_label_rejected(self):
        sim = Simulation(10, every_slot(3), DelayGuaranteedPolicy(10))
        sim.start_stream(1.0, planned_units=10)
        with pytest.raises(ValueError):
            sim.start_stream(1.0, planned_units=10)

    def test_forest_reconstruction_roundtrip(self):
        L, n = 15, 20
        res = Simulation(L, every_slot(n), DelayGuaranteedPolicy(L)).run()
        forest = res.forest()
        assert forest.num_arrivals() == n
        assert forest.full_cost(L) == res.metrics.total_units

    def test_empty_run_and_dangling_parent_rejected(self):
        res = Simulation(10, ArrivalTrace(times=(), horizon=5.0), UnicastPolicy(10)).run()
        with pytest.raises(ValueError, match="no streams"):
            res.flat_forest()
        res2 = Simulation(
            10, ArrivalTrace(times=(1.5,), horizon=5.0), UnicastPolicy(10)
        ).run()
        object.__setattr__(res2.streams[1.5], "parent_label", 99.0)
        object.__setattr__(res2.streams[1.5], "is_root", False)
        with pytest.raises(ValueError, match="parent label"):
            res2.flat_forest()

    def test_flat_forest_matches_object_view(self):
        from repro.fastpath.flat_forest import FlatForest

        L = 100
        trace = poisson(0.9, 60.0, seed=21)
        res = Simulation(L, trace, ImmediateDyadicPolicy(L)).run()
        flat = res.flat_forest()
        assert flat.equals(FlatForest.from_forest(res.forest()))
        # and the run's forest is node-for-node the dyadic oracle's
        want = FlatForest.from_forest(dyadic_forest(list(trace), L))
        assert flat.equals(want)

    def test_policy_base_class_raises(self):
        from repro.simulation.policies import Policy

        p = Policy()
        with pytest.raises(NotImplementedError):
            p.on_arrival(None, None)
        with pytest.raises(NotImplementedError):
            p.on_slot_end(0, [], None)

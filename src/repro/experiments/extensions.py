"""Section 5 future-work extensions, made concrete.

* ``multiplex`` — a multi-object catalog served under a fixed channel
  budget: DG's deterministic peak vs dyadic's load-dependent peak, and the
  delay-guarantee knob that caps the maximum bandwidth.
* ``hybrid`` — the paper's suggested hybrid server (DG when busy, dyadic
  when quiet) on a day/night workload, against both pure policies.
* ``general-offline`` — the true clairvoyant optimum over non-empty slots
  (from [6]) scoring the on-line heuristics on sparse workloads.

``multiplex`` and ``general-offline`` are grids (delay axis, intensity
axis) and run as sweeps through the batched tier.  ``hybrid`` is one
workload against three policies, all served by the batched kernel — the
hybrid's rate-window mode feedback goes through the segmented sweep
(:func:`repro.fleet.engine.simulate_segmented`), not an event queue.
``hybrid-thresholds`` sweeps the hysteresis knobs over a (high, low)
grid through the same kernel.
"""

from __future__ import annotations

from typing import List, Sequence

from ..fleet.engine import FleetPolicy, simulate_batched
from ..multiplex import Catalog, min_delay_for_budget
from ..sweeps import Axis, SweepSpec, run_sweep
from ..sweeps.evaluators import (
    day_night_trace,
    general_offline_point,
    hybrid_threshold_point,
    multiplex_point,
)
from .harness import ExperimentResult, register


def multiplex_spec(
    titles: int,
    horizon_minutes: float,
    mean_interarrival_minutes: float,
    delays: Sequence[float],
    seed: int,
) -> SweepSpec:
    return SweepSpec(
        name="multiplex",
        evaluator=multiplex_point,
        axes=[Axis("delay", tuple(delays))],
        fixed={
            "titles": int(titles),
            "horizon": float(horizon_minutes),
            "mean_interarrival": float(mean_interarrival_minutes),
            "seed": int(seed),
        },
        metrics=("dg_peak", "dg_units", "dy_peak", "dy_units"),
    )


@register(
    "multiplex",
    "Multi-object server: peak channels vs delay guarantee (Section 5)",
    "Section 5 (future work), made concrete",
    "DG's deterministic channel envelope vs dyadic's load-dependent peak "
    "across delay guarantees; the delay knob that caps max bandwidth.",
)
def run_multiplex(
    titles: int = 20,
    horizon_minutes: float = 720.0,
    mean_interarrival_minutes: float = 0.5,
    delays: Sequence[float] = (2.0, 5.0, 10.0, 15.0, 30.0),
    seed: int = 7,
) -> List[ExperimentResult]:
    sweep = run_sweep(
        multiplex_spec(
            titles, horizon_minutes, mean_interarrival_minutes, delays, seed
        )
    )
    rows = [
        (
            delay,
            dg_peak,
            round(dg_units / 60.0, 1),
            dy_peak,
            round(dy_units / 60.0, 1),
        )
        for delay, dg_peak, dg_units, dy_peak, dy_units in sweep.rows(
            "delay", "dg_peak", "dg_units", "dy_peak", "dy_units"
        )
    ]
    budget = rows[len(rows) // 2][1]  # mid-grid DG peak as the budget
    catalog = Catalog.zipf(titles, duration_minutes=120.0, exponent=0.8)
    chosen = min_delay_for_budget(catalog, horizon_minutes, budget, delays)
    return [
        ExperimentResult(
            title=f"Catalog of {titles} titles, {horizon_minutes:.0f} min "
            f"horizon, ~{1/mean_interarrival_minutes:.1f} req/min",
            headers=(
                "delay (min)",
                "DG peak ch.",
                "DG stream-hours",
                "dyadic peak ch.",
                "dyadic stream-hours",
            ),
            rows=rows,
            notes=[
                "DG's peak is workload-independent (provisionable in "
                "advance); dyadic's depends on the request pattern.",
                f"min_delay_for_budget(budget={budget} channels) -> "
                f"{chosen} min.",
            ],
            columns=sweep.columns_json(),
        )
    ]


@register(
    "hybrid",
    "Hybrid server: DG when busy, dyadic when quiet (Section 5)",
    "Section 5 (future work), made concrete",
    "Day/night workload: hybrid vs pure DG vs pure immediate dyadic.",
)
def run_hybrid(
    L: int = 100,
    day_lam: float = 0.25,
    night_lam: float = 8.0,
    phase_slots: float = 500.0,
    phases: int = 4,
    seed: int = 3,
) -> List[ExperimentResult]:
    # Alternate night (quiet) and day (busy) phases.
    trace = day_night_trace(day_lam, night_lam, phase_slots, phases, seed)

    # All three policies run through the batched kernel; the hybrid's
    # mode feedback goes through the segmented sweep (bit-identical to
    # the retired event-driven run — the equivalence suite pins it).
    pol_h = FleetPolicy.hybrid(window_slots=20, rate_high=1.0, rate_low=0.4)
    res_h = simulate_batched(L, trace, pol_h, slot=1.0)
    res_dg = simulate_batched(L, trace, FleetPolicy.delay_guaranteed(), slot=1.0)
    res_dy = simulate_batched(L, trace, FleetPolicy.immediate_dyadic(), slot=1.0)
    mode_log = res_h.mode_log or []

    rows = [
        ("hybrid", round(res_h.metrics.streams_served, 2),
         res_h.metrics.peak_concurrency(), len(mode_log)),
        ("pure DG", round(res_dg.metrics.streams_served, 2),
         res_dg.metrics.peak_concurrency(), 0),
        ("immediate dyadic", round(res_dy.metrics.streams_served, 2),
         res_dy.metrics.peak_concurrency(), 0),
    ]
    return [
        ExperimentResult(
            title=f"Hybrid vs pure policies on a day/night workload "
            f"({phases} phases x {phase_slots:.0f} slots, "
            f"busy lam={day_lam}, quiet lam={night_lam})",
            headers=("policy", "streams served", "peak channels", "mode switches"),
            rows=rows,
            notes=[
                "Shape target: hybrid below pure DG in total bandwidth "
                "while keeping DG's bounded peak during busy phases.",
                f"hybrid mode log: {mode_log}",
            ],
        )
    ]


def hybrid_threshold_spec(
    L: int,
    rate_highs: Sequence[float],
    low_fracs: Sequence[float],
    window_slots: int,
    day_lam: float,
    night_lam: float,
    phase_slots: float,
    phases: int,
    seed: int,
) -> SweepSpec:
    return SweepSpec(
        name="hybrid-thresholds",
        evaluator=hybrid_threshold_point,
        axes=[
            Axis("rate_high", tuple(rate_highs)),
            Axis("low_frac", tuple(low_fracs)),
        ],
        fixed={
            "L": int(L),
            "window_slots": int(window_slots),
            "day_lam": float(day_lam),
            "night_lam": float(night_lam),
            "phase_slots": float(phase_slots),
            "phases": int(phases),
            "seed": int(seed),
        },
        metrics=("streams", "peak", "switches"),
    )


@register(
    "hybrid-thresholds",
    "Hybrid hysteresis sensitivity: bandwidth and peak across thresholds",
    "Section 5 (future work), made concrete",
    "The hybrid server's mode thresholds swept over a (rate_high, "
    "rate_low) grid on the day/night workload, through the segmented "
    "batched kernel.",
)
def run_hybrid_thresholds(
    L: int = 100,
    rate_highs: Sequence[float] = (0.5, 1.0, 2.0),
    low_fracs: Sequence[float] = (0.25, 0.5, 1.0),
    window_slots: int = 20,
    day_lam: float = 0.25,
    night_lam: float = 8.0,
    phase_slots: float = 500.0,
    phases: int = 4,
    seed: int = 3,
) -> List[ExperimentResult]:
    sweep = run_sweep(
        hybrid_threshold_spec(
            L, rate_highs, low_fracs, window_slots,
            day_lam, night_lam, phase_slots, phases, seed,
        )
    )
    rows = [
        (rh, round(rh * lf, 3), round(streams, 2), peak, switches)
        for rh, lf, streams, peak, switches in sweep.rows(
            "rate_high", "low_frac", "streams", "peak", "switches"
        )
    ]
    return [
        ExperimentResult(
            title=f"Hybrid hysteresis thresholds on the day/night workload "
            f"(L={L}, window={window_slots} slots)",
            headers=(
                "rate_high",
                "rate_low",
                "streams served",
                "peak channels",
                "mode switches",
            ),
            rows=rows,
            notes=[
                "Shape target: wider hysteresis (rate_low well below "
                "rate_high) trades a little bandwidth for fewer mode "
                "switches; a low rate_high pins DG through busy phases.",
            ],
            columns=sweep.columns_json(),
        )
    ]


def general_offline_spec(
    L: int, lams: Sequence[float], horizon: float, seed: int
) -> SweepSpec:
    return SweepSpec(
        name="general-offline",
        evaluator=general_offline_point,
        axes=[Axis("lam", tuple(lams))],
        fixed={"L": int(L), "horizon": float(horizon), "seed": int(seed)},
        metrics=("skip", "served_slots", "opt", "dyadic", "dg"),
    )


@register(
    "general-offline",
    "True offline optimum vs on-line heuristics on sparse workloads",
    "[6] general-arrivals optimum as the clairvoyant bound",
    "Batched dyadic and DG scored against the O(n^3) optimal forest over "
    "the non-empty slots.",
)
def run_general_offline(
    L: int = 50,
    lams: Sequence[float] = (2.0, 4.0, 8.0),
    horizon: float = 400.0,
    seed: int = 1,
) -> List[ExperimentResult]:
    sweep = run_sweep(general_offline_spec(L, lams, horizon, seed))
    rows = []
    for lam, skip, served, opt, dyadic, dg in sweep.rows(
        "lam", "skip", "served_slots", "opt", "dyadic", "dg"
    ):
        if skip:
            continue
        rows.append(
            (
                lam,
                served,
                round(opt, 1),
                round(dyadic, 1),
                round(dyadic / opt, 4),
                round(dg, 1),
                round(dg / opt, 4),
            )
        )
    return [
        ExperimentResult(
            title=f"Clairvoyant optimum over non-empty slots (L={L}, "
            f"horizon={horizon:.0f} slots)",
            headers=(
                "lam",
                "served slots",
                "optimal",
                "batched dyadic",
                "dyadic/opt",
                "DG",
                "DG/opt",
            ),
            rows=rows,
            notes=[
                "Shape target: dyadic within a modest factor of optimal; "
                "DG's overhead grows with sparsity (it serves every slot).",
            ],
            columns=sweep.columns_json(),
        )
    ]

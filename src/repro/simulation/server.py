"""The Media-on-Demand server simulation.

Drives a :class:`~repro.simulation.events.EventQueue` over an arrival
trace under a pluggable :class:`~repro.simulation.policies.Policy`:

* ``Arrival`` events hand each client to the policy (immediate-service
  policies act right away; batching policies park them until a slot end);
* ``SlotEnd`` events fire at every slot boundary for slotted policies;
* ``StreamEnd`` events finalise a stream's bandwidth when its (possibly
  extended) planned end passes; extensions postpone the event lazily
  (a heap tombstone re-pushed on surfacing) rather than rescheduling.

Event ordering at equal timestamps is SlotEnd < Arrival < StreamEnd so
that (a) an arrival landing exactly on a boundary belongs to the *next*
slot and (b) a slot-end extension always reaches a stream before the
stream's end event fires.

Arrivals stop at the trace horizon but live streams run to completion, so
the measured total equals the analytic full cost of the final merge
forest — an equality the integration tests assert exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..arrivals.traces import ArrivalTrace
from ..core.merge_tree import MergeForest
from ..fastpath.flat_forest import FlatForest
from .client import Client
from .events import Event, EventQueue
from .metrics import BandwidthMetrics
from .policies import Policy
from .stream import Stream

__all__ = ["Simulation", "SimulationResult"]

_PRIO_SLOT_END = 0
_PRIO_ARRIVAL = 1
_PRIO_STREAM_END = 9


@dataclass
class SimulationResult:
    """Everything a run produces."""

    policy_name: str
    L: int
    metrics: BandwidthMetrics
    clients: List[Client]
    streams: Dict[float, Stream]
    horizon: float
    #: (slot_index, mode) switch history for mode-switching policies
    #: (``HybridPolicy``); None for policies without one.
    mode_log: Optional[List[tuple]] = None

    def flat_forest(self) -> FlatForest:
        """The merge forest the run realised, as flat parent arrays.

        Stream labels (sorted) become the node order; parent labels are
        resolved to indices by binary search — no ``MergeNode`` graph is
        built at any client count.  This is what
        :mod:`repro.simulation.verify` replays wholesale against what the
        server actually broadcast.  Raises ``ValueError`` for a run that
        started no streams (a flat forest cannot be empty).
        """
        if not self.streams:
            raise ValueError("run started no streams — nothing to reconstruct")
        labels = np.asarray(sorted(self.streams), dtype=np.float64)
        parent_labels = np.asarray(
            [
                math.nan
                if (p := self.streams[l].parent_label) is None
                else p
                for l in labels.tolist()
            ],
            dtype=np.float64,
        )
        is_root = np.isnan(parent_labels)
        idx = np.minimum(
            np.searchsorted(labels, np.where(is_root, labels[0], parent_labels)),
            labels.size - 1,
        )
        if not np.array_equal(
            labels[idx[~is_root]], parent_labels[~is_root]
        ):
            raise ValueError("stream parent label not among stream labels")
        parent = np.where(is_root, -1, idx)
        return FlatForest(labels, parent)

    def forest(self) -> MergeForest:
        """Object-graph view of :meth:`flat_forest` (for rendering and
        serialization; the verification hot path never builds it)."""
        return self.flat_forest().to_forest()

    def max_startup_delay(self) -> float:
        return max((c.startup_delay for c in self.clients), default=0.0)


class Simulation:
    """One simulation run: a trace, a policy, a media length."""

    def __init__(
        self,
        L: int,
        trace: ArrivalTrace,
        policy: Policy,
        slot: float = 1.0,
    ) -> None:
        if L < 1:
            raise ValueError(f"L must be >= 1, got {L}")
        if slot <= 0:
            raise ValueError(f"slot must be positive, got {slot}")
        self.L = L
        self.trace = trace
        self.policy = policy
        self.slot = slot
        self.queue = EventQueue()
        self.metrics = BandwidthMetrics(L=L)
        self.clients: List[Client] = []
        self.streams: Dict[float, Stream] = {}
        self._stream_end_events: Dict[float, Event] = {}
        self._pending_slot_clients: List[Client] = []
        self._next_stream_id = 0
        self._next_client_id = 0

    # -- services exposed to policies ---------------------------------------

    @property
    def now(self) -> float:
        return self.queue.now

    def start_stream(
        self,
        label: float,
        planned_units: float,
        parent_label: Optional[float] = None,
    ) -> Stream:
        """Begin a multicast at the current time.

        ``label`` identifies the merge-tree node (must be unique);
        ``parent_label`` is the stream it will merge into (None = root, in
        which case ``planned_units`` should be the full ``L``).
        """
        if label in self.streams:
            raise ValueError(f"duplicate stream label {label}")
        stream = Stream(
            stream_id=self._next_stream_id,
            label=label,
            start=self.now,
            planned_units=planned_units,
            is_root=parent_label is None,
            parent_label=parent_label,
        )
        self._next_stream_id += 1
        self.streams[label] = stream
        self._schedule_stream_end(stream)
        return stream

    def extend_stream(self, label: float, new_units: float) -> None:
        """Raise a live stream's planned length (no-op if not longer).

        The stream's end event is *postponed* lazily (tombstone in the
        heap, O(1)) instead of cancelled and rescheduled — extensions are
        the hottest queue operation under merging policies, and the
        postpone draws its tie-break sequence number now, so event
        ordering is unchanged from the eager reschedule.
        """
        stream = self.streams[label]
        if new_units <= stream.planned_units:
            return
        stream.extend_to_units(new_units, now=self.now)
        self.queue.postpone(self._stream_end_events[label], stream.planned_end)

    def _schedule_stream_end(self, stream: Stream) -> None:
        self._stream_end_events[stream.label] = self.queue.schedule(
            stream.planned_end,
            lambda s=stream: self._finish_stream(s),
            priority=_PRIO_STREAM_END,
        )

    def _finish_stream(self, stream: Stream) -> None:
        units = stream.finish(self.now)
        self.metrics.record_stream(stream.start, stream.start + units, stream.is_root)
        self._stream_end_events.pop(stream.label, None)

    # -- run ------------------------------------------------------------------

    def run(self) -> SimulationResult:
        for t in self.trace:
            self.queue.schedule(
                t, lambda t=t: self._handle_arrival(t), priority=_PRIO_ARRIVAL
            )
        if self.policy.uses_slots:
            nslots = self.trace.num_slots(self.slot)
            for k in range(nslots):
                end = (k + 1) * self.slot
                self.queue.schedule(
                    end,
                    lambda k=k, end=end: self._handle_slot_end(k, end),
                    priority=_PRIO_SLOT_END,
                )
        # Drain everything: arrivals + slots end by the horizon, remaining
        # stream-end events run past it so costs are complete.
        self.queue.run(until=math.inf)
        self.policy.on_finish(self)
        if self._stream_end_events:
            raise RuntimeError("streams left unfinished after drain")
        return SimulationResult(
            policy_name=self.policy.name,
            L=self.L,
            metrics=self.metrics,
            clients=self.clients,
            streams=self.streams,
            horizon=self.trace.horizon,
            mode_log=getattr(self.policy, "mode_log", None),
        )

    # -- event handlers -----------------------------------------------------

    def _handle_arrival(self, t: float) -> None:
        client = Client(client_id=self._next_client_id, arrival=t, service_time=t)
        self._next_client_id += 1
        self.clients.append(client)
        self.metrics.record_client()
        if self.policy.uses_slots:
            # Parked until the next slot boundary; service time fixed there.
            self._pending_slot_clients.append(client)
        else:
            self.policy.on_arrival(client, self)

    def _handle_slot_end(self, slot_index: int, end_time: float) -> None:
        batch = self._pending_slot_clients
        self._pending_slot_clients = []
        for c in batch:
            c.service_time = end_time
        self.policy.on_slot_end(slot_index, batch, self)

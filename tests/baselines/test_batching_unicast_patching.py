"""Tests for batching, unicast and patching baselines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.arrivals import ArrivalTrace, constant_rate, every_slot, poisson
from repro.baselines.batching import (
    batched_dyadic_cost,
    batched_dyadic_forest,
    pure_batching_cost,
)
from repro.baselines.dyadic import DyadicParams, dyadic_cost
from repro.baselines.patching import patching_cost, recommended_window
from repro.baselines.unicast import unicast_cost

from tests.conftest import increasing_times


class TestPureBatching:
    def test_counts_non_empty_slots(self):
        t = ArrivalTrace(times=(0.2, 0.3, 5.9), horizon=10.0)
        assert pure_batching_cost(t, 7) == 2 * 7

    def test_every_slot_is_nL(self):
        t = every_slot(25)
        assert pure_batching_cost(t, 9) == 25 * 9

    def test_empty_trace(self):
        t = ArrivalTrace(times=(), horizon=10.0)
        assert pure_batching_cost(t, 7) == 0

    def test_errors(self):
        with pytest.raises(ValueError):
            pure_batching_cost(every_slot(3), 0)


class TestBatchedDyadic:
    def test_reduces_to_unbatched_on_slot_aligned(self):
        # Arrivals already on distinct slots: batched == dyadic on slot ends.
        t = ArrivalTrace(times=(0.5, 3.5, 7.5), horizon=10.0)
        params = DyadicParams()
        got = batched_dyadic_cost(t, 100, 1.0, params)
        want = dyadic_cost([1.0, 4.0, 8.0], 100, params)
        assert got == want

    def test_batching_collapses_same_slot(self):
        t = ArrivalTrace(times=(0.1, 0.5, 0.9), horizon=2.0)
        f = batched_dyadic_forest(t, 100)
        assert f.num_arrivals() == 1  # one imaginary client

    def test_cheaper_than_immediate_when_dense(self):
        t = poisson(0.1, 300.0, seed=9)  # ~10 clients per slot
        params = DyadicParams()
        batched = batched_dyadic_cost(t, 100, 1.0, params)
        immediate = dyadic_cost(list(t), 100, params)
        assert batched < immediate

    def test_empty_trace_rejected(self):
        t = ArrivalTrace(times=(), horizon=5.0)
        with pytest.raises(ValueError):
            batched_dyadic_forest(t, 100)

    @settings(max_examples=25, deadline=None)
    @given(increasing_times(min_size=1, max_size=40, horizon=200.0))
    def test_cost_positive_and_at_least_one_root(self, times):
        t = ArrivalTrace(times=tuple(times), horizon=200.0)
        cost = batched_dyadic_cost(t, 100)
        assert cost >= 100


class TestUnicast:
    def test_cost(self):
        t = every_slot(12)
        assert unicast_cost(t, 30) == 360

    def test_upper_bounds_everything(self):
        t = poisson(0.7, 150.0, seed=2)
        uni = unicast_cost(t, 100)
        assert dyadic_cost(list(t), 100) <= uni
        assert pure_batching_cost(t, 100) <= uni
        assert batched_dyadic_cost(t, 100) <= uni

    def test_errors(self):
        with pytest.raises(ValueError):
            unicast_cost(every_slot(3), 0)


class TestPatching:
    def test_hand_example(self):
        res = patching_cost([0.0, 1.0, 2.0, 50.0], 100, window=10.0)
        assert res.roots == 2
        assert res.patch_units == 3.0
        assert res.total == 203.0
        assert res.streams_served == 2.03

    def test_window_zero_is_unicast_roots(self):
        res = patching_cost([0.0, 1.0, 2.0], 100, window=0.0)
        assert res.roots == 3 and res.patch_units == 0.0

    def test_window_choice_tradeoff(self):
        times = [i * 0.5 for i in range(100)]
        small = patching_cost(times, 100, window=1.0).total
        good = patching_cost(times, 100, window=recommended_window(100, 0.5)).total
        assert good < small

    def test_recommended_window_clamped(self):
        assert recommended_window(10, 1000.0) == 9.0

    def test_errors(self):
        with pytest.raises(ValueError):
            patching_cost([0.0], 100, window=100.0)
        with pytest.raises(ValueError):
            patching_cost([1.0, 1.0], 100, window=5.0)
        with pytest.raises(ValueError):
            recommended_window(0, 1.0)

    def test_patching_worse_than_dyadic_merging(self):
        # patching's patches are unicast; stream merging shares them.
        times = [float(i) for i in range(50)]
        pat = patching_cost(times, 100, window=recommended_window(100, 1.0)).total
        dya = dyadic_cost(times, 100)
        assert dya < pat

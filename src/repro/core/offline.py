"""Closed-form optimal merge cost and the O(n) off-line algorithm (Section 3.1).

The optimal merge cost for ``n`` consecutive arrivals has the elegant
Fibonacci closed form of Eq. (6) / Theorem 3:

    M(n) = (k - 1) n - F_{k+2} + 2        where  F_k <= n <= F_{k+1},

and the set ``I(n)`` of arrivals that can be the last to merge with the root
of an optimal tree is one of three Fibonacci intervals depending on where
``m = n - F_k`` falls (Theorem 3).  The max of ``I(n)`` obeys the simple
recurrence of Theorem 7,

    r(i) = r(i-1) + 1   if F_k < i <= F_k + F_{k-2}
    r(i) = r(i-1)       if F_k + F_{k-2} < i <= F_{k+1}

which yields an O(n) construction of an optimal merge tree.  For ``n`` a
Fibonacci number the optimal tree is unique — the *Fibonacci merge tree*
(Fig. 7).

This module provides the closed forms (scalar and numpy-vectorised), the
interval characterisation, the O(n) builder, and an exhaustive optimal-tree
enumerator used to validate uniqueness/multiplicity claims (Figs. 6-7).
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from . import fibonacci as fibmod
from .fibonacci import bracket_index, fib
from .merge_tree import MergeNode, MergeTree

__all__ = [
    "merge_cost",
    "merge_cost_array",
    "root_merge_interval",
    "interval_case",
    "last_merge_table",
    "build_optimal_tree",
    "build_optimal_parent_array",
    "fibonacci_tree",
    "MAX_ENUMERATION_N",
    "enumerate_merge_trees",
    "enumerate_optimal_trees",
    "count_optimal_trees",
]


def merge_cost(n: int) -> int:
    """``M(n)`` in O(log n) via Eq. (6): ``(k-1)n - F_{k+2} + 2``.

    ``M(1) = 0``; requires ``n >= 1``.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = bracket_index(n)
    return (k - 1) * n - fib(k + 2) + 2


def merge_cost_array(ns: Sequence[int]) -> np.ndarray:
    """Vectorised ``M(n)`` over an array of sizes (for parameter sweeps).

    Uses a searchsorted against the Fibonacci table instead of a Python loop,
    per the repo's numpy-vectorisation guideline for sweep-heavy paths.
    """
    arr = np.asarray(ns, dtype=np.int64)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(arr < 1):
        raise ValueError("all sizes must be >= 1")
    n_max = int(arr.max())
    fibs = fibmod.fib_upto(max(n_max, 2))  # fibs[k] == F_k for k < len
    # bracket index: largest k with F_k <= n. Skip the duplicate F_1=1 by
    # searching over fibs[2:], so k = 2 + rightmost index with value <= n.
    tail = np.asarray(fibs[2:], dtype=np.int64)
    k = 2 + np.searchsorted(tail, arr, side="right") - 1
    # F_{k+2} = F_{k+1} + F_k; build a lookup long enough for k+2.
    k_max = int(k.max())
    lookup = np.asarray(
        [fib(i) for i in range(k_max + 3)], dtype=np.int64
    )
    return (k - 1) * arr - lookup[k + 2] + 2


def interval_case(n: int) -> Tuple[int, int, int]:
    """Return ``(k, m, i)``: the Theorem 3 decomposition of ``n``.

    ``n = F_k + m`` with ``0 <= m <= F_{k-1}`` and ``m`` in case interval
    ``m_i(k)``.  At interval endpoints the case is ambiguous (the paper's
    redundancy); we return the smallest applicable ``i``, except ``m = 0``
    which is reported as case 1 of bracket ``k`` (equivalently case 3 of
    bracket ``k-1``).
    """
    if n < 2:
        raise ValueError(f"interval_case requires n >= 2, got {n}")
    k = bracket_index(n)
    m = n - fib(k)
    if m <= fib(k - 3):
        return k, m, 1
    if m <= fib(k - 2):
        return k, m, 2
    return k, m, 3


def root_merge_interval(n: int) -> Tuple[int, int]:
    """``I(n)`` as an inclusive interval ``(lo, hi)`` (Theorem 3, Fig. 8).

    The members of ``I(n)`` are the arrivals that can be the last merge to
    the root in an optimal merge tree for ``[0, n-1]``.  Defined for
    ``n >= 2``.
    """
    k, m, case = interval_case(n)
    if case == 1:
        return fib(k - 1), fib(k - 1) + m
    if case == 2:
        return fib(k - 2) + m, fib(k - 1) + m
    return fib(k - 2) + m, fib(k)


def last_merge_table(n: int) -> List[int]:
    """``r(i) = max I(i)`` for ``i = 1..n`` in O(n) (Theorem 7 recurrence).

    ``r(1) = 0`` by convention (a single arrival has no merge).  The list is
    indexed so ``table[i] == r(i)`` with ``table[0]`` unused (set to 0).
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    table = [0] * (n + 1)
    if n >= 2:
        table[2] = 1
    k = 3  # bracket such that F_k < i <= F_{k+1} for the current i
    for i in range(3, n + 1):
        while i > fib(k + 1):
            k += 1
        # Now F_k < i <= F_{k+1}.
        if i <= fib(k) + fib(k - 2):
            table[i] = table[i - 1] + 1
        else:
            table[i] = table[i - 1]
    return table


def build_optimal_tree(n: int, start: int = 0) -> MergeTree:
    """Construct an optimal merge tree for ``n`` arrivals in O(n) (Theorem 7).

    Arrivals are ``start, start+1, ..., start+n-1``.  The recursive rule: let
    ``r = r(size)``; build the tree for the first ``r`` arrivals and for the
    remaining ``size - r``, then attach the second root as a new last child
    of the first root.  Always picks ``max I(size)``, so for Fibonacci ``n``
    this is exactly the (unique) Fibonacci merge tree.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    table = last_merge_table(n)

    # Explicit stack instead of recursion: n can be large (recursion depth
    # for the Fibonacci split is O(log n), but left-heavy sizes near
    # interval edges can chain; the iterative form is uniformly safe).
    def build(offset: int, size: int) -> MergeNode:
        if size == 1:
            return MergeNode(offset)
        h = table[size]
        left = build(offset, h)
        right = build(offset + h, size - h)
        right.parent = left
        left.children.append(right)
        return left

    import sys

    old_limit = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(max(old_limit, 4 * n + 100))
        root = build(start, n)
    finally:
        sys.setrecursionlimit(old_limit)
    return MergeTree(root)


def build_optimal_parent_array(n: int) -> np.ndarray:
    """Parent-index array of the Theorem 7 optimal tree, no objects built.

    Entry ``i`` is the index of the parent of arrival ``i`` (``-1`` for
    the root at index 0) in the same tree :func:`build_optimal_tree`
    produces.  O(n) time and memory with an explicit work stack — the
    flat-array input the fastpath :class:`~repro.fastpath.FlatForest`
    constructors consume at scales where a MergeNode graph would thrash.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    table = last_merge_table(n)
    parent = np.full(n, -1, dtype=np.intp)
    stack: List[Tuple[int, int]] = [(0, n)]
    while stack:
        offset, size = stack.pop()
        if size == 1:
            continue
        h = table[size]
        # The right part's root (offset + h) merges into the left root.
        parent[offset + h] = offset
        stack.append((offset, h))
        stack.append((offset + h, size - h))
    return parent


def fibonacci_tree(k: int, start: int = 0) -> MergeTree:
    """The unique optimal merge tree for ``n = F_k`` arrivals (Fig. 7).

    Recursive structure: the right-most subtree of the tree for ``F_k`` is
    the tree for ``F_{k-2}`` and the rest is the tree for ``F_{k-1}``.
    Requires ``k >= 2`` (``F_2 = 1``).
    """
    if k < 2:
        raise ValueError(f"fibonacci_tree needs k >= 2, got {k}")
    return build_optimal_tree(fib(k), start=start)


# ---------------------------------------------------------------------------
# exhaustive enumeration (validation of Figs. 6-7 and Theorem 3)
# ---------------------------------------------------------------------------


#: Largest ``n`` the exhaustive enumerators accept.  ``C_12 = 208012``
#: trees is the last size that enumerates in seconds; one step further
#: quintuples the work, and nothing downstream needs it — optimal trees
#: for any ``n`` come from the O(n) Theorem 7 builder / the DPs.
MAX_ENUMERATION_N: int = 13


def enumerate_merge_trees(n: int, start: int = 0) -> Iterator[MergeTree]:
    """Yield every merge tree with the preorder property over ``n`` arrivals.

    These are exactly the candidates for optimality ([6] shows every optimal
    tree has the preorder property).  The count is the Catalan number
    ``C_{n-1}``, so ``n`` is capped at :data:`MAX_ENUMERATION_N`.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n > MAX_ENUMERATION_N:
        raise ValueError(
            f"enumerate_merge_trees(n={n}) would generate the Catalan "
            f"number C_{n - 1} > 208012 candidate trees — an exponential "
            f"blow-up; the cap is n <= {MAX_ENUMERATION_N}.  For larger n "
            "use build_optimal_tree (Theorem 7, O(n)) or the repro.core.dp "
            "programs, which cover every optimum without enumeration."
        )

    def gen(offset: int, size: int) -> Iterator[MergeNode]:
        if size == 1:
            yield MergeNode(offset)
            return
        # Choose h = size of the part before the last root child.
        for h in range(1, size):
            for left in gen(offset, h):
                for right in gen(offset + h, size - h):
                    root = _copy_node(left)
                    child = _copy_node(right)
                    child.parent = root
                    root.children.append(child)
                    yield root

    for root in gen(start, n):
        yield MergeTree(root)


def _copy_node(node: MergeNode) -> MergeNode:
    copy = MergeNode(node.arrival)
    for child in node.children:
        cc = _copy_node(child)
        cc.parent = copy
        copy.children.append(cc)
    return copy


def enumerate_optimal_trees(n: int, start: int = 0) -> List[MergeTree]:
    """All optimal merge trees for ``n`` arrivals (exhaustive; small n only).

    Fig. 6 shows the two optimal trees for n = 4; Fig. 7 the unique trees for
    Fibonacci n.  This function reproduces both.
    """
    best = merge_cost(n)
    return [
        t for t in enumerate_merge_trees(n, start=start) if t.merge_cost() == best
    ]


def count_optimal_trees(n: int) -> int:
    """Number of distinct optimal merge trees for ``n`` arrivals (small n)."""
    return len(enumerate_optimal_trees(n))

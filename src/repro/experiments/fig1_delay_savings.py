"""Fig. 1: bandwidth savings as the guaranteed start-up delay grows.

Setup (paper Section 1 / 4.2): a media object of fixed duration is served
over a time horizon of 100 media lengths; a stream starts at the end of
every unit, where one unit = the start-up delay.  The x-axis is the delay
as a percentage of the media length (so ``L = 100 / pct`` slots and the
horizon holds ``n = 100 * L`` slots); the y-axis is total server bandwidth
in *complete media streams served* (``Fcost / L``).

Both the optimal off-line algorithm (Theorem 12) and the on-line Delay
Guaranteed algorithm are plotted; the paper's observation is that the
curves nearly coincide and fall steeply as delay grows.  Pure batching
(one full stream per slot = ``n`` streams) is included for scale.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.full_cost import optimal_full_cost
from ..core.online import online_full_cost
from .charts import render_chart
from .harness import ExperimentResult, register

#: Delay grid (percent of the media length) mirroring the figure's x-axis.
DEFAULT_DELAYS = (0.5, 1.0, 2.0, 2.5, 4.0, 5.0, 10.0, 12.5, 20.0)


@register(
    "fig1",
    "Bandwidth savings vs guaranteed start-up delay (Fig. 1)",
    "Fig. 1",
    "Off-line optimal F(L,n)/L and on-line A(L,n)/L over a 100-media-length "
    "horizon as the delay grows.",
)
def run_fig1(
    delays_pct: Sequence[float] = DEFAULT_DELAYS,
    horizon_media: int = 100,
) -> List[ExperimentResult]:
    rows = []
    for pct in delays_pct:
        if not 0 < pct <= 100:
            raise ValueError(f"delay percent must be in (0, 100], got {pct}")
        L = max(1, round(100.0 / pct))
        n = horizon_media * L
        f_opt = optimal_full_cost(L, n)
        a_onl = online_full_cost(L, n)
        rows.append(
            (
                pct,
                L,
                n,
                round(f_opt / L, 2),
                round(a_onl / L, 2),
                n,  # batching: one full stream per slot
                round(a_onl / f_opt, 4),
            )
        )
    return [
        ExperimentResult(
            title="Streams served vs start-up delay (horizon = "
            f"{horizon_media} media lengths)",
            headers=(
                "delay % of media",
                "L (slots)",
                "n (slots)",
                "off-line opt (streams)",
                "on-line DG (streams)",
                "batching (streams)",
                "on-line/off-line",
            ),
            rows=rows,
            notes=[
                "Shape target: monotone decrease with delay; on-line within "
                "a few percent of off-line (paper: 'very close').",
                "\n"
                + render_chart(
                    [r[0] for r in rows],
                    [
                        ("off-line optimal", [r[3] for r in rows]),
                        ("on-line DG", [r[4] for r in rows]),
                    ],
                    x_label="start-up delay (% of media length)",
                    logy=True,
                ),
            ],
        )
    ]

"""Batched fleet engine vs. the event-driven ``Simulation`` — the
``BENCH_fleet.json`` trajectory.

Two modes (same layout as ``bench_sim.py``):

* ``pytest benchmarks/bench_fleet.py --benchmark-only`` — smoke-size
  pytest-benchmark runs (small n; every run asserts batched == event);
* ``python benchmarks/bench_fleet.py`` (or ``make bench-fleet``) — the
  full sweep, writing ``BENCH_fleet.json`` (schema
  ``repro.fastpath.bench.v1``) at the repo root.

"Reference" timings run the event-driven ``Simulation`` (heap-ordered
queue, per-event Python callbacks, lazy-postpone stream ends) through
the production policies; "fast" timings run the slot-sweep kernel
``repro.fleet.simulate_batched`` on the same trace and policy.  Every
timed pair asserts full equivalence in-run — identical metric counters,
interval multisets, total bandwidth, flat-forest parent arrays, and
per-client service — via ``assert_equivalent_run``.  The sweep enforces
the ISSUE 4 acceptance floor: >= 10x at n = 10^5 clients for every
engine case.
"""

from __future__ import annotations

import json
import resource
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # script mode: make src importable before repro
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from repro.arrivals import poisson
from repro.fleet import (
    FleetPolicy,
    assert_equivalent_run,
    run_fleet,
    simulate_batched,
    simulate_event,
)
from repro.multiplex import Catalog, serve_catalog, split_requests
from repro.scale.columnar import ColumnarWriter
from repro.scale.kernels import (
    active_backend,
    bucket_slots,
    configure_backend,
    forest_z,
)

from conftest import timeit_best, write_bench_json

#: stream length for the engine cases (slot units).
ENGINE_L = 100

#: engine case matrix: policy kind -> (trace horizon, mean gap) per n.
ENGINE_TRACES = {
    10_000: (1_000.0, 0.1),
    100_000: (1_000.0, 0.01),
}

#: catalog shape for the runner case.
CATALOG_TITLES = 120
CATALOG_HORIZON_MIN = 480.0
CATALOG_DELAY_MIN = 2.0

#: scale-tier kernel rows (clients per case).
SCALE_NS = (1_000_000, 10_000_000)

#: asserted JIT speedup floor at n = 10^6 (only when numba is active —
#: on a numpy-only box the rows record backend "numpy" and speedup ~1).
JIT_FLOOR = 3.0

#: RSS case geometry: OBJECTS columns of RSS_CLIENTS arrivals each
#: (10^7 clients total).  Peak RSS of the columnar run scales with ONE
#: object's working set, so the per-object size is what the bound sees.
RSS_OBJECTS = 100
RSS_CLIENTS = 100_000


def _scale_inputs(n: int):
    """Deterministic (times, slot_ends, parent) grids for the kernel rows."""
    rng = np.random.default_rng(29)
    horizon = n / 100.0
    times = np.sort(rng.uniform(0.0, horizon, size=n))
    slot_ends = np.arange(0.5, horizon + 1.0, 0.5)
    idx = np.arange(n, dtype=np.intp)
    parent = idx - 1
    parent[idx % 64 == 0] = -1  # contiguous runs of 64 (chains)
    return times, slot_ends, parent


# -- out-of-core RSS case ----------------------------------------------------


def _rss_times(i: int, m: int = RSS_CLIENTS) -> np.ndarray:
    """Object ``i``'s arrivals: seeded so writer and children agree."""
    rng = np.random.default_rng([977, i])
    return np.sort(rng.uniform(0.0, CATALOG_HORIZON_MIN, size=m))


def _rss_catalog() -> Catalog:
    return Catalog.zipf(RSS_OBJECTS, duration_minutes=60.0)


def _rss_digest(report) -> List:
    return [
        report.clients,
        report.streams,
        report.peak_channels,
        round(report.total_units_minutes, 3),
    ]


def _rss_child(mode: str, store: str) -> int:
    """Child protocol for the RSS case: run one mode, print one JSON line.

    ``ru_maxrss`` is the process's lifetime peak, so each mode must run
    in a fresh process — the parent launches one child per mode and
    compares the peaks (minus the ``baseline`` child, which only imports
    and builds the catalog).
    """
    catalog = _rss_catalog()
    t0 = time.perf_counter()
    digest: List = []
    if mode == "inmemory":
        workload = {
            obj.name: _rss_times(i) for i, obj in enumerate(catalog)
        }
        report = run_fleet(
            catalog, CATALOG_DELAY_MIN, CATALOG_HORIZON_MIN, workload=workload
        )
        digest = _rss_digest(report)
    elif mode == "columnar":
        report = run_fleet(
            catalog, CATALOG_DELAY_MIN, CATALOG_HORIZON_MIN,
            workload=None, store=store,
        )
        digest = _rss_digest(report)
    elif mode != "baseline":
        raise SystemExit(f"unknown rss-child mode {mode!r}")
    print(json.dumps({
        "mode": mode,
        "seconds": round(time.perf_counter() - t0, 6),
        "peak_rss_kb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        "digest": digest,
    }))
    return 0


def _run_rss_child(mode: str, store: str) -> Dict:
    out = subprocess.run(
        [sys.executable, __file__, "--rss-child", mode, store],
        check=True, capture_output=True, text=True,
    )
    return json.loads(out.stdout.strip().splitlines()[-1])


def _engine_pair(kind: str, n: int):
    horizon, mean = ENGINE_TRACES[n]
    trace = poisson(mean, horizon, seed=17)
    policy = FleetPolicy(kind)
    return trace, policy


def _hybrid_trace(n: int):
    """~n arrivals in alternating quiet/busy phases (quiet rate 0.2/slot,
    busy ~50/slot), so the hysteresis scan actually flips modes and the
    segmented sweep crosses many DG/dyadic boundaries."""
    from repro.arrivals.traces import ArrivalTrace

    rng = np.random.default_rng(41)
    phases = 8
    per_phase = n / 200.0  # slots per phase
    chunks = []
    for k in range(phases):
        lo, hi = k * per_phase, (k + 1) * per_phase
        m = (
            int(0.2 * per_phase)
            if k % 2 == 0
            else int((n - 0.8 * per_phase) / 4)
        )
        chunks.append(rng.uniform(lo, hi, size=m))
    times = np.unique(np.concatenate(chunks))
    return ArrivalTrace(times=tuple(times.tolist()), horizon=phases * per_phase)


def _reference_catalog_sweep(catalog, workload):
    """Per-object event-driven sims + interval aggregation (the pre-fleet
    path a catalog run had to take)."""
    from repro.arrivals.traces import ArrivalTrace

    peaks = 0.0
    total = 0.0
    import numpy as np

    all_starts, all_ends = [], []
    for obj in catalog:
        trace_min = workload.get(obj.name)
        if trace_min is None or len(trace_min) == 0:
            continue
        L = obj.units(CATALOG_DELAY_MIN)
        ts = tuple(t / CATALOG_DELAY_MIN for t in trace_min)
        horizon = trace_min.horizon / CATALOG_DELAY_MIN
        if ts and ts[-1] >= horizon:
            horizon = float(np.nextafter(ts[-1], np.inf))
        trace = ArrivalTrace(times=ts, horizon=horizon)
        res = simulate_event(L, trace, FleetPolicy.immediate_dyadic())
        starts, ends = res.metrics.interval_arrays()
        all_starts.append(starts * CATALOG_DELAY_MIN)
        all_ends.append(ends * CATALOG_DELAY_MIN)
        total += float(np.sum(ends - starts)) * CATALOG_DELAY_MIN
    from repro.simulation.channels import peak_concurrency

    peaks = peak_concurrency(np.concatenate(all_starts), np.concatenate(all_ends))
    return peaks, total


# ---------------------------------------------------------------------------
# pytest-benchmark smoke tests (small n, CI-friendly)
# ---------------------------------------------------------------------------


def test_engine_dyadic_smoke(benchmark):
    trace = poisson(0.1, 300.0, seed=17)
    policy = FleetPolicy.immediate_dyadic()
    fast = benchmark(simulate_batched, ENGINE_L, trace, policy)
    assert_equivalent_run(simulate_event(ENGINE_L, trace, policy), fast)


def test_engine_dg_smoke(benchmark):
    trace = poisson(0.5, 300.0, seed=17)
    policy = FleetPolicy.delay_guaranteed()
    fast = benchmark(simulate_batched, 15, trace, policy)
    assert_equivalent_run(simulate_event(15, trace, policy), fast)


def test_engine_hybrid_smoke(benchmark):
    trace = _hybrid_trace(2_000)
    policy = FleetPolicy.hybrid(window_slots=10, rate_high=1.0, rate_low=0.5)
    fast = benchmark(simulate_batched, ENGINE_L, trace, policy)
    event = simulate_event(ENGINE_L, trace, policy)
    assert_equivalent_run(event, fast)
    assert len(fast.mode_log) >= 4  # the trace actually flips modes


def test_scale_bucket_slots_smoke(benchmark):
    """10^6-row slot bucketing through the backend dispatcher (the scale
    tier's hot loop); asserts the searchsorted contract in-run."""
    times, slot_ends, _ = _scale_inputs(1_000_000)
    client_slot, served_idx = benchmark(bucket_slots, times, slot_ends)
    ref = np.searchsorted(slot_ends, times, side="right")
    ref = np.where(ref >= slot_ends.size, -1, ref)
    assert np.array_equal(client_slot, ref)
    assert np.array_equal(served_idx, np.unique(ref[ref >= 0]))


def test_scale_forest_z_smoke(benchmark):
    """10^6-node subtree-maximum pass through the backend dispatcher."""
    times, _, parent = _scale_inputs(1_000_000)
    z = benchmark.pedantic(forest_z, args=(times, parent), rounds=1)
    assert z.shape == times.shape
    assert np.all(z >= times)


def test_fleet_runner_smoke(benchmark):
    catalog = Catalog.zipf(12, duration_minutes=60.0)
    workload = split_requests(poisson(0.2, 120.0, seed=5), catalog, seed=5)
    report = benchmark(
        run_fleet,
        catalog,
        CATALOG_DELAY_MIN,
        120.0,
        FleetPolicy.immediate_dyadic(),
        workload,
    )
    oracle = serve_catalog(
        catalog, CATALOG_DELAY_MIN, 120.0, policy="dyadic", workload=workload
    )
    assert report.peak_channels == oracle.peak_channels


# ---------------------------------------------------------------------------
# full sweep (script mode): writes BENCH_fleet.json
# ---------------------------------------------------------------------------


def _case(name: str, n: int, ref_s: float, fast_s: float, **extra) -> Dict:
    row = {
        "name": name,
        "n": n,
        "reference_seconds": round(ref_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 2),
        **extra,
    }
    print(
        f"  {name:28s} n={n:>7d}  ref {ref_s:10.4f}s  "
        f"fast {fast_s:10.6f}s  x{row['speedup']:.1f}"
    )
    return row


def run_sweep() -> Dict:
    rows: List[Dict] = []
    backend = active_backend()

    # -- scale tier: out-of-core columnar catalog at 10^7 clients -----------
    # This case runs FIRST: Linux ru_maxrss survives fork+exec, so child
    # processes inherit the parent's peak RSS — the deltas below are only
    # meaningful while the parent is still small (the later kernel rows
    # allocate ~10^7-element arrays in this process).
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as store:
        with ColumnarWriter(store) as writer:
            for i, obj in enumerate(_rss_catalog()):
                writer.add(obj.name, _rss_times(i))
        store_mb = (Path(store) / "segment.bin").stat().st_size / 2**20
        base = _run_rss_child("baseline", store)
        inmem = _run_rss_child("inmemory", store)
        col = _run_rss_child("columnar", store)
    assert col["digest"] == inmem["digest"], (col, inmem)
    inmem_mb = (inmem["peak_rss_kb"] - base["peak_rss_kb"]) / 1024
    col_mb = (col["peak_rss_kb"] - base["peak_rss_kb"]) / 1024
    # The acceptance bound: the in-memory run materialises the whole
    # 10^7-client workload (peak delta beyond the store's size on disk);
    # the columnar run holds at most one object's pages + working set.
    assert inmem_mb > store_mb, (inmem_mb, store_mb)
    assert col_mb < 0.5 * store_mb, (col_mb, store_mb)
    rows.append(
        _case(
            "fleet_columnar_catalog",
            RSS_OBJECTS * RSS_CLIENTS,
            inmem["seconds"],
            col["seconds"],
            objects=RSS_OBJECTS,
            backend=backend,
            store_mb=round(store_mb, 1),
            inmemory_peak_rss_mb=round(inmem_mb, 1),
            columnar_peak_rss_mb=round(col_mb, 1),
        )
    )

    # -- batched kernel vs the event queue, per policy family ---------------
    for kind in ("immediate-dyadic", "batched-dyadic", "delay-guaranteed"):
        for n in (10_000, 100_000):
            trace, policy = _engine_pair(kind, n)
            ref_s, ref_res = timeit_best(
                lambda: simulate_event(ENGINE_L, trace, policy), repeats=1
            )
            fast_s, fast_res = timeit_best(
                lambda: simulate_batched(ENGINE_L, trace, policy), repeats=3
            )
            assert_equivalent_run(ref_res, fast_res)
            rows.append(
                _case(f"engine_{kind}", len(trace), ref_s, fast_s, L=ENGINE_L)
            )

    # -- segmented hybrid: hysteresis scan + per-segment sweeps -------------
    hybrid = FleetPolicy.hybrid(window_slots=20, rate_high=1.0, rate_low=0.5)
    for n in (100_000, 1_000_000):
        trace = _hybrid_trace(n)
        ref_s, ref_res = timeit_best(
            lambda: simulate_event(ENGINE_L, trace, hybrid), repeats=1
        )
        fast_s, fast_res = timeit_best(
            lambda: simulate_batched(ENGINE_L, trace, hybrid), repeats=3
        )
        assert_equivalent_run(ref_res, fast_res)
        # 4 busy phases: 4 DG entries + 3 exits (the last never exits)
        assert len(fast_res.mode_log) >= 7, fast_res.mode_log
        rows.append(
            _case(
                "engine_hybrid", len(trace), ref_s, fast_s,
                L=ENGINE_L, mode_switches=len(fast_res.mode_log),
                backend=backend,
            )
        )

    # -- sharded catalog runner vs per-object event sims --------------------
    catalog = Catalog.zipf(CATALOG_TITLES, duration_minutes=120.0)
    workload = split_requests(
        poisson(0.005, CATALOG_HORIZON_MIN, seed=23), catalog, seed=23
    )
    n_requests = sum(len(t) for t in workload.values())
    ref_s, ref = timeit_best(
        lambda: _reference_catalog_sweep(catalog, workload), repeats=1
    )
    fast_s, report = timeit_best(
        lambda: run_fleet(
            catalog,
            CATALOG_DELAY_MIN,
            CATALOG_HORIZON_MIN,
            FleetPolicy.immediate_dyadic(),
            workload,
        ),
        repeats=2,
    )
    ref_peak, ref_total = ref
    assert report.peak_channels == ref_peak, (report.peak_channels, ref_peak)
    assert abs(report.total_units_minutes - ref_total) <= 1e-6 * max(1.0, ref_total)
    rows.append(
        _case(
            "fleet_runner_catalog",
            n_requests,
            ref_s,
            fast_s,
            objects=CATALOG_TITLES,
        )
    )

    # -- scale tier: backend-dispatched kernels at 10^6 / 10^7 --------------
    for n in SCALE_NS:
        times, slot_ends, parent = _scale_inputs(n)
        arrivals = times  # forest arrivals reuse the sorted grid

        configure_backend(backend)
        bucket_slots(times, slot_ends)  # warm: pages, JIT compilation
        forest_z(arrivals, parent)

        configure_backend("numpy")
        ref_s, ref_bucket = timeit_best(
            lambda: bucket_slots(times, slot_ends), repeats=2
        )
        zref_s, ref_z = timeit_best(
            lambda: forest_z(arrivals, parent), repeats=2
        )
        configure_backend(backend)
        fast_s, fast_bucket = timeit_best(
            lambda: bucket_slots(times, slot_ends), repeats=3
        )
        zfast_s, fast_z = timeit_best(
            lambda: forest_z(arrivals, parent), repeats=3
        )
        assert np.array_equal(fast_bucket[0], ref_bucket[0])
        assert np.array_equal(fast_bucket[1], ref_bucket[1])
        assert np.array_equal(fast_z, ref_z)
        rows.append(
            _case("scale_bucket_slots", n, ref_s, fast_s, backend=backend)
        )
        rows.append(
            _case("scale_forest_z", n, zref_s, zfast_s, backend=backend)
        )

    # JIT floor (ISSUE 8): >= 3x at n >= 10^6 whenever numba is active;
    # numpy-only rows honestly record backend "numpy" and ~1x.
    if backend == "numba":
        jit = [r for r in rows if r["name"].startswith("scale_")]
        assert jit and all(r["speedup"] >= JIT_FLOOR for r in jit), jit

    # Acceptance floor (ISSUE 4): >= 10x for the batched kernel at 10^5.
    big = [r for r in rows if r["name"].startswith("engine_") and r["n"] >= 100_000]
    assert big and all(r["speedup"] >= 10 for r in big), big

    return {
        "schema": "repro.fastpath.bench.v1",
        "description": (
            "Batched fleet engine: slot-sweep kernel vs the event-driven "
            "Simulation per policy family, and the sharded catalog runner "
            "vs per-object event sims.  Best-of-k wall clock; every pair "
            "asserts full run equivalence (metrics, forests, clients, mode "
            "logs) in-run.  Floor: >= 10x at n = 10^5 for every engine "
            "case.  engine_hybrid rows run the segmented sweep (hysteresis "
            "scan + per-mode-segment forests) against the event-driven "
            "HybridPolicy at 10^5 and 10^6 clients.  "
            "scale_* rows time the backend-dispatched kernels at 10^6/10^7 "
            "(floor >= 3x under numba; numpy-only rows record ~1x with an "
            "honest backend tag); fleet_columnar_catalog runs a 10^7-client "
            "catalog in subprocess children and asserts the columnar run's "
            "peak RSS stays under half the store size while the in-memory "
            "run exceeds it."
        ),
        "benchmarks": rows,
    }


def main(argv: List[str]) -> int:
    if len(argv) >= 3 and argv[0] == "--rss-child":
        return _rss_child(argv[1], argv[2])
    print(
        "fleet benchmark sweep "
        "(runs the event-driven oracle at n = 10^5 per policy; ~2 minutes)"
    )
    payload = run_sweep()
    path = write_bench_json("fleet", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))

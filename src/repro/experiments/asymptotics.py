"""Asymptotic claims: Theorems 8, 13, 14, 19/20.

* ``thm19``: the receive-two / receive-all merge-cost ratio drifts to
  ``log_phi 2 ~ 1.4404`` (Theorem 19) and the full-cost ratio follows
  (Theorem 20).
* ``thm14``: batching alone costs ``n L``; with stream merging the optimal
  full cost is ``n log_phi L + Theta(n)``, so the gain grows as
  ``Theta(L / log L)`` (Theorem 14).
* ``thm8``: sandwich check of ``M(n)`` between the Eq. (9)/(10) bounds.

All three are sweep-tier drivers: one-axis grids over ``n`` (or ``L``)
evaluated by the closed-form cost kernels.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core import bounds
from ..sweeps import Axis, SweepSpec, run_sweep
from ..sweeps.evaluators import (
    batching_gain_point,
    full_cost_ratio_point,
    merge_ratio_point,
    merge_sandwich_point,
)
from .harness import ExperimentResult, register


def thm19_merge_spec(ns: Sequence[int]) -> SweepSpec:
    return SweepSpec(
        name="thm19-merge",
        evaluator=merge_ratio_point,
        axes=[Axis("n", tuple(ns))],
        metrics=("m", "mw"),
    )


def thm19_full_spec(Ls: Sequence[int], full_cost_n_factor: int) -> SweepSpec:
    return SweepSpec(
        name="thm19-full",
        evaluator=full_cost_ratio_point,
        axes=[Axis("L", tuple(Ls))],
        fixed={"n_factor": int(full_cost_n_factor)},
        metrics=("n", "f2", "fa"),
    )


@register(
    "thm19",
    "Receive-two vs receive-all cost ratio (Theorems 19-20)",
    "Section 3.4, Theorems 19 and 20",
    "M(n)/Mw(n) -> log_phi 2 ~ 1.4404; full-cost ratio for growing L.",
)
def run_thm19(
    ns: Sequence[int] = (10, 100, 1000, 10_000, 100_000, 1_000_000),
    Ls: Sequence[int] = (10, 30, 100, 300, 1000),
    full_cost_n_factor: int = 50,
) -> List[ExperimentResult]:
    limit = bounds.RECEIVE_ALL_GAIN
    merge_sweep = run_sweep(thm19_merge_spec(ns))
    rows = [
        (n, m, mw, round(m / mw, 5))
        for n, m, mw in merge_sweep.rows("n", "m", "mw")
    ]
    res_merge = ExperimentResult(
        title=f"M(n) / Mw(n) (limit log_phi 2 = {limit:.5f})",
        headers=("n", "M(n)", "Mw(n)", "ratio"),
        rows=rows,
        columns=merge_sweep.columns_json(),
    )
    full_sweep = run_sweep(thm19_full_spec(Ls, full_cost_n_factor))
    rows_full = [
        (L, n, f2, fa, round(f2 / fa, 5))
        for L, n, f2, fa in full_sweep.rows("L", "n", "f2", "fa")
    ]
    res_full = ExperimentResult(
        title="F(L,n) / Fw(L,n) for n = "
        f"{full_cost_n_factor} L (Theorem 20; limit {limit:.5f})",
        headers=("L", "n", "F(L,n)", "Fw(L,n)", "ratio"),
        rows=rows_full,
        columns=full_sweep.columns_json(),
    )
    return [res_merge, res_full]


def thm14_spec(Ls: Sequence[int], n_factor: int) -> SweepSpec:
    return SweepSpec(
        name="thm14",
        evaluator=batching_gain_point,
        axes=[Axis("L", tuple(Ls))],
        fixed={"n_factor": int(n_factor)},
        metrics=("n", "batching", "merged", "order"),
    )


@register(
    "thm14",
    "Stream merging vs pure batching (Theorem 14)",
    "Theorem 14",
    "Gain n L / F(L, n) grows like L / log_phi L.",
)
def run_thm14(
    Ls: Sequence[int] = (4, 8, 16, 32, 64, 128, 256, 512, 1024),
    n_factor: int = 20,
) -> List[ExperimentResult]:
    sweep = run_sweep(thm14_spec(Ls, n_factor))
    rows = []
    for L, n, batching, merged, order in sweep.rows(
        "L", "n", "batching", "merged", "order"
    ):
        gain = batching / merged
        rows.append(
            (L, n, batching, merged, round(gain, 3), round(order, 3),
             round(gain / order, 4))
        )
    return [
        ExperimentResult(
            title="Batching nL vs optimal F(L,n): measured gain vs L/log_phi L",
            headers=("L", "n", "batching", "F(L,n)", "gain", "L/log_phi L",
                     "gain/order"),
            rows=rows,
            notes=[
                "Shape target: gain/order approaches a constant (Theta-ratio "
                "stabilises) as L grows.",
            ],
            columns=sweep.columns_json(),
        )
    ]


def thm8_spec(ns: Sequence[int]) -> SweepSpec:
    return SweepSpec(
        name="thm8",
        evaluator=merge_sandwich_point,
        axes=[Axis("n", tuple(ns))],
        metrics=("lower", "m", "upper", "normalised"),
    )


@register(
    "thm8",
    "Merge-cost sandwich M(n) = n log_phi n + Theta(n) (Theorem 8)",
    "Theorem 8, Eqs. (9)-(10)",
    "Closed-form M(n) between the explicit upper/lower bounds.",
)
def run_thm8(
    ns: Sequence[int] = (10, 100, 1000, 10_000, 100_000, 1_000_000),
) -> List[ExperimentResult]:
    sweep = run_sweep(thm8_spec(ns))
    rows = []
    for n, lo, m, hi, normalised in sweep.rows(
        "n", "lower", "m", "upper", "normalised"
    ):
        ok = lo <= m <= hi
        rows.append((n, round(lo, 1), m, round(hi, 1), round(normalised, 5),
                     "ok" if ok else "VIOLATION"))
    return [
        ExperimentResult(
            title="Eq. (10) <= M(n) <= Eq. (9); M(n)/(n log_phi n) -> 1",
            headers=("n", "lower", "M(n)", "upper", "M/(n log_phi n)", "status"),
            rows=rows,
            columns=sweep.columns_json(),
        )
    ]

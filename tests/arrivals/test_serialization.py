"""Tests for trace serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given

from repro.arrivals import ArrivalTrace, poisson
from repro.arrivals.serialization import (
    load_trace,
    save_trace,
    trace_from_json,
    trace_from_payload,
    trace_payload,
    trace_to_json,
)

from tests.conftest import increasing_times


class TestRoundTrip:
    def test_simple(self):
        t = ArrivalTrace(times=(0.5, 1.25, 7.0), horizon=10.0)
        assert trace_from_json(trace_to_json(t)) == t

    def test_empty(self):
        t = ArrivalTrace(times=(), horizon=3.0)
        assert trace_from_json(trace_to_json(t)) == t

    def test_poisson_exact(self):
        t = poisson(0.9, 200.0, seed=5)
        back = trace_from_json(trace_to_json(t))
        assert back.times == t.times
        assert back.horizon == t.horizon

    @given(increasing_times(min_size=0, max_size=30, horizon=50.0))
    def test_property_roundtrip(self, times):
        t = ArrivalTrace(times=tuple(times), horizon=50.0)
        assert trace_from_json(trace_to_json(t)) == t

    def test_meta_carried(self):
        t = ArrivalTrace(times=(1.0,), horizon=2.0)
        doc = json.loads(trace_to_json(t, meta={"seed": 7, "kind": "poisson"}))
        assert doc["meta"]["seed"] == 7


class TestFiles:
    def test_save_load(self, tmp_path):
        t = poisson(1.5, 60.0, seed=3)
        path = tmp_path / "trace.json"
        save_trace(t, path, meta={"note": "test"})
        assert load_trace(path) == t

    def test_load_accepts_str_path(self, tmp_path):
        t = ArrivalTrace(times=(0.5,), horizon=1.0)
        path = tmp_path / "t.json"
        save_trace(t, str(path))
        assert load_trace(str(path)) == t


class TestValidation:
    def test_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            trace_from_json(json.dumps({"schema": "something-else", "times": []}))

    def test_count_mismatch(self):
        doc = json.loads(trace_to_json(ArrivalTrace(times=(1.0,), horizon=2.0)))
        doc["count"] = 5
        with pytest.raises(ValueError, match="corrupt"):
            trace_from_json(json.dumps(doc))

    def test_invalid_times_rejected_on_load(self):
        doc = {
            "schema": "repro.arrival-trace.v1",
            "horizon": 2.0,
            "count": 2,
            "times": [1.0, 1.0],
            "meta": {},
        }
        with pytest.raises(ValueError):
            trace_from_json(json.dumps(doc))


class TestPayloadHelpers:
    """Dict-level envelopes: what composite documents (the live daemon's
    checkpoint) embed without double-encoding JSON strings."""

    def test_payload_round_trip(self):
        trace = poisson(0.5, 30.0, seed=9)
        payload = trace_payload(trace, meta={"repaired": 3})
        assert payload["schema"] == "repro.arrival-trace.v1"
        assert payload["count"] == len(trace)
        assert payload["meta"] == {"repaired": 3}
        assert trace_from_payload(payload) == trace

    def test_payload_survives_json_embedding(self):
        trace = poisson(0.5, 30.0, seed=10)
        document = {"objects": {"movie": trace_payload(trace)}}
        recovered = trace_from_payload(
            json.loads(json.dumps(document))["objects"]["movie"]
        )
        assert recovered == trace

    def test_json_helpers_are_the_payload_helpers(self):
        trace = poisson(0.5, 30.0, seed=11)
        assert json.loads(trace_to_json(trace)) == trace_payload(trace)


class TestPartialTraces:
    """Round trips on the shapes a mid-run checkpoint actually produces."""

    def test_mid_horizon_cut(self):
        full = poisson(0.3, 60.0, seed=21)
        cut = full.restrict(0.0, 25.0)  # the ingested prefix of a live run
        assert 0 < len(cut) < len(full)
        back = trace_from_payload(trace_payload(cut))
        assert back == cut
        assert back.horizon == 25.0
        assert all(t < 25.0 for t in back.times)

    def test_interior_window_is_reanchored_and_round_trips(self):
        full = poisson(0.3, 60.0, seed=22)
        window = full.restrict(20.0, 40.0)
        back = trace_from_json(trace_to_json(window))
        assert back == window and back.horizon == 20.0

    def test_zero_arrival_epoch(self):
        empty = ArrivalTrace(times=(), horizon=15.0)
        back = trace_from_payload(trace_payload(empty, meta={"repaired": 0}))
        assert back == empty and len(back) == 0

    def test_single_client_object(self):
        lone = ArrivalTrace(times=(7.25,), horizon=90.0)
        back = trace_from_payload(trace_payload(lone))
        assert back == lone and back.times == (7.25,)

    def test_partial_cut_is_bit_exact_not_approximate(self):
        full = poisson(0.05, 45.0, seed=23)
        cut = full.restrict(0.0, 17.0)
        back = trace_from_json(trace_to_json(cut))
        # float equality, not approx: checkpoints must replay identically
        assert all(a == b for a, b in zip(back.times, cut.times))

    def test_payload_rejects_times_past_the_cut_horizon(self):
        payload = trace_payload(ArrivalTrace(times=(1.0, 2.0), horizon=10.0))
        payload["horizon"] = 1.5  # a torn checkpoint: times escape horizon
        with pytest.raises(ValueError):
            trace_from_payload(payload)

    def test_payload_rejects_wrong_schema_and_count(self):
        payload = trace_payload(ArrivalTrace(times=(1.0,), horizon=5.0))
        bad_schema = dict(payload, schema="bogus")
        with pytest.raises(ValueError, match="schema"):
            trace_from_payload(bad_schema)
        bad_count = dict(payload, count=2)
        with pytest.raises(ValueError, match="declared"):
            trace_from_payload(bad_count)

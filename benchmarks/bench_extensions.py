"""Bench: the Section 5 extension experiments (multiplex, hybrid,
general-arrivals optimum).

These are the repo's additions beyond the paper's evaluation; the benches
pin their qualitative claims the same way the figure benches do.
"""

from __future__ import annotations

from repro.experiments.extensions import (
    run_general_offline,
    run_hybrid,
    run_multiplex,
)


def test_multiplex_provisioning(benchmark):
    (res,) = benchmark(
        run_multiplex,
        titles=12,
        horizon_minutes=480.0,
        mean_interarrival_minutes=0.75,
        delays=(5.0, 10.0, 20.0),
        seed=1,
    )
    peaks = res.column("DG peak ch.")
    assert all(a >= b for a, b in zip(peaks, peaks[1:]))


def test_hybrid_day_night(benchmark):
    (res,) = benchmark(run_hybrid, L=60, phase_slots=300.0, phases=4, seed=1)
    by_policy = {row[0]: row for row in res.rows}
    assert by_policy["hybrid"][1] < by_policy["pure DG"][1]


def test_general_offline_bound(benchmark):
    (res,) = benchmark(run_general_offline, L=40, lams=(2.0, 6.0), horizon=300.0)
    for row in res.rows:
        assert row[4] >= 1.0 and row[6] >= 1.0

"""Fibonacci-number utilities underpinning the optimal merge-cost formulas.

The closed form for the optimal merge cost (Eq. (6) of the paper) and the
characterisation of optimal root merges (Theorem 3) are stated in terms of
Fibonacci numbers with the indexing convention

    F_0 = 0, F_1 = 1, F_k = F_{k-1} + F_{k-2},

so F_2 = 1, F_3 = 2, F_4 = 3, F_5 = 5, ...  All helpers in this module use
that convention.  Lookups are O(log_phi n) by walking a cached table, which
is the complexity the paper assumes when it states linear-time totals
(see the proof of Theorem 7).
"""

from __future__ import annotations

import math
from typing import List

__all__ = [
    "PHI",
    "PHI_HAT",
    "fib",
    "fib_upto",
    "fib_index",
    "bracket_index",
    "largest_fib_leq",
    "smallest_fib_geq",
    "is_fib",
    "fib_floor_log",
    "tree_size_index",
]

#: The golden ratio, the positive root of x^2 = x + 1.
PHI: float = (1.0 + math.sqrt(5.0)) / 2.0

#: The conjugate root (1 - sqrt 5)/2 of x^2 = x + 1.
PHI_HAT: float = (1.0 - math.sqrt(5.0)) / 2.0

# Grown-on-demand table of Fibonacci numbers, _FIBS[k] == F_k.
_FIBS: List[int] = [0, 1]


def _extend_to_index(k: int) -> None:
    while len(_FIBS) <= k:
        _FIBS.append(_FIBS[-1] + _FIBS[-2])


def _extend_to_value(n: int) -> None:
    while _FIBS[-1] < n:
        _FIBS.append(_FIBS[-1] + _FIBS[-2])


def fib(k: int) -> int:
    """Return ``F_k`` (``F_0 = 0``, ``F_1 = F_2 = 1``).

    Raises ``ValueError`` for negative ``k``.
    """
    if k < 0:
        raise ValueError(f"Fibonacci index must be non-negative, got {k}")
    _extend_to_index(k)
    return _FIBS[k]


def fib_upto(n: int) -> List[int]:
    """Return ``[F_0, F_1, ..., F_m]`` where ``F_m`` is the largest ``<= n``.

    For ``n < 0`` returns an empty list.  Duplicated 1s (``F_1`` and ``F_2``)
    are both present, matching the index convention.
    """
    if n < 0:
        return []
    _extend_to_value(n)
    out = []
    for value in _FIBS:
        if value > n:
            break
        out.append(value)
    return out


def fib_index(value: int) -> int:
    """Return the largest ``k`` with ``F_k == value`` for a Fibonacci number.

    ``fib_index(1) == 2`` (ambiguity F_1 = F_2 = 1 resolved upward, which is
    the resolution the paper's redundancy argument uses).  Raises
    ``ValueError`` if ``value`` is not a Fibonacci number.
    """
    if value < 0:
        raise ValueError(f"not a Fibonacci number: {value}")
    _extend_to_value(max(value, 1))
    # Scan from the top of the relevant prefix so the *largest* index wins.
    for k in range(len(_FIBS) - 1, -1, -1):
        if _FIBS[k] == value:
            return k
        if _FIBS[k] < value:
            break
    raise ValueError(f"not a Fibonacci number: {value}")


def bracket_index(n: int) -> int:
    """Return the ``k >= 2`` with ``F_k <= n <= F_{k+1}`` (largest such k).

    This is the index used throughout Theorem 3: for ``n = F_k`` exactly, the
    formula for ``M(n)`` is redundant between ``k`` and ``k+1``; we return the
    larger bracket (``F_k = n`` as the *lower* end), i.e. the unique ``k``
    with ``F_k <= n < F_{k+1}`` for non-Fibonacci ``n`` and ``k`` such that
    ``n = F_k`` otherwise.  Requires ``n >= 1``.
    """
    if n < 1:
        raise ValueError(f"bracket_index requires n >= 1, got {n}")
    _extend_to_value(n + 1)
    # Find largest k with F_k <= n.  Start at k=2 so F_k=1 covers n=1.
    k = 2
    for idx in range(2, len(_FIBS)):
        if _FIBS[idx] <= n:
            k = idx
        else:
            break
    return k


def largest_fib_leq(n: int) -> int:
    """Return the largest Fibonacci number ``<= n`` (``n >= 1``)."""
    return fib(bracket_index(n))


def smallest_fib_geq(n: int) -> int:
    """Return the smallest Fibonacci number ``>= n`` (``n >= 0``)."""
    if n <= 0:
        return 0
    k = bracket_index(n)
    value = fib(k)
    return value if value == n else fib(k + 1)


def is_fib(n: int) -> bool:
    """Return True iff ``n`` is a Fibonacci number."""
    if n < 0:
        return False
    _extend_to_value(max(n, 1))
    return n in _FIBS


def fib_floor_log(n: int) -> float:
    """Return ``log_phi(n)`` for ``n >= 1`` (float)."""
    if n < 1:
        raise ValueError(f"log_phi requires n >= 1, got {n}")
    return math.log(n) / math.log(PHI)


def tree_size_index(L: int) -> int:
    """Return the index ``h`` with ``F_{h+1} < L + 2 <= F_{h+2}``.

    This is the bracketing used by Theorem 12 (optimal number of full
    streams) and by the on-line Delay Guaranteed algorithm, whose static
    merge-tree size is ``F_h``.  Requires ``L >= 1``.

    Examples from the paper: ``L = 1 -> h = 2`` (``F_3 < 3 <= F_4``),
    ``L = 2 -> h = 3``, ``L = 4 -> h = 4``.
    """
    if L < 1:
        raise ValueError(f"stream length L must be >= 1, got {L}")
    target = L + 2
    _extend_to_value(target)
    # smallest index j with F_j >= target, searching from k=3 upward;
    # then h = j - 2.  (F_{h+2} >= L+2 and F_{h+1} < L+2.)
    j = 3
    while fib(j) < target:
        j += 1
    return j - 2

"""Tests for the receive-all model (Section 3.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dp, receive_all as ra
from repro.core.bounds import RECEIVE_ALL_GAIN
from repro.core.offline import merge_cost

PAPER_MW = [0, 1, 3, 5, 8, 11, 14, 17, 21, 25, 29, 33, 37, 41, 45, 49]
DP_TABLE = dp.receive_all_cost_table(500)


class TestClosedForm:
    def test_paper_table(self):
        assert [ra.merge_cost_receive_all(n) for n in range(1, 17)] == PAPER_MW

    def test_against_dp(self):
        for n in range(1, 501):
            assert ra.merge_cost_receive_all(n) == DP_TABLE[n], n

    def test_power_of_two_redundancy(self):
        # Eq. (20) is consistent at n = 2^k between brackets k-1 and k.
        for k in range(1, 20):
            n = 1 << k
            assert (k + 1) * n - (1 << (k + 1)) + 1 == k * n - (1 << k) + 1

    def test_errors(self):
        with pytest.raises(ValueError):
            ra.merge_cost_receive_all(0)

    @given(st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=50))
    def test_vectorised(self, ns):
        got = ra.merge_cost_receive_all_array(ns)
        assert got.dtype == np.int64
        assert list(got) == [ra.merge_cost_receive_all(n) for n in ns]

    def test_vectorised_empty(self):
        assert ra.merge_cost_receive_all_array([]).size == 0


class TestBalancedSplits:
    def test_values(self):
        assert ra.balanced_splits(2) == (1,)
        assert ra.balanced_splits(5) == (2, 3)
        assert ra.balanced_splits(8) == (4,)

    @given(st.integers(min_value=2, max_value=400))
    def test_balanced_split_achieves_optimum(self, n):
        for h in ra.balanced_splits(n):
            assert DP_TABLE[h] + DP_TABLE[n - h] + n - 1 == DP_TABLE[n]

    def test_requires_n_geq_2(self):
        with pytest.raises(ValueError):
            ra.balanced_splits(1)


class TestTreeBuilder:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 7, 8, 9, 16, 31, 32, 33, 100, 256, 500])
    def test_cost_optimal(self, n):
        tree = ra.build_optimal_tree_receive_all(n)
        assert len(tree) == n
        assert tree.merge_cost_receive_all() == ra.merge_cost_receive_all(n)
        assert tree.has_preorder_property()

    def test_binary_structure(self):
        # the root of a balanced tree has O(log n) children
        tree = ra.build_optimal_tree_receive_all(64)
        assert len(tree.root.children) <= 7

    def test_receive_two_cost_of_receive_all_tree_is_worse(self):
        # using the balanced tree under receive-two costs >= M(n)
        for n in (5, 13, 21, 50):
            t = ra.build_optimal_tree_receive_all(n)
            assert t.merge_cost() >= merge_cost(n)


class TestFullCost:
    def test_formula_matches_forest(self):
        for L, n, s in [(10, 25, 3), (15, 8, 1), (6, 17, 4)]:
            forest = ra.build_optimal_forest_receive_all(L, n, s=s)
            assert forest.full_cost_receive_all(L) == ra.full_cost_receive_all_given_streams(L, n, s)

    def test_optimal_forest(self):
        for L, n in [(15, 8), (10, 60), (25, 100)]:
            forest = ra.build_optimal_forest_receive_all(L, n)
            assert forest.full_cost_receive_all(L) == ra.optimal_full_cost_receive_all(L, n)

    def test_receive_all_cheaper_than_receive_two(self):
        from repro.core.full_cost import optimal_full_cost

        for L, n in [(10, 50), (15, 100), (30, 200)]:
            assert ra.optimal_full_cost_receive_all(L, n) <= optimal_full_cost(L, n)

    def test_infeasible_s(self):
        with pytest.raises(ValueError):
            ra.full_cost_receive_all_given_streams(5, 20, 3)


class TestTheorem19:
    def test_ratio_below_limit_and_growing(self):
        ratios = [
            merge_cost(n) / ra.merge_cost_receive_all(n)
            for n in (100, 1000, 10_000, 100_000)
        ]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))
        assert all(r < RECEIVE_ALL_GAIN for r in ratios)
        assert ratios[-1] > 1.39  # close to log_phi 2 = 1.4404 by n = 1e5

"""Delay-bandwidth capacity planning for a catalog (Section 5 made exact).

The paper closes on the provisioning trade-off: with the Delay Guaranteed
algorithm "by increasing the guaranteed delay, we can ensure that we
never go over the fixed maximum bandwidth and still never have to decline
a client request".  The DG envelope is workload-independent, so for a
fixed channel budget the smallest feasible delay is a pure search
problem; this module runs it with bisection instead of the linear scan
:func:`repro.multiplex.min_delay_for_budget` performs (kept as the
oracle the tests compare against).

Monotonicity caveat: the fleet DG peak is nonincreasing in the delay up
to the ``L = round(duration / delay)`` rounding, which can produce
plateaus but — on the geometric grids used here — no practically
observed inversions.  The bisection assumes the predicate
``peak(delay) <= budget`` is monotone on the grid; the returned delay is
always *verified* feasible (the predicate was evaluated on it), so a
rare inversion can only make the answer conservative, never infeasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..multiplex.catalog import Catalog, MediaObject
from ..multiplex.server import (
    ObjectLoad,
    _load_from_arrays,
    aggregate_peak,
    dg_object_load,
)

__all__ = [
    "default_delay_grid",
    "dg_envelope",
    "dg_fleet_peak",
    "min_fleet_delay",
    "min_object_delay",
    "FrontierPoint",
    "capacity_frontier",
    "AdmissionReport",
    "admission_report",
    "render_frontier",
]


def default_delay_grid(
    lo: float = 0.25, hi: float = 32.0, points: int = 22
) -> List[float]:
    """A geometric candidate-delay grid in minutes (lo and hi included)."""
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    return [float(d) for d in np.geomspace(lo, hi, points)]


@lru_cache(maxsize=1024)
def dg_envelope(L: int, n_slots: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The DG stream-interval envelope in slot units, memoised.

    The envelope — ``(labels, starts, ends)`` of the static tiled
    Fibonacci forest — depends only on ``(L, n_slots)``; a frontier
    bisection probes many delays over one catalog, and every object
    whose ``(units, slots)`` pair repeats (identical durations, repeated
    delay probes, neighbouring budgets re-bracketing the same grid
    points) reuses the arrays instead of rebuilding the forest.  The
    returned arrays are marked read-only; callers scale *copies* into
    minutes (``_load_from_arrays`` multiplies into fresh arrays).
    """
    from ..core.online import build_online_flat_forest

    forest = build_online_flat_forest(L, n_slots)
    labels, starts, ends = forest.intervals(L)
    for a in (labels, starts, ends):
        a.setflags(write=False)
    return labels, starts, ends


def _dg_loads(catalog: Catalog, delay: float, horizon: float) -> List[ObjectLoad]:
    # Mirrors multiplex.server.dg_object_load point for point, but routes
    # the forest build through the (L, n_slots) envelope memo — the
    # unmemoised multiplex path stays the oracle the tests compare with.
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    loads = []
    for obj in catalog:
        L = obj.units(delay)
        n_slots = max(1, int(np.ceil(horizon / delay)))
        labels, starts, ends = dg_envelope(L, n_slots)
        loads.append(
            _load_from_arrays(obj.name, L, delay, labels, starts, ends, clients=0)
        )
    return loads


def dg_fleet_peak(catalog: Catalog, delay_minutes: float, horizon_minutes: float) -> int:
    """Fleet-wide DG envelope peak — deterministic, workload-independent."""
    return aggregate_peak(_dg_loads(catalog, delay_minutes, horizon_minutes))


def _bisect_smallest_feasible(
    grid: Sequence[float], feasible
) -> Optional[int]:
    """Index of the smallest grid value with ``feasible(grid[i])`` true.

    Classic predicate bisection (monotone assumption, see module
    docstring): O(log len(grid)) predicate evaluations.
    """
    lo, hi = 0, len(grid) - 1
    if not feasible(grid[hi]):
        return None
    if feasible(grid[lo]):
        return lo
    # invariant: grid[lo] infeasible, grid[hi] feasible
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if feasible(grid[mid]):
            hi = mid
        else:
            lo = mid
    return hi


def min_fleet_delay(
    catalog: Catalog,
    horizon_minutes: float,
    budget_channels: int,
    delays: Optional[Sequence[float]] = None,
) -> Optional[float]:
    """Smallest candidate delay whose fleet DG envelope fits the budget.

    The bisection twin of :func:`repro.multiplex.min_delay_for_budget`
    (same answer on the same grid, O(log) instead of O(grid) envelope
    builds); returns None when even the largest candidate does not fit.
    """
    if budget_channels < 1:
        raise ValueError("budget must be >= 1 channel")
    grid = sorted(delays if delays is not None else default_delay_grid())
    idx = _bisect_smallest_feasible(
        grid,
        lambda d: dg_fleet_peak(catalog, d, horizon_minutes) <= budget_channels,
    )
    return None if idx is None else grid[idx]


def min_object_delay(
    obj: MediaObject,
    horizon_minutes: float,
    budget_channels: int,
    delays: Optional[Sequence[float]] = None,
) -> Optional[float]:
    """Smallest candidate delay for *one* object under a per-object budget."""
    if budget_channels < 1:
        raise ValueError("budget must be >= 1 channel")
    if horizon_minutes <= 0:
        raise ValueError("horizon must be positive")
    grid = sorted(delays if delays is not None else default_delay_grid())

    def feasible(d: float) -> bool:
        labels, starts, ends = dg_envelope(
            obj.units(d), max(1, int(np.ceil(horizon_minutes / d)))
        )
        load = _load_from_arrays(
            obj.name, obj.units(d), d, labels, starts, ends, clients=0
        )
        return load.peak <= budget_channels

    idx = _bisect_smallest_feasible(grid, feasible)
    return None if idx is None else grid[idx]


@dataclass(frozen=True)
class FrontierPoint:
    """One point of the budget ↦ delay frontier."""

    budget_channels: int
    delay_minutes: Optional[float]  # None: infeasible even at the max delay
    peak_channels: Optional[int]  # realised peak at that delay

    @property
    def feasible(self) -> bool:
        return self.delay_minutes is not None


def capacity_frontier(
    catalog: Catalog,
    horizon_minutes: float,
    budgets: Sequence[int],
    delays: Optional[Sequence[float]] = None,
) -> List[FrontierPoint]:
    """The frontier curve: per budget, the smallest feasible DG delay.

    Budgets are processed in decreasing order so each bisection can reuse
    the previous answer as a lower bracket (a smaller budget never admits
    a smaller delay), trimming envelope builds on dense budget sweeps.
    """
    grid = sorted(delays if delays is not None else default_delay_grid())
    peaks: dict = {}

    def peak(d: float) -> int:
        if d not in peaks:
            peaks[d] = dg_fleet_peak(catalog, d, horizon_minutes)
        return peaks[d]

    points: List[FrontierPoint] = []
    lo_idx = 0  # delays before the previous answer are already infeasible
    for budget in sorted(set(int(b) for b in budgets), reverse=True):
        sub = grid[lo_idx:]
        idx = _bisect_smallest_feasible(sub, lambda d: peak(d) <= budget)
        if idx is None:
            points.append(FrontierPoint(budget, None, None))
            lo_idx = len(grid) - 1  # every smaller budget is infeasible too
        else:
            d = sub[idx]
            points.append(FrontierPoint(budget, d, peak(d)))
            lo_idx = grid.index(d)
    return sorted(points, key=lambda p: p.budget_channels)


@dataclass(frozen=True)
class AdmissionReport:
    """What to do when the budget is infeasible even at the largest delay.

    Objects are dropped least-popular-first until the remaining fleet
    envelope fits; ``served_weight_fraction`` is the share of request
    probability the admitted set still covers.
    """

    budget_channels: int
    delay_minutes: float
    feasible: bool
    admitted: Tuple[str, ...]
    dropped: Tuple[str, ...]
    peak_channels: int
    served_weight_fraction: float

    def render(self) -> str:
        status = "feasible" if self.feasible else "requires load shedding"
        lines = [
            f"admission report — budget={self.budget_channels} channels: {status}",
            f"  delay={self.delay_minutes:g} min  peak={self.peak_channels}"
            f"  admitted={len(self.admitted)}  dropped={len(self.dropped)}"
            f"  served weight={self.served_weight_fraction:.1%}",
        ]
        if self.dropped:
            lines.append("  dropped: " + ", ".join(self.dropped[:10]) + (
                " ..." if len(self.dropped) > 10 else ""
            ))
        return "\n".join(lines)


def admission_report(
    catalog: Catalog,
    horizon_minutes: float,
    budget_channels: int,
    delays: Optional[Sequence[float]] = None,
) -> AdmissionReport:
    """Feasibility verdict for a budget, with a shedding plan if needed.

    If some candidate delay fits the whole catalog, report it (feasible,
    nothing dropped).  Otherwise pin the delay at the grid maximum and
    drop least-popular objects until the remaining envelope fits — the
    DG guarantee then still holds for every *admitted* request.  The
    capacity invariant ``peak <= budget`` holds for the admitted set
    unconditionally: if even the most popular object alone exceeds the
    budget at the maximum delay, *everything* is shed — an empty admitted
    set and an honest report beat a violated guarantee (the burn-in
    contract layer asserts this under flash-crowd overload).
    """
    grid = sorted(delays if delays is not None else default_delay_grid())
    d = min_fleet_delay(catalog, horizon_minutes, budget_channels, grid)
    if d is not None:
        return AdmissionReport(
            budget_channels=budget_channels,
            delay_minutes=d,
            feasible=True,
            admitted=tuple(o.name for o in catalog),
            dropped=(),
            peak_channels=dg_fleet_peak(catalog, d, horizon_minutes),
            served_weight_fraction=1.0,
        )
    d_max = grid[-1]
    loads = {o.name: dg_object_load(o, d_max, horizon_minutes) for o in catalog}
    by_popularity = sorted(catalog, key=lambda o: o.weight)  # least first
    admitted = list(catalog.objects)
    dropped: List[str] = []
    peak = aggregate_peak([loads[o.name] for o in admitted])
    for obj in by_popularity:
        if peak <= budget_channels:
            break
        admitted = [o for o in admitted if o.name != obj.name]
        dropped.append(obj.name)
        peak = aggregate_peak([loads[o.name] for o in admitted])
    return AdmissionReport(
        budget_channels=budget_channels,
        delay_minutes=d_max,
        feasible=False,
        admitted=tuple(o.name for o in admitted),
        dropped=tuple(dropped),
        peak_channels=peak,
        served_weight_fraction=float(sum(o.weight for o in admitted)),
    )


def render_frontier(points: Sequence[FrontierPoint]) -> str:
    """Text table of a budget ↦ delay frontier."""
    lines = ["capacity frontier (DG envelope):", "  budget  min delay   peak"]
    for p in points:
        if p.feasible:
            lines.append(
                f"  {p.budget_channels:>6d}  {p.delay_minutes:>8.3g} m  {p.peak_channels:>5d}"
            )
        else:
            lines.append(f"  {p.budget_channels:>6d}  infeasible      -")
    return "\n".join(lines)

"""Tests for ArrivalTrace slotting and statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.arrivals import ArrivalTrace

from tests.conftest import increasing_times


class TestValidation:
    def test_requires_increasing(self):
        with pytest.raises(ValueError):
            ArrivalTrace(times=(1.0, 1.0), horizon=5.0)
        with pytest.raises(ValueError):
            ArrivalTrace(times=(2.0, 1.0), horizon=5.0)

    def test_requires_in_window(self):
        with pytest.raises(ValueError):
            ArrivalTrace(times=(-0.1,), horizon=5.0)
        with pytest.raises(ValueError):
            ArrivalTrace(times=(5.0,), horizon=5.0)

    def test_requires_positive_horizon(self):
        with pytest.raises(ValueError):
            ArrivalTrace(times=(), horizon=0.0)

    def test_empty_ok(self):
        t = ArrivalTrace(times=(), horizon=3.0)
        assert t.is_empty()
        assert len(t) == 0
        assert math.isnan(t.mean_interarrival())


class TestStats:
    def test_rate_and_mean(self):
        t = ArrivalTrace(times=(0.0, 1.0, 2.0, 3.0), horizon=8.0)
        assert t.rate() == 0.5
        assert t.mean_interarrival() == 1.0


class TestSlotting:
    def test_slot_counts(self):
        t = ArrivalTrace(times=(0.2, 0.7, 3.5), horizon=5.0)
        assert list(t.slot_counts(1.0)) == [2, 0, 0, 1, 0]

    def test_slotted(self):
        t = ArrivalTrace(times=(0.2, 0.7, 3.5), horizon=5.0)
        assert t.slotted(1.0) == [0, 3]
        assert t.slotted(1.0, keep_empty=True) == [0, 1, 2, 3, 4]
        assert t.slot_end_times(1.0) == [1.0, 4.0]

    def test_coarse_slots(self):
        t = ArrivalTrace(times=(0.2, 0.7, 3.5), horizon=5.0)
        assert t.num_slots(2.5) == 2
        assert list(t.slot_counts(2.5)) == [2, 1]

    def test_bad_slot(self):
        t = ArrivalTrace(times=(), horizon=5.0)
        with pytest.raises(ValueError):
            t.num_slots(0)

    @given(increasing_times(min_size=0, max_size=50, horizon=100.0))
    def test_counts_conserve_clients(self, times):
        t = ArrivalTrace(times=tuple(times), horizon=100.0)
        for slot in (1.0, 2.0, 7.5):
            assert int(t.slot_counts(slot).sum()) == len(times)

    @given(increasing_times(min_size=1, max_size=50, horizon=100.0))
    def test_nonempty_slots_subset_of_all(self, times):
        t = ArrivalTrace(times=tuple(times), horizon=100.0)
        nonempty = set(t.slotted(1.0))
        assert nonempty <= set(t.slotted(1.0, keep_empty=True))
        assert len(nonempty) <= len(times)


class TestSurgery:
    def test_restrict(self):
        t = ArrivalTrace(times=(1.0, 2.0, 7.0), horizon=10.0)
        sub = t.restrict(1.5, 8.0)
        assert sub.times == (0.5, 5.5)
        assert sub.horizon == 6.5
        with pytest.raises(ValueError):
            t.restrict(5.0, 3.0)

    def test_merged_with(self):
        a = ArrivalTrace(times=(1.0, 3.0), horizon=5.0)
        b = ArrivalTrace(times=(2.0, 3.0), horizon=6.0)
        m = a.merged_with(b)
        assert m.times == (1.0, 2.0, 3.0)
        assert m.horizon == 6.0

    def test_from_times(self):
        t = ArrivalTrace.from_times([0.5, 1.5], 3.0)
        assert t.times == (0.5, 1.5)

"""Bench: Fig. 11 — policy comparison under constant-rate arrivals.

Shape targets (paper Section 4.2): Delay Guaranteed flat in lam; immediate
dyadic worst for lam < delay and best for lam > delay; crossover near
lam = delay; batched dyadic ~= immediate dyadic once lam > delay.
"""

from __future__ import annotations

from repro.experiments.policy_comparison import run_fig11

from conftest import assert_strictly_decreasing

LAMBDAS = (0.25, 0.5, 1.0, 2.0, 3.0, 5.0)


def test_fig11_series(benchmark):
    (res,) = benchmark(run_fig11, L=100, lambdas=LAMBDAS, horizon_media=50)
    imm = res.column("immediate dyadic")
    bat = res.column("batched dyadic")
    dg = res.column("delay guaranteed")
    assert len(set(dg)) == 1, "DG must be intensity-independent"
    assert_strictly_decreasing(imm, "immediate dyadic")
    # low intensity: immediate pays for not batching
    assert imm[0] > dg[0]
    # high intensity: merging beats the slot-per-stream DG
    assert imm[-1] < dg[-1] and bat[-1] < dg[-1]
    # crossover in the vicinity of lam = delay (between 0.5 and 2 slots)
    below = [l for l, v in zip(LAMBDAS, imm) if v > dg[0]]
    above = [l for l, v in zip(LAMBDAS, imm) if v < dg[0]]
    assert below and above
    assert max(below) <= 2.0 and min(above) >= 0.5
    # immediate ~ batched at high intensity
    assert abs(imm[-1] - bat[-1]) / bat[-1] < 0.05

#!/usr/bin/env python
"""Serving clients whose set-top boxes have limited buffers (Section 3.3).

Clients buffer future parts while receiving two streams; Lemma 15 says a
client ``x`` slots after its tree root needs ``min(x, L - x)`` units of
buffer.  When hardware caps the buffer at ``B < L/2``, merge trees must
stay shallow and more full streams are needed (Theorem 16).  This example
sweeps B for a 3-hour broadcast event, shows the bandwidth/buffer
trade-off curve, and replays receiving programs to demonstrate the bound
is honoured slot-by-slot.

Run:  python examples/bounded_buffer.py
"""

from repro.core.buffers import (
    build_optimal_bounded_forest,
    optimal_bounded_full_cost,
    tree_buffer_requirements,
)
from repro.core.full_cost import optimal_full_cost
from repro.core.receiving_program import forest_programs
from repro.simulation import verify_forest

L = 36        # 3-hour media, 5-minute delay guarantee
N = 288       # one day of 5-minute slots

print(f"Media L = {L} units, horizon n = {N} slots")
unbounded = optimal_full_cost(L, N)
print(f"Unbounded-buffer optimum: {unbounded} units "
      f"({unbounded / L:.1f} complete streams)\n")

print(" B   units    vs unbounded   trees   largest tree")
for B in (1, 2, 3, 5, 8, 12, 18):
    if 2 * B > L:
        break
    cost = optimal_bounded_full_cost(L, N, B)
    forest = build_optimal_bounded_forest(L, N, B)
    largest = max(len(t) for t in forest)
    print(f"{B:2d}  {cost:6d}     {cost / unbounded:6.3f}x      "
          f"{len(forest):4d}       {largest:4d}")

B_demo = 5
print(f"\nVerifying the B = {B_demo} forest client by client:")
forest = build_optimal_bounded_forest(L, N, B_demo)
report = verify_forest(forest, L, buffer_bound=B_demo)
report.raise_if_failed()
print(f"  {report.checks} checks passed; every client's buffer peak <= {B_demo}.")

programs = forest_programs(forest, L)
worst = max(programs.values(), key=lambda p: p.max_buffer())
print(f"  worst client: arrival {worst.client}, buffer peak "
      f"{worst.max_buffer()}, path depth {len(worst.path)}")

tree = forest.trees[0]
print(f"\nPer-client buffer needs in the first tree "
      f"(root {tree.root.arrival}, Lemma 15):")
for arrival, need in sorted(tree_buffer_requirements(tree, L).items()):
    measured = programs[arrival].max_buffer()
    marker = "ok" if measured == need else "MISMATCH"
    print(f"  client {int(arrival):3d}: predicted {int(need)}, "
          f"replayed {measured}  [{marker}]")

"""Catalog-scale batched serving: slot-sweep kernel, sharded runner,
capacity planning, and workload scenarios.

See ``engine.py`` for the slot-sweep contract (which policies can skip
the event queue and why), ``runner.py`` for the sharded catalog fan-out,
``capacity.py`` for the delay-bandwidth frontier, and ``scenarios.py``
for composable workload shapes.  ``python -m repro fleet`` ties them
together.
"""

from .capacity import (
    AdmissionReport,
    FrontierPoint,
    admission_report,
    capacity_frontier,
    default_delay_grid,
    dg_fleet_peak,
    min_fleet_delay,
    min_object_delay,
    render_frontier,
)
from .engine import (
    SLOT_SWEEPABLE,
    BatchedResult,
    FleetPolicy,
    assert_equivalent_run,
    make_event_policy,
    simulate_batched,
    simulate_event,
)
from .runner import (
    FleetObjectResult,
    FleetReport,
    fleet_profile,
    install_task_fault_hook,
    iter_fleet,
    object_run,
    pool_map,
    run_fleet,
    sanitize_times,
    shared_workload,
    stored_workload,
)
from .scenarios import (
    SCENARIOS,
    Transformer,
    compose,
    constant_poisson_blend,
    diurnal,
    flash_crowd,
    inject,
    premiere_drop,
    scenario_workload,
    thinned,
)

__all__ = [
    "AdmissionReport",
    "BatchedResult",
    "FleetObjectResult",
    "FleetPolicy",
    "FleetReport",
    "FrontierPoint",
    "SCENARIOS",
    "SLOT_SWEEPABLE",
    "Transformer",
    "admission_report",
    "assert_equivalent_run",
    "capacity_frontier",
    "compose",
    "constant_poisson_blend",
    "default_delay_grid",
    "dg_fleet_peak",
    "diurnal",
    "flash_crowd",
    "fleet_profile",
    "inject",
    "install_task_fault_hook",
    "iter_fleet",
    "make_event_policy",
    "min_fleet_delay",
    "min_object_delay",
    "object_run",
    "pool_map",
    "premiere_drop",
    "render_frontier",
    "run_fleet",
    "sanitize_times",
    "scenario_workload",
    "shared_workload",
    "simulate_batched",
    "simulate_event",
    "stored_workload",
    "thinned",
]

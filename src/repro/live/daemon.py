"""The live serving daemon: epoch loop, ledgers, checkpoint/restore.

:class:`LiveDaemon` turns the batch fleet pipeline inside out.  Offline,
:func:`repro.fleet.runner.run_fleet` sees every arrival up front,
sanitizes once, builds each object's merge forest whole, and folds a
:class:`~repro.fleet.runner.FleetReport`.  The daemon ingests the same
arrivals **epoch by epoch**, maintains each object's forest incrementally
on an :class:`~repro.fastpath.incremental.IncrementalFlatForest`, commits
streams as the fence passes their merge windows (emitting channel
assignments through :class:`~repro.live.schedule.ChannelPlanner` the
moment each tree is final), and evicts committed trees from live memory —
yet its cumulative report is **bit-identical** to the offline oracle on
the same trace: same per-object ``starts``/``ends`` arrays, counters,
bandwidth and startup metrics (``fleet_reports_equal`` returns None;
``tests/live/test_daemon.py`` and the burn-in live episodes assert it).

Why bit-identical is achievable at all: for every live-servable policy
(:data:`~repro.live.horizon.LIVE_POLICIES`) the realised forest is a pure
function of the arrival prefix, slot bucketing is exact in slot units
(``floor(t) + 1`` reproduces the event loop's searchsorted against float
slot-end times), tree structure depends only on a tree's own members, and
every per-stream quantity (Lemma 1 lengths via ``z``, minute-scale
``starts``/``ends``) is evaluated with the same scalar expressions the
batch kernel uses.  The fold order (catalog order, arrival order within
an object) matches, so even ``float(np.sum(...))`` reductions agree to
the last bit.

Checkpoint format (``repro.live-checkpoint.v1``): a JSON envelope with
the config, the last ingested epoch, the catalog, and one arrival-trace
payload (:func:`repro.arrivals.serialization.trace_payload`) per object
holding the clean minutes ingested so far plus its repaired count.
``restore`` rebuilds the daemon by *replaying* those epochs through the
normal ingest path — state is a pure function of the clean prefix, so the
restored daemon (records, digests, forests, planners) is identical to one
that never stopped, which the burn-in episode proves end to end with
``fleet_reports_equal`` across a mid-run checkpoint/restore.
"""

from __future__ import annotations

import bisect
import hashlib
import json
import math
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..arrivals.serialization import trace_from_payload, trace_payload
from ..arrivals.traces import ArrivalTrace
from ..fastpath.flat_forest import FlatForest
from ..fastpath.incremental import IncrementalFlatForest
from ..multiplex.catalog import Catalog, MediaObject
from ..fleet.runner import (
    FleetObjectResult,
    FleetReport,
    _times_of,
    sanitize_times,
)
from .horizon import LiveConfig, LiveHorizon
from .schedule import ChannelPlanner

__all__ = [
    "CHECKPOINT_SCHEMA",
    "EpochRecord",
    "LiveDaemon",
    "LiveReport",
    "live_digest",
]

CHECKPOINT_SCHEMA = "repro.live-checkpoint.v1"
REPORT_SCHEMA = "repro.live-report.v1"

_EMPTY = np.empty(0, dtype=np.float64)

_FOREST_KINDS = ("batched-dyadic", "immediate-dyadic")
_SLOTTED_KINDS = ("batched-dyadic", "pure-batching")


def live_digest(
    per_object: Sequence[Tuple[np.ndarray, np.ndarray]],
    counts: Sequence[int],
) -> str:
    """Digest of the first ``counts[i]`` committed intervals per object.

    The committed-prefix-immutability witness: each epoch record carries
    ``live_digest`` of the streams committed *so far*; because committed
    arrays only ever grow at the end, recomputing the digest from the
    **final** arrays truncated at each record's counts must reproduce
    every record's digest (``burnin.contracts.check_live_report``).
    """
    h = hashlib.sha256()
    for (starts, ends), count in zip(per_object, counts):
        h.update(np.ascontiguousarray(starts[:count]).tobytes())
        h.update(np.ascontiguousarray(ends[:count]).tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class EpochRecord:
    """One epoch's decision summary (or the final drain record).

    All cumulative fields count from daemon birth; ``fence`` is None only
    on the drain record (the stream ended — everything commits).
    ``lead_seconds`` is the wall-clock margin by which the epoch's
    decisions beat the next batch's (accelerated) deadline; it is
    measurement, not state, and is excluded from the serialised payload
    so reports stay byte-reproducible.
    """

    epoch: int
    ingest_clock: float
    fence: Optional[float]
    drain: bool
    ingested: int
    repaired: int
    committed_streams: int
    committed_roots: int
    committed_counts: Tuple[int, ...]
    max_committed_cutoff: Optional[float]
    min_live_cutoff: Optional[float]
    digest: str
    lead_seconds: Optional[float] = None

    def to_payload(self) -> dict:
        return {
            "epoch": self.epoch,
            "ingest_clock": self.ingest_clock,
            "fence": self.fence,
            "drain": self.drain,
            "ingested": self.ingested,
            "repaired": self.repaired,
            "committed_streams": self.committed_streams,
            "committed_roots": self.committed_roots,
            "committed_counts": list(self.committed_counts),
            "max_committed_cutoff": self.max_committed_cutoff,
            "min_live_cutoff": self.min_live_cutoff,
            "digest": self.digest,
        }


class _ObjectLedger:
    """One object's live state: forest, counters, committed intervals."""

    def __init__(self, obj: MediaObject, config: LiveConfig):
        self.obj = obj
        self.delay = config.delay_minutes
        self.kind = config.policy
        self.L = obj.units(config.delay_minutes)
        self.forest = (
            IncrementalFlatForest(self.L) if self.kind in _FOREST_KINDS else None
        )
        self.pending: List[float] = []  # root-only kinds: live starts, slot units
        self.planner = ChannelPlanner()
        self.clients = 0
        self.repaired = 0
        self.roots = 0
        self.streams = 0
        self.max_wait_slots = 0.0
        self.max_cutoff_minutes: Optional[float] = None
        self.ingested: List[float] = []  # clean minutes, for checkpointing
        self.starts: List[np.ndarray] = []  # committed, minutes
        self.ends: List[np.ndarray] = []
        self.channel_ids: List[np.ndarray] = []
        self._last_push = -math.inf

    def ingest(self, clean_minutes: np.ndarray) -> None:
        """Absorb one epoch's clean, strictly-later arrival minutes."""
        if clean_minutes.size == 0:
            return
        self.ingested.extend(clean_minutes.tolist())
        self.clients += int(clean_minutes.size)
        ts = clean_minutes / self.delay  # slot units, same division as object_run
        if self.kind in _SLOTTED_KINDS:
            # The serving slot end of arrival t is floor(t) + 1 — exactly
            # the slot the event ordering gives it (a boundary arrival
            # belongs to the *next* slot; see engine._served_slots).
            service = np.floor(ts) + 1.0
            self.max_wait_slots = max(
                self.max_wait_slots, float(np.max(service - ts))
            )
            vals = np.unique(service)
            vals = vals[vals > self._last_push]  # slot already served earlier
            if vals.size == 0:
                return
            self._last_push = float(vals[-1])
            push = vals
        else:
            push = ts  # immediate kinds serve at the arrival instant
        if self.forest is not None:
            self.forest.push_batch(push)
        else:
            self.pending.extend(push.tolist())

    def commit(self, fence_slots: float) -> int:
        """Commit every stream whose merge window closed before the fence."""
        committed = 0
        if self.forest is not None:
            for tree in self.forest.evict_committable(fence_slots):
                committed += self._emit(
                    tree.forest.arrivals,
                    tree.forest.stream_lengths(self.L),
                    roots=1,
                    cutoff_slots=tree.cutoff,
                )
        elif self.pending:
            # root-only kinds: a stream is final the moment it starts, so
            # its own start is its window end
            n = bisect.bisect_left(self.pending, fence_slots)
            if n:
                vals = np.asarray(self.pending[:n], dtype=np.float64)
                del self.pending[:n]
                committed += self._emit(
                    vals,
                    np.full(n, float(self.L), dtype=np.float64),
                    roots=n,
                    cutoff_slots=float(vals[-1]),
                )
        return committed

    def _emit(
        self,
        arrivals_slots: np.ndarray,
        lengths_slots: np.ndarray,
        roots: int,
        cutoff_slots: float,
    ) -> int:
        # The exact minute-scale expressions of runner._simulate_object:
        # starts = arrivals * delay, ends = (arrivals + lengths) * delay.
        starts = arrivals_slots * self.delay
        ends = (arrivals_slots + lengths_slots) * self.delay
        self.starts.append(starts)
        self.ends.append(ends)
        self.channel_ids.append(self.planner.assign(starts, ends))
        self.roots += roots
        self.streams += int(starts.size)
        cutoff_minutes = cutoff_slots * self.delay
        if self.max_cutoff_minutes is None or cutoff_minutes > self.max_cutoff_minutes:
            self.max_cutoff_minutes = cutoff_minutes
        return int(starts.size)

    def min_live_cutoff_minutes(self) -> Optional[float]:
        if self.forest is not None:
            cutoff = self.forest.min_live_cutoff()
            return None if cutoff is None else cutoff * self.delay
        if self.pending:
            return self.pending[0] * self.delay
        return None

    def committed_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self.starts:
            return _EMPTY, _EMPTY
        return np.concatenate(self.starts), np.concatenate(self.ends)

    def channel_array(self) -> np.ndarray:
        if not self.channel_ids:
            return np.empty(0, dtype=np.intp)
        return np.concatenate(self.channel_ids)

    def result(self) -> FleetObjectResult:
        starts, ends = self.committed_arrays()
        if self.kind in _SLOTTED_KINDS:
            max_startup = self.max_wait_slots * self.delay
        else:
            max_startup = 0.0  # immediate kinds serve at the arrival time
        return FleetObjectResult(
            name=self.obj.name,
            L=self.L,
            delay_minutes=self.delay,
            clients=self.clients,
            streams=int(starts.size),
            roots=self.roots,
            total_units_minutes=float(np.sum(ends - starts)),
            max_startup_delay_minutes=max_startup,
            starts=starts,
            ends=ends,
            repaired=self.repaired,
        )


@dataclass
class LiveReport:
    """Everything one daemon run produced."""

    config: LiveConfig
    fleet: FleetReport
    channels: Dict[str, np.ndarray]
    records: List[EpochRecord] = field(default_factory=list)

    @property
    def peak_channels(self) -> int:
        return max((int(c.max()) + 1 for c in self.channels.values() if c.size), default=0)

    def render(self) -> str:
        epochs = sum(1 for r in self.records if not r.drain)
        leads = [r.lead_seconds for r in self.records if r.lead_seconds is not None]
        lines = [
            f"live report — policy={self.config.policy}"
            f"  delay={self.config.delay_minutes:g} min"
            f"  epoch={self.config.epoch_minutes:g} min"
            f"  fence lag={self.config.fence_minutes:g} min",
            f"  epochs={epochs}  drained={any(r.drain for r in self.records)}"
            f"  clients={self.fleet.clients}  streams={self.fleet.streams}"
            f"  repaired={self.fleet.repaired}",
            f"  committed bandwidth={self.fleet.total_units_minutes:,.0f}"
            f" stream-minutes  max start-up delay="
            f"{self.fleet.max_startup_delay_minutes():g} min",
        ]
        if leads:
            lines.append(
                f"  wall-clock lead: min={min(leads):.3f}s"
                f"  median={sorted(leads)[len(leads) // 2]:.3f}s"
            )
        return "\n".join(lines)

    def to_json(self) -> str:
        payload = {
            "schema": REPORT_SCHEMA,
            "config": self.config.to_payload(),
            "records": [r.to_payload() for r in self.records],
            "objects": [
                {
                    "name": o.name,
                    "clients": o.clients,
                    "streams": o.streams,
                    "roots": o.roots,
                    "channels": (
                        int(self.channels[o.name].max()) + 1
                        if self.channels[o.name].size
                        else 0
                    ),
                    "total_units_minutes": o.total_units_minutes,
                    "max_startup_delay_minutes": o.max_startup_delay_minutes,
                }
                for o in self.fleet.objects
            ],
            "totals": {
                "clients": self.fleet.clients,
                "streams": self.fleet.streams,
                "repaired": self.fleet.repaired,
                "total_units_minutes": self.fleet.total_units_minutes,
            },
        }
        return json.dumps(payload, indent=2, sort_keys=True)


class LiveDaemon:
    """Rolling-horizon online serving of a catalog (see module docstring).

    Two driving styles share one ingest path:

    * :meth:`run` — replay a workload mapping epoch by epoch (optionally
      paced against accelerated wall-clock), stopping early at
      ``until_epoch`` for mid-run checkpoints;
    * :meth:`step` — operational push of one epoch's raw batches, with
      per-batch sanitisation (entries outside the epoch window, below
      the trace contract, or duplicated are repaired away, exactly like
      the fleet's ingest path).
    """

    def __init__(self, catalog: Catalog, config: LiveConfig):
        self.catalog = catalog
        self.config = config
        self.horizon = LiveHorizon(config)
        self._ledgers: Dict[str, _ObjectLedger] = {
            obj.name: _ObjectLedger(obj, config) for obj in catalog
        }
        self.records: List[EpochRecord] = []
        self._repaired_folded = False

    # -- epoch machinery -------------------------------------------------------

    def _commit_all(self, fence_minutes: float) -> None:
        fence_slots = fence_minutes / self.config.delay_minutes
        for obj in self.catalog:
            self._ledgers[obj.name].commit(fence_slots)

    def _make_record(self, ingested: int, drain: bool) -> EpochRecord:
        ledgers = [self._ledgers[obj.name] for obj in self.catalog]
        counts = tuple(led.streams for led in ledgers)
        cutoffs = [
            led.max_cutoff_minutes
            for led in ledgers
            if led.max_cutoff_minutes is not None
        ]
        live = [
            c for led in ledgers if (c := led.min_live_cutoff_minutes()) is not None
        ]
        record = EpochRecord(
            epoch=self.horizon.epoch,
            ingest_clock=self.horizon.ingest_clock,
            fence=self.horizon.fence,
            drain=drain,
            ingested=ingested,
            repaired=sum(led.repaired for led in ledgers),
            committed_streams=sum(counts),
            committed_roots=sum(led.roots for led in ledgers),
            committed_counts=counts,
            max_committed_cutoff=max(cutoffs) if cutoffs else None,
            min_live_cutoff=min(live) if live else None,
            digest=live_digest(
                [led.committed_arrays() for led in ledgers], counts
            ),
        )
        self.records.append(record)
        return record

    def _process_epoch(self, k: int, slices: Dict[str, np.ndarray]) -> EpochRecord:
        self.horizon.begin_epoch(k)
        ingested = 0
        for obj in self.catalog:
            ts = slices.get(obj.name, _EMPTY)
            ingested += int(ts.size)
            self._ledgers[obj.name].ingest(ts)
        assert self.horizon.fence is not None
        self._commit_all(self.horizon.fence)
        return self._make_record(ingested, drain=False)

    # -- driving ---------------------------------------------------------------

    def step(self, batches: Dict[str, Union[ArrivalTrace, np.ndarray, Sequence[float]]]) -> EpochRecord:
        """Ingest the next epoch from raw operational batches.

        Epoch ``k`` accepts arrivals in its own window ``[t0, t1)``;
        everything else in a batch — non-finite, out-of-window (early
        *or* late), duplicate — is repaired away and counted, mirroring
        :func:`~repro.fleet.runner.sanitize_times`.  Entries at or below
        an object's last ingested time are likewise dropped (a replayed
        batch cannot corrupt a committed tree: the forest's watermark
        would refuse it before the ledger ever saw it).
        """
        k = self.horizon.epoch + 1
        t0, t1 = self.config.epoch_bounds(k)
        slices: Dict[str, np.ndarray] = {}
        for obj in self.catalog:
            raw = batches.get(obj.name)
            if raw is None:
                continue
            times = _times_of(raw)
            clean, repaired = sanitize_times(times, self.config.horizon_minutes)
            led = self._ledgers[obj.name]
            last = led.ingested[-1] if led.ingested else -math.inf
            lo = max(t0, np.nextafter(last, math.inf))
            keep = clean[(clean >= lo) & (clean < t1)]
            led.repaired += repaired + int(clean.size - keep.size)
            slices[obj.name] = keep
        self._repaired_folded = True  # step() accounts repairs itself
        return self._process_epoch(k, slices)

    def run(
        self,
        workload: Dict[str, Union[ArrivalTrace, np.ndarray, Sequence[float]]],
        until_epoch: Optional[int] = None,
        accel: Optional[float] = None,
    ) -> Optional[LiveReport]:
        """Replay a workload mapping through the epoch loop.

        The workload is sanitised whole (identically to ``run_fleet``)
        and sliced into epochs, so the daemon sees exactly the clean
        trace the offline oracle would — the precondition for bit-exact
        report equality.  ``until_epoch`` stops after that epoch without
        draining (checkpoint, then call ``run`` again — on this daemon
        or a restored one — with the same workload to continue).
        ``accel`` paces ingestion against wall-clock at ``accel``
        simulated minutes per second: epoch ``k`` is processed no
        earlier than its data exists, and each record's ``lead_seconds``
        measures how far ahead of the next batch's deadline the commit
        decisions landed.  Returns the final :class:`LiveReport` after
        the drain, or None when stopping early.
        """
        clean_by_name: Dict[str, np.ndarray] = {}
        for obj in self.catalog:
            raw = workload.get(obj.name)
            times = _EMPTY if raw is None else _times_of(raw)
            clean, repaired = sanitize_times(times, self.config.horizon_minutes)
            clean_by_name[obj.name] = clean
            if not self._repaired_folded:
                self._ledgers[obj.name].repaired += repaired
        self._repaired_folded = True

        wall0 = time.monotonic()
        accel_base = self.horizon.ingest_clock  # resumed runs pace from here
        for k in range(self.horizon.epoch + 1, self.config.num_epochs):
            if until_epoch is not None and k > until_epoch:
                return None
            t0, t1 = self.config.epoch_bounds(k)
            if accel is not None:
                due = (t1 - accel_base) / accel
                now = time.monotonic() - wall0
                if due > now:
                    time.sleep(due - now)
            slices = {
                name: clean[
                    np.searchsorted(clean, t0, side="left"):
                    np.searchsorted(clean, t1, side="left")
                ]
                for name, clean in clean_by_name.items()
            }
            self._process_epoch(k, slices)
            if accel is not None:
                next_due = (t1 + self.config.epoch_minutes - accel_base) / accel
                lead = next_due - (time.monotonic() - wall0)
                self.records[-1] = replace(self.records[-1], lead_seconds=lead)
        if until_epoch is not None:
            return None
        self.drain()
        return self.report()

    def drain(self) -> EpochRecord:
        """End of stream: commit everything still live, close the run."""
        self.horizon.mark_drained()
        self._commit_all(math.inf)
        return self._make_record(0, drain=True)

    def report(self) -> LiveReport:
        fleet = FleetReport(
            policy=self.config.policy,
            delay_minutes=self.config.delay_minutes,
            horizon_minutes=self.config.horizon_minutes,
            objects=[self._ledgers[obj.name].result() for obj in self.catalog],
        )
        channels = {
            obj.name: self._ledgers[obj.name].channel_array()
            for obj in self.catalog
        }
        return LiveReport(
            config=self.config,
            fleet=fleet,
            channels=channels,
            records=list(self.records),
        )

    # -- checkpoint / restore --------------------------------------------------

    def checkpoint(self) -> str:
        """Serialise the daemon's ingested prefix as JSON.

        State is a pure function of (config, catalog, clean ingested
        minutes per object), so that is all the checkpoint holds — no
        forest internals, no planner heaps.  Restore replays.
        """
        if self.horizon.drained:
            raise RuntimeError("nothing to checkpoint: the stream was drained")
        objects = {}
        for obj in self.catalog:
            led = self._ledgers[obj.name]
            trace = ArrivalTrace(
                times=tuple(led.ingested), horizon=self.config.horizon_minutes
            )
            objects[obj.name] = trace_payload(
                trace, meta={"repaired": led.repaired}
            )
        payload = {
            "schema": CHECKPOINT_SCHEMA,
            "config": self.config.to_payload(),
            "epoch": self.horizon.epoch,
            "catalog": [
                {
                    "name": obj.name,
                    "duration_minutes": obj.duration_minutes,
                    "weight": obj.weight,
                }
                for obj in self.catalog
            ],
            "objects": objects,
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def restore(cls, text: str) -> "LiveDaemon":
        """Rebuild a daemon from :meth:`checkpoint` output, by replay.

        The restored daemon is indistinguishable from one that never
        stopped (same ledgers, records, digests, planner state); calling
        :meth:`run` with the original workload continues exactly where
        the checkpoint left off.
        """
        payload = json.loads(text)
        if payload.get("schema") != CHECKPOINT_SCHEMA:
            raise ValueError(
                f"not a live checkpoint (schema={payload.get('schema')!r})"
            )
        config = LiveConfig.from_payload(payload["config"])
        catalog = Catalog(
            [
                MediaObject(
                    name=str(entry["name"]),
                    duration_minutes=float(entry["duration_minutes"]),
                    weight=float(entry["weight"]),
                )
                for entry in payload["catalog"]
            ]
        )
        daemon = cls(catalog, config)
        clean_by_name: Dict[str, np.ndarray] = {}
        for obj in catalog:
            entry = payload["objects"].get(obj.name)
            if entry is None:
                raise ValueError(f"checkpoint is missing object {obj.name!r}")
            trace = trace_from_payload(entry)
            clean_by_name[obj.name] = np.asarray(trace.times, dtype=np.float64)
            # fold repaired up front so replayed records carry the same
            # cumulative counts the original run's records did
            daemon._ledgers[obj.name].repaired = int(
                entry.get("meta", {}).get("repaired", 0)
            )
        daemon._repaired_folded = True
        last_epoch = int(payload["epoch"])
        for k in range(0, last_epoch + 1):
            t0, t1 = config.epoch_bounds(k)
            slices = {
                name: clean[
                    np.searchsorted(clean, t0, side="left"):
                    np.searchsorted(clean, t1, side="left")
                ]
                for name, clean in clean_by_name.items()
            }
            daemon._process_epoch(k, slices)
        return daemon

"""Asymptotic claims: Theorems 8, 13, 14, 19/20.

* ``thm19``: the receive-two / receive-all merge-cost ratio drifts to
  ``log_phi 2 ~ 1.4404`` (Theorem 19) and the full-cost ratio follows
  (Theorem 20).
* ``thm14``: batching alone costs ``n L``; with stream merging the optimal
  full cost is ``n log_phi L + Theta(n)``, so the gain grows as
  ``Theta(L / log L)`` (Theorem 14).
* ``thm8``: sandwich check of ``M(n)`` between the Eq. (9)/(10) bounds.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core import bounds
from ..core.full_cost import optimal_full_cost
from ..core.offline import merge_cost
from ..core.receive_all import (
    merge_cost_receive_all,
    optimal_full_cost_receive_all,
)
from .harness import ExperimentResult, register


@register(
    "thm19",
    "Receive-two vs receive-all cost ratio (Theorems 19-20)",
    "Section 3.4, Theorems 19 and 20",
    "M(n)/Mw(n) -> log_phi 2 ~ 1.4404; full-cost ratio for growing L.",
)
def run_thm19(
    ns: Sequence[int] = (10, 100, 1000, 10_000, 100_000, 1_000_000),
    Ls: Sequence[int] = (10, 30, 100, 300, 1000),
    full_cost_n_factor: int = 50,
) -> List[ExperimentResult]:
    limit = bounds.RECEIVE_ALL_GAIN
    rows = [
        (n, merge_cost(n), merge_cost_receive_all(n),
         round(merge_cost(n) / merge_cost_receive_all(n), 5))
        for n in ns
    ]
    res_merge = ExperimentResult(
        title=f"M(n) / Mw(n) (limit log_phi 2 = {limit:.5f})",
        headers=("n", "M(n)", "Mw(n)", "ratio"),
        rows=rows,
    )
    rows_full = []
    for L in Ls:
        n = full_cost_n_factor * L
        f2 = optimal_full_cost(L, n)
        fa = optimal_full_cost_receive_all(L, n)
        rows_full.append((L, n, f2, fa, round(f2 / fa, 5)))
    res_full = ExperimentResult(
        title="F(L,n) / Fw(L,n) for n = "
        f"{full_cost_n_factor} L (Theorem 20; limit {limit:.5f})",
        headers=("L", "n", "F(L,n)", "Fw(L,n)", "ratio"),
        rows=rows_full,
    )
    return [res_merge, res_full]


@register(
    "thm14",
    "Stream merging vs pure batching (Theorem 14)",
    "Theorem 14",
    "Gain n L / F(L, n) grows like L / log_phi L.",
)
def run_thm14(
    Ls: Sequence[int] = (4, 8, 16, 32, 64, 128, 256, 512, 1024),
    n_factor: int = 20,
) -> List[ExperimentResult]:
    rows = []
    for L in Ls:
        n = n_factor * L
        batching = bounds.batching_cost(L, n)
        merged = optimal_full_cost(L, n)
        gain = batching / merged
        order = bounds.batching_gain_order(L)
        rows.append((L, n, batching, merged, round(gain, 3), round(order, 3),
                     round(gain / order, 4)))
    return [
        ExperimentResult(
            title="Batching nL vs optimal F(L,n): measured gain vs L/log_phi L",
            headers=("L", "n", "batching", "F(L,n)", "gain", "L/log_phi L",
                     "gain/order"),
            rows=rows,
            notes=[
                "Shape target: gain/order approaches a constant (Theta-ratio "
                "stabilises) as L grows.",
            ],
        )
    ]


@register(
    "thm8",
    "Merge-cost sandwich M(n) = n log_phi n + Theta(n) (Theorem 8)",
    "Theorem 8, Eqs. (9)-(10)",
    "Closed-form M(n) between the explicit upper/lower bounds.",
)
def run_thm8(
    ns: Sequence[int] = (10, 100, 1000, 10_000, 100_000, 1_000_000),
) -> List[ExperimentResult]:
    rows = []
    for n in ns:
        m = merge_cost(n)
        lo = bounds.merge_cost_lower(n)
        hi = bounds.merge_cost_upper(n)
        ok = lo <= m <= hi
        rows.append((n, round(lo, 1), m, round(hi, 1),
                     round(m / (n * bounds.log_phi(n)), 5),
                     "ok" if ok else "VIOLATION"))
    return [
        ExperimentResult(
            title="Eq. (10) <= M(n) <= Eq. (9); M(n)/(n log_phi n) -> 1",
            headers=("n", "lower", "M(n)", "upper", "M/(n log_phi n)", "status"),
            rows=rows,
        )
    ]

"""Ablation bench: the DG algorithm's static tree size.

Theorem 12 motivates repeating trees of F_h arrivals.  The bench sweeps
neighbouring sizes and asserts F_h (or an immediate neighbour, on ties)
minimises the long-horizon cost.
"""

from __future__ import annotations

from repro.core.fibonacci import fib, tree_size_index
from repro.core.online import online_full_cost

L = 100
N = 20_000


def test_tree_size_sweep(benchmark):
    fh = fib(tree_size_index(L))

    def run():
        sizes = [fh - 13, fh - 5, fh - 1, fh, fh + 1, fh + 5, fh + 13]
        return {s: online_full_cost(L, N, tree_size=s) for s in sizes if 1 <= s < L}

    costs = benchmark(run)
    best_size = min(costs, key=costs.get)
    assert abs(best_size - fh) <= 1, (
        f"F_h={fh} should minimise the static-tree cost, best={best_size}"
    )


def test_default_matches_fh(benchmark):
    cost_default = benchmark(online_full_cost, L, N)
    fh = fib(tree_size_index(L))
    assert cost_default == online_full_cost(L, N, tree_size=fh)

"""Bench: Theorems 8, 14 and 19/20 — the asymptotic claims.

* Thm 8 sandwich: Eq. (10) <= M(n) <= Eq. (9) up to n = 10^6.
* Thm 14: batching/merging gain grows like L / log_phi L.
* Thm 19/20: receive-two / receive-all ratio climbs toward log_phi 2.
"""

from __future__ import annotations

from repro.core.bounds import RECEIVE_ALL_GAIN
from repro.experiments.asymptotics import run_thm8, run_thm14, run_thm19

from conftest import assert_all_ok


def test_thm8_sandwich(benchmark):
    (res,) = benchmark(run_thm8)
    assert_all_ok(res.rows, "Theorem 8 sandwich")
    normalised = res.column("M/(n log_phi n)")
    # normalised cost approaches 1 from below as n grows
    assert abs(normalised[-1] - 1) < abs(normalised[0] - 1)


def test_thm14_gain(benchmark):
    (res,) = benchmark(run_thm14)
    gains = res.column("gain")
    assert gains == sorted(gains), "gain must grow with L"
    theta_ratio = res.column("gain/order")
    assert max(theta_ratio) / min(theta_ratio) < 2.0, "Theta ratio unstable"


def test_thm19_ratios(benchmark):
    merge_res, full_res = benchmark(run_thm19)
    ratios = merge_res.column("ratio")
    assert ratios == sorted(ratios), "merge-cost ratio must be increasing"
    assert all(r < RECEIVE_ALL_GAIN for r in ratios)
    assert ratios[-1] > 1.40, "ratio should be near log_phi 2 by n = 10^6"
    full_ratios = full_res.column("ratio")
    assert full_ratios == sorted(full_ratios)
    assert all(1.0 <= r < RECEIVE_ALL_GAIN for r in full_ratios)

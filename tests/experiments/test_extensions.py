"""Shape tests for the Section 5 extension experiments."""

from __future__ import annotations

import pytest

from repro.experiments.extensions import (
    run_general_offline,
    run_hybrid,
    run_multiplex,
)


class TestMultiplexExperiment:
    def test_shapes(self):
        (res,) = run_multiplex(
            titles=8,
            horizon_minutes=360.0,
            mean_interarrival_minutes=1.0,
            delays=(5.0, 10.0, 20.0),
            seed=1,
        )
        dg_peaks = res.column("DG peak ch.")
        dg_hours = res.column("DG stream-hours")
        # DG envelope shrinks as the delay guarantee is relaxed
        assert all(a >= b for a, b in zip(dg_peaks, dg_peaks[1:]))
        assert all(a >= b for a, b in zip(dg_hours, dg_hours[1:]))
        # dyadic is delay-independent (it serves immediately)
        dyadic_hours = res.column("dyadic stream-hours")
        assert len(set(dyadic_hours)) == 1
        assert any("min_delay_for_budget" in n for n in res.notes)


class TestHybridExperiment:
    def test_hybrid_beats_pure_dg(self):
        (res,) = run_hybrid(L=50, phase_slots=250.0, phases=4, seed=2)
        by_policy = {row[0]: row for row in res.rows}
        hybrid_cost = by_policy["hybrid"][1]
        dg_cost = by_policy["pure DG"][1]
        assert hybrid_cost < dg_cost
        assert by_policy["hybrid"][3] > 0  # it actually switched modes

    def test_hybrid_peak_not_worse_than_dyadic(self):
        (res,) = run_hybrid(L=50, phase_slots=250.0, phases=4, seed=2)
        by_policy = {row[0]: row for row in res.rows}
        assert by_policy["hybrid"][2] <= by_policy["immediate dyadic"][2]


class TestGeneralOfflineExperiment:
    def test_heuristics_bounded_by_optimum(self):
        (res,) = run_general_offline(L=40, lams=(2.0, 6.0), horizon=250.0)
        for row in res.rows:
            assert row[4] >= 1.0  # dyadic/opt
            assert row[6] >= 1.0  # DG/opt

    def test_dg_overhead_grows_with_sparsity(self):
        (res,) = run_general_offline(L=40, lams=(2.0, 8.0), horizon=250.0)
        dg_ratios = res.column("DG/opt")
        assert dg_ratios[-1] > dg_ratios[0]

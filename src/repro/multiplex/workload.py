"""Multi-object workloads: one global request process split by popularity.

Requests arrive as a single Poisson process (rate = 1 / mean inter-arrival
minutes); each request picks an object i.i.d. from the catalog's Zipf
weights.  The per-object sub-traces are then themselves Poisson (thinning
property), which the tests confirm statistically.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..arrivals.generators import SeedLike, poisson, rng_from
from ..arrivals.traces import ArrivalTrace
from .catalog import Catalog

__all__ = ["split_requests", "catalog_workload"]


def split_requests(
    trace: ArrivalTrace, catalog: Catalog, seed: SeedLike = None
) -> Dict[str, ArrivalTrace]:
    """Assign each request in ``trace`` to a catalog object by popularity.

    Returns a per-object trace on the same horizon (possibly empty).
    The RNG draw is one ``choice`` over the whole trace (unchanged from
    the original loop implementation, so seeds reproduce byte-identical
    workloads); the bucketing is a stable argsort/group-boundary pass —
    within each object the stable sort preserves arrival order, so each
    sub-trace stays strictly increasing.
    """
    rng = rng_from(seed)
    picks = rng.choice(len(catalog), size=len(trace), p=catalog.weights())
    times = np.asarray(trace.times, dtype=np.float64)
    order = np.argsort(picks, kind="stable")
    bounds = np.searchsorted(picks[order], np.arange(len(catalog) + 1))
    return {
        obj.name: ArrivalTrace(
            times=tuple(times[order[bounds[k] : bounds[k + 1]]].tolist()),
            horizon=trace.horizon,
        )
        for k, obj in enumerate(catalog)
    }


def catalog_workload(
    catalog: Catalog,
    mean_interarrival_minutes: float,
    horizon_minutes: float,
    seed: SeedLike = None,
) -> Dict[str, ArrivalTrace]:
    """Generate the global request stream and split it per object.

    Times are in *minutes* (callers rescale to slots per their delay).
    """
    rng = rng_from(seed)
    global_trace = poisson(mean_interarrival_minutes, horizon_minutes, seed=rng)
    return split_requests(global_trace, catalog, seed=rng)

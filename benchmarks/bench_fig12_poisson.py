"""Bench: Fig. 12 — policy comparison under Poisson arrivals.

Same shape targets as Fig. 11 plus the paper's Poisson-specific finding:
the Delay Guaranteed algorithm fares relatively worse than under constant
rate because randomly-empty slots still start streams.
"""

from __future__ import annotations

from repro.experiments.policy_comparison import compare_policies, run_fig12

from conftest import assert_strictly_decreasing

LAMBDAS = (0.25, 0.5, 1.0, 2.0, 3.0, 5.0)


def test_fig12_series(benchmark):
    (res,) = benchmark(
        run_fig12, L=100, lambdas=LAMBDAS, horizon_media=50, seeds=(0, 1)
    )
    imm = res.column("immediate dyadic")
    bat = res.column("batched dyadic")
    dg = res.column("delay guaranteed")
    assert len(set(dg)) == 1
    assert_strictly_decreasing(imm, "immediate dyadic")
    assert imm[0] > dg[0]
    assert imm[-1] < dg[-1] and bat[-1] < dg[-1]


def test_fig12_dg_poisson_penalty(benchmark):
    """DG's relative standing vs batched dyadic is worse under Poisson."""

    def margins():
        c = compare_policies(100, 0.5, 3000.0, "constant")
        p = compare_policies(100, 0.5, 3000.0, "poisson", seeds=(0, 1, 2))
        return (
            c["batched_dyadic"] / c["delay_guaranteed"],
            p["batched_dyadic"] / p["delay_guaranteed"],
        )

    margin_const, margin_pois = benchmark(margins)
    assert margin_pois < margin_const

"""Tests for the on-line Delay Guaranteed algorithm (Section 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bounds, online
from repro.core.fibonacci import fib, tree_size_index
from repro.core.full_cost import optimal_full_cost
from repro.core.offline import build_optimal_tree, merge_cost


class TestTreeSize:
    @pytest.mark.parametrize("L,size", [(1, 1), (2, 2), (4, 3), (15, 8), (100, 55)])
    def test_static_size(self, L, size):
        assert online.online_tree_size(L) == size


class TestPrefixTree:
    def test_prefix_is_parent_closed(self):
        tree = build_optimal_tree(8)
        for count in range(1, 9):
            p = online.prefix_tree(tree, count)
            assert len(p) == count
            assert p.arrivals() == list(range(count))
            assert p.has_preorder_property()

    def test_prefix_costs_monotone(self):
        tree = build_optimal_tree(13)
        costs = [online.prefix_tree(tree, c).merge_cost() for c in range(1, 14)]
        assert all(a <= b for a, b in zip(costs, costs[1:]))
        assert costs[-1] == tree.merge_cost()

    def test_full_prefix_identity(self):
        tree = build_optimal_tree(8)
        assert online.prefix_tree(tree, 8).canonical() == tree.canonical()

    def test_bad_count(self):
        tree = build_optimal_tree(5)
        with pytest.raises(ValueError):
            online.prefix_tree(tree, 0)
        with pytest.raises(ValueError):
            online.prefix_tree(tree, 6)


class TestShiftTree:
    def test_shift(self):
        t = build_optimal_tree(5)
        s = online.shift_tree(t, 100)
        assert s.arrivals() == [100, 101, 102, 103, 104]
        assert s.merge_cost() == t.merge_cost()


class TestOnlineForest:
    def test_exact_multiple_of_tree_size(self):
        L = 15  # F_h = 8
        forest = online.build_online_forest(L, 16)
        assert [len(t) for t in forest] == [8, 8]
        assert forest.full_cost(L) == 2 * (L + merge_cost(8))

    def test_partial_last_tree(self):
        L = 15
        forest = online.build_online_forest(L, 19)
        assert [len(t) for t in forest] == [8, 8, 3]

    def test_single_tree_matches_optimal(self):
        # n = F_h exactly: the on-line forest IS an optimal forest.
        assert online.online_full_cost(15, 8) == optimal_full_cost(15, 8)

    def test_cost_at_least_optimal(self):
        for L in (7, 15, 40):
            for n in (3, 10, 55, 200, 1111):
                assert online.online_full_cost(L, n) >= optimal_full_cost(L, n)

    def test_tree_size_override(self):
        L, n = 100, 500
        default = online.online_full_cost(L, n)
        assert online.online_full_cost(L, n, tree_size=online.online_tree_size(L)) == default
        assert online.online_full_cost(L, n, tree_size=20) >= optimal_full_cost(L, n)

    def test_errors(self):
        with pytest.raises(ValueError):
            online.build_online_forest(0, 5)
        with pytest.raises(ValueError):
            online.build_online_forest(5, 0)
        with pytest.raises(ValueError):
            online.build_online_forest(10, 20, tree_size=11)  # > L
        # size == L is feasible (span L-1)
        online.build_online_forest(10, 20, tree_size=10)


class TestTheorem22:
    @pytest.mark.parametrize("L", [7, 10, 15, 25])
    def test_bound_holds_on_grid(self, L):
        for n in (L * L + 3, L * L + 57, 4 * L * L, 20 * L * L):
            ratio = online.online_over_optimal_ratio(L, n)
            assert 1.0 <= ratio <= bounds.online_ratio_bound(L, n) + 1e-12

    def test_ratio_tends_to_one(self):
        L = 15
        r_small = online.online_over_optimal_ratio(L, 300)
        r_large = online.online_over_optimal_ratio(L, 30_000)
        assert r_large <= r_small + 1e-9
        assert r_large < 1.005

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=7, max_value=30), st.integers(min_value=1, max_value=4000))
    def test_ratio_never_below_one(self, L, n):
        assert online.online_over_optimal_ratio(L, n) >= 1.0 - 1e-12


class TestScheduler:
    def test_paths_repeat_per_tree(self):
        sched = online.OnlineScheduler(15)
        assert sched.size == 8
        base_paths = [sched.receiving_path(s) for s in range(8)]
        for s in range(8):
            shifted = [x + 8 for x in base_paths[s]]
            assert sched.receiving_path(8 + s) == shifted

    def test_orders_match_template_lengths(self):
        L = 15
        sched = online.OnlineScheduler(L)
        template = build_optimal_tree(8)
        lengths = {
            int(node.arrival): (
                L
                if node.parent is None
                else int(
                    2 * node.last_descendant().arrival
                    - node.arrival
                    - node.parent.arrival
                )
            )
            for node in template.root.preorder()
        }
        for slot in range(16):
            order = sched.order_for_slot(slot)
            assert order.planned_length == lengths[slot % 8]
            assert order.is_root == (slot % 8 == 0)

    def test_roots_every_fh_slots(self):
        sched = online.OnlineScheduler(100)  # F_h = 55
        roots = [o.slot for o in sched.orders(200) if o.is_root]
        assert roots == [0, 55, 110, 165]

    def test_total_planned_equals_analytic_cost(self):
        # summing planned lengths over k full trees reproduces A(L, k*F_h)
        L = 20
        sched = online.OnlineScheduler(L)
        k = 3
        n = k * sched.size
        total = sum(o.planned_length for o in sched.orders(n))
        assert total == online.online_full_cost(L, n)

    def test_errors(self):
        sched = online.OnlineScheduler(10)
        with pytest.raises(ValueError):
            sched.order_for_slot(-1)
        with pytest.raises(ValueError):
            online.OnlineScheduler(0)

"""The receive-all model (Section 3.4).

When clients can listen to *all* existing streams simultaneously, the
stream at non-root ``x`` only needs length ``w(x) = z(x) - p(x)``
(Lemma 17) and the optimal merge cost obeys Eq. (19),

    Mw(n) = min_h { Mw(h) + Mw(n - h) } + n - 1,

whose closed form is powers-of-two instead of Fibonacci (Eq. (20)):

    Mw(n) = (k + 1) n - 2^{k+1} + 1    for  2^k <= n <= 2^{k+1}.

The minimum is achieved exactly at the balanced splits ``h = floor(n/2)``
and ``h = ceil(n/2)``, which yields a linear-time optimal tree builder
(balanced binary recursion).  Full cost mirrors Lemma 9 (Eq. (22)):

    Fw(L, n, s) = s L + r Mw(p+1) + (s - r) Mw(p).

Surprisingly the receive-all gain over receive-two is only
``log_phi 2 ~= 1.44`` asymptotically (Theorems 19 and 20).
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from .merge_tree import MergeForest, MergeNode, MergeTree

__all__ = [
    "merge_cost_receive_all",
    "merge_cost_receive_all_array",
    "balanced_splits",
    "build_optimal_tree_receive_all",
    "full_cost_receive_all_given_streams",
    "optimal_full_cost_receive_all",
    "build_optimal_forest_receive_all",
]


def merge_cost_receive_all(n: int) -> int:
    """``Mw(n)`` via Eq. (20) in O(1) (bit-length for the power of two)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    # largest k with 2^k <= n
    k = n.bit_length() - 1
    return (k + 1) * n - (1 << (k + 1)) + 1


def merge_cost_receive_all_array(ns) -> np.ndarray:
    """Vectorised ``Mw(n)`` over an array of sizes."""
    arr = np.asarray(ns, dtype=np.int64)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    if np.any(arr < 1):
        raise ValueError("all sizes must be >= 1")
    k = np.floor(np.log2(arr)).astype(np.int64)
    # Guard against float log edge cases at exact powers of two.
    k = np.where(np.left_shift(np.int64(1), k + 1) <= arr, k + 1, k)
    k = np.where(np.left_shift(np.int64(1), k) > arr, k - 1, k)
    return (k + 1) * arr - np.left_shift(np.int64(1), k + 1) + 1


def balanced_splits(n: int) -> Tuple[int, ...]:
    """The argmin set of Eq. (19): ``{floor(n/2), ceil(n/2)}``.

    The paper's induction shows these (and only these) achieve the minimum.
    """
    if n < 2:
        raise ValueError(f"n must be >= 2, got {n}")
    lo, hi = n // 2, -(-n // 2)
    return (lo,) if lo == hi else (lo, hi)


def build_optimal_tree_receive_all(n: int, start: int = 0) -> MergeTree:
    """Optimal receive-all merge tree in O(n): balanced binary splits."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")

    def build(offset: int, size: int) -> MergeNode:
        if size == 1:
            return MergeNode(offset)
        h = size // 2  # floor split; ceil is equally optimal
        left = build(offset, h)
        right = build(offset + h, size - h)
        right.parent = left
        left.children.append(right)
        return left

    import sys

    old = sys.getrecursionlimit()
    try:
        sys.setrecursionlimit(max(old, 4 * max(1, math.ceil(math.log2(n + 1))) + 1000))
        root = build(start, n)
    finally:
        sys.setrecursionlimit(old)
    return MergeTree(root)


def _check_args(L: int, n: int) -> None:
    if L < 1:
        raise ValueError(f"stream length L must be >= 1, got {L}")
    if n < 1:
        raise ValueError(f"number of arrivals n must be >= 1, got {n}")


def full_cost_receive_all_given_streams(L: int, n: int, s: int) -> int:
    """``Fw(L, n, s)`` by Eq. (22)."""
    _check_args(L, n)
    s0 = -(-n // L)
    if not s0 <= s <= n:
        raise ValueError(f"s = {s} outside [{s0}, {n}] for L={L}, n={n}")
    p, r = divmod(n, s)
    mp = 0 if p == 0 else merge_cost_receive_all(p)
    return s * L + (s - r) * mp + r * merge_cost_receive_all(p + 1)


def optimal_full_cost_receive_all(L: int, n: int) -> int:
    """``Fw(L, n) = min_s Fw(L, n, s)``.

    The paper does not give a two-candidate shortcut for the receive-all
    full cost, so we minimise directly; the function is unimodal in
    practice, but we scan the feasible range for correctness (O(n)).
    """
    _check_args(L, n)
    s0 = -(-n // L)
    return min(
        full_cost_receive_all_given_streams(L, n, s) for s in range(s0, n + 1)
    )


def optimal_stream_count_receive_all(L: int, n: int) -> int:
    """Argmin ``s`` for ``Fw(L, n, s)`` (smallest on ties)."""
    _check_args(L, n)
    s0 = -(-n // L)
    best_s, best = s0, None
    for s in range(s0, n + 1):
        cost = full_cost_receive_all_given_streams(L, n, s)
        if best is None or cost < best:
            best_s, best = s, cost
    return best_s


def build_optimal_forest_receive_all(
    L: int, n: int, s: int | None = None
) -> MergeForest:
    """Optimal receive-all merge forest (Eq. (22) placement)."""
    _check_args(L, n)
    if s is None:
        s = optimal_stream_count_receive_all(L, n)
    p, r = divmod(n, s)
    trees: List[MergeTree] = []
    offset = 0
    for _ in range(r):
        trees.append(build_optimal_tree_receive_all(p + 1, start=offset))
        offset += p + 1
    for _ in range(s - r):
        trees.append(build_optimal_tree_receive_all(p, start=offset))
        offset += p
    forest = MergeForest(trees)
    forest.validate_for_length(L, receive_all=True)
    return forest

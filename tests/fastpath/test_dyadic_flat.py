"""Flat dyadic builders vs. the MergeNode oracles — node-for-node.

Satellite contract of the flat-simulation PR: ``dyadic_flat_forest`` ==
``dyadic_forest`` == ``DyadicOnline`` == ``DyadicFlatOnline`` on
adversarial traces — arrivals exactly on dyadic interval edges, exactly
at the cutoff ``y``, dense clusters, both ``alpha = 2`` and
``alpha = phi``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.dyadic import (
    DyadicOnline,
    DyadicParams,
    dyadic_cost,
    dyadic_forest,
)
from repro.core.fibonacci import PHI
from repro.fastpath.dyadic import (
    DyadicFlatOnline,
    dyadic_flat_cost,
    dyadic_flat_forest,
)
from repro.fastpath.flat_forest import FlatForest

from tests.conftest import increasing_times, increasing_times_exact

ALPHAS = st.sampled_from([2.0, PHI])
BETAS = st.sampled_from([0.5, 0.3, 0.9])


def _assert_same_forest(ts, L, params):
    ref = FlatForest.from_forest(dyadic_forest(ts, L, params))
    flat = dyadic_flat_forest(ts, L, params)
    assert flat.equals(ref)
    assert np.array_equal(flat.z, ref.z)  # trusted-z shortcut is exact
    online = DyadicFlatOnline(L, params)
    online.extend(ts)
    assert online.finish().equals(ref)
    return flat, ref


class TestBatchEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(increasing_times(min_size=1, max_size=50, horizon=300.0), ALPHAS, BETAS)
    def test_random_traces(self, times, alpha, beta):
        _assert_same_forest(times, 100, DyadicParams(alpha=alpha, beta=beta))

    @settings(max_examples=40, deadline=None)
    @given(increasing_times_exact(min_size=1, max_size=40, horizon=200.0), ALPHAS)
    def test_exact_grid_costs_bit_identical(self, times, alpha):
        params = DyadicParams(alpha=alpha, beta=0.5)
        L = 64  # binary-exact L: every length expression stays exact
        flat, _ref = _assert_same_forest(times, L, params)
        assert dyadic_flat_cost(times, L, params) == dyadic_forest(
            times, L, params
        ).full_cost(L)
        # the public dyadic_cost entry point now routes through the flat path
        assert dyadic_cost(times, L, params) == dyadic_flat_cost(times, L, params)

    @pytest.mark.parametrize("alpha", [2.0, PHI])
    def test_arrivals_on_interval_edges(self, alpha):
        """Arrivals exactly at dyadic left edges and at the cutoff."""
        params = DyadicParams(alpha=alpha, beta=0.5)
        L = 64
        window = params.window(L)
        ts = {0.0, window}  # root and an arrival exactly at the cutoff
        for i in range(1, 18):
            ts.add(window / alpha**i)  # interval left edges
        _assert_same_forest(sorted(ts), L, params)

    @pytest.mark.parametrize("alpha", [2.0, PHI])
    def test_nested_edge_grid(self, alpha):
        """Edges of the *second-level* windows too (deep descents)."""
        params = DyadicParams(alpha=alpha, beta=0.5)
        L = 64
        window = params.window(L)
        ts = {0.0}
        for i in range(1, 8):
            child = window / alpha**i
            ts.add(child)
            hi = window / alpha ** (i - 1)
            for j in range(1, 6):
                ts.add(child + (hi - child) / alpha**j)
        _assert_same_forest(sorted(t for t in ts if t <= window), L, params)

    def test_multiple_roots(self):
        params = DyadicParams(beta=0.5)
        ts = [0.0, 10.0, 51.0, 70.0, 102.0]
        flat, _ = _assert_same_forest(ts, 100, params)
        assert flat.roots() == [0.0, 51.0, 102.0]

    def test_dense_cluster(self):
        ts = [i * 0.125 for i in range(400)]
        _assert_same_forest(ts, 100, DyadicParams(alpha=2.0, beta=0.5))


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dyadic_flat_forest([], 100)

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            dyadic_flat_forest([0.0, 0.0], 100)

    def test_nan_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            dyadic_flat_forest([0.0, float("nan"), 2.0], 100)

    def test_bad_L(self):
        with pytest.raises(ValueError):
            dyadic_flat_forest([0.0], 0)
        with pytest.raises(ValueError):
            DyadicFlatOnline(0)

    def test_resolution_limit_matches_oracle(self):
        ts = [0.0, 1e-14, 1.0]
        with pytest.raises(ValueError, match="resolution limit"):
            dyadic_forest(ts, 100)
        with pytest.raises(ValueError, match="resolution limit"):
            dyadic_flat_forest(ts, 100)


class TestFlatOnline:
    def test_paths_match_object_stack(self):
        rng = random.Random(5)
        params = DyadicParams(alpha=PHI, beta=0.5)
        obj = DyadicOnline(100, params)
        flat = DyadicFlatOnline(100, params)
        t = 0.0
        for _ in range(200):
            t += rng.choice([0.125, 0.5, 3.0, 60.0])
            node = obj.push(t)
            flat.push(t)
            want = tuple(n.arrival for n in node.path_from_root())
            assert flat.current_path() == want

    def test_monotonicity_enforced(self):
        online = DyadicFlatOnline(100)
        online.push(5.0)
        with pytest.raises(ValueError, match="strictly increasing"):
            online.push(5.0)

    def test_nan_push_rejected_without_advancing(self):
        online = DyadicFlatOnline(100)
        online.push(0.0)
        with pytest.raises(ValueError, match="finite"):
            online.push(float("nan"))
        assert online.push(1.0) == 1
        assert online.current_path() == (0.0, 1.0)

    def test_finish_empty(self):
        with pytest.raises(ValueError):
            DyadicFlatOnline(100).finish()

    def test_indices_are_arrival_order(self):
        online = DyadicFlatOnline(100)
        assert online.push(0.0) == 0
        assert online.push(10.0) == 1
        assert online.push(70.0) == 2  # new root
        assert len(online) == 3
        assert online.finish().num_trees() == 2

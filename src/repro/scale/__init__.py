"""repro.scale — out-of-core columnar storage + backend-selected kernels.

The 10^7-client tier (ROADMAP item 1) in two halves:

* :mod:`repro.scale.columnar` — a chunked, memory-mapped columnar
  arrival store (one float64 segment + offsets index) that workers
  attach once and read as zero-copy views, replacing shared-memory
  shipping for store-backed fleet runs;
* :mod:`repro.scale.kernels` — numba-JIT versions (optional dependency;
  numpy fallback auto-selected and contract-tested equal) of the three
  hot kernels that remained pure-numpy-bound: slot bucketing +
  flat-forest construction, the per-tree-level replay algebra, and the
  Knuth window scan.
"""

from .columnar import (
    ColumnarStore,
    ColumnarWriter,
    StoreError,
    StoreSlice,
    attach,
    detach,
    is_store,
    read_slice,
    store_slices,
    write_store,
)
from .kernels import (
    HAVE_NUMBA,
    active_backend,
    bucket_slots,
    configure_backend,
    forest_z,
    knuth_tables,
    replay_walk,
)

__all__ = [
    "ColumnarStore",
    "ColumnarWriter",
    "StoreError",
    "StoreSlice",
    "attach",
    "detach",
    "is_store",
    "read_slice",
    "store_slices",
    "write_store",
    "HAVE_NUMBA",
    "active_backend",
    "bucket_slots",
    "configure_backend",
    "forest_z",
    "knuth_tables",
    "replay_walk",
]

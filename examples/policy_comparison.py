#!/usr/bin/env python
"""Head-to-head policy comparison on one Poisson workload (Figs. 11-12 style).

Runs the full event-driven server under six policies on the same arrival
trace, verifies every run end-to-end, and prints the bandwidth hierarchy
plus per-policy operational characteristics (start-up delay experienced,
streams started, peak concurrent streams).

Run:  python examples/policy_comparison.py [mean_interarrival_slots]
"""

import sys

from repro.arrivals import poisson
from repro.baselines.dyadic import DyadicParams, paper_beta
from repro.core.fibonacci import PHI
from repro.simulation import (
    BatchedDyadicPolicy,
    DelayGuaranteedPolicy,
    ImmediateDyadicPolicy,
    OfflineOptimalPolicy,
    PureBatchingPolicy,
    Simulation,
    UnicastPolicy,
    verify_simulation,
)

L = 100                      # media = 100 slots; 1 slot = 1% of media = delay
HORIZON = 2_000.0            # 20 media lengths
LAM = float(sys.argv[1]) if len(sys.argv) > 1 else 0.8

trace = poisson(LAM, HORIZON, seed=42)
n_slots = int(HORIZON)
print(f"Workload: Poisson, mean inter-arrival {LAM} slots, "
      f"{len(trace)} clients over {HORIZON:.0f} slots (L = {L})\n")

# third field: verify with the continuous-interval checker (policies whose
# stream labels are real-valued arrival times rather than slot ends)
policies = [
    ("unicast", UnicastPolicy(L), True),
    ("pure batching", PureBatchingPolicy(L), False),
    ("delay guaranteed", DelayGuaranteedPolicy(L), False),
    ("immediate dyadic", ImmediateDyadicPolicy(L, DyadicParams(alpha=PHI, beta=0.5)), True),
    (
        "batched dyadic",
        BatchedDyadicPolicy(L, DyadicParams(alpha=PHI, beta=paper_beta(L, "poisson"))),
        False,
    ),
    ("offline optimal*", OfflineOptimalPolicy(L, n_slots), False),
]

print(f"{'policy':<18}{'movies served':>14}{'streams':>9}"
      f"{'peak ch.':>10}{'max delay':>11}")
rows = []
for name, policy, continuous in policies:
    res = Simulation(L, trace, policy).run()
    verify_simulation(res, continuous=continuous).raise_if_failed()
    m = res.metrics
    rows.append((name, m.streams_served))
    print(f"{name:<18}{m.streams_served:>14.2f}{m.streams_started:>9d}"
          f"{m.peak_concurrency():>10d}{res.max_startup_delay():>11.2f}")

print("\n* offline optimal assumes the delay-guaranteed every-slot model "
      "(a stream per slot), so at\n  low intensity it can trail the dyadic "
      "policies that skip empty slots — exactly the\n  regime distinction "
      "the paper's Figs. 11-12 illustrate.")

by_name = dict(rows)
assert by_name["unicast"] >= max(v for k, v in rows if k != "unicast"), (
    "unicast must be the most expensive policy"
)
print("\nAll six runs verified: measured bandwidth == analytic forest cost, "
      "every client's\nreceiving program complete, on time, and within two "
      "receive channels.")

"""Ablation bench: dyadic (alpha, beta) parameter sensitivity.

The paper (after [4]) runs the dyadic comparator with alpha = phi instead
of the original alpha = 2 and tunes beta per workload (0.5 Poisson,
F_h/L constant-rate).  The bench verifies both choices are sane: alpha=phi
within a few percent of alpha=2, and the paper's beta no worse than
naive alternatives on its intended workload.
"""

from __future__ import annotations

from repro.arrivals import constant_rate, poisson
from repro.baselines.dyadic import DyadicParams, dyadic_cost, paper_beta
from repro.core.fibonacci import PHI

L = 100
HORIZON = 3000.0


def test_alpha_phi_vs_two(benchmark):
    def run():
        out = {}
        for seed in (0, 1, 2):
            trace = list(poisson(0.5, HORIZON, seed=seed))
            for alpha in (PHI, 2.0):
                params = DyadicParams(alpha=alpha, beta=0.5)
                out.setdefault(alpha, 0.0)
                out[alpha] += dyadic_cost(trace, L, params)
        return out

    totals = benchmark(run)
    ratio = totals[PHI] / totals[2.0]
    assert 0.9 < ratio < 1.1, f"alpha=phi should be competitive, ratio={ratio}"


def test_paper_beta_constant_rate(benchmark):
    """beta = F_h/L should beat clearly-off betas on constant arrivals."""

    def run():
        trace = list(constant_rate(0.5, HORIZON))
        beta_star = paper_beta(L, "constant")
        costs = {}
        for beta in (0.15, beta_star, 0.95):
            costs[beta] = dyadic_cost(trace, L, DyadicParams(alpha=PHI, beta=beta))
        return beta_star, costs

    beta_star, costs = benchmark(run)
    assert costs[beta_star] <= costs[0.15]
    assert costs[beta_star] <= costs[0.95] * 1.05

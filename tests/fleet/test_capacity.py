"""Tests for delay-bandwidth capacity planning."""

from __future__ import annotations

import pytest

from repro.fleet import (
    admission_report,
    capacity_frontier,
    default_delay_grid,
    dg_fleet_peak,
    min_fleet_delay,
    min_object_delay,
    render_frontier,
)
from repro.multiplex import Catalog, min_delay_for_budget

HORIZON = 240.0
GRID = default_delay_grid(lo=0.5, hi=16.0, points=10)


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(10, duration_minutes=60.0)


class TestMinFleetDelay:
    def test_bisect_matches_linear_oracle(self, catalog):
        """The O(log) bisection returns what the multiplex linear scan does."""
        for budget in (3, 10, 30, 80, 200):
            mine = min_fleet_delay(catalog, HORIZON, budget, GRID)
            oracle = min_delay_for_budget(catalog, HORIZON, budget, GRID)
            assert mine == oracle, (budget, mine, oracle)

    def test_peak_is_nonincreasing_in_delay(self, catalog):
        peaks = [dg_fleet_peak(catalog, d, HORIZON) for d in GRID]
        assert all(a >= b for a, b in zip(peaks, peaks[1:]))

    def test_answer_is_verified_feasible(self, catalog):
        budget = 40
        d = min_fleet_delay(catalog, HORIZON, budget, GRID)
        assert d is not None
        assert dg_fleet_peak(catalog, d, HORIZON) <= budget

    def test_infeasible_budget_returns_none(self, catalog):
        assert min_fleet_delay(catalog, HORIZON, 1, GRID) is None

    def test_rejects_zero_budget(self, catalog):
        with pytest.raises(ValueError):
            min_fleet_delay(catalog, HORIZON, 0, GRID)


class TestMinObjectDelay:
    def test_object_needs_less_than_fleet(self, catalog):
        obj = catalog[0]
        budget = 12
        d_obj = min_object_delay(obj, HORIZON, budget, GRID)
        d_fleet = min_fleet_delay(catalog, HORIZON, budget, GRID)
        assert d_obj is not None
        assert d_fleet is None or d_obj <= d_fleet

    def test_tighter_budget_needs_larger_delay(self, catalog):
        obj = catalog[0]
        loose = min_object_delay(obj, HORIZON, 50, GRID)
        tight = min_object_delay(obj, HORIZON, 5, GRID)
        assert loose is not None and tight is not None
        assert tight >= loose

    def test_rejects_non_positive_horizon(self, catalog):
        with pytest.raises(ValueError, match="horizon"):
            min_object_delay(catalog[0], 0.0, 5, GRID)
        with pytest.raises(ValueError, match="horizon"):
            min_object_delay(catalog[0], -1.0, 5, GRID)


class TestFrontier:
    def test_frontier_delay_decreases_with_budget(self, catalog):
        points = capacity_frontier(catalog, HORIZON, [5, 20, 60, 150], GRID)
        assert [p.budget_channels for p in points] == [5, 20, 60, 150]
        feasible = [p for p in points if p.feasible]
        assert feasible, "no feasible point on a generous grid"
        delays = [p.delay_minutes for p in feasible]
        assert all(a >= b for a, b in zip(delays, delays[1:]))
        for p in feasible:
            assert p.peak_channels <= p.budget_channels

    def test_frontier_points_match_direct_search(self, catalog):
        budgets = [10, 40, 120]
        points = {
            p.budget_channels: p
            for p in capacity_frontier(catalog, HORIZON, budgets, GRID)
        }
        for b in budgets:
            assert points[b].delay_minutes == min_fleet_delay(
                catalog, HORIZON, b, GRID
            )

    def test_render(self, catalog):
        text = render_frontier(
            capacity_frontier(catalog, HORIZON, [1, 60], GRID)
        )
        assert "capacity frontier" in text and "infeasible" in text


class TestAdmission:
    def test_feasible_budget_admits_everything(self, catalog):
        report = admission_report(catalog, HORIZON, 500, GRID)
        assert report.feasible
        assert not report.dropped
        assert report.served_weight_fraction == pytest.approx(1.0)
        assert report.peak_channels <= 500
        assert "feasible" in report.render()

    def test_starved_budget_sheds_least_popular_first(self, catalog):
        report = admission_report(catalog, HORIZON, 4, GRID)
        assert not report.feasible
        assert report.delay_minutes == max(GRID)
        assert report.dropped, "expected load shedding"
        # least popular (highest rank index) go first
        names = [o.name for o in catalog.popularity_rank()]
        expected_drop_order = list(reversed(names))[: len(report.dropped)]
        assert list(report.dropped) == expected_drop_order
        assert 0.0 < report.served_weight_fraction < 1.0
        assert set(report.admitted) | set(report.dropped) == set(names)
        assert "shedding" in report.render()


class TestEnvelopeMemo:
    """The DG envelope memo: fewer forest builds, identical answers."""

    def test_frontier_probes_hit_the_envelope_cache(self, catalog):
        from repro.fleet.capacity import dg_envelope

        dg_envelope.cache_clear()
        points = capacity_frontier(catalog, HORIZON, [5, 20, 60, 150], GRID)
        info = dg_envelope.cache_info()
        # every probed delay maps each object to an (L, n_slots) pair;
        # misses are bounded by the distinct pairs, and the repeated
        # probes across budgets/objects must all be hits.
        distinct = {
            (obj.units(d), max(1, int(-(-HORIZON // d))))
            for obj in catalog
            for d in GRID
        }
        assert info.misses <= len(distinct)
        assert info.hits > info.misses, info
        assert [p.budget_channels for p in points] == [5, 20, 60, 150]

    def test_memoised_frontier_equals_unmemoised_oracle(self, catalog):
        """Every frontier delay equals the multiplex linear scan, which
        rebuilds its envelopes from scratch (no memo on that path)."""
        for budget in (5, 20, 60, 150):
            assert min_fleet_delay(catalog, HORIZON, budget, GRID) == (
                min_delay_for_budget(catalog, HORIZON, budget, GRID)
            )

    def test_envelope_matches_object_load(self, catalog):
        import numpy as np

        from repro.fleet.capacity import dg_envelope
        from repro.multiplex.server import dg_object_load

        obj = catalog[0]
        delay = GRID[3]
        L = obj.units(delay)
        n_slots = max(1, int(np.ceil(HORIZON / delay)))
        labels, starts, ends = dg_envelope(L, n_slots)
        oracle = dg_object_load(obj, delay, HORIZON)
        assert np.array_equal(labels * delay, oracle.labels)
        assert np.array_equal(starts * delay, oracle.starts)
        assert np.array_equal(ends * delay, oracle.ends)

    def test_cached_arrays_are_read_only(self):
        from repro.fleet.capacity import dg_envelope

        labels, starts, ends = dg_envelope(15, 40)
        for arr in (labels, starts, ends):
            with pytest.raises(ValueError):
                arr[0] = -1.0


class TestGrid:
    def test_default_grid_shape(self):
        grid = default_delay_grid(0.25, 32.0, 22)
        assert len(grid) == 22
        assert grid[0] == pytest.approx(0.25) and grid[-1] == pytest.approx(32.0)
        assert all(a < b for a, b in zip(grid, grid[1:]))

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            default_delay_grid(4.0, 2.0)

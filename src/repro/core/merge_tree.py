"""Merge trees and merge forests (Section 2 of the paper).

A *merge tree* is an ordered labelled tree whose node labels are arrival
times.  The root is the earliest arrival; a non-root node labelled ``i`` has
a parent labelled ``j < i``, and siblings are ordered by label.  A tree has
the *preorder traversal property* when a preorder walk yields the arrival
times in sorted order; every optimal merge tree has this property
(imported from [6]) and every tree this module constructs maintains it.

Node stream lengths (the bandwidth the server spends on the stream started
at that node):

* receive-two model (Lemma 1):  ``l(x) = 2 z(x) - x - p(x)`` for non-roots,
  where ``z(x)`` is the last arrival in the subtree of ``x``;
* receive-all model (Lemma 17): ``w(x) = z(x) - p(x)``.

Roots always carry a full stream of length ``L``.  ``Mcost`` sums non-root
lengths over a tree; ``Fcost`` of a forest is ``s*L`` plus the trees' merge
costs.  Arrival labels may be arbitrary reals (the general-arrivals case of
[6]); the delay-guaranteed case uses consecutive integers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "MergeNode",
    "MergeTree",
    "MergeForest",
    "tree_from_parent_map",
    "chain_tree",
    "star_tree",
]


@dataclass
class MergeNode:
    """One node of a merge tree: an arrival time and its ordered children."""

    arrival: float
    children: List["MergeNode"] = field(default_factory=list)
    parent: Optional["MergeNode"] = None

    def add_child(self, child: "MergeNode") -> None:
        """Attach ``child`` as the new last child (must be a later arrival)."""
        if child.arrival <= self.arrival:
            raise ValueError(
                f"child arrival {child.arrival} must exceed parent "
                f"arrival {self.arrival}"
            )
        if self.children and child.arrival <= self.children[-1].arrival:
            raise ValueError(
                f"children must be attached in increasing arrival order: "
                f"{child.arrival} after {self.children[-1].arrival}"
            )
        child.parent = self
        self.children.append(child)

    def is_leaf(self) -> bool:
        return not self.children

    def preorder(self) -> Iterator["MergeNode"]:
        """Yield this node then all descendants in preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def last_descendant(self) -> "MergeNode":
        """Return ``z(x)``: the node of the latest arrival in the subtree.

        With the preorder property this is simply the right-most path's end.
        """
        node = self
        while node.children:
            node = node.children[-1]
        return node

    def depth(self) -> int:
        """Number of edges from this node up to its tree's root."""
        d = 0
        node = self
        while node.parent is not None:
            node = node.parent
            d += 1
        return d

    def path_from_root(self) -> List["MergeNode"]:
        """Return ``[x_0, x_1, ..., x_k]`` with ``x_0`` the root, ``x_k`` self."""
        path = []
        node: Optional[MergeNode] = self
        while node is not None:
            path.append(node)
            node = node.parent
        path.reverse()
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergeNode({self.arrival!r}, children={len(self.children)})"


class MergeTree:
    """A merge tree over a set of arrivals, rooted at the earliest one.

    The class maintains an arrival -> node index and checks the merge-tree
    ordering constraints on construction.  It does *not* require the preorder
    traversal property (arbitrary feasible trees are representable so the DP
    and enumeration code can explore them), but exposes a check for it.
    """

    def __init__(self, root: MergeNode):
        self.root = root
        self._index: Dict[float, MergeNode] = {}
        for node in root.preorder():
            if node.arrival in self._index:
                raise ValueError(f"duplicate arrival label {node.arrival}")
            self._index[node.arrival] = node
        self._validate_ordering()

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def single(arrival: float) -> "MergeTree":
        """A one-node tree (a stream with no merges hanging off it)."""
        return MergeTree(MergeNode(arrival))

    def _validate_ordering(self) -> None:
        for node in self.root.preorder():
            for a, b in zip(node.children, node.children[1:]):
                if a.arrival >= b.arrival:
                    raise ValueError(
                        f"siblings out of order under {node.arrival}: "
                        f"{a.arrival} >= {b.arrival}"
                    )
            for child in node.children:
                if child.arrival <= node.arrival:
                    raise ValueError(
                        f"child {child.arrival} not after parent {node.arrival}"
                    )

    # -- basic queries ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, arrival: float) -> bool:
        return arrival in self._index

    def node(self, arrival: float) -> MergeNode:
        return self._index[arrival]

    def arrivals(self) -> List[float]:
        """All arrival labels in sorted order."""
        return sorted(self._index)

    def preorder_arrivals(self) -> List[float]:
        return [node.arrival for node in self.root.preorder()]

    def has_preorder_property(self) -> bool:
        """True iff a preorder walk yields arrivals in increasing order."""
        walk = self.preorder_arrivals()
        return all(a < b for a, b in zip(walk, walk[1:]))

    def last_arrival(self) -> float:
        """``z`` of the whole tree: the latest arrival."""
        return max(self._index)

    def span(self) -> float:
        """``z - r``: time between first and last arrival in the tree."""
        return self.last_arrival() - self.root.arrival

    # -- stream lengths and costs ----------------------------------------------

    def z(self, arrival: float) -> float:
        """Latest arrival in the subtree rooted at ``arrival``."""
        return self.node(arrival).last_descendant().arrival

    def length(self, arrival: float) -> float:
        """Receive-two stream length ``l(x) = 2 z(x) - x - p(x)`` (Lemma 1).

        Only defined for non-root nodes; the root's stream is a full stream
        whose length ``L`` is a property of the media, not of the tree.
        """
        node = self.node(arrival)
        if node.parent is None:
            raise ValueError("root stream length is L (full stream), not l(x)")
        return 2 * node.last_descendant().arrival - node.arrival - node.parent.arrival

    def length_receive_all(self, arrival: float) -> float:
        """Receive-all stream length ``w(x) = z(x) - p(x)`` (Lemma 17)."""
        node = self.node(arrival)
        if node.parent is None:
            raise ValueError("root stream length is L (full stream), not w(x)")
        return node.last_descendant().arrival - node.parent.arrival

    def merge_cost(self) -> float:
        """``Mcost(T)``: sum of receive-two lengths over non-root nodes."""
        total = 0.0
        for node in self.root.preorder():
            if node.parent is not None:
                total += (
                    2 * node.last_descendant().arrival
                    - node.arrival
                    - node.parent.arrival
                )
        return _as_int_if_exact(total)

    def merge_cost_receive_all(self) -> float:
        """``Mcost_w(T)``: sum of receive-all lengths over non-root nodes."""
        total = 0.0
        for node in self.root.preorder():
            if node.parent is not None:
                total += node.last_descendant().arrival - node.parent.arrival
        return _as_int_if_exact(total)

    # -- structure (Lemma 2 / Fig. 5) -------------------------------------------

    def last_root_child(self) -> Optional[MergeNode]:
        """The last stream to merge directly with the root, or None."""
        if not self.root.children:
            return None
        return self.root.children[-1]

    def split_last_root_child(self) -> Tuple["MergeTree", "MergeTree"]:
        """Split per Lemma 2: ``T'`` (arrivals before x, incl. root) and ``T''``.

        ``x`` is the last child of the root; ``T''`` is the subtree rooted at
        ``x`` and ``T'`` is the rest.  The originals are deep-copied so the
        input tree is left untouched.
        """
        x = self.last_root_child()
        if x is None:
            raise ValueError("tree has a bare root; nothing to split")
        t_double = MergeTree(_copy_subtree(x))
        prime_root = _copy_subtree(self.root, skip=x)
        t_prime = MergeTree(prime_root)
        return t_prime, t_double

    def attach(self, other: "MergeTree") -> "MergeTree":
        """Return a new tree with ``other``'s root as a new last root child.

        This is the inverse of :meth:`split_last_root_child` and the step the
        O(n) constructor of Theorem 7 uses.
        """
        merged_root = _copy_subtree(self.root)
        new_child = _copy_subtree(other.root)
        merged_root.children.append(new_child)
        new_child.parent = merged_root
        return MergeTree(merged_root)

    # -- misc --------------------------------------------------------------------

    def to_flat(self):
        """This tree as a one-tree :class:`~repro.fastpath.FlatForest`."""
        from ..fastpath.flat_forest import FlatForest

        return FlatForest.from_tree(self)

    def parent_map(self) -> Dict[float, Optional[float]]:
        """Map arrival -> parent arrival (root maps to None)."""
        return {
            node.arrival: (node.parent.arrival if node.parent else None)
            for node in self.root.preorder()
        }

    def canonical(self) -> Tuple:
        """A hashable structural fingerprint (nested tuples of labels)."""

        def rec(node: MergeNode) -> Tuple:
            return (node.arrival, tuple(rec(c) for c in node.children))

        return rec(self.root)

    def render(self, unit: str = "") -> str:
        """ASCII rendering of the tree (labels, one node per line)."""
        lines: List[str] = []

        def rec(node: MergeNode, prefix: str, is_last: bool) -> None:
            connector = "" if node.parent is None else ("`-- " if is_last else "|-- ")
            lines.append(f"{prefix}{connector}{node.arrival}{unit}")
            child_prefix = prefix + (
                "" if node.parent is None else ("    " if is_last else "|   ")
            )
            for i, child in enumerate(node.children):
                rec(child, child_prefix, i == len(node.children) - 1)

        rec(self.root, "", True)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergeTree(root={self.root.arrival}, n={len(self)})"


def _copy_subtree(node: MergeNode, skip: Optional[MergeNode] = None) -> MergeNode:
    copy = MergeNode(node.arrival)
    for child in node.children:
        if child is skip:
            continue
        child_copy = _copy_subtree(child, skip=skip)
        child_copy.parent = copy
        copy.children.append(child_copy)
    return copy


class MergeForest:
    """An ordered sequence of merge trees covering an arrival sequence.

    All arrivals in one tree must precede all arrivals in the next tree,
    which the constructor enforces.  ``Fcost`` (Section 2) charges each root
    a full stream of length ``L`` plus each tree's merge cost.
    """

    def __init__(self, trees: Sequence[MergeTree]):
        if not trees:
            raise ValueError("a merge forest needs at least one tree")
        self.trees: List[MergeTree] = list(trees)
        for a, b in zip(self.trees, self.trees[1:]):
            if a.last_arrival() >= b.root.arrival:
                raise ValueError(
                    f"tree boundaries overlap: {a.last_arrival()} >= "
                    f"{b.root.arrival}"
                )

    def __len__(self) -> int:
        return len(self.trees)

    def __iter__(self) -> Iterator[MergeTree]:
        return iter(self.trees)

    def num_arrivals(self) -> int:
        return sum(len(t) for t in self.trees)

    def arrivals(self) -> List[float]:
        out: List[float] = []
        for tree in self.trees:
            out.extend(tree.arrivals())
        return out

    def roots(self) -> List[float]:
        return [t.root.arrival for t in self.trees]

    def merge_cost(self) -> float:
        return _as_int_if_exact(sum(t.merge_cost() for t in self.trees))

    def merge_cost_receive_all(self) -> float:
        return _as_int_if_exact(
            sum(t.merge_cost_receive_all() for t in self.trees)
        )

    def full_cost(self, L: float) -> float:
        """``Fcost(F) = s*L + sum Mcost(T_i)`` in the receive-two model."""
        self.validate_for_length(L)
        return _as_int_if_exact(len(self.trees) * L + self.merge_cost())

    def full_cost_receive_all(self, L: float) -> float:
        """``Fcost_w(F)`` in the receive-all model."""
        self.validate_for_length(L, receive_all=True)
        return _as_int_if_exact(
            len(self.trees) * L + self.merge_cost_receive_all()
        )

    def validate_for_length(self, L: float, receive_all: bool = False) -> None:
        """Check every tree fits a full stream of ``L`` units.

        Receive-two requires ``z - r <= L - 1`` (Section 2: otherwise the
        clients at ``z`` cannot finish receiving from the root).  Receive-all
        only requires that arrival ``z`` happens while the root stream is
        still running, i.e. ``z - r <= L - 1`` as well (a client as far as
        ``L - 1`` from the root can still catch part ``L``).
        """
        del receive_all  # same bound in both models; kept for call-site clarity
        for tree in self.trees:
            if tree.span() > L - 1:
                raise ValueError(
                    f"tree rooted at {tree.root.arrival} spans "
                    f"{tree.span()} > L-1 = {L - 1}; the last arrival "
                    "cannot merge in time"
                )

    def find(self, arrival: float) -> Tuple[MergeTree, MergeNode]:
        """Locate the tree and node serving a given arrival."""
        for tree in self.trees:
            if arrival in tree:
                return tree, tree.node(arrival)
        raise KeyError(f"arrival {arrival} not in forest")

    def stream_lengths(self, L: float) -> Dict[float, float]:
        """Map every arrival to the length of the stream it initiates."""
        out: Dict[float, float] = {}
        for tree in self.trees:
            for node in tree.root.preorder():
                if node.parent is None:
                    out[node.arrival] = L
                else:
                    out[node.arrival] = (
                        2 * node.last_descendant().arrival
                        - node.arrival
                        - node.parent.arrival
                    )
        return out

    def to_flat(self):
        """This forest as a :class:`~repro.fastpath.FlatForest`.

        The flat form answers every cost/length/interval query with
        vectorised numpy expressions; round-tripping back through
        ``FlatForest.to_forest()`` is lossless.
        """
        from ..fastpath.flat_forest import FlatForest

        return FlatForest.from_forest(self)

    def render(self) -> str:
        return "\n".join(t.render() for t in self.trees)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergeForest(trees={len(self.trees)}, n={self.num_arrivals()})"


def _as_int_if_exact(x: float) -> float:
    """Collapse floats like 21.0 to int 21 for exact integer arithmetic."""
    if isinstance(x, int):
        return x
    if isinstance(x, float) and x.is_integer():
        return int(x)
    return x


def tree_from_parent_map(
    parents: Dict[float, Optional[float]],
) -> MergeTree:
    """Build a MergeTree from an ``arrival -> parent arrival`` mapping.

    Exactly one arrival must map to ``None`` (the root).  Children are
    attached in increasing arrival order, so the result is a well-formed
    ordered tree.
    """
    roots = [a for a, p in parents.items() if p is None]
    if len(roots) != 1:
        raise ValueError(f"need exactly one root, got {roots}")
    nodes = {a: MergeNode(a) for a in parents}
    for arrival in sorted(parents):
        parent = parents[arrival]
        if parent is None:
            continue
        if parent not in nodes:
            raise ValueError(f"parent {parent} of {arrival} not an arrival")
        nodes[parent].add_child(nodes[arrival])
    return MergeTree(nodes[roots[0]])


def chain_tree(arrivals: Sequence[float]) -> MergeTree:
    """Each arrival merges to the immediately preceding one (a path)."""
    ordered = sorted(arrivals)
    if not ordered:
        raise ValueError("chain_tree needs at least one arrival")
    root = MergeNode(ordered[0])
    node = root
    for arrival in ordered[1:]:
        child = MergeNode(arrival)
        node.add_child(child)
        node = child
    return MergeTree(root)


def star_tree(arrivals: Sequence[float]) -> MergeTree:
    """Every later arrival merges directly to the first (a star)."""
    ordered = sorted(arrivals)
    if not ordered:
        raise ValueError("star_tree needs at least one arrival")
    root = MergeNode(ordered[0])
    for arrival in ordered[1:]:
        root.add_child(MergeNode(arrival))
    return MergeTree(root)

"""Sharded catalog runner: one batched kernel run per media object.

The fleet question the paper's Section 5 poses — how many channels does a
*catalog* need for a given delay guarantee — multiplies one-trace
simulation by the catalog size.  This module fans a multi-object workload
across worker processes (one :func:`~repro.fleet.engine.simulate_batched`
run per object, each in slot units of its own delay) and aggregates the
flat interval arrays into fleet-wide peak and profile.

Memory contract: workers return only per-object *summaries* plus the
stream interval arrays (O(streams), not O(requests)); per-client arrays
never leave the worker, and results are folded into the report as they
stream back — a 10^6-request catalog holds at most one object's client
arrays in memory at a time (per worker).

Workloads come in two forms:

* an explicit per-object trace mapping (minutes), e.g. from
  :func:`repro.multiplex.split_requests` or the scenario library;
* generated in-worker: each object draws its own Poisson trace with rate
  ``global_rate * weight`` (the thinning property makes this the same
  process as splitting one global stream) from a per-object seed spawned
  off the base seed — the parent never materialises the global trace.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..arrivals.generators import poisson
from ..arrivals.traces import ArrivalTrace
from ..multiplex.catalog import Catalog, MediaObject
from ..scale import columnar
from ..scale.columnar import StoreSlice
from ..simulation.channels import interval_profile, peak_concurrency
from .engine import BatchedResult, FleetPolicy, simulate_batched

__all__ = [
    "FleetObjectResult",
    "FleetReport",
    "install_task_fault_hook",
    "iter_fleet",
    "object_run",
    "pool_map",
    "run_fleet",
    "sanitize_times",
    "shared_workload",
    "stored_workload",
    "fleet_profile",
]

_EMPTY = np.empty(0, dtype=np.float64)

#: burn-in fault injection point (see :mod:`repro.burnin.faults`): when
#: installed, the hook is shipped with every ``pool_map`` task and invoked
#: as ``hook(index, arg)`` in the executing process (worker or parent)
#: before the task body runs.  None in production.
_TASK_FAULT_HOOK: Optional[Callable] = None


def install_task_fault_hook(hook: Optional[Callable]) -> Optional[Callable]:
    """Install (``None``: clear) the pool-task fault hook; returns the
    previous hook so callers can restore it.  The hook must be picklable
    (it travels to worker processes with each task)."""
    global _TASK_FAULT_HOOK
    previous = _TASK_FAULT_HOOK
    _TASK_FAULT_HOOK = hook
    return previous


def _invoke_hooked(payload) -> object:
    """Pooled task wrapper when a fault hook is installed (picklable)."""
    fn, hook, index, arg = payload
    hook(index, arg)
    return fn(arg)


def pool_map(
    fn: Callable,
    args: Sequence,
    workers: int = 0,
    chunksize: int = 4,
) -> Iterator:
    """Map ``fn`` over ``args``, optionally sharded across processes.

    The shared fan-out/fold primitive of the fleet and sweep tiers:
    ``workers <= 1`` runs in-process (deterministic, zero pool overhead);
    larger values use a :class:`ProcessPoolExecutor`.  Results are always
    yielded **in argument order** regardless of completion order, so any
    fold over them is independent of the worker count.  ``fn`` and every
    argument must be picklable (module-level functions only).

    Worker-crash resilience: a task whose worker process dies mid-flight
    (hard ``os._exit``, OOM kill, segfault in native code) surfaces as
    :class:`BrokenProcessPool`.  Instead of propagating and losing the
    fold, the task at the fold frontier is retried **in-process** and the
    pool is rebuilt for the remainder; every crash advances the frontier
    by at least one task, so a pathological workload degrades to the
    deterministic serial path rather than failing.  Tasks must therefore
    be pure/idempotent — which the in-order fold contract already
    demands.  Ordinary exceptions raised *by* a task are not retried;
    they propagate to the caller as before.
    """
    args = list(args)
    hook = _TASK_FAULT_HOOK
    if not (workers and workers > 1):
        for index, a in enumerate(args):
            if hook is not None:
                hook(index, a)
            yield fn(a)
        return
    done = 0
    while done < len(args):
        if hook is None:
            payloads: Sequence = args[done:]
            task_fn = fn
        else:
            payloads = [
                (fn, hook, i, a)
                for i, a in enumerate(args[done:], start=done)
            ]
            task_fn = _invoke_hooked
        try:
            with ProcessPoolExecutor(max_workers=workers) as pool:
                for result in pool.map(task_fn, payloads, chunksize=chunksize):
                    yield result
                    done += 1
            return
        except BrokenProcessPool:
            # The task at the frontier (or a chunk-mate that shared its
            # worker) took the process down.  Re-run it in-process —
            # results already yielded are untouched; chunk-mates re-run
            # in the fresh pool below.
            arg = args[done]
            if hook is not None:
                hook(done, arg)
            yield fn(arg)
            done += 1


@dataclass(frozen=True)
class FleetObjectResult:
    """One object's run, reduced to what fleet aggregation needs.

    ``starts``/``ends`` are the stream occupancy intervals in *minutes*
    on the common catalog timeline (the per-object slot is the delay).
    """

    name: str
    L: int
    delay_minutes: float
    clients: int
    streams: int
    roots: int
    total_units_minutes: float
    max_startup_delay_minutes: float
    starts: np.ndarray
    ends: np.ndarray
    #: malformed workload entries repaired away by :func:`sanitize_times`
    #: (non-finite, out-of-window, duplicate); 0 on a clean trace.
    repaired: int = 0

    @property
    def peak(self) -> int:
        return peak_concurrency(self.starts, self.ends)


@dataclass
class FleetReport:
    """Catalog-wide aggregation of batched runs."""

    policy: str
    delay_minutes: float
    horizon_minutes: float
    objects: List[FleetObjectResult] = field(default_factory=list)

    def _stacked(self) -> Tuple[np.ndarray, np.ndarray]:
        if not self.objects:
            return _EMPTY, _EMPTY
        starts = np.concatenate([o.starts for o in self.objects])
        ends = np.concatenate([o.ends for o in self.objects])
        return starts, ends

    @property
    def peak_channels(self) -> int:
        """Exact fleet-wide peak of simultaneously live streams."""
        starts, ends = self._stacked()
        return peak_concurrency(starts, ends)

    @property
    def total_units_minutes(self) -> float:
        return float(sum(o.total_units_minutes for o in self.objects))

    @property
    def clients(self) -> int:
        return sum(o.clients for o in self.objects)

    @property
    def streams(self) -> int:
        return sum(o.streams for o in self.objects)

    @property
    def repaired(self) -> int:
        """Total malformed workload entries repaired across the catalog."""
        return sum(o.repaired for o in self.objects)

    def max_startup_delay_minutes(self) -> float:
        return max(
            (o.max_startup_delay_minutes for o in self.objects), default=0.0
        )

    def profile(
        self, t0: float = 0.0, t1: Optional[float] = None, resolution: float = 1.0
    ) -> np.ndarray:
        starts, ends = self._stacked()
        return fleet_profile(
            starts,
            ends,
            t0,
            self.horizon_minutes if t1 is None else t1,
            resolution,
        )

    def busiest_objects(self, k: int = 5) -> List[FleetObjectResult]:
        return sorted(self.objects, key=lambda o: -o.total_units_minutes)[:k]

    def render(self, top: int = 5) -> str:
        lines = [
            f"fleet report — policy={self.policy}  delay={self.delay_minutes:g} min"
            f"  horizon={self.horizon_minutes:g} min",
            f"  objects={len(self.objects)}  clients={self.clients}"
            f"  streams={self.streams}",
            f"  peak channels={self.peak_channels}"
            f"  total bandwidth={self.total_units_minutes:,.0f} stream-minutes",
            f"  max start-up delay={self.max_startup_delay_minutes():g} min",
            f"  busiest {top}:",
        ]
        for o in self.busiest_objects(top):
            lines.append(
                f"    {o.name:12s} clients={o.clients:>7d} streams={o.streams:>6d} "
                f"peak={o.peak:>4d} units={o.total_units_minutes:>12,.0f} min"
            )
        return "\n".join(lines)


def fleet_profile(
    starts: np.ndarray,
    ends: np.ndarray,
    t0: float,
    t1: float,
    resolution: float,
) -> np.ndarray:
    """Per-bin live-stream counts on ``[t0, t1)`` (bin-occupancy rule).

    Same semantics as :func:`repro.multiplex.aggregate_profile` — both
    delegate to the shared kernel
    :func:`repro.simulation.channels.interval_profile` — but takes
    stacked interval arrays directly so incremental accumulators need no
    ``ObjectLoad`` objects.
    """
    return interval_profile(starts, ends, t0, t1, resolution)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _ShmSlice(NamedTuple):
    """A view into a shared-memory float64 array: ``segment[start:stop]``.

    When an explicit workload mapping is sharded across processes, the
    parent concatenates every object's arrival times into **one**
    :class:`multiprocessing.shared_memory.SharedMemory` segment and ships
    each worker only this (name, start, stop) triple — the per-object
    trace lists are never pickled.
    """

    name: str
    start: int
    stop: int


def _read_shm_slice(view: _ShmSlice) -> np.ndarray:
    """Copy one object's times out of the shared segment (worker side).

    Attaching re-registers the name with the resource tracker; with the
    fork start method the tracker (and its name *set*) is shared with the
    parent, so the duplicate collapses and the parent's single ``unlink``
    is the only cleanup — no per-worker unregister (racy: concurrent
    unregisters of one name KeyError inside the tracker process).
    """
    shm = shared_memory.SharedMemory(name=view.name)
    try:
        flat = np.frombuffer(
            shm.buf, dtype=np.float64, count=view.stop - view.start,
            offset=view.start * 8,
        )
        times = flat.copy()
        del flat  # release the exported buffer so close() cannot raise
    finally:
        shm.close()
    return times


WorkloadValue = Union[ArrivalTrace, np.ndarray, Sequence[float]]


def _times_of(trace: WorkloadValue) -> np.ndarray:
    """Times array of a workload value — :class:`ArrivalTrace` or a raw
    array-like (the operational ingest path; repaired by
    :func:`sanitize_times` before simulation)."""
    times = getattr(trace, "times", trace)
    return np.asarray(times, dtype=np.float64)


def sanitize_times(
    times: np.ndarray, horizon: float
) -> Tuple[np.ndarray, int]:
    """``(clean, repaired)`` — arrival times coerced onto the trace contract.

    The fleet ingests workloads from outside the library (deserialised
    traces, operator feeds); a malformed feed must degrade to the valid
    arrival multiset it contains, not crash the fold.  Non-finite and
    out-of-window entries are dropped, ordering is restored, and exact
    duplicates collapse — so a corruption that only *adds* garbage to or
    reorders a valid trace recovers the fault-free run exactly
    (``tests/burnin/test_faults.py`` asserts that equivalence).
    ``repaired`` counts the entries that had to go; 0 on any trace that
    already satisfies the contract.
    """
    ts = np.asarray(times, dtype=np.float64)
    ok = np.isfinite(ts)
    # & instead of chained comparisons: NaN must not reach the range test
    ok &= (ts >= 0.0) & (ts < horizon)
    clean = np.unique(ts[ok])  # sorts and collapses exact duplicates
    return clean, int(ts.size - clean.size)


def _share_workload(
    catalog: Catalog, workload: Dict[str, WorkloadValue]
) -> Tuple[Optional[shared_memory.SharedMemory], Dict[str, _ShmSlice]]:
    """Concatenate all traces into one shared segment; map name -> slice.

    Returns ``(None, {})`` when the workload holds no arrivals at all
    (zero-byte segments are invalid, and there is nothing to ship).
    """
    arrays = {
        obj.name: _times_of(workload[obj.name])
        for obj in catalog
        if obj.name in workload
    }
    total = sum(a.size for a in arrays.values())
    if total == 0:
        return None, {}
    segment = shared_memory.SharedMemory(create=True, size=total * 8)
    flat = np.frombuffer(segment.buf, dtype=np.float64, count=total)
    views: Dict[str, _ShmSlice] = {}
    offset = 0
    for obj in catalog:
        times = arrays.get(obj.name)
        if times is None:
            continue
        stop = offset + times.size
        flat[offset:stop] = times
        views[obj.name] = _ShmSlice(segment.name, offset, stop)
        offset = stop
    del flat
    return segment, views


@contextlib.contextmanager
def stored_workload(
    catalog: Catalog,
    workload: Dict[str, WorkloadValue],
    root=None,
    chunk_size: int = columnar.DEFAULT_CHUNK,
) -> Iterator[Dict[str, StoreSlice]]:
    """Context-managed columnar-store shipping of an explicit workload.

    The out-of-core successor to :func:`shared_workload`: the parent
    spools each object's times into a :mod:`repro.scale.columnar` store
    under a fresh private directory (inside ``root``, or the system temp
    dir) and yields per-object :class:`StoreSlice` addresses; workers
    attach the segment once and map their column zero-copy.  Unlike
    shared memory, this works under any start method — workers open the
    store by path — and the data never transits pickles or ``/dev/shm``.

    Cleanup mirrors the PR 6 shm unlink guarantees: the store directory
    is removed on **every** exit path — a worker crash mid-attach, an
    exception in the fold, generator abandonment — and worker-held mmaps
    keep reading the unlinked inode harmlessly until the process exits
    (``tests/fleet/test_store_faults.py`` kills workers at every fold
    index and asserts the directory is gone).
    """
    if root is not None:
        root = os.fspath(root)
        os.makedirs(root, exist_ok=True)
    base = tempfile.mkdtemp(prefix="repro-store-", dir=root)
    try:
        with columnar.ColumnarWriter(base, chunk_size=chunk_size) as writer:
            for obj in catalog:
                if obj.name in workload:
                    writer.add(obj.name, _times_of(workload[obj.name]))
        yield writer.slices()
    finally:
        columnar.detach(base)  # drop any parent-side attachment first
        shutil.rmtree(base, ignore_errors=True)


@contextlib.contextmanager
def shared_workload(
    catalog: Catalog, workload: Dict[str, WorkloadValue]
) -> Iterator[Dict[str, _ShmSlice]]:
    """Context-managed shared-memory shipping of an explicit workload.

    Guarantees the segment is closed *and unlinked* on every exit path —
    a worker crash mid-fold, an exception raised by the fold, generator
    abandonment — so a killed run can never leak ``/dev/shm`` segments
    (``tests/fleet/test_runner_faults.py`` kills a worker mid-fold and
    asserts the segment name is gone).
    """
    segment, views = _share_workload(catalog, workload)
    try:
        yield views
    finally:
        if segment is not None:
            segment.close()
            with contextlib.suppress(FileNotFoundError):
                segment.unlink()


def object_run(
    obj: MediaObject,
    times_minutes: np.ndarray,
    delay_minutes: float,
    horizon_minutes: float,
    policy: FleetPolicy,
) -> Tuple[Optional[BatchedResult], int]:
    """One object's batched run, in slot units of its delay guarantee.

    Returns ``(result, repaired)``; ``result`` is None only for the
    zero-arrival ``general-offline`` case (the optimum is undefined over
    zero served slots — the engine and the event policy both raise; a
    quiet object simply contributes nothing to the fleet).  Public so the
    burn-in contract layer can replay-verify the realised forests behind
    a folded :class:`FleetReport`.
    """
    L = obj.units(delay_minutes)
    clean, repaired = sanitize_times(times_minutes, horizon_minutes)
    ts = clean / delay_minutes
    if ts.size == 0 and policy.kind == "general-offline":
        return None, repaired
    horizon_slots = horizon_minutes / delay_minutes
    if ts.size and ts[-1] >= horizon_slots:
        # Float division can push the last arrival onto the horizon; the
        # trace contract is arrivals strictly inside [0, horizon).
        horizon_slots = float(np.nextafter(ts[-1], np.inf))
    trace = ArrivalTrace(times=tuple(ts.tolist()), horizon=horizon_slots)
    return simulate_batched(L, trace, policy, slot=1.0), repaired


def _simulate_object(
    obj: MediaObject,
    times_minutes: np.ndarray,
    delay_minutes: float,
    horizon_minutes: float,
    policy: FleetPolicy,
) -> FleetObjectResult:
    """One object's run, reduced to the fleet-aggregation summary."""
    result, repaired = object_run(
        obj, times_minutes, delay_minutes, horizon_minutes, policy
    )
    L = obj.units(delay_minutes)
    if result is None or result.forest is None:
        starts = ends = _EMPTY
        roots = 0
    else:
        starts = result.forest.arrivals * delay_minutes
        ends = (result.forest.arrivals + result.lengths) * delay_minutes
        roots = result.metrics.roots_started
    return FleetObjectResult(
        name=obj.name,
        L=L,
        delay_minutes=delay_minutes,
        clients=0 if result is None else int(result.client_arrival.size),
        streams=int(starts.size),
        roots=roots,
        total_units_minutes=float(np.sum(ends - starts)),
        max_startup_delay_minutes=(
            0.0 if result is None
            else result.max_startup_delay() * delay_minutes
        ),
        starts=starts,
        ends=ends,
        repaired=repaired,
    )


def _run_shard(args) -> FleetObjectResult:
    """Module-level worker entry (picklable for process pools)."""
    obj, times, seed_seq, mean_gap, delay, horizon, policy = args
    release: Optional[Tuple[columnar.ColumnarStore, StoreSlice]] = None
    if times is None:
        # In-worker thinned generation: this object's share of the global
        # Poisson stream, from its own spawned SeedSequence (shipped
        # whole — entropy alone would drop the spawn key and give every
        # object the same stream).
        rng = np.random.default_rng(seed_seq)
        trace = poisson(mean_gap / obj.weight, horizon, seed=rng)
        times = np.asarray(trace.times, dtype=np.float64)
    elif isinstance(times, _ShmSlice):
        times = _read_shm_slice(times)
    elif isinstance(times, StoreSlice):
        # Columnar store: attach once per process (cached), take a
        # zero-copy view, and give the pages back after folding so the
        # process never keeps more than one object's column resident.
        store = columnar.attach(times.root)
        release = (store, times)
        times = store.view(times)
    try:
        return _simulate_object(obj, times, delay, horizon, policy)
    finally:
        if release is not None:
            release[0].release_slice(release[1])


def _shard_args(
    catalog: Catalog,
    workload: Optional[Dict[str, ArrivalTrace]],
    mean_interarrival_minutes: Optional[float],
    delay_minutes: float,
    horizon_minutes: float,
    policy: FleetPolicy,
    seed,
    views: Optional[Dict[str, Union[_ShmSlice, StoreSlice]]] = None,
) -> Iterable[tuple]:
    if workload is None and views is not None:
        # Store-only workload: every object's times come from the
        # columnar store by name; absent objects are quiet.
        for obj in catalog:
            times = views.get(obj.name, _EMPTY)
            yield (obj, times, None, None, delay_minutes, horizon_minutes, policy)
    elif workload is None:
        if mean_interarrival_minutes is None:
            raise ValueError(
                "need either a workload mapping, a columnar store, or "
                "mean_interarrival_minutes for in-worker generation"
            )
        children = np.random.SeedSequence(seed).spawn(len(catalog))
        for obj, child in zip(catalog, children):
            yield (
                obj,
                None,
                child,
                mean_interarrival_minutes,
                delay_minutes,
                horizon_minutes,
                policy,
            )
    else:
        for obj in catalog:
            if views is not None and obj.name in views:
                times = views[obj.name]
            else:
                trace = workload.get(obj.name)
                times = _EMPTY if trace is None else _times_of(trace)
            yield (obj, times, None, None, delay_minutes, horizon_minutes, policy)


def iter_fleet(
    catalog: Catalog,
    delay_minutes: float,
    horizon_minutes: float,
    policy: Optional[FleetPolicy] = None,
    workload: Optional[Dict[str, ArrivalTrace]] = None,
    mean_interarrival_minutes: Optional[float] = None,
    seed=None,
    workers: int = 0,
    store=None,
) -> Iterator[FleetObjectResult]:
    """Stream per-object results in catalog order as workers fold them.

    The incremental core of :func:`run_fleet`: each
    :class:`FleetObjectResult` is yielded the moment its shard returns,
    so a consumer can accumulate peaks/profiles (``fleet_profile`` on
    stacked intervals) or spill results without ever holding a full
    :class:`FleetReport`.  Workload shipping (shared memory or columnar
    store) is torn down when the generator finishes **or is abandoned**
    — the ``finally`` runs on ``close()``/GC, so early exits leak
    nothing.

    ``store`` selects the out-of-core path:

    * ``None`` — PR 5 behaviour (pickled traces, or one shm segment when
      sharded under ``fork``);
    * ``True`` or a directory path, with ``workload`` — the workload is
      spooled through a private on-disk columnar store
      (:func:`stored_workload`; the path is the spool's parent
      directory) and workers attach it instead of receiving the data;
    * a directory created by :mod:`repro.scale.columnar`, with
      ``workload=None`` — objects read their columns straight from the
      existing store; the parent only ever touches the index, so a
      10^7-client catalog run never materialises the workload in any
      process.
    """
    if delay_minutes <= 0 or horizon_minutes <= 0:
        raise ValueError("delay and horizon must be positive")
    policy = policy or FleetPolicy.batched_dyadic()
    sharded = bool(workers and workers > 1)
    with contextlib.ExitStack() as stack:
        views: Optional[Dict[str, Union[_ShmSlice, StoreSlice]]] = None
        if store is not None and store is not False:
            if workload is not None:
                root = None if store is True else os.fspath(store)
                views = stack.enter_context(
                    stored_workload(catalog, workload, root=root)
                )
                workload = None  # everything ships through the store
            else:
                views = columnar.store_slices(store)
        elif (
            sharded
            and workload is not None
            and multiprocessing.get_start_method(allow_none=False) == "fork"
        ):
            # Ship the per-object traces through one shared-memory segment
            # instead of pickling a list per shard; workers read their slice
            # by (name, start, stop).  Fold results are byte-identical to the
            # pickling path (tests/fleet/test_runner.py asserts workers=0 vs 2).
            # Gated on the fork start method: the single-unlink cleanup in
            # _read_shm_slice relies on workers sharing the parent's resource
            # tracker; under spawn/forkserver each worker's tracker would
            # unlink the segment at exit, so those platforms keep pickling.
            views = stack.enter_context(shared_workload(catalog, workload))
        args = list(
            _shard_args(
                catalog,
                workload,
                mean_interarrival_minutes,
                delay_minutes,
                horizon_minutes,
                policy,
                seed,
                views,
            )
        )
        for result in pool_map(_run_shard, args, workers=workers):
            yield result


def run_fleet(
    catalog: Catalog,
    delay_minutes: float,
    horizon_minutes: float,
    policy: Optional[FleetPolicy] = None,
    workload: Optional[Dict[str, ArrivalTrace]] = None,
    mean_interarrival_minutes: Optional[float] = None,
    seed=None,
    workers: int = 0,
    store=None,
) -> FleetReport:
    """Serve a whole catalog through the batched kernel, optionally sharded.

    ``workers <= 1`` runs in-process (deterministic, no pool overhead);
    larger values fan objects across a process pool.  Results are folded
    into the report in catalog order as they complete, so output is
    independent of worker count — ``tests/fleet/test_runner.py`` asserts
    byte-identical reports for ``workers=0`` and ``workers=2``.

    Workload values may be :class:`ArrivalTrace` objects or raw arrival
    arrays; either way the times pass through :func:`sanitize_times`
    before simulation, so a malformed external feed (NaN, unsorted,
    duplicated, out-of-window entries) degrades to its valid arrival
    multiset — counted per object in ``FleetObjectResult.repaired`` —
    instead of crashing the fold.  A worker process dying mid-fold is
    retried in-process (see :func:`pool_map`); workload shipping state —
    shm segment or columnar-store spool — is torn down on every exit
    path (see :func:`shared_workload` / :func:`stored_workload`).

    ``store`` (see :func:`iter_fleet`) routes workload shipping through
    the out-of-core columnar store: pass ``True``/a spool directory with
    a ``workload``, or an existing store directory with
    ``workload=None`` to run straight off disk.  Reports are
    bit-identical to the in-memory path for every chunk size and worker
    count (``tests/scale/test_store_equivalence.py``).
    """
    report = FleetReport(
        policy=(policy or FleetPolicy.batched_dyadic()).kind,
        delay_minutes=delay_minutes,
        horizon_minutes=horizon_minutes,
    )
    for result in iter_fleet(
        catalog,
        delay_minutes,
        horizon_minutes,
        policy=policy,
        workload=workload,
        mean_interarrival_minutes=mean_interarrival_minutes,
        seed=seed,
        workers=workers,
        store=store,
    ):
        report.objects.append(result)
    return report

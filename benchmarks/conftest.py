"""Shared helpers for the benchmark harness.

Every bench regenerates a paper table/figure (or an ablation DESIGN.md
calls out) through the same entry points the CLI uses, times it with
pytest-benchmark, and asserts the paper's qualitative shape on the output
so a regression in *correctness* fails the bench, not just a slowdown.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence

import pytest

#: repo root — machine-readable benchmark trajectories live here as
#: ``BENCH_<name>.json`` so successive PRs can compare timings.
REPO_ROOT = Path(__file__).resolve().parents[1]


def write_bench_json(name: str, payload: Dict) -> Path:
    """Write ``BENCH_<name>.json`` at the repo root and return its path.

    ``payload`` should carry a ``schema`` key and a ``benchmarks`` list of
    per-case dicts (name, n, reference_seconds, fast_seconds, speedup) so
    downstream tooling can diff trajectories across PRs.
    """
    path = REPO_ROOT / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def timeit_best(fn, repeats: int = 3):
    """``(best_seconds, last_result)`` over ``repeats`` runs of ``fn()``."""
    import time

    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def column(result, name: str) -> List:
    """Column accessor (mirrors ExperimentResult.column for readability)."""
    return result.column(name)


def assert_strictly_decreasing(xs: Sequence[float], label: str = "series") -> None:
    assert all(a > b for a, b in zip(xs, xs[1:])), f"{label} not decreasing: {xs}"


def assert_nonincreasing(xs: Sequence[float], label: str = "series") -> None:
    assert all(a >= b for a, b in zip(xs, xs[1:])), f"{label} increased: {xs}"


def assert_all_ok(rows, label: str = "table") -> None:
    bad = [r for r in rows if r[-1] != "ok"]
    assert not bad, f"{label} rows failed: {bad[:5]}"

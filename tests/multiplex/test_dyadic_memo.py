"""The dyadic envelope memo: fewer forest builds, identical answers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals.traces import ArrivalTrace
from repro.baselines.dyadic import DyadicParams
from repro.fastpath.dyadic import dyadic_flat_forest
from repro.multiplex import Catalog, catalog_workload, serve_catalog
from repro.multiplex.server import dyadic_envelope, dyadic_object_load
from repro.simulation.channels import flat_forest_intervals

HORIZON = 60.0
DELAY = 2.0


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(6, duration_minutes=40.0)


@pytest.fixture(scope="module")
def workload(catalog):
    return catalog_workload(catalog, 0.5, HORIZON, seed=13)


class TestMemoProbeCounts:
    def test_repeated_sweeps_hit_the_cache(self, catalog, workload):
        dyadic_envelope.cache_clear()
        # a provisioning sweep re-serving the same catalog (re-bracketing
        # budgets, re-rendering a figure) repeats every (trace, delay, L,
        # params) key exactly
        for _ in range(4):
            serve_catalog(
                catalog, DELAY, HORIZON, policy="dyadic", workload=workload
            )
        info = dyadic_envelope.cache_info()
        populated = sum(1 for t in workload.values() if len(t) > 0)
        assert info.misses <= populated
        assert info.hits >= 3 * info.misses, info

    def test_distinct_keys_miss(self, catalog, workload):
        dyadic_envelope.cache_clear()
        serve_catalog(catalog, DELAY, HORIZON, policy="dyadic", workload=workload)
        first = dyadic_envelope.cache_info().misses
        # a different delay rescales every trace: all-new keys
        serve_catalog(catalog, DELAY / 2, HORIZON, policy="dyadic", workload=workload)
        assert dyadic_envelope.cache_info().misses > first
        # different dyadic params likewise
        serve_catalog(
            catalog, DELAY, HORIZON, policy="dyadic", workload=workload,
            params=DyadicParams(alpha=2.0, beta=0.5),
        )
        assert dyadic_envelope.cache_info().misses > first + 1

    def test_empty_traces_never_touch_the_memo(self, catalog):
        dyadic_envelope.cache_clear()
        empty = {
            obj.name: ArrivalTrace(times=(), horizon=HORIZON) for obj in catalog
        }
        report = serve_catalog(
            catalog, DELAY, HORIZON, policy="dyadic", workload=empty
        )
        assert report.peak_channels == 0
        info = dyadic_envelope.cache_info()
        assert info.misses == 0 and info.hits == 0


class TestMemoOracleEquality:
    def test_memoised_load_equals_unmemoised_build(self, catalog, workload):
        """Route vs hand-built forest: identical arrays, not just close."""
        params = DyadicParams()
        for obj in catalog:
            trace = workload[obj.name]
            if len(trace) == 0:
                continue
            load = dyadic_object_load(obj, DELAY, trace, params)
            L = obj.units(DELAY)
            forest = dyadic_flat_forest([t / DELAY for t in trace], L, params)
            labels, starts, ends = flat_forest_intervals(forest, L)
            np.testing.assert_array_equal(load.labels, labels * DELAY)
            np.testing.assert_array_equal(load.starts, starts * DELAY)
            np.testing.assert_array_equal(load.ends, ends * DELAY)
            assert load.clients == len(trace)

    def test_cached_reports_are_bit_identical(self, catalog, workload):
        a = serve_catalog(catalog, DELAY, HORIZON, policy="dyadic", workload=workload)
        b = serve_catalog(catalog, DELAY, HORIZON, policy="dyadic", workload=workload)
        assert a.peak_channels == b.peak_channels
        assert a.total_units_minutes == b.total_units_minutes
        for la, lb in zip(a.loads, b.loads):
            np.testing.assert_array_equal(la.starts, lb.starts)
            np.testing.assert_array_equal(la.ends, lb.ends)
            np.testing.assert_array_equal(la.labels, lb.labels)

    def test_cached_arrays_are_read_only(self, workload, catalog):
        obj = next(o for o in catalog if len(workload[o.name]) > 0)
        trace = workload[obj.name]
        labels, starts, ends = dyadic_envelope(
            trace, DELAY, obj.units(DELAY), DyadicParams()
        )
        for arr in (labels, starts, ends):
            with pytest.raises(ValueError):
                arr[0] = -1.0

    def test_scaling_never_mutates_the_cache(self, workload, catalog):
        obj = next(o for o in catalog if len(workload[o.name]) > 0)
        trace = workload[obj.name]
        before = dyadic_envelope(trace, DELAY, obj.units(DELAY), DyadicParams())
        snapshot = [a.copy() for a in before]
        dyadic_object_load(obj, DELAY, trace, DyadicParams())
        after = dyadic_envelope(trace, DELAY, obj.units(DELAY), DyadicParams())
        for snap, arr in zip(snapshot, after):
            np.testing.assert_array_equal(snap, arr)

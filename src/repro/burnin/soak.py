"""The soak driver: long randomized fault-injected episodes, every
standing contract re-asserted after every one.

An **episode** is one complete exercise of the serving stack — a seeded
catalog workload pushed through the fleet runner (or a sweep through the
cache) under one *fault family* — followed by the full contract battery
(:mod:`repro.burnin.contracts`).  Fault families:

``none``
    Clean run; also re-runs serially and demands the sharded fold be
    bit-identical (worker-count independence as a standing contract).
``worker-kill``
    A :class:`~repro.burnin.faults.WorkerKill` hard-exits a pool worker
    mid-fold; the recovered sharded run must equal the fault-free serial
    baseline exactly.
``torn-cache``
    A :class:`~repro.burnin.faults.TornArtifact` corrupts cache reads
    under a sweep; every corrupt artifact must be quarantined and the
    recomputed columns must equal the warm run's.
``malformed-trace``
    The workload is fed through :func:`~repro.burnin.faults.corrupt_times`
    (NaN/inf, shuffles, duplicates, out-of-window arrivals); the repaired
    run must equal the clean baseline, with a non-zero repair count as
    evidence the fault actually landed.
``flash-overload``
    A flash crowd far beyond provisioning hits the most popular object;
    the engine must absorb it with the delay guarantee intact, and
    admission control under an undersized budget must shed honestly
    (capacity contract on the admitted set).
``live-replay``
    The workload is served online through a
    :class:`~repro.live.daemon.LiveDaemon` (rolling-horizon epochs,
    fence-gated commits) with a mid-run checkpoint/restore; the resumed
    run must replay byte-identically and the whole live contract battery
    (fence, immutability, schedule, offline-oracle equality) must hold.

Everything — scenario choice, policy choice, fault parameters, workload
draws — flows from ``SoakConfig.seed`` through spawned
:class:`numpy.random.SeedSequence` children, and the evidence report
contains no wall-clock or host state, so the same config reproduces the
same report **byte for byte** (``tests/burnin/test_soak.py`` asserts it).
"""

from __future__ import annotations

import dataclasses
import json
import tempfile
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from ..fleet.capacity import admission_report
from ..fleet.engine import FleetPolicy
from ..fleet.runner import FleetReport, _times_of, run_fleet
from ..fleet.scenarios import scenario_workload
from ..live import LIVE_POLICIES, LiveConfig, LiveDaemon
from ..multiplex.catalog import Catalog
from ..sweeps.cache import SweepCache
from ..sweeps.engine import run_sweep
from ..sweeps.evaluators import merge_cost_table_point
from ..sweeps.spec import SweepSpec
from .contracts import (
    ContractReport,
    check_admission_report,
    check_fleet_report,
    check_live_report,
    check_sweep_result,
    fleet_reports_equal,
)
from .faults import (
    TornArtifact,
    WorkerKill,
    corrupt_times,
    flash_overload,
    installed_task_fault,
)

__all__ = ["FAULT_FAMILIES", "SoakConfig", "SoakReport", "run_soak"]

SOAK_SCHEMA = "repro.burnin-soak.v1"

#: the injected fault families, cycled across episodes.
FAULT_FAMILIES = (
    "none",
    "worker-kill",
    "torn-cache",
    "malformed-trace",
    "flash-overload",
    "live-replay",
)

#: scenario and policy rotations; the fault cycle shares factors with
#: both, so ``live-replay`` spins its own policy rotation over
#: ``LIVE_POLICIES`` (the fleet policy the cycle hands it would
#: otherwise always be the same one).
_SCENARIOS = ("zipf", "flash", "diurnal", "blend")
_POLICIES = ("batched-dyadic", "delay-guaranteed", "pure-batching")


@dataclass(frozen=True)
class SoakConfig:
    """One soak run's shape; everything downstream derives from ``seed``."""

    episodes: int = 50
    seed: int = 0
    objects: int = 5
    duration_minutes: float = 45.0
    delay_minutes: float = 1.5
    horizon_minutes: float = 120.0
    mean_interarrival_minutes: float = 0.6
    overload_clients: int = 400
    workers: int = 2
    #: deliberately violate a contract in episode 0 — proves the harness
    #: actually detects violations (the report must come back not-ok).
    selftest_violation: bool = False

    def to_json(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclass
class SoakReport:
    """The soak's evidence: per-episode contract outcomes + totals.

    Deterministic in the config — :meth:`write` emits canonical JSON with
    sorted keys and no timestamps, so two runs of the same config produce
    byte-identical files.
    """

    config: SoakConfig
    episodes: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(e["contracts"]["ok"] for e in self.episodes)

    @property
    def checks(self) -> int:
        return sum(e["contracts"]["checks"] for e in self.episodes)

    @property
    def violations(self) -> int:
        return sum(
            1
            for e in self.episodes
            for o in e["contracts"]["outcomes"]
            if not o["ok"]
        )

    def fault_counts(self) -> Dict[str, int]:
        counts = {name: 0 for name in FAULT_FAMILIES}
        for e in self.episodes:
            counts[e["fault"]] += 1
        return counts

    def to_json(self) -> Dict[str, object]:
        return {
            "schema": SOAK_SCHEMA,
            "config": self.config.to_json(),
            "ok": self.ok,
            "episodes": self.episodes,
            "totals": {
                "episodes": len(self.episodes),
                "checks": self.checks,
                "violations": self.violations,
                "faults": self.fault_counts(),
            },
        }

    def write(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )
        return path

    def render(self) -> str:
        status = "OK" if self.ok else "VIOLATED"
        counts = self.fault_counts()
        lines = [
            f"burn-in soak: {status} — {len(self.episodes)} episodes, "
            f"{self.checks} contract checks, {self.violations} violations",
            "  fault mix: "
            + "  ".join(f"{k}={v}" for k, v in counts.items()),
        ]
        for e in self.episodes:
            if e["contracts"]["ok"]:
                continue
            failed = [o["name"] for o in e["contracts"]["outcomes"] if not o["ok"]]
            lines.append(
                f"  episode {e['episode']} ({e['fault']}, {e['scenario']}, "
                f"{e['policy']}): FAILED " + ", ".join(failed)
            )
        return "\n".join(lines)


def _merge(target: ContractReport, *sources: ContractReport) -> None:
    for src in sources:
        target.outcomes.extend(src.outcomes)


def _episode_workload(config: SoakConfig, scenario: str, seed: int):
    catalog = Catalog.zipf(
        config.objects, duration_minutes=config.duration_minutes
    )
    workload = scenario_workload(
        scenario,
        catalog,
        config.mean_interarrival_minutes,
        config.horizon_minutes,
        seed=seed,
    )
    return catalog, workload


def _fleet(config: SoakConfig, catalog, workload, policy, workers: int):
    return run_fleet(
        catalog,
        config.delay_minutes,
        config.horizon_minutes,
        policy=policy,
        workload=workload,
        workers=workers,
    )


def _standing_checks(
    out: ContractReport,
    report: FleetReport,
    catalog: Catalog,
    workload,
    policy: FleetPolicy,
) -> None:
    _merge(out, check_fleet_report(report, catalog, workload, policy))


# ---------------------------------------------------------------------------
# Fault-family episode bodies.  Each takes the shared context and appends
# contract outcomes (including a ``fault.recovered`` verdict with the
# fault-specific evidence) to ``out``.
# ---------------------------------------------------------------------------


def _episode_none(ctx, out: ContractReport) -> Dict[str, object]:
    config, catalog, workload, policy = ctx
    serial = _fleet(config, catalog, workload, policy, workers=0)
    sharded = _fleet(config, catalog, workload, policy, config.workers)
    diff = fleet_reports_equal(serial, sharded)
    out.record(
        "episode.deterministic",
        diff is None,
        1,
        f"sharded fold differs from serial: {diff}",
    )
    _standing_checks(out, sharded, catalog, workload, policy)
    return {"clients": int(sharded.clients), "streams": int(sharded.streams)}


def _episode_worker_kill(ctx, out: ContractReport, episode: int) -> Dict[str, object]:
    config, catalog, workload, policy = ctx
    baseline = _fleet(config, catalog, workload, policy, workers=0)
    kill_index = episode % len(catalog.objects)
    with tempfile.TemporaryDirectory(prefix="repro-burnin-") as td:
        kill = WorkerKill(task_index=kill_index, marker_dir=td)
        with installed_task_fault(kill):
            faulted = _fleet(config, catalog, workload, policy, config.workers)
        fired = kill.fired()
    out.record(
        "fault.worker-kill.fired",
        fired or config.workers < 2,
        1,
        "the kill hook never fired in a worker process",
    )
    diff = fleet_reports_equal(baseline, faulted)
    out.record(
        "fault.recovered",
        diff is None,
        1,
        f"post-crash fold differs from the fault-free run: {diff}",
    )
    _standing_checks(out, faulted, catalog, workload, policy)
    return {"kill_index": kill_index, "fired": bool(fired)}


def _episode_torn_cache(out: ContractReport, episode: int) -> Dict[str, object]:
    spec = SweepSpec(
        name="burnin-merge-cost",
        evaluator=merge_cost_table_point,
        axes={"n": tuple(range(1 + episode % 3, 9 + episode % 3))},
        metrics=("closed", "via_dp"),
    )
    with tempfile.TemporaryDirectory(prefix="repro-burnin-") as td:
        cache = SweepCache(td)
        warm = run_sweep(spec, workers=0, cache=cache)
        tear = TornArtifact(every=2)
        cache.read_hook = tear
        before = cache.quarantined
        faulted = run_sweep(spec, workers=0, cache=cache)
        cache.read_hook = None
        quarantined = cache.quarantined - before
        clean = run_sweep(spec, workers=0, cache=cache)
    _merge(
        out,
        check_sweep_result(warm),
        check_sweep_result(faulted),
        check_sweep_result(clean),
    )
    out.record(
        "fault.torn-cache.quarantined",
        quarantined == tear.corrupted and tear.corrupted > 0,
        1,
        f"{tear.corrupted} artifacts corrupted but {quarantined} quarantined",
    )
    same = all(
        np.array_equal(warm.columns[name], faulted.columns[name])
        and np.array_equal(warm.columns[name], clean.columns[name])
        for name in warm.columns
    )
    out.record(
        "fault.recovered",
        same,
        len(warm.columns),
        "recomputed sweep columns differ from the warm run",
    )
    return {
        "points": int(spec.n_points),
        "corrupted": int(tear.corrupted),
        "quarantined": int(quarantined),
    }


def _episode_malformed_trace(ctx, out: ContractReport, seed: int) -> Dict[str, object]:
    config, catalog, workload, policy = ctx
    baseline = _fleet(config, catalog, workload, policy, workers=0)
    rng_children = np.random.SeedSequence(seed).spawn(len(catalog.objects))
    corrupted = {
        obj.name: corrupt_times(
            _times_of(workload[obj.name]),
            seed=child,
            horizon=config.horizon_minutes,
        )
        for obj, child in zip(catalog, rng_children)
    }
    faulted = _fleet(config, catalog, corrupted, policy, config.workers)
    out.record(
        "fault.malformed-trace.landed",
        faulted.repaired > 0,
        1,
        "corrupted workload produced zero repairs — the fault never landed",
    )
    diff = fleet_reports_equal(baseline, faulted)
    out.record(
        "fault.recovered",
        diff is None,
        1,
        f"sanitised run differs from the clean baseline: {diff}",
    )
    _standing_checks(out, faulted, catalog, corrupted, policy)
    return {"repaired": int(faulted.repaired)}


def _episode_flash_overload(
    ctx, out: ContractReport, episode: int, seed: int
) -> Dict[str, object]:
    config, catalog, workload, policy = ctx
    top = catalog.popularity_rank()[0].name
    surged = flash_overload(
        workload,
        top,
        at=config.horizon_minutes / 3.0,
        clients=config.overload_clients,
        spread=2.0,
        seed=seed,
    )
    flood = _fleet(config, catalog, surged, policy, config.workers)
    _standing_checks(out, flood, catalog, surged, policy)
    budget = 1 + episode % 3  # far below the fleet's DG needs: must shed
    verdict = admission_report(
        catalog, config.horizon_minutes, budget
    )
    _merge(
        out, check_admission_report(verdict, catalog, config.horizon_minutes)
    )
    out.record(
        "fault.recovered",
        verdict.feasible or len(verdict.admitted) < len(catalog.objects),
        1,
        "infeasible budget but nothing was shed",
    )
    return {
        "surge_clients": int(config.overload_clients),
        "budget": int(budget),
        "admitted": len(verdict.admitted),
        "dropped": len(verdict.dropped),
    }


def _episode_live_replay(ctx, out: ContractReport, episode: int) -> Dict[str, object]:
    config, catalog, workload, _policy = ctx
    live_policy = LIVE_POLICIES[
        (episode // len(FAULT_FAMILIES)) % len(LIVE_POLICIES)
    ]
    live_config = LiveConfig(
        delay_minutes=config.delay_minutes,
        horizon_minutes=config.horizon_minutes,
        epoch_minutes=config.horizon_minutes / 12.0,
        fence_minutes=config.horizon_minutes / 8.0,
        policy=live_policy,
    )
    daemon = LiveDaemon(catalog, live_config)
    half = live_config.num_epochs // 2
    daemon.run(workload, until_epoch=half - 1)
    snapshot = daemon.checkpoint()
    report = daemon.run(workload)
    assert report is not None
    resumed = LiveDaemon.restore(snapshot).run(workload)
    assert resumed is not None
    diff = fleet_reports_equal(resumed.fleet, report.fleet)
    replay_ok = diff is None and [r.to_payload() for r in resumed.records] == [
        r.to_payload() for r in report.records
    ]
    out.record(
        "fault.recovered",
        replay_ok,
        1,
        f"checkpoint/restore replay differs from the uninterrupted run: {diff}",
    )
    _merge(out, check_live_report(report, catalog, workload=workload))
    return {
        "live_policy": live_policy,
        "epochs": len(report.records),
        "restore_epoch": int(half),
        "clients": int(report.fleet.clients),
        "streams": int(report.fleet.streams),
    }


def _tampered(report: FleetReport) -> FleetReport:
    """A copy of a clean report with one object's delay summary inflated
    past the guarantee — the self-test violation the harness must catch."""
    broken = dataclasses.replace(
        report.objects[0],
        max_startup_delay_minutes=report.delay_minutes * 10.0 + 1.0,
    )
    return FleetReport(
        policy=report.policy,
        delay_minutes=report.delay_minutes,
        horizon_minutes=report.horizon_minutes,
        objects=[broken] + list(report.objects[1:]),
    )


def run_soak(config: Optional[SoakConfig] = None) -> SoakReport:
    """Run the full soak: ``config.episodes`` episodes cycling scenarios,
    policies and fault families, every contract checked after each.

    Never raises for a contract violation or an episode crash — both are
    recorded as failing outcomes in the report (``report.ok`` is the
    verdict); the CLI turns that into a non-zero exit code.
    """
    config = config or SoakConfig()
    report = SoakReport(config=config)
    children = np.random.SeedSequence(config.seed).spawn(max(1, config.episodes))
    for i in range(config.episodes):
        state = children[i].generate_state(2)
        workload_seed, fault_seed = int(state[0]), int(state[1])
        fault = FAULT_FAMILIES[i % len(FAULT_FAMILIES)]
        scenario = _SCENARIOS[i % len(_SCENARIOS)]
        policy_kind = _POLICIES[i % len(_POLICIES)]
        out = ContractReport()
        evidence: Dict[str, object] = {}
        try:
            catalog, workload = _episode_workload(config, scenario, workload_seed)
            policy = FleetPolicy(policy_kind)
            ctx = (config, catalog, workload, policy)
            if config.selftest_violation and i == 0:
                clean = _fleet(config, catalog, workload, policy, workers=0)
                _merge(out, check_fleet_report(_tampered(clean), replay=False))
            elif fault == "none":
                evidence = _episode_none(ctx, out)
            elif fault == "worker-kill":
                evidence = _episode_worker_kill(ctx, out, i)
            elif fault == "torn-cache":
                evidence = _episode_torn_cache(out, i)
            elif fault == "malformed-trace":
                evidence = _episode_malformed_trace(ctx, out, fault_seed)
            elif fault == "flash-overload":
                evidence = _episode_flash_overload(ctx, out, i, fault_seed)
            else:
                evidence = _episode_live_replay(ctx, out, i)
        except Exception:
            # An unhandled exception is itself a contract violation: the
            # soak must survive every injected fault.
            out.record(
                "episode.exception",
                False,
                1,
                traceback.format_exc(limit=3).strip().splitlines()[-1],
            )
        report.episodes.append(
            {
                "episode": i,
                "fault": fault,
                "scenario": scenario,
                "policy": policy_kind,
                "contracts": out.to_json(),
                "evidence": evidence,
            }
        )
    return report

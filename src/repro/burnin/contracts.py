"""Standing-invariant contracts over fleet, sweep and admission results.

The perf stack (fastpath -> simulation -> fleet -> sweeps) is pinned by
golden fixtures and equivalence property tests, but those only exercise
clean replays.  This module states the system's *inviolables* as
re-checkable contracts over the artifacts any run hands back —
:class:`~repro.fleet.runner.FleetReport`,
:class:`~repro.sweeps.engine.SweepResult`,
:class:`~repro.fleet.capacity.AdmissionReport` — so the soak driver
(:mod:`repro.burnin.soak`) and the CLIs can re-assert them after every
episode, faulted or not:

* **capacity** — the realised fleet-wide peak never exceeds a channel
  budget; an admission report's admitted set always fits its budget.
* **delay guarantee** — no served client waits longer than the
  guaranteed start-up delay.
* **replay clean** — re-simulating every object from the workload
  in-process reproduces the folded report *exactly* (bit-identical
  interval arrays, so pool sharding / crash recovery / trace repair
  cannot corrupt a fold) and the realised merge forests pass the batched
  :mod:`repro.fastpath.replay` verification.
* **cost bounds** — per object, total bandwidth sits inside the paper's
  structural envelope: every stream no longer than a full ``L``-unit
  root, every root exactly ``L`` units, hence
  ``roots * L * delay <= total <= streams * L * delay``.
* **conservation** — summary counters equal what the interval arrays
  actually say (no drift between folded summaries and data).

Each contract appends named :class:`ContractOutcome` rows into a
:class:`ContractReport`; ``report.ok`` is the episode verdict and
``report.to_json()`` the deterministic evidence payload.  To add an
invariant, write a function taking ``(artifact, ..., report)`` that
calls ``report.record(name, ok, checks, detail)`` and chain it in the
relevant ``check_*`` entry point (see README "The burn-in tier").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..fleet.capacity import AdmissionReport, dg_fleet_peak
from ..fleet.engine import FleetPolicy
from ..fleet.runner import FleetReport, _times_of, object_run
from ..multiplex.catalog import Catalog
from ..sweeps.engine import SweepResult

__all__ = [
    "ContractOutcome",
    "ContractReport",
    "check_admission_report",
    "check_columnar_store",
    "check_fleet_report",
    "check_live_report",
    "check_sweep_result",
    "fleet_reports_equal",
]

#: relative tolerance for float bandwidth/weight comparisons; delays are
#: compared with an absolute epsilon on the minutes clock.
_REL = 1e-9
_EPS = 1e-9


@dataclass(frozen=True)
class ContractOutcome:
    """One named invariant's verdict: ok/violated, with evidence."""

    name: str
    ok: bool
    checks: int
    detail: str = ""

    def to_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "name": self.name, "ok": self.ok, "checks": self.checks,
        }
        if self.detail:
            out["detail"] = self.detail
        return out


@dataclass
class ContractReport:
    """An ordered collection of contract outcomes (one soak episode's
    worth, or one CLI run's)."""

    outcomes: List[ContractOutcome] = field(default_factory=list)

    def record(
        self, name: str, ok: bool, checks: int = 1, detail: str = ""
    ) -> None:
        self.outcomes.append(
            ContractOutcome(name, bool(ok), int(checks), detail if not ok else "")
        )

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    @property
    def checks(self) -> int:
        return sum(o.checks for o in self.outcomes)

    def failures(self) -> List[ContractOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checks": self.checks,
            "outcomes": [o.to_json() for o in self.outcomes],
        }

    def render(self) -> str:
        status = "OK" if self.ok else "VIOLATED"
        lines = [
            f"contracts: {status} "
            f"({len(self.outcomes)} contracts, {self.checks} checks)"
        ]
        for o in self.failures():
            lines.append(f"  FAIL {o.name}: {o.detail}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fleet-report contracts
# ---------------------------------------------------------------------------


def fleet_reports_equal(a: FleetReport, b: FleetReport) -> Optional[str]:
    """None when two fleet reports realised the identical system; else a
    one-line description of the first difference.

    Compares the run geometry and every per-object *result* —
    bit-identical interval arrays included.  The ``repaired`` counters
    are deliberately excluded: a repaired malformed feed must equal the
    fault-free run, which by definition repaired nothing.
    """
    if (a.policy, a.delay_minutes, a.horizon_minutes) != (
        b.policy, b.delay_minutes, b.horizon_minutes
    ):
        return "run geometry differs"
    if [o.name for o in a.objects] != [o.name for o in b.objects]:
        return "object sets differ"
    for x, y in zip(a.objects, b.objects):
        for attr in (
            "L", "clients", "streams", "roots",
            "total_units_minutes", "max_startup_delay_minutes",
        ):
            if getattr(x, attr) != getattr(y, attr):
                return (
                    f"object {x.name}: {attr} "
                    f"{getattr(x, attr)!r} != {getattr(y, attr)!r}"
                )
        if not (
            np.array_equal(x.starts, y.starts)
            and np.array_equal(x.ends, y.ends)
        ):
            return f"object {x.name}: interval arrays differ"
    return None


def _check_delay_guarantee(report: FleetReport, out: ContractReport) -> None:
    bad = [
        o.name for o in report.objects
        if o.max_startup_delay_minutes > report.delay_minutes + _EPS
    ]
    out.record(
        "fleet.delay-guarantee",
        not bad,
        len(report.objects),
        f"guaranteed delay {report.delay_minutes:g} min exceeded for: "
        + ", ".join(bad[:5]),
    )


def _check_capacity(
    report: FleetReport, budget: Optional[int], out: ContractReport
) -> None:
    if budget is None:
        return
    peak = report.peak_channels
    out.record(
        "fleet.capacity",
        peak <= budget,
        1,
        f"realised peak {peak} exceeds the {budget}-channel budget",
    )


def _check_conservation(report: FleetReport, out: ContractReport) -> None:
    checks = 0
    bad: List[str] = []
    for o in report.objects:
        checks += 4
        if o.starts.shape != o.ends.shape or o.streams != o.starts.size:
            bad.append(f"{o.name}: stream count != interval arrays")
            continue
        if o.starts.size and not (
            np.all(np.isfinite(o.starts)) and np.all(np.isfinite(o.ends))
        ):
            bad.append(f"{o.name}: non-finite interval endpoints")
            continue
        if o.starts.size and np.any(o.ends < o.starts):
            bad.append(f"{o.name}: stream ends before it starts")
            continue
        units = float(np.sum(o.ends - o.starts))
        if abs(units - o.total_units_minutes) > _REL * max(1.0, abs(units)):
            bad.append(
                f"{o.name}: summary units {o.total_units_minutes} != "
                f"interval sum {units}"
            )
    out.record(
        "fleet.conservation", not bad, checks, "; ".join(bad[:3])
    )


def _check_cost_bounds(report: FleetReport, out: ContractReport) -> None:
    checks = 0
    bad: List[str] = []
    for o in report.objects:
        if o.streams == 0:
            continue
        checks += 3
        full = o.L * o.delay_minutes  # a root stream's length in minutes
        tol = _REL * max(1.0, full * o.streams)
        if not 1 <= o.roots <= o.streams:
            bad.append(f"{o.name}: {o.roots} roots of {o.streams} streams")
            continue
        longest = float(np.max(o.ends - o.starts))
        if longest > full + _EPS:
            bad.append(
                f"{o.name}: stream of {longest:g} min exceeds the "
                f"L*delay = {full:g} min full stream"
            )
            continue
        lo, hi = o.roots * full, o.streams * full
        if not lo - tol <= o.total_units_minutes <= hi + tol:
            bad.append(
                f"{o.name}: bandwidth {o.total_units_minutes:g} outside "
                f"[roots*L*delay, streams*L*delay] = [{lo:g}, {hi:g}]"
            )
    out.record("fleet.cost-bounds", not bad, checks, "; ".join(bad[:3]))


def _check_replay(
    report: FleetReport,
    catalog: Catalog,
    workload: Dict[str, object],
    policy: FleetPolicy,
    out: ContractReport,
) -> None:
    """Re-simulate every object in-process and demand (a) bit-identical
    results to the folded report and (b) a clean batched replay
    verification of the realised merge forest."""
    by_name = {o.name: o for o in report.objects}
    checks = 0
    bad: List[str] = []
    for obj in catalog:
        reported = by_name.get(obj.name)
        if reported is None:
            bad.append(f"{obj.name}: missing from the report")
            continue
        trace = workload.get(obj.name)
        times = (
            np.empty(0, dtype=np.float64) if trace is None else _times_of(trace)
        )
        result, _ = object_run(
            obj, times, report.delay_minutes, report.horizon_minutes, policy
        )
        checks += 1
        if result is None or result.forest is None:
            if reported.streams != 0:
                bad.append(
                    f"{obj.name}: report has {reported.streams} streams, "
                    "replay has none"
                )
            continue
        starts = result.forest.arrivals * report.delay_minutes
        ends = starts + result.lengths * report.delay_minutes
        if not (
            np.array_equal(starts, reported.starts)
            and np.array_equal(ends, reported.ends)
        ):
            bad.append(f"{obj.name}: folded intervals != in-process replay")
            continue
        verification = result.verify(continuous=not policy.uses_slots)
        checks += verification.checks
        if not verification.ok:
            bad.append(
                f"{obj.name}: replay verification failed "
                f"({len(verification.failures)} checks): "
                + "; ".join(verification.failures[:2])
            )
    out.record("fleet.replay", not bad, checks, "; ".join(bad[:3]))


def check_fleet_report(
    report: FleetReport,
    catalog: Optional[Catalog] = None,
    workload: Optional[Dict[str, object]] = None,
    policy: Optional[FleetPolicy] = None,
    budget_channels: Optional[int] = None,
    replay: bool = True,
) -> ContractReport:
    """Assert every standing fleet invariant on a folded report.

    ``catalog`` + ``workload`` + ``policy`` unlock the replay contract
    (in-process re-simulation + forest verification); without them the
    summary-level contracts still run.  ``budget_channels`` arms the
    capacity contract.
    """
    out = ContractReport()
    _check_delay_guarantee(report, out)
    _check_capacity(report, budget_channels, out)
    _check_conservation(report, out)
    _check_cost_bounds(report, out)
    if replay and catalog is not None and workload is not None:
        _check_replay(
            report, catalog, workload,
            policy or FleetPolicy(report.policy), out,
        )
    return out


# ---------------------------------------------------------------------------
# Sweep-result contracts
# ---------------------------------------------------------------------------


def check_sweep_result(
    result: SweepResult, require_finite: bool = True
) -> ContractReport:
    """Assert the structural invariants of a columnar sweep result:
    complete columns of the declared shape, (optionally) finite metric
    values, and cache accounting that adds up."""
    out = ContractReport()
    spec = result.spec
    expected = set(spec.axis_names) | set(spec.metrics)
    shape_ok = set(result.columns) == expected and all(
        col.shape == (spec.n_points,) for col in result.columns.values()
    )
    out.record(
        "sweep.columns",
        shape_ok,
        len(expected),
        f"columns {sorted(result.columns)} != axes+metrics {sorted(expected)} "
        f"of length {spec.n_points}",
    )
    if require_finite:
        bad = [
            name
            for name in spec.metrics
            if result.columns[name].dtype.kind == "f"
            and not np.all(np.isfinite(result.columns[name]))
        ]
        out.record(
            "sweep.finite",
            not bad,
            len(spec.metrics),
            "non-finite metric columns: " + ", ".join(bad),
        )
    accounted = result.evaluated + result.cache_hits
    out.record(
        "sweep.accounting",
        accounted == spec.n_points and result.cache_misses <= spec.n_points,
        2,
        f"evaluated {result.evaluated} + hits {result.cache_hits} != "
        f"{spec.n_points} points",
    )
    return out


# ---------------------------------------------------------------------------
# Columnar-store contracts
# ---------------------------------------------------------------------------


def check_columnar_store(
    root, expected: Optional[Dict[str, np.ndarray]] = None, deep: bool = True
) -> ContractReport:
    """Assert the on-disk integrity of a :mod:`repro.scale.columnar` store.

    Three layers, each recorded as its own outcome:

    * **store.readable** — the index parses, carries the right schema,
      and its offsets are contiguous and consistent with the segment's
      exact byte length (anything the :class:`TornSegment` injector does
      to the metadata or the file length trips here);
    * **store.checksums** — every column's bytes re-hash to the CRC-32
      the writer recorded (``deep``; catches content corruption that
      left the length intact);
    * **store.content** — optional ground truth: each column in
      ``expected`` compares bit-identical to what the store returns.

    A torn store must *fail* this battery, never crash it: all
    :class:`~repro.scale.columnar.StoreError` paths are caught and
    recorded as violations.
    """
    from ..scale.columnar import ColumnarStore, StoreError

    out = ContractReport()
    try:
        store = ColumnarStore(root)
    except StoreError as exc:
        out.record("store.readable", False, 1, str(exc))
        return out
    with store:
        out.record("store.readable", True, 1)
        if deep:
            try:
                store.verify(deep=True)
            except StoreError as exc:
                out.record("store.checksums", False, len(store.names), str(exc))
                return out
            out.record("store.checksums", True, len(store.names))
        if expected is not None:
            bad: List[str] = []
            names = set(store.names)
            for name, values in expected.items():
                if name not in names:
                    bad.append(f"{name}: missing from the store")
                    continue
                if not np.array_equal(
                    store.column(name), np.asarray(values, dtype=np.float64)
                ):
                    bad.append(f"{name}: column differs from ground truth")
            out.record(
                "store.content", not bad, len(expected), "; ".join(bad[:3])
            )
    return out


# ---------------------------------------------------------------------------
# Admission-report contracts
# ---------------------------------------------------------------------------


def check_admission_report(
    report: AdmissionReport, catalog: Catalog, horizon_minutes: float
) -> ContractReport:
    """Assert a shedding verdict is *consistent*: the admitted/dropped
    sets partition the catalog, the served-weight bookkeeping matches,
    and — the hard invariant — the admitted set's DG envelope fits the
    budget, so no admitted client's guarantee can ever be violated."""
    out = ContractReport()
    names = {o.name for o in catalog}
    admitted, dropped = set(report.admitted), set(report.dropped)
    out.record(
        "admission.partition",
        admitted | dropped == names and not (admitted & dropped),
        2,
        f"admitted+dropped do not partition the catalog "
        f"({len(admitted)}+{len(dropped)} of {len(names)})",
    )
    weight = sum(o.weight for o in catalog if o.name in admitted)
    out.record(
        "admission.weight",
        abs(weight - report.served_weight_fraction) <= _REL,
        1,
        f"served weight {report.served_weight_fraction} != admitted "
        f"weight {weight}",
    )
    survivors = [o for o in catalog if o.name in admitted]
    peak = (
        dg_fleet_peak(Catalog(survivors), report.delay_minutes, horizon_minutes)
        if survivors
        else 0
    )
    out.record(
        "admission.peak-recomputed",
        peak == report.peak_channels,
        1,
        f"reported peak {report.peak_channels} != recomputed {peak}",
    )
    out.record(
        "admission.capacity",
        peak <= report.budget_channels,
        1,
        f"admitted set needs {peak} channels, budget is "
        f"{report.budget_channels} — an admitted guarantee would be violated",
    )
    out.record(
        "admission.feasible-honesty",
        (not report.feasible) or not dropped,
        1,
        "feasible verdict with a non-empty dropped set",
    )
    return out


# ---------------------------------------------------------------------------
# Live-report contracts
# ---------------------------------------------------------------------------


def _check_ahead_of_fence(records, out: ContractReport) -> None:
    """No commit decision ever reached past its fence, and nothing whose
    window already closed was left uncommitted behind it."""
    checks = 0
    bad: List[str] = []
    for rec in records:
        if rec.drain:
            continue  # the drain has no fence: everything commits
        checks += 2
        fence = rec.fence
        if fence is None:
            bad.append(f"epoch {rec.epoch}: non-drain record without a fence")
            continue
        if rec.max_committed_cutoff is not None and (
            rec.max_committed_cutoff >= fence + _EPS
        ):
            bad.append(
                f"epoch {rec.epoch}: committed a window ending "
                f"{rec.max_committed_cutoff:g} min at/past the fence {fence:g}"
            )
        if rec.min_live_cutoff is not None and (
            rec.min_live_cutoff < fence - _EPS
        ):
            bad.append(
                f"epoch {rec.epoch}: window ending {rec.min_live_cutoff:g} min "
                f"is behind the fence {fence:g} but was not committed"
            )
    out.record("live.ahead-of-fence", not bad, checks, "; ".join(bad[:3]))


def _check_fence_monotone(records, out: ContractReport) -> None:
    checks = 0
    bad: List[str] = []
    prev = None
    for i, rec in enumerate(records):
        checks += 1
        if rec.drain and i != len(records) - 1:
            bad.append(f"record {i}: drain is not the final record")
        if prev is None:
            if not rec.drain and rec.epoch != 0:
                bad.append(f"first record is epoch {rec.epoch}, not 0")
            prev = rec
            continue
        if not rec.drain and rec.epoch != prev.epoch + 1:
            bad.append(
                f"epoch {rec.epoch} follows {prev.epoch}: not one at a time"
            )
        if rec.ingest_clock < prev.ingest_clock:
            bad.append(f"epoch {rec.epoch}: ingest clock moved backwards")
        if (
            not rec.drain
            and rec.fence is not None
            and prev.fence is not None
            and rec.fence < prev.fence
        ):
            bad.append(f"epoch {rec.epoch}: fence moved backwards")
        if rec.committed_streams < prev.committed_streams or any(
            a < b for a, b in zip(rec.committed_counts, prev.committed_counts)
        ):
            bad.append(f"epoch {rec.epoch}: committed counts shrank")
        prev = rec
    out.record("live.fence-monotone", not bad, checks, "; ".join(bad[:3]))


def _check_commit_immutability(report, out: ContractReport) -> None:
    """Every record's digest must be reproducible from the *final*
    interval arrays truncated at that record's committed counts — i.e.
    commits only ever appended; nothing already emitted was rewritten."""
    from ..live.daemon import live_digest

    per_object = [(o.starts, o.ends) for o in report.fleet.objects]
    checks = 0
    bad: List[str] = []
    for rec in report.records:
        checks += 1
        if len(rec.committed_counts) != len(per_object):
            bad.append(f"epoch {rec.epoch}: count tuple arity mismatch")
            continue
        expected = live_digest(per_object, rec.committed_counts)
        if rec.digest != expected:
            bad.append(
                f"epoch {rec.epoch}: digest {rec.digest} != {expected} — "
                "a committed stream changed after emission"
            )
    out.record(
        "live.committed-prefix-immutability", not bad, checks, "; ".join(bad[:3])
    )


def _check_live_conservation(report, out: ContractReport) -> None:
    checks = 3
    bad: List[str] = []
    records = report.records
    if not records or not records[-1].drain:
        bad.append("run did not end in a drain record")
    else:
        last = records[-1]
        if last.committed_streams != report.fleet.streams or list(
            last.committed_counts
        ) != [o.streams for o in report.fleet.objects]:
            bad.append("final committed counts != fleet stream counts")
        if sum(r.ingested for r in records) != report.fleet.clients:
            bad.append(
                f"ingested {sum(r.ingested for r in records)} != "
                f"served clients {report.fleet.clients}"
            )
        if last.committed_roots != sum(o.roots for o in report.fleet.objects):
            bad.append("final committed roots != fleet root counts")
            checks += 1
    out.record("live.conservation", not bad, checks, "; ".join(bad[:3]))


def _check_live_schedule(report, out: ContractReport) -> None:
    """The incrementally emitted channel assignment must equal the batch
    greedy stream for stream, and use exactly peak-concurrency channels
    (the greedy's optimality) — per object."""
    from ..simulation.channels import assign_channels_flat, peak_concurrency

    checks = 0
    bad: List[str] = []
    for o in report.fleet.objects:
        channels = report.channels.get(o.name)
        checks += 2
        if channels is None or channels.size != o.streams:
            bad.append(f"{o.name}: channel array missing or wrong length")
            continue
        if o.streams == 0:
            continue
        batch = assign_channels_flat(o.starts, o.ends)
        if not np.array_equal(channels, batch):
            bad.append(f"{o.name}: incremental channels != batch greedy")
            continue
        peak = peak_concurrency(o.starts, o.ends)
        if int(channels.max()) + 1 != peak:
            bad.append(
                f"{o.name}: {int(channels.max()) + 1} channels != peak {peak}"
            )
    out.record("live.schedule", not bad, checks, "; ".join(bad[:3]))


def _check_live_oracle(report, catalog, workload, out: ContractReport) -> None:
    from ..fleet.runner import run_fleet

    oracle = run_fleet(
        catalog,
        delay_minutes=report.config.delay_minutes,
        horizon_minutes=report.config.horizon_minutes,
        policy=FleetPolicy(report.config.policy),
        workload=workload,
        workers=0,
    )
    diff = fleet_reports_equal(report.fleet, oracle)
    out.record(
        "live.oracle-equality",
        diff is None,
        len(catalog),
        f"daemon output differs from the offline batch oracle: {diff}",
    )


def check_live_report(
    report,
    catalog: Optional[Catalog] = None,
    workload: Optional[Dict[str, object]] = None,
    budget_channels: Optional[int] = None,
) -> ContractReport:
    """Assert every live standing invariant on a finished
    :class:`~repro.live.daemon.LiveReport`.

    The fence/epoch invariants (decisions ahead of the fence, monotone
    clocks, committed-prefix immutability via digest recomputation,
    conservation, incremental-schedule == batch greedy) always run; the
    cumulative :class:`~repro.fleet.runner.FleetReport` additionally
    passes through the summary-level fleet contracts, and providing
    ``catalog`` + ``workload`` arms the offline-batch-oracle equality
    check (``fleet_reports_equal``).
    """
    out = ContractReport()
    _check_ahead_of_fence(report.records, out)
    _check_fence_monotone(report.records, out)
    _check_commit_immutability(report, out)
    _check_live_conservation(report, out)
    _check_live_schedule(report, out)
    for outcome in check_fleet_report(
        report.fleet, budget_channels=budget_channels, replay=False
    ).outcomes:
        out.outcomes.append(outcome)
    if catalog is not None and workload is not None:
        _check_live_oracle(report, catalog, workload, out)
    return out

"""SweepSpec: grid enumeration, validation, content hashing."""

from __future__ import annotations

import pytest

from repro.sweeps import Axis, SweepSpec, canonical_json
from repro.sweeps.evaluators import delay_savings_point, online_ratio_point


def _spec(**over):
    kwargs = dict(
        name="demo",
        evaluator=online_ratio_point,
        axes=[Axis("L", (15, 50)), Axis("n", (10, 100, 1000))],
        metrics=("online_cost", "offline_cost"),
    )
    kwargs.update(over)
    return SweepSpec(**kwargs)


class TestGrid:
    def test_points_row_major_last_axis_fastest(self):
        spec = _spec()
        pts = spec.points()
        assert spec.n_points == len(pts) == 6
        assert pts[0] == {"L": 15, "n": 10}
        assert pts[1] == {"L": 15, "n": 100}
        assert pts[3] == {"L": 50, "n": 10}

    def test_axes_mapping_form(self):
        spec = _spec(axes={"L": (15,), "n": (10, 20)})
        assert spec.axis_names == ("L", "n")
        assert spec.n_points == 2

    def test_rejects_empty_axis_and_clashes(self):
        with pytest.raises(ValueError):
            Axis("n", ())
        with pytest.raises(ValueError):
            _spec(axes=[])
        with pytest.raises(ValueError):
            _spec(axes=[Axis("n", (1,)), Axis("n", (2,))])
        with pytest.raises(ValueError):
            _spec(axes=[Axis("L", (1,))], fixed={"L": 3})


class TestPointKey:
    def test_stable_and_distinct(self):
        spec = _spec()
        k1 = spec.point_key({"L": 15, "n": 10})
        assert k1 == spec.point_key({"L": 15, "n": 10})
        assert k1 != spec.point_key({"L": 15, "n": 100})

    def test_version_and_fixed_dirty_the_key(self):
        point = {"L": 15, "n": 10}
        assert _spec().point_key(point) != _spec(version="2").point_key(point)
        assert (
            _spec().point_key(point)
            != _spec(fixed={"extra": 1}).point_key(point)
        )

    def test_evaluator_identity_dirties_the_key(self):
        a = _spec()
        b = _spec(evaluator=delay_savings_point)
        assert a.point_key({"L": 15, "n": 10}) != b.point_key({"L": 15, "n": 10})

    def test_float_hashing_is_bit_exact(self):
        # 0.1 + 0.2 != 0.3 at the bit level; the hash must see that.
        spec = _spec(axes=[Axis("x", (0.3,))])
        assert spec.point_key({"x": 0.3}) != spec.point_key({"x": 0.1 + 0.2})

    def test_unhashable_parameter_raises(self):
        with pytest.raises(TypeError, match="content-hashable"):
            canonical_json({"bad": object()})

"""Batched replay verification — vectorised per-stream interval algebra.

``repro.simulation.verify`` replays the Section 2 receiving programs one
client and one part at a time: every client materialises O(L)
``Reception`` objects, and the buffer bookkeeping is quadratic in the
parts per client.  At 10^5 clients that is tens of millions of Python
objects for checks whose outcomes are closed-form functions of the
client's root path.  This module evaluates the same checks wholesale on
:class:`~repro.fastpath.flat_forest.FlatForest` arrays, walking all
clients' ancestor chains *level by level* (one numpy pass per tree
level), so the work is O(sum of path depths) vector operations:

* **completeness / deadlines / fan-in** — the Section 2 stage ranges are
  contiguous, start at part 1, and every path stream starts no later
  than the client, so for any valid parent array these checks pass
  identically to the oracle (the oracle can only fail them on inputs
  ``FlatForest`` rejects outright); they are accounted, not re-derived.
* **stream-length sufficiency** (per client and stream) — the last part
  a client takes from path stream ``u`` with path predecessor ``w`` and
  parent ``q`` is ``min(2y - u - q, L)`` (receive-two) or
  ``min(y - q, L)`` (receive-all), demanded at all iff the first part
  ``2y - w - u + 1`` (resp. ``y - u + 1``) is at most ``L``.
* **Lemma 1 / Lemma 17 tightness** — per-stream maxima of those demands
  (``np.maximum.at``) against the analytic lengths.
* **Lemma 15 buffer peaks** — a client buffers one extra part per slot
  exactly while it listens to two streams, and two-stream slots form one
  contiguous run from its arrival, so the replayed high-water mark is
  ``t2max - y`` with ``t2max`` the last two-delivery slot
  ``min(2y - u', u' + L)`` over the path pairs ``(u, u')``.

Exactness contract (same shape as ``fastpath.general``): all arithmetic
is the oracle's integer (or, for the continuous verifier, float)
expressions evaluated elementwise, so reports are **identical** to the
per-client oracles ``verify_forest_reference`` /
``verify_forest_continuous_reference`` — same check counts, same failure
set (message strings included; ordering within the list may differ) — on
every forest both accept, including corrupted ones.
``tests/fastpath/test_replay.py`` asserts that on randomized optimal,
on-line and dyadic forests with injected violations.  One caveat: node
labels in failure messages print collapsed-to-int when exact (``4``, not
``4.0``), matching what the reference sees for any ``FlatForest`` input
(its ``to_forest`` collapses exact labels); a ``MergeForest`` input that
stores an exact label as a float would print it uncollapsed in the
reference only.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

from ..core.merge_tree import MergeForest, _as_int_if_exact
from ..scale.kernels import replay_walk
from .flat_forest import FlatForest, as_flat_forest

__all__ = ["replay_verify_forest", "replay_verify_forest_continuous"]


def _fmt(value: float):
    """Format a node label the way the object oracle prints it (int when
    exact, since ``FlatForest.to_forest`` collapses exact labels)."""
    return _as_int_if_exact(float(value))


def _new_report():
    from ..simulation.verify import VerificationReport

    return VerificationReport()


def _finish(report, checks: int, failures: List[str]):
    report.checks += checks
    if failures:
        report.ok = False
        report.failures.extend(failures)
    return report


def _validated_flat(forest, L, report) -> Optional[FlatForest]:
    flat = as_flat_forest(forest)
    try:
        flat.validate_for_length(L)
    except ValueError as exc:
        report.record(False, f"forest infeasible for L={L}: {exc}")
        return None
    return flat


def replay_verify_forest(
    forest: Union[MergeForest, FlatForest],
    L: int,
    model: str = "receive-two",
    buffer_bound: Optional[float] = None,
):
    """Batched equivalent of the per-client ``verify_forest_reference``."""
    if model not in ("receive-two", "receive-all"):
        raise ValueError(f"unknown model {model!r}")
    report = _new_report()
    flat = _validated_flat(forest, L, report)
    if flat is None:
        return report
    x = flat.arrivals
    n = x.size
    not_integral = x != np.floor(x)
    if not_integral.any():
        t = float(x[np.nonzero(not_integral)[0][0]])
        raise ValueError(
            "receiving programs are defined on slotted (integer) "
            f"arrival times; got {t!r} — slot the trace first"
        )
    par = flat.parent
    lengths = flat.stream_lengths(L, model)
    nonroot = par >= 0
    checks = 0
    failures: List[str] = []

    # -- demand walk (own-stream + every ancestor level) ---------------------
    # Backend-dispatched (repro.scale.kernels.replay_walk): the numpy
    # path is the original per-tree-level vectorised walk; the numba path
    # a compiled per-client scalar walk of the same expressions, which
    # re-runs the numpy walk only to enumerate failures on corrupted
    # forests — so reports are identical across backends, failure
    # ordering included.
    demanded, t2max, used_total, fail_client, fail_stream, fail_demand = (
        replay_walk(x, par, lengths, float(L), model)
    )
    checks += n  # one streams_used check per client for its own stream
    checks += used_total
    for c, s, d in zip(
        fail_client.tolist(), fail_stream.tolist(), fail_demand.tolist()
    ):
        failures.append(
            f"client {_fmt(x[c])} needs part {int(d)} of stream "
            f"{_fmt(x[s])}, which only has {float(lengths[s])}"
        )

    # -- per-client structural checks ---------------------------------------
    # Completeness, playback deadlines and (receive-two) fan-in <= 2 hold
    # for every strictly-increasing root path — the stage part ranges are
    # contiguous from part 1 and stages occupy disjoint slot ranges — so
    # on any forest FlatForest accepts they pass, as in the oracle.
    checks += 3 * n if model == "receive-two" else 2 * n

    if model == "receive-two":
        # Lemma 15: replayed buffer peak must equal min(y - r, L - (y - r)).
        peak = np.where(np.isfinite(t2max), t2max - x, 0.0)
        gap = x - x[flat.root_index]
        expected = np.minimum(gap, L - gap)
        checks += n
        for i in np.nonzero(peak != expected)[0].tolist():
            failures.append(
                f"client {_fmt(x[i])}: buffer peak {int(peak[i])} != "
                f"Lemma 15 value {int(expected[i])}"
            )
        if buffer_bound is not None:
            checks += n
            for i in np.nonzero(peak > buffer_bound)[0].tolist():
                failures.append(
                    f"client {_fmt(x[i])}: buffer peak {int(peak[i])} > "
                    f"bound {buffer_bound}"
                )

    # -- tightness: every non-root stream fully consumed --------------------
    nr = np.nonzero(nonroot)[0]
    checks += nr.size
    for i in nr[demanded[nr] != lengths[nr]].tolist():
        failures.append(
            f"stream {float(x[i])}: length {float(lengths[i])} but only "
            f"part {int(demanded[i])} ever read (not tight)"
        )
    return _finish(report, checks, failures)


def replay_verify_forest_continuous(
    forest: Union[MergeForest, FlatForest], L: float
):
    """Batched equivalent of ``verify_forest_continuous_reference``."""
    report = _new_report()
    flat = _validated_flat(forest, L, report)
    if flat is None:
        return report
    x = flat.arrivals
    n = x.size
    par = flat.parent
    lengths = flat.stream_lengths(L)
    eps = 1e-9
    checks = 0
    failures: List[str] = []
    demanded = np.zeros(n)

    def _demand_checks(streams, b, clients, typed_b):
        # ``typed_b(j)`` re-evaluates the failing piece's end with the
        # oracle's scalar arithmetic: the reference works on Python
        # int-when-exact labels, so its ``min(2y - u - lo, L)`` stays an
        # int on integer forests and its messages print ``10``, not
        # ``10.0``.  Only failing pieces pay the re-evaluation.
        nonlocal checks
        checks += streams.size
        fail = b > lengths[streams] + eps
        for j in np.nonzero(fail)[0].tolist():
            failures.append(
                f"client {_fmt(x[clients[j]])} needs position {typed_b(j)} "
                f"of stream {_fmt(x[streams[j]])} "
                f"(length {float(lengths[streams[j]])})"
            )
        np.maximum.at(demanded, streams, b)

    # Stage pieces, level by level: at level s the pair is
    # (u, lo) = (w_{s-1}, w_s) and contributes the stage's piece from u
    # (positions (2(y-u), 2y-u-lo]) and from lo ((2y-u-lo, 2(y-lo)]).
    cl = np.nonzero(par >= 0)[0]
    wprev = cl
    wcur = par[cl]
    while cl.size:
        y = x[cl]
        u = x[wprev]
        lo = x[wcur]
        a1 = 2 * (y - u)
        b1 = 2 * y - u - lo
        keep = np.minimum(b1, L) > a1
        yk, uk, lok = y[keep], u[keep], lo[keep]
        _demand_checks(
            wprev[keep],
            np.minimum(b1, L)[keep],
            cl[keep],
            lambda j: min(2 * _fmt(yk[j]) - _fmt(uk[j]) - _fmt(lok[j]), L),
        )
        a2 = 2 * y - u - lo
        b2 = 2 * (y - lo)
        keep = np.minimum(b2, L) > a2
        yk2, lok2 = y[keep], lo[keep]
        _demand_checks(
            wcur[keep],
            np.minimum(b2, L)[keep],
            cl[keep],
            lambda j: min(2 * (_fmt(yk2[j]) - _fmt(lok2[j])), L),
        )
        pcur = par[wcur]
        step = pcur >= 0
        cl = cl[step]
        wprev = wcur[step]
        wcur = pcur[step]

    # Root-stream tails: positions (2(y - r), L] — always float(L).
    root = flat.root_index
    tail = L > 2 * (x - x[root])
    n_tail = int(np.count_nonzero(tail))
    _demand_checks(
        root[tail],
        np.full(n_tail, float(L)),
        np.nonzero(tail)[0],
        lambda j: float(L),  # the oracle appends float(L) tails verbatim
    )

    # Coverage of (0, L]: the pieces are contiguous from 0 and clipped to
    # end exactly at L for every strictly-increasing path, so this check
    # passes identically to the oracle on any forest FlatForest accepts.
    checks += n

    nr = np.nonzero(par >= 0)[0]
    checks += nr.size
    bad = nr[np.abs(demanded[nr] - lengths[nr]) > eps].tolist()
    if bad:
        # Failure slow path: the oracle's running max keeps the *type* of
        # the first maximal piece (an int L from a clipped ``min(b, L)``
        # prints as ``10``, a float as ``10.0``), so re-derive the demand
        # values for the affected trees with the oracle's own piece
        # builder.  Only corrupted forests pay this.
        typed = _typed_demands(flat, {int(flat.root_index[i]) for i in bad}, L)
        for i in bad:
            failures.append(
                f"stream {float(x[i])}: length {float(lengths[i])} vs demand "
                f"{typed.get(float(x[i]), 0.0)} (not tight)"
            )
    return _finish(report, checks, failures)


def _typed_demands(flat: FlatForest, roots, L) -> dict:
    """Oracle-ordered per-stream continuous demand for the given trees.

    Replays ``_client_intervals_continuous`` client by client (arrival
    order, as the reference does) so the running ``max`` resolves ties —
    and hence Python types — identically to the reference verifier.
    """
    from ..simulation.verify import _client_intervals_continuous

    paths = flat.paths([_fmt(a) for a in flat.arrivals.tolist()])
    root_of = flat.root_index
    demanded: dict = {}
    for i in range(len(flat)):
        if int(root_of[i]) not in roots:
            continue
        for stream, _a, b in _client_intervals_continuous(paths[i], L):
            demanded[stream] = max(demanded.get(stream, 0.0), b)
    return demanded

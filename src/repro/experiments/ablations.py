"""Ablation studies for the design choices DESIGN.md calls out.

* ``ablation-dyadic``: sensitivity of the dyadic algorithm to alpha
  (original [9] used 2; the paper and [4] use phi) and beta.
* ``ablation-online-tree``: the DG algorithm's static tree size — the
  Fibonacci choice ``F_h`` vs neighbouring sizes (why Theorem 12's bracket
  is the right static pick).
* ``complexity``: O(n) Theorem 7 builder vs the O(n^2) DP of [6] —
  wall-clock scaling evidence for the paper's headline complexity claim.
* ``buffer``: bounded-buffer cost curve (Section 3.3): optimal full cost
  as the client buffer B shrinks.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..arrivals import poisson
from ..baselines.dyadic import DyadicParams, dyadic_cost
from ..core import dp
from ..core.buffers import optimal_bounded_full_cost
from ..core.fibonacci import PHI, fib, tree_size_index
from ..core.full_cost import optimal_full_cost
from ..core.offline import build_optimal_tree
from ..core.online import online_full_cost
from .harness import ExperimentResult, register


@register(
    "ablation-dyadic",
    "Dyadic (alpha, beta) sensitivity",
    "Section 4.2 (parameter discussion)",
    "Cost of the dyadic algorithm across alpha and beta on a Poisson trace.",
)
def run_ablation_dyadic(
    L: int = 100,
    lam: float = 0.5,
    horizon: float = 2000.0,
    alphas: Sequence[float] = (1.3, PHI, 2.0),
    betas: Sequence[float] = (0.25, 0.5, 0.75),
    seeds: Sequence[int] = (0, 1, 2),
) -> List[ExperimentResult]:
    rows = []
    traces = [list(poisson(lam, horizon, seed=s)) for s in seeds]
    for alpha in alphas:
        for beta in betas:
            params = DyadicParams(alpha=alpha, beta=beta)
            costs = [dyadic_cost(t, L, params) / L for t in traces if t]
            mean = sum(costs) / len(costs)
            rows.append((round(alpha, 4), beta, round(mean, 2)))
    return [
        ExperimentResult(
            title=f"Dyadic cost (streams served) on Poisson lam={lam}, "
            f"L={L}, horizon={horizon}",
            headers=("alpha", "beta", "streams served (mean)"),
            rows=rows,
            notes=["alpha = phi is competitive with alpha = 2, as [4] found."],
        )
    ]


@register(
    "ablation-online-tree",
    "DG static tree size: F_h vs neighbours",
    "Section 4.1 (choice of F_h)",
    "Full cost of the repeat-a-static-tree policy for various tree sizes.",
)
def run_ablation_online_tree(
    L: int = 100, n: int = 10_000, extra_sizes: Sequence[int] = ()
) -> List[ExperimentResult]:
    h = tree_size_index(L)
    fh = fib(h)
    sizes = sorted(
        {fib(h - 1), fh - 10, fh - 3, fh - 1, fh, fh + 1, fh + 3, fh + 10, fib(h + 1)}
        | set(extra_sizes)
    )
    opt = optimal_full_cost(L, n)
    rows = []
    for size in sizes:
        if size < 1 or size > L - 1:
            continue
        cost = _static_tree_cost(L, n, size)
        rows.append(
            (
                size,
                "F_h" if size == fh else ("F" if _is_fib(size) else ""),
                cost,
                round(cost / opt, 5),
            )
        )
    return [
        ExperimentResult(
            title=f"Static-tree policy cost by tree size (L={L}, n={n}; "
            f"F_h = {fh}, optimal = {opt})",
            headers=("tree size", "fib?", "cost", "cost/optimal"),
            rows=rows,
            notes=["Shape target: minimum at (or adjacent to) F_h."],
        )
    ]


def _is_fib(x: int) -> bool:
    from ..core.fibonacci import is_fib

    return is_fib(x)


def _static_tree_cost(L: int, n: int, size: int) -> int:
    """Cost of repeating the optimal ``size``-tree over n arrivals."""
    return online_full_cost(L, n, tree_size=size)


@register(
    "complexity",
    "O(n) construction vs O(n^2) DP (Theorems 7/10)",
    "Theorem 7 (improving the O(n^2) of [6])",
    "Wall-clock scaling of the two optimal-tree constructions.",
)
def run_complexity(
    ns: Sequence[int] = (200, 400, 800, 1600, 3200),
) -> List[ExperimentResult]:
    rows = []
    for n in ns:
        t0 = time.perf_counter()
        tree_fast = build_optimal_tree(n)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        dp.merge_cost_table(n)
        t_dp = time.perf_counter() - t0
        rows.append(
            (
                n,
                round(t_fast * 1e3, 3),
                round(t_dp * 1e3, 3),
                round(t_dp / t_fast, 1) if t_fast > 0 else "-",
                int(tree_fast.merge_cost()),
            )
        )
    return [
        ExperimentResult(
            title="Optimal tree construction: Theorem 7 O(n) vs [6] DP O(n^2)",
            headers=("n", "O(n) ms", "DP ms", "speedup", "M(n)"),
            rows=rows,
            notes=[
                "Shape target: DP time grows ~4x per doubling, O(n) ~2x; "
                "speedup widens with n.",
            ],
        )
    ]


@register(
    "buffer",
    "Bounded client buffers (Section 3.3 / Theorem 16)",
    "Section 3.3",
    "Optimal full cost as the buffer bound B shrinks below L/2.",
)
def run_buffer(
    L: int = 100, n: int = 2000, Bs: Sequence[int] = (1, 2, 5, 10, 20, 35, 50)
) -> List[ExperimentResult]:
    unbounded = optimal_full_cost(L, n)
    rows = []
    for B in Bs:
        if 2 * B > L:
            continue
        cost = optimal_bounded_full_cost(L, n, B)
        rows.append((B, cost, round(cost / unbounded, 4)))
    return [
        ExperimentResult(
            title=f"B-bounded optimal full cost (L={L}, n={n}; "
            f"unbounded = {unbounded})",
            headers=("B", "F_B(L,n)", "vs unbounded"),
            rows=rows,
            notes=[
                "Shape target: monotone non-increasing in B; equals the "
                "unbounded cost once B reaches the unbounded optimum's "
                "largest tree span.",
            ],
        )
    ]

"""The batched slot-sweep simulation kernel.

:class:`~repro.simulation.server.Simulation` drives every policy through
a heap-ordered event queue: one Python callback per arrival, per slot
end, and per stream end, plus a reschedule (now a lazy postpone) per
Lemma 1 stream extension.  Since PR 3 every *policy decision* inside
those callbacks is flat, so the queue itself — O(n log n) heap churn and
O(n) Python frames — dominates every run.  This module retires the queue
for the policies whose realised run is a pure function of the slotted
trace, and keeps the event-driven ``Simulation`` as the oracle the
equivalence tests (``tests/fleet/test_engine_equivalence.py``) replay
against.

Which policies are slot-sweepable, and why
------------------------------------------

A policy can be swept instead of simulated when its final merge forest
and final stream lengths depend only on (a) the multiset of served slot
ends (or raw arrival times for immediate policies) and (b) per-node
quantities the flat forest already carries — the parent ``p(x)`` and the
subtree's last arrival ``z(x)``.  Every stream's realised interval is
then ``[x, x + len(x))`` with ``len`` the Lemma 1 value ``2 z - x - p``
(roots: ``L``), because the event-driven server only ever *extends* a
live stream monotonically toward exactly that value — the last extension
wins, and the batched kernel evaluates it directly:

* ``delay-guaranteed`` — forest is the static tiled Fibonacci template
  over *all* slots (:func:`~repro.core.online.build_online_flat_forest`);
* ``offline-optimal`` — the Theorem 10/12 forest over all slots
  (:func:`~repro.core.full_cost.build_optimal_flat_forest`);
* ``general-offline`` — the [6] optimum over the *served* slot ends
  (:func:`~repro.fastpath.general.optimal_flat_forest_general`);
* ``batched-dyadic`` — the (alpha, beta)-dyadic forest over served slot
  ends (:func:`~repro.fastpath.dyadic.dyadic_flat_forest`, bit-identical
  to the ``DyadicFlatOnline`` pushes the event policy performs);
* ``immediate-dyadic`` — the dyadic forest over the raw arrival times;
* ``pure-batching`` / ``unicast`` — every served slot end / every
  arrival is a root of length ``L``.

``HybridPolicy`` is not slot-sweepable in one shot — its DG/dyadic mode
bit is a stateful function of a sliding rate window with hysteresis, so
the forest a slot contributes depends on the arrival *prefix* through
the mode trajectory, not on the slot multiset.  But the trajectory
itself is a pure function of the per-slot arrival **counts**, so
:func:`simulate_segmented` retires the hybrid's event queue too:
bucket arrivals once, run the sequential hysteresis scan
(:func:`repro.scale.kernels.hysteresis_scan` — backend-dispatched like
every scale-tier kernel), cut the trace at mode switches, and sweep
each constant-mode segment with the construction above — DG segments
are the tiled Fibonacci template anchored at mode entry (a mode-exit
cut is a preorder prefix, hence a valid forest whose ``z`` values
already encode that extensions stopped), dyadic segments are
``dyadic_flat_forest`` over the segment's served slot ends (exact
because the event policy resets its dyadic builder at every mode
entry).  The concatenated per-segment forests evaluate stream ends
closed-form via Lemma 1 exactly as the single-policy kinds do.  This
is the template for any policy with feedback from realised load to
structure (admission control, load-shedding, QoE-adaptive selection):
compute the feedback trajectory from counts, then slot-sweep the
segments.

Exactness contract
------------------

Arrivals are bucketed with ``searchsorted`` against the *float* slot-end
times the event loop itself uses (``(k+1) * slot``), so edge-of-slot
arrivals land in exactly the slot the event ordering (SlotEnd < Arrival
at equal timestamps) gives them.  Metrics and parent arrays are
bit-identical to the event-driven run for ``slot`` values that are
powers of two (including the default 1.0) — the same binary-exactness
contract as ``fastpath.general`` — because then the per-policy scale
conversions (``label / slot``, ``length * slot``) are exact in IEEE
arithmetic.  On other slot values, deviations are confined to the last
ULP of never-extended leaf stream lengths.

The one observable difference by construction: the oracle's
``BandwidthMetrics.intervals`` list is in stream *finish* order (end
time, ties by extension sequence), while the kernel records intervals
sorted by ``(end, start)``.  :func:`assert_equivalent_run` canonicalises
both sides before comparing; every derived metric is order-independent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..arrivals.traces import ArrivalTrace
from ..baselines.dyadic import DyadicParams
from ..core.full_cost import build_optimal_flat_forest
from ..core.online import build_online_flat_forest
from ..fastpath.dyadic import dyadic_flat_forest
from ..fastpath.flat_forest import FlatForest
from ..scale.kernels import bucket_slots, hysteresis_scan
from ..simulation.metrics import BandwidthMetrics
from ..simulation.server import Simulation
from ..simulation.verify import VerificationReport, verify_forest, verify_forest_continuous

__all__ = [
    "FleetPolicy",
    "FLEET_POLICIES",
    "SEGMENTED",
    "SLOT_SWEEPABLE",
    "BatchedResult",
    "simulate_batched",
    "simulate_segmented",
    "make_event_policy",
    "simulate_event",
    "assert_equivalent_run",
]

#: policy kinds whose whole run is one slot sweep (no mode feedback).
SLOT_SWEEPABLE = (
    "delay-guaranteed",
    "offline-optimal",
    "general-offline",
    "batched-dyadic",
    "immediate-dyadic",
    "pure-batching",
    "unicast",
)

#: feedback-coupled kinds swept per mode segment (see module docstring).
SEGMENTED = ("hybrid",)

#: every kind the fleet tier accepts; ``simulate_batched`` dispatches
#: SEGMENTED kinds to :func:`simulate_segmented` transparently.
FLEET_POLICIES = SLOT_SWEEPABLE + SEGMENTED

_IMMEDIATE = ("immediate-dyadic", "unicast")


@dataclass(frozen=True)
class FleetPolicy:
    """A declarative policy spec the batched kernel can sweep.

    The event-driven :mod:`repro.simulation.policies` classes are
    callback objects; the kernel needs only the *kind* (plus dyadic
    parameters), and :func:`make_event_policy` builds the matching
    callback policy for oracle runs.
    """

    kind: str
    params: Optional[DyadicParams] = None
    #: hybrid-only knobs (ignored by every other kind): sliding-window
    #: length and the hysteresis thresholds of the mode scan.
    window_slots: int = 20
    rate_high: float = 1.0
    rate_low: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FLEET_POLICIES:
            raise ValueError(
                f"unknown policy kind {self.kind!r}; "
                f"choose from {FLEET_POLICIES}"
            )
        if self.params is not None and (
            "dyadic" not in self.kind and self.kind not in SEGMENTED
        ):
            raise ValueError(f"{self.kind} takes no dyadic params")
        if self.kind == "hybrid":
            if self.window_slots < 1:
                raise ValueError("window_slots must be >= 1")
            if not 0 <= self.rate_low <= self.rate_high:
                raise ValueError("need 0 <= rate_low <= rate_high")

    @property
    def uses_slots(self) -> bool:
        return self.kind not in _IMMEDIATE

    # -- conveniences --------------------------------------------------------

    @staticmethod
    def delay_guaranteed() -> "FleetPolicy":
        return FleetPolicy("delay-guaranteed")

    @staticmethod
    def offline_optimal() -> "FleetPolicy":
        return FleetPolicy("offline-optimal")

    @staticmethod
    def general_offline() -> "FleetPolicy":
        return FleetPolicy("general-offline")

    @staticmethod
    def batched_dyadic(params: Optional[DyadicParams] = None) -> "FleetPolicy":
        return FleetPolicy("batched-dyadic", params)

    @staticmethod
    def immediate_dyadic(params: Optional[DyadicParams] = None) -> "FleetPolicy":
        return FleetPolicy("immediate-dyadic", params)

    @staticmethod
    def pure_batching() -> "FleetPolicy":
        return FleetPolicy("pure-batching")

    @staticmethod
    def unicast() -> "FleetPolicy":
        return FleetPolicy("unicast")

    @staticmethod
    def hybrid(
        params: Optional[DyadicParams] = None,
        window_slots: int = 20,
        rate_high: float = 1.0,
        rate_low: float = 0.5,
    ) -> "FleetPolicy":
        return FleetPolicy("hybrid", params, window_slots, rate_high, rate_low)


@dataclass
class BatchedResult:
    """Everything a batched run produces — flat arrays, no per-client objects.

    The array twin of :class:`~repro.simulation.server.SimulationResult`:
    ``client_node[i]`` indexes the stream node serving client ``i`` in
    :attr:`forest` (-1 when the client was never served — only possible
    for arrivals past the last slot end, which the event loop also leaves
    unassigned), ``client_service[i]`` its service time (NaN when
    unserved).
    """

    policy_name: str
    L: int
    slot: float
    horizon: float
    metrics: BandwidthMetrics
    #: realised forest with labels on the simulation clock; None when the
    #: run started no streams (empty trace under an arrival-driven policy)
    forest: Optional[FlatForest]
    #: per-node final stream lengths on the simulation clock
    lengths: np.ndarray
    client_arrival: np.ndarray
    client_service: np.ndarray
    client_node: np.ndarray
    #: (slot_index, mode) switch history for segmented kinds, matching the
    #: event policy's ``mode_log`` entry for entry; None for pure sweeps.
    mode_log: Optional[List[Tuple[int, str]]] = None
    _paths: Optional[List[Tuple[float, ...]]] = field(default=None, repr=False)

    def flat_forest(self) -> FlatForest:
        """The realised merge forest (same contract as the event result)."""
        if self.forest is None:
            raise ValueError("run started no streams — nothing to reconstruct")
        return self.forest

    def max_startup_delay(self) -> float:
        served = self.client_node >= 0
        if not served.any():
            return 0.0
        return float(
            np.max(self.client_service[served] - self.client_arrival[served])
        )

    def client_paths(self) -> List[Tuple[float, ...]]:
        """Per-client receiving paths (root-first label tuples), lazily.

        Shares tuple cells via ``FlatForest.paths``; unserved clients get
        an empty tuple.
        """
        if self._paths is None:
            node_paths = self.flat_forest().paths() if self.forest is not None else []
            self._paths = [
                node_paths[int(k)] if k >= 0 else () for k in self.client_node
            ]
        return self._paths

    def verify(self, continuous: bool = False) -> VerificationReport:
        """Replay-verify the realised forest, mirroring ``verify_simulation``.

        Checks the forest replay, measured-vs-analytic bandwidth, and that
        every client was assigned a node that exists in the forest.
        """
        flat = self.flat_forest()
        report = (
            verify_forest_continuous(flat, self.L)
            if continuous
            else verify_forest(flat, self.L)
        )
        measured = self.metrics.total_units
        analytic = flat.full_cost(self.L)
        report.record(
            abs(measured - analytic) <= 1e-6 * max(1.0, abs(analytic)),
            f"measured bandwidth {measured} != analytic full cost {analytic}",
        )
        report.record(
            bool((self.client_node >= 0).all()),
            "some clients were never served",
        )
        return report


def _served_slots(
    times: np.ndarray, slot_ends: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """``(client_slot, served_idx)`` via searchsorted pre-bucketing.

    ``client_slot[i]`` is the slot whose end serves arrival ``i`` under
    the event ordering (SlotEnd fires before an Arrival at the same
    timestamp, so an arrival exactly on a boundary belongs to the *next*
    slot — ``side="right"`` against the float end times encodes that
    rule exactly).  ``served_idx`` is the sorted set of non-empty slots.

    Backend-dispatched (:func:`repro.scale.kernels.bucket_slots`): the
    numpy path is the original ``searchsorted`` expression; the numba
    path a compiled two-pointer sweep, exact for the sorted arrivals the
    trace contract guarantees.  Arrivals past the last slot end are
    never flushed by any SlotEnd — the event loop leaves them parked
    forever; both backends mirror that as -1.
    """
    return bucket_slots(times, slot_ends)


def _metrics_from_arrays(
    L: int,
    n_clients: int,
    starts: np.ndarray,
    ends: np.ndarray,
    is_root: np.ndarray,
) -> BandwidthMetrics:
    """A ``BandwidthMetrics`` carrying the batched intervals.

    Intervals are recorded in ``(end, start)`` order — the deterministic
    stand-in for the oracle's finish order (ties there depend on
    extension sequence numbers; all derived metrics are order-free).
    """
    metrics = BandwidthMetrics(L=L)
    order = np.lexsort((starts, ends))
    metrics.intervals = list(
        zip(starts[order].tolist(), ends[order].tolist())
    )
    metrics.streams_started = int(starts.size)
    metrics.roots_started = int(np.count_nonzero(is_root))
    metrics.clients_served = n_clients
    return metrics


def simulate_batched(
    L: int,
    trace: ArrivalTrace,
    policy: FleetPolicy,
    slot: float = 1.0,
) -> BatchedResult:
    """Run one slot-sweepable policy without an event queue.

    The batched equivalent of ``Simulation(L, trace, policy, slot).run()``
    for every kind in :data:`SLOT_SWEEPABLE` — same metrics, same flat
    forest (see the module docstring for the exactness contract).
    """
    if policy.kind in SEGMENTED:
        return simulate_segmented(L, trace, policy, slot)
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    if slot <= 0:
        raise ValueError(f"slot must be positive, got {slot}")
    times = np.asarray(trace.times, dtype=np.float64)
    n_clients = times.size
    kind = policy.kind
    params = policy.params or DyadicParams()

    if policy.uses_slots:
        nslots = trace.num_slots(slot)
        # The exact float end times the event loop schedules SlotEnd at.
        slot_ends = np.arange(1, nslots + 1, dtype=np.float64) * slot
        client_slot, served_idx = _served_slots(times, slot_ends)
        served_ends = slot_ends[served_idx]
    else:
        client_slot = served_idx = served_ends = None  # type: ignore[assignment]

    forest: Optional[FlatForest] = None
    lengths = np.empty(0, dtype=np.float64)
    client_node = np.full(n_clients, -1, dtype=np.intp)
    client_service = np.full(n_clients, math.nan, dtype=np.float64)

    if kind == "delay-guaranteed":
        # Static tiled Fibonacci template over *every* slot; the sim works
        # in the scaled frame throughout, so build z/lengths there too.
        parent = build_online_flat_forest(L, nslots).parent
        forest = FlatForest(slot_ends, parent)
        lengths = forest.stream_lengths(L * slot)
        client_node = np.where(client_slot >= 0, client_slot, -1)

    elif kind == "offline-optimal":
        flat_units = build_optimal_flat_forest(L, nslots)
        forest = FlatForest(slot_ends, flat_units.parent)
        lengths = flat_units.stream_lengths(L) * slot
        client_node = np.where(client_slot >= 0, client_slot, -1)

    elif kind == "general-offline":
        if served_idx.size == 0:
            raise ValueError("need at least one served slot")
        from ..fastpath.general import optimal_flat_forest_general

        push_vals = served_ends / slot  # the event policy's `label / scale`
        flat_units = optimal_flat_forest_general(push_vals.tolist(), L)
        forest = FlatForest(served_ends, flat_units.parent)
        lengths = flat_units.stream_lengths(L) * slot
        client_node = _nodes_among_served(client_slot, served_idx)

    elif kind == "batched-dyadic":
        if served_idx.size:
            push_vals = served_ends / slot
            flat_units = dyadic_flat_forest(push_vals, L, params)
            forest = FlatForest(served_ends, flat_units.parent)
            lengths = flat_units.stream_lengths(L) * slot
        client_node = _nodes_among_served(client_slot, served_idx)

    elif kind == "pure-batching":
        if served_idx.size:
            forest = FlatForest(
                served_ends, np.full(served_idx.size, -1, dtype=np.intp)
            )
            lengths = np.full(served_idx.size, L * slot, dtype=np.float64)
        client_node = _nodes_among_served(client_slot, served_idx)

    elif kind == "immediate-dyadic":
        if n_clients:
            forest = dyadic_flat_forest(times, L, params)
            lengths = forest.stream_lengths(L)
        client_node = np.arange(n_clients, dtype=np.intp)
        client_service = times.copy()

    elif kind == "unicast":
        if n_clients:
            forest = FlatForest(times, np.full(n_clients, -1, dtype=np.intp))
            lengths = np.full(n_clients, float(L), dtype=np.float64)
        client_node = np.arange(n_clients, dtype=np.intp)
        client_service = times.copy()

    if policy.uses_slots:
        served = client_slot >= 0
        client_service = np.where(
            served, slot_ends[np.maximum(client_slot, 0)], math.nan
        )
        client_node = np.where(served, client_node, -1)

    if forest is not None:
        starts = forest.arrivals
        is_root = forest.is_root
        metrics = _metrics_from_arrays(
            L, n_clients, starts, starts + lengths, is_root
        )
    else:
        metrics = BandwidthMetrics(L=L)
        metrics.clients_served = n_clients

    return BatchedResult(
        policy_name=kind,
        L=L,
        slot=slot,
        horizon=trace.horizon,
        metrics=metrics,
        forest=forest,
        lengths=lengths,
        client_arrival=times,
        client_service=client_service,
        client_node=client_node,
    )


def _nodes_among_served(
    client_slot: np.ndarray, served_idx: np.ndarray
) -> np.ndarray:
    """Map each client's slot to its node index among the served slots."""
    node = np.searchsorted(served_idx, np.maximum(client_slot, 0))
    return np.where(client_slot >= 0, node, -1).astype(np.intp)


def simulate_segmented(
    L: int,
    trace: ArrivalTrace,
    policy: FleetPolicy,
    slot: float = 1.0,
) -> BatchedResult:
    """Run a feedback-coupled policy as a sequence of slot sweeps.

    The batched equivalent of the event-driven ``HybridPolicy`` run:
    bucket arrivals once, compute the DG/dyadic mode trajectory with the
    backend-dispatched hysteresis scan over per-slot arrival counts, cut
    the trace at mode switches, and sweep each constant-mode segment
    closed-form — DG segments are the tiled Fibonacci template anchored
    at mode entry (the mode-exit cut is a preorder prefix, so its ``z``
    values already encode that extensions stopped), dyadic segments are
    the (alpha, beta)-dyadic forest over the segment's *served* slot ends
    (exact because the event policy starts a fresh ``DyadicFlatOnline``
    at every dyadic mode entry).  Per-segment forests concatenate into
    one flat forest: labels stay strictly increasing and no tree spans a
    segment boundary, so global ``z`` values equal the per-segment ones.

    Same exactness contract as :func:`simulate_batched`: bit-identical
    metrics, parent arrays, and mode log for power-of-two ``slot``.
    """
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    if slot <= 0:
        raise ValueError(f"slot must be positive, got {slot}")
    if policy.kind not in SEGMENTED:
        raise ValueError(f"{policy.kind!r} is not a segmented policy kind")
    params = policy.params or DyadicParams()
    times = np.asarray(trace.times, dtype=np.float64)
    n_clients = times.size
    nslots = trace.num_slots(slot)
    slot_ends = np.arange(1, nslots + 1, dtype=np.float64) * slot
    client_slot, served_idx = _served_slots(times, slot_ends)

    mode_log: List[Tuple[int, str]] = []
    labels_parts: List[np.ndarray] = []
    parent_parts: List[np.ndarray] = []
    length_parts: List[np.ndarray] = []
    node_of_slot = np.full(nslots, -1, dtype=np.intp)
    offset = 0
    if nslots:
        in_slot = client_slot >= 0
        counts = np.bincount(
            client_slot[in_slot], minlength=nslots
        ).astype(np.int64)
        mode = hysteresis_scan(
            counts, policy.window_slots, policy.rate_high, policy.rate_low
        )
        # The event policy starts in dyadic mode (0) and logs each switch
        # at the slot it takes effect; plain-int entries keep the log's
        # repr identical to the oracle's.
        switches = np.flatnonzero(np.diff(np.concatenate(([0], mode))) != 0)
        mode_log = [
            (int(k), "dg" if mode[k] else "dyadic") for k in switches.tolist()
        ]
        is_served = np.zeros(nslots, dtype=bool)
        is_served[served_idx] = True
        cuts = (np.flatnonzero(np.diff(mode) != 0) + 1).tolist()
        for s, e in zip([0] + cuts, cuts + [nslots]):
            if mode[s]:
                # DG serves every slot of the segment, empty or not, and
                # works in the scaled frame (labels are slot-end times).
                n_seg = e - s
                seg_labels = slot_ends[s:e]
                seg_parent = build_online_flat_forest(L, n_seg).parent
                seg_len = FlatForest(seg_labels, seg_parent).stream_lengths(
                    L * slot
                )
                node_of_slot[s:e] = offset + np.arange(n_seg)
            else:
                seg_served = np.flatnonzero(is_served[s:e]) + s
                if seg_served.size == 0:
                    continue
                seg_labels = slot_ends[seg_served]
                flat_units = dyadic_flat_forest(seg_labels / slot, L, params)
                seg_parent = flat_units.parent
                seg_len = flat_units.stream_lengths(L) * slot
                node_of_slot[seg_served] = offset + np.arange(seg_served.size)
            labels_parts.append(seg_labels)
            parent_parts.append(
                np.where(seg_parent < 0, -1, seg_parent + offset)
            )
            length_parts.append(seg_len)
            offset += seg_labels.size

    forest: Optional[FlatForest] = None
    lengths = np.empty(0, dtype=np.float64)
    if labels_parts:
        forest = FlatForest(
            np.concatenate(labels_parts),
            np.concatenate(parent_parts).astype(np.intp),
        )
        lengths = np.concatenate(length_parts)
        starts = forest.arrivals
        metrics = _metrics_from_arrays(
            L, n_clients, starts, starts + lengths, forest.is_root
        )
    else:
        metrics = BandwidthMetrics(L=L)
        metrics.clients_served = n_clients

    if nslots:
        served = client_slot >= 0
        client_service = np.where(
            served, slot_ends[np.maximum(client_slot, 0)], math.nan
        )
        # Any slot with arrivals is served in either mode, so the lookup
        # never hits a -1 entry for a served client.
        client_node = np.where(
            served, node_of_slot[np.maximum(client_slot, 0)], -1
        ).astype(np.intp)
    else:
        client_service = np.full(n_clients, math.nan, dtype=np.float64)
        client_node = np.full(n_clients, -1, dtype=np.intp)

    return BatchedResult(
        policy_name=policy.kind,
        L=L,
        slot=slot,
        horizon=trace.horizon,
        metrics=metrics,
        forest=forest,
        lengths=lengths,
        client_arrival=times,
        client_service=client_service,
        client_node=client_node,
        mode_log=mode_log,
    )


# ---------------------------------------------------------------------------
# Oracle pairing: the matching event-driven run
# ---------------------------------------------------------------------------


def make_event_policy(policy: FleetPolicy, L: int, trace: ArrivalTrace, slot: float = 1.0):
    """The event-driven :class:`~repro.simulation.policies.Policy` that
    realises the same run ``simulate_batched`` sweeps — the oracle half
    of every equivalence test and benchmark."""
    from ..simulation.policies import (
        BatchedDyadicPolicy,
        DelayGuaranteedPolicy,
        GeneralOfflinePolicy,
        ImmediateDyadicPolicy,
        OfflineOptimalPolicy,
        PureBatchingPolicy,
        UnicastPolicy,
    )

    kind = policy.kind
    if kind == "delay-guaranteed":
        return DelayGuaranteedPolicy(L)
    if kind == "offline-optimal":
        return OfflineOptimalPolicy(L, trace.num_slots(slot))
    if kind == "general-offline":
        ends = [t / slot for t in trace.slot_end_times(slot)]
        return GeneralOfflinePolicy(L, ends)
    if kind == "batched-dyadic":
        return BatchedDyadicPolicy(L, policy.params)
    if kind == "immediate-dyadic":
        return ImmediateDyadicPolicy(L, policy.params)
    if kind == "pure-batching":
        return PureBatchingPolicy(L)
    if kind == "unicast":
        return UnicastPolicy(L)
    if kind == "hybrid":
        from ..simulation.hybrid import HybridPolicy

        return HybridPolicy(
            L,
            policy.params,
            window_slots=policy.window_slots,
            rate_high=policy.rate_high,
            rate_low=policy.rate_low,
        )
    raise ValueError(f"no event policy for {kind!r}")  # pragma: no cover


def simulate_event(
    L: int, trace: ArrivalTrace, policy: FleetPolicy, slot: float = 1.0
):
    """Run the event-driven oracle for a :class:`FleetPolicy` spec."""
    return Simulation(L, trace, make_event_policy(policy, L, trace, slot), slot).run()


def assert_equivalent_run(event_result, batched: BatchedResult) -> None:
    """Assert an event-driven run and a batched run realised the same system.

    Canonical comparison (used by tests *and* asserted inside benchmark
    runs): identical metric counters, identical sorted interval arrays,
    identical total bandwidth, identical flat-forest labels and parent
    arrays, and identical per-client service times / serving labels.
    """
    em, bm = event_result.metrics, batched.metrics
    assert em.L == bm.L, (em.L, bm.L)
    assert em.streams_started == bm.streams_started, "streams_started differ"
    assert em.roots_started == bm.roots_started, "roots_started differ"
    assert em.clients_served == bm.clients_served, "clients_served differ"

    e_log = list(getattr(event_result, "mode_log", None) or [])
    b_log = list(batched.mode_log or [])
    assert e_log == b_log, f"mode logs differ: {e_log} != {b_log}"

    ea = np.asarray(em.intervals, dtype=np.float64).reshape(-1, 2)
    ba = np.asarray(bm.intervals, dtype=np.float64).reshape(-1, 2)
    e_order = np.lexsort((ea[:, 0], ea[:, 1])) if ea.size else slice(None)
    assert np.array_equal(ea[e_order], ba), "interval multisets differ"
    # The multisets are identical, so totals agree up to summation order
    # (bit-identical on slotted runs, last-ULP on continuous float traces).
    et, bt = float(em.total_units), float(bm.total_units)
    assert abs(et - bt) <= 1e-9 * max(1.0, abs(bt)), "total bandwidth differs"

    if event_result.streams:
        ef, bf = event_result.flat_forest(), batched.flat_forest()
        assert np.array_equal(ef.arrivals, bf.arrivals), "stream labels differ"
        assert np.array_equal(ef.parent, bf.parent), "parent arrays differ"
    else:
        assert batched.forest is None, "batched run invented streams"

    served_labels = {}
    if batched.forest is not None:
        labels = batched.forest.arrivals
        served_labels = {
            i: labels[int(k)] for i, k in enumerate(batched.client_node) if k >= 0
        }
    assert len(event_result.clients) == batched.client_arrival.size
    for i, client in enumerate(event_result.clients):
        if client.tree_label is None:
            assert i not in served_labels, f"client {i} served only in batch"
            continue
        assert client.tree_label == served_labels.get(i), f"client {i} label"
        assert client.service_time == batched.client_service[i], f"client {i} service"
        assert client.path == batched.client_paths()[i], f"client {i} path"

"""Shared pytest fixtures and hypothesis strategies."""

from __future__ import annotations

import random
from typing import List

import pytest
from hypothesis import strategies as st

from repro.core.merge_tree import MergeNode, MergeTree


# ---------------------------------------------------------------------------
# hypothesis strategies
# ---------------------------------------------------------------------------

#: sizes small enough for the O(n^2) DP oracle
small_n = st.integers(min_value=1, max_value=120)

#: stream lengths for full-cost tests
small_L = st.integers(min_value=1, max_value=60)

#: sizes safe for exhaustive (Catalan) enumeration
tiny_n = st.integers(min_value=1, max_value=8)


@st.composite
def preorder_tree(draw, max_n: int = 24, start: int = 0) -> MergeTree:
    """A uniformly-structured random merge tree with the preorder property.

    Built by the same last-root-child recursion as the optimal trees, but
    with arbitrary split points — yields any preorder-property tree shape.
    """
    n = draw(st.integers(min_value=1, max_value=max_n))

    def build(offset: int, size: int) -> MergeNode:
        if size == 1:
            return MergeNode(offset)
        h = draw(st.integers(min_value=1, max_value=size - 1))
        left = build(offset, h)
        right = build(offset + h, size - h)
        right.parent = left
        left.children.append(right)
        return left

    return MergeTree(build(start, n))


@st.composite
def increasing_times(
    draw, min_size: int = 1, max_size: int = 40, horizon: float = 200.0
) -> List[float]:
    """Strictly increasing arrival times in [0, horizon) on a 1e-3 grid.

    Media timelines have finite resolution; the grid keeps hypothesis away
    from denormal-float gaps that no real workload produces (the dyadic
    baseline rejects sub-1e-12 relative gaps by design).
    """
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    grid = int(horizon * 1000) - 1
    ticks = draw(
        st.lists(
            st.integers(min_value=0, max_value=grid),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return [t / 1000.0 for t in sorted(ticks)]


@st.composite
def increasing_times_exact(
    draw, min_size: int = 1, max_size: int = 40, horizon: float = 200.0
) -> List[float]:
    """Strictly increasing times on a dyadic 1/1024 grid — float-exact.

    Every value (and every sum/difference the merge-cost DPs form from
    them at these magnitudes) is exactly representable in binary64, so
    reference and fastpath arithmetic are both exact and bit-identical
    results can be asserted outright.  Use :func:`increasing_times` (the
    1e-3 grid) when testing tolerance-level agreement on timelines whose
    decimals do not have finite binary expansions.
    """
    n = draw(st.integers(min_value=min_size, max_value=max_size))
    grid = int(horizon * 1024) - 1
    ticks = draw(
        st.lists(
            st.integers(min_value=0, max_value=grid),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return [t / 1024.0 for t in sorted(ticks)]


# ---------------------------------------------------------------------------
# plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def paper_tree8() -> MergeTree:
    """The unique optimal merge tree for n = 8 (paper Figs. 3-4)."""
    from repro.core.offline import build_optimal_tree

    return build_optimal_tree(8)

"""Tests for the scenario library and the fleet CLI front end."""

from __future__ import annotations

import pytest

from repro.arrivals import constant_rate, poisson
from repro.arrivals.traces import ArrivalTrace
from repro.fleet import (
    SCENARIOS,
    compose,
    constant_poisson_blend,
    diurnal,
    flash_crowd,
    inject,
    premiere_drop,
    scenario_workload,
    thinned,
)
from repro.fleet.cli import fleet_main
from repro.multiplex import Catalog


def _valid(trace: ArrivalTrace) -> None:
    ts = trace.times
    assert all(b > a for a, b in zip(ts, ts[1:]))
    assert not ts or (ts[0] >= 0 and ts[-1] < trace.horizon)


BASE = poisson(0.5, 120.0, seed=4)


class TestTransformers:
    def test_inject_merges_and_nudges(self):
        out = inject([1.0, 1.0, 500.0, BASE.times[0]])(BASE)
        _valid(out)
        # the out-of-horizon point is dropped; duplicates survive nudged
        assert len(out) == len(BASE) + 3

    def test_flash_crowd_adds_exactly_clients(self):
        crowd = flash_crowd(at=40.0, clients=25, spread=2.0, seed=8)
        out = crowd(BASE)
        _valid(out)
        assert len(out) == len(BASE) + 25
        added = sorted(set(out.times) - set(BASE.times))
        assert all(40.0 <= t < 42.0 + 1e-6 for t in added)

    def test_flash_crowd_deterministic(self):
        crowd = lambda: flash_crowd(at=40.0, clients=25, spread=2.0, seed=8)
        assert crowd()(BASE).times == crowd()(BASE).times

    def test_premiere_drop_decays(self):
        out = premiere_drop(clients=400, decay=20.0, seed=3)(BASE)
        _valid(out)
        added = sorted(set(out.times) - set(BASE.times))
        assert len(added) > 100
        early = sum(1 for t in added if t < 40.0)
        late = sum(1 for t in added if t >= 80.0)
        assert early > 3 * max(1, late)

    def test_premiere_outside_horizon_raises(self):
        with pytest.raises(ValueError, match="horizon"):
            premiere_drop(clients=10, decay=5.0, at=500.0)(BASE)

    def test_diurnal_thins_to_subset(self):
        out = diurnal(period=60.0, depth=0.9, seed=5)(BASE)
        _valid(out)
        assert set(out.times) <= set(BASE.times)
        assert 0 < len(out) < len(BASE)

    def test_diurnal_depth_zero_is_noop(self):
        assert diurnal(period=60.0, depth=0.0, seed=5)(BASE).times == BASE.times

    def test_thinned(self):
        out = thinned(0.5, seed=6)(BASE)
        _valid(out)
        assert set(out.times) <= set(BASE.times)
        assert abs(len(out) / len(BASE) - 0.5) < 0.2

    def test_compose_applies_left_to_right(self):
        pipeline = compose(
            thinned(0.7, seed=1),
            flash_crowd(at=10.0, clients=5, spread=1.0, seed=2),
        )
        out = pipeline(BASE)
        _valid(out)

    def test_blend_contains_the_drumbeat(self):
        out = constant_poisson_blend(10.0, 2.0, 120.0, seed=9)
        _valid(out)
        beat = constant_rate(10.0, 120.0)
        assert set(beat.times) <= set(out.times)

    def test_validation(self):
        with pytest.raises(ValueError):
            flash_crowd(at=0.0, clients=0, spread=1.0)
        with pytest.raises(ValueError):
            flash_crowd(at=0.0, clients=5, spread=0.0)
        with pytest.raises(ValueError):
            diurnal(period=60.0, depth=1.5)
        with pytest.raises(ValueError):
            thinned(0.0)
        with pytest.raises(ValueError):
            premiere_drop(clients=5, decay=0.0)


class TestScenarioWorkload:
    @pytest.fixture(scope="class")
    def catalog(self):
        return Catalog.zipf(8, duration_minutes=30.0)

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_each_scenario_builds_a_full_workload(self, catalog, name):
        workload = scenario_workload(name, catalog, 0.5, 60.0, seed=11)
        assert set(workload) == {o.name for o in catalog}
        for trace in workload.values():
            _valid(trace)
            assert trace.horizon == 60.0

    def test_scenarios_are_seed_deterministic(self, catalog):
        a = scenario_workload("flash", catalog, 0.5, 60.0, seed=11)
        b = scenario_workload("flash", catalog, 0.5, 60.0, seed=11)
        assert all(a[k].times == b[k].times for k in a)

    def test_flash_hits_the_top_title(self, catalog):
        plain = scenario_workload("zipf", catalog, 0.5, 60.0, seed=11)
        flash = scenario_workload("flash", catalog, 0.5, 60.0, seed=11)
        top = catalog.popularity_rank()[0].name
        assert len(flash[top]) > len(plain[top])

    def test_unknown_scenario_raises(self, catalog):
        with pytest.raises(KeyError, match="unknown scenario"):
            scenario_workload("nope", catalog, 0.5, 60.0)


class TestFleetCli:
    def test_end_to_end_hundred_objects(self, capsys):
        rc = fleet_main([
            "--objects", "100", "--horizon", "60", "--mean-interarrival", "0.2",
            "--delay", "2.0", "--seed", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fleet report" in out
        assert "capacity frontier" in out
        assert "admission report" in out

    def test_no_frontier_flag(self, capsys):
        rc = fleet_main([
            "--objects", "20", "--horizon", "30", "--mean-interarrival", "0.5",
            "--scenario", "diurnal", "--no-frontier",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "capacity frontier" not in out

    def test_dispatch_from_main_cli(self, capsys):
        from repro.cli import main

        rc = main([
            "fleet", "--objects", "10", "--horizon", "30",
            "--mean-interarrival", "0.5", "--no-frontier",
        ])
        assert rc == 0
        assert "fleet report" in capsys.readouterr().out

"""Incremental forest maintenance vs per-epoch full rebuild — the
``BENCH_live.json`` trajectory.

Two modes (same layout as ``bench_fleet.py``):

* ``pytest benchmarks/bench_live.py --benchmark-only`` — smoke-size
  pytest-benchmark runs (small n; every run verifies the incremental
  forest node for node against the batch builder);
* ``python benchmarks/bench_live.py`` (or ``make bench-live``) — the
  full sweep, writing ``BENCH_live.json`` (schema
  ``repro.fastpath.bench.v1``) at the repo root.

"Reference" is what a live daemon without :class:`IncrementalFlatForest`
would have to do: hold every arrival and rebuild the whole-prefix forest
with ``dyadic_flat_forest`` each epoch.  "Fast" is the incremental path
the live tier actually runs — ``push_batch`` per epoch plus fence-lagged
``evict_committable``, keeping live memory at O(open window).  At
sampled epochs the incremental state (committed trees + live remainder,
concatenated in global id order) is asserted **identical** — arrivals,
parents, and subtree maxima ``z`` — to the batch build of the same
prefix.  The sweep enforces the ISSUE 7 acceptance floor: >= 5x at
n = 10^5 clients.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # script mode: make src importable before repro
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

import numpy as np

from repro.fastpath.dyadic import dyadic_flat_forest
from repro.fastpath.flat_forest import FlatForest
from repro.fastpath.incremental import IncrementalFlatForest

from conftest import timeit_best, write_bench_json

#: stream length in slot units (window = beta * L = 50 slots).
LIVE_L = 100

#: number of ingest epochs per run (a day of 15-minute epochs).
EPOCHS = 96

#: fence lag, in epochs, behind the ingest clock.
FENCE_LAG_EPOCHS = 2

#: case matrix: n -> mean inter-arrival (slot units).  Both horizons
#: span many dyadic windows — the regime the live tier exists for.
TRACES = {
    10_000: 0.05,
    100_000: 0.01,
}


def _trace(n: int) -> np.ndarray:
    rng = np.random.default_rng(7)
    return np.cumsum(rng.exponential(TRACES[n], size=n))


def _epoch_edges(ts: np.ndarray) -> np.ndarray:
    horizon = float(ts[-1])
    return np.linspace(0.0, np.nextafter(horizon, np.inf), EPOCHS + 1)


def _reference_rebuild(ts: np.ndarray, edges: np.ndarray) -> FlatForest:
    """Rebuild the whole-prefix forest each epoch; return the final one."""
    forest = None
    for k in range(1, EPOCHS + 1):
        m = int(np.searchsorted(ts, edges[k], side="left"))
        forest = dyadic_flat_forest(ts[:m], LIVE_L)
    return forest


def _incremental_serve(ts: np.ndarray, edges: np.ndarray):
    """The live tier's loop: push_batch per epoch + fence eviction."""
    inc = IncrementalFlatForest(LIVE_L)
    committed = []
    for k in range(1, EPOCHS + 1):
        lo = int(np.searchsorted(ts, edges[k - 1], side="left"))
        m = int(np.searchsorted(ts, edges[k], side="left"))
        inc.push_batch(ts[lo:m])
        committed.extend(
            inc.evict_committable(edges[max(0, k - FENCE_LAG_EPOCHS)])
        )
    committed.extend(inc.evict_committable(np.inf))
    return inc, committed


def _materialised(committed) -> FlatForest:
    """Committed trees concatenated in global id order, as one forest."""
    arrivals, parent, z = [], [], []
    for tree in committed:
        base = len(arrivals)
        local = tree.forest.parent + base
        local[tree.forest.parent < 0] = -1
        arrivals.extend(tree.forest.arrivals.tolist())
        parent.extend(local.tolist())
        z.extend(tree.forest.z.tolist())
    return FlatForest(
        np.asarray(arrivals, dtype=np.float64),
        np.asarray(parent, dtype=np.intp),
        z=np.asarray(z, dtype=np.float64),
    )


def _assert_identical(committed, batch: FlatForest) -> None:
    inc = _materialised(committed)
    assert np.array_equal(inc.arrivals, batch.arrivals), "arrival mismatch"
    assert np.array_equal(inc.parent, batch.parent), "parent mismatch"
    assert np.array_equal(inc.z, batch.z), "z mismatch"


# ---------------------------------------------------------------------------
# pytest-benchmark smoke tests (small n, CI-friendly)
# ---------------------------------------------------------------------------


def test_incremental_serve_smoke(benchmark):
    rng = np.random.default_rng(3)
    ts = np.cumsum(rng.exponential(0.05, size=3_000))
    edges = _epoch_edges(ts)
    _, committed = benchmark(_incremental_serve, ts, edges)
    _assert_identical(committed, dyadic_flat_forest(ts, LIVE_L))


def test_full_rebuild_smoke(benchmark):
    rng = np.random.default_rng(3)
    ts = np.cumsum(rng.exponential(0.05, size=3_000))
    edges = _epoch_edges(ts)
    final = benchmark(_reference_rebuild, ts, edges)
    assert np.array_equal(final.arrivals, ts)


# ---------------------------------------------------------------------------
# full sweep (script mode): writes BENCH_live.json
# ---------------------------------------------------------------------------


def _case(name: str, n: int, ref_s: float, fast_s: float, **extra) -> Dict:
    row = {
        "name": name,
        "n": n,
        "reference_seconds": round(ref_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 2),
        **extra,
    }
    print(
        f"  {name:28s} n={n:>7d}  ref {ref_s:10.4f}s  "
        f"fast {fast_s:10.6f}s  x{row['speedup']:.1f}"
    )
    return row


def run_sweep() -> Dict:
    rows: List[Dict] = []
    for n in sorted(TRACES):
        ts = _trace(n)
        edges = _epoch_edges(ts)
        ref_s, _final = timeit_best(
            lambda: _reference_rebuild(ts, edges), repeats=1
        )
        fast_s, (inc, committed) = timeit_best(
            lambda: _incremental_serve(ts, edges), repeats=3
        )
        assert len(inc) == 0 and inc.evicted == n
        # node-for-node equality of the whole served day against the
        # batch build of the full trace (prefix equality at every epoch
        # is pinned by tests/fastpath/test_incremental.py)
        _assert_identical(committed, dyadic_flat_forest(ts, LIVE_L))
        rows.append(
            _case(
                "live_incremental_vs_rebuild",
                n,
                ref_s,
                fast_s,
                L=LIVE_L,
                epochs=EPOCHS,
            )
        )

    # Acceptance floor (ISSUE 7): >= 5x at n = 10^5 clients.
    big = [r for r in rows if r["n"] >= 100_000]
    assert big and all(r["speedup"] >= 5 for r in big), big

    return {
        "schema": "repro.fastpath.bench.v1",
        "description": (
            "Rolling-horizon live serving: IncrementalFlatForest "
            "(push_batch per epoch + fence-lagged eviction) vs rebuilding "
            "the whole-prefix dyadic forest every epoch.  Best-of-k wall "
            "clock over a 96-epoch day; the incremental run's committed "
            "trees are asserted node-for-node identical (arrivals, "
            "parents, z) to the batch build.  Floor: >= 5x at n = 10^5."
        ),
        "benchmarks": rows,
    }


if __name__ == "__main__":
    payload = run_sweep()
    path = write_bench_json("live", payload)
    print(f"wrote {path}")

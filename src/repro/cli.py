"""Command-line entry point: regenerate any paper table/figure.

Usage::

    python -m repro list
    python -m repro fig1
    python -m repro fig12 --save results/ --workers 4 --cache
    python -m repro all --save results/
    python -m repro fleet --objects 120 --scenario flash
    python -m repro burnin --episodes 50 --report soak.json
    python -m repro live --scenario diurnal --accel 720

Grid experiments run through the sweep tier (:mod:`repro.sweeps`):
``--workers`` shards point evaluation across processes and ``--cache``
enables the content-hash artifact cache, so re-rendering a figure after
a parameter tweak recomputes only the dirty points.

``fleet`` is not a paper experiment but the catalog-scale serving +
capacity-planning front end (see :mod:`repro.fleet.cli`); ``burnin`` is
the fault-injected soak harness (see :mod:`repro.burnin.cli`); ``live``
is the rolling-horizon online serving daemon (see
:mod:`repro.live.cli`).  All three take their own options and are
dispatched before the experiment parser runs.  Exit codes are
contracts: ``fleet`` exits 4 when a standing fleet/admission invariant
fails, ``burnin`` exits 3 on any soak violation, ``live`` exits 5 when
a live invariant (fence, immutability, oracle equality) fails,
experiments exit 4 when a reported table contains non-finite values.

Each experiment prints the same rows/series the paper reports (see
DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
paper-vs-measured comparisons).  ``--save`` additionally writes rendered
text and raw JSON per experiment.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import List, Optional

from .experiments import all_experiments, get_experiment
from .experiments.report import save_results
from .sweeps import DEFAULT_CACHE_DIR, configure_sweeps

__all__ = ["main"]


def _print_listing() -> None:
    exps = all_experiments()
    width = max(len(e) for e in exps)
    print("Available experiments:\n")
    for exp_id in sorted(exps):
        exp = exps[exp_id]
        print(f"  {exp_id.ljust(width)}  {exp.title}  [{exp.paper_ref}]")
    print("\nRun one with: python -m repro <id>")
    print(
        "Catalog-scale serving and capacity planning: "
        "python -m repro fleet --help"
    )


def _finite_ok(results) -> bool:
    """The CLI-boundary contract on experiment output: every numeric cell
    of every reported table is finite (the sweep tier's ``sweep.finite``
    invariant re-asserted on what actually gets printed/saved)."""
    for res in results:
        for row in res.rows:
            for cell in row:
                if isinstance(cell, float) and not math.isfinite(cell):
                    return False
    return True


def _run_one(exp_id: str, save_dir: Optional[str]) -> bool:
    exp = get_experiment(exp_id)
    t0 = time.perf_counter()
    results = exp()
    elapsed = time.perf_counter() - t0
    for res in results:
        print(res.render())
        print()
    if save_dir is not None:
        paths = save_results(exp, results, save_dir)
        print("saved: " + ", ".join(str(p) for p in paths))
    print(f"[{exp_id} completed in {elapsed:.2f}s]")
    ok = _finite_ok(results)
    if not ok:
        print(
            f"CONTRACT VIOLATION: {exp_id} reported non-finite values",
            file=sys.stderr,
        )
    return ok


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "fleet":
        # The fleet front end owns its own option set; hand over before
        # the experiment parser sees (and rejects) those flags.
        from .fleet.cli import fleet_main

        return fleet_main(argv[1:])
    if argv and argv[0] == "burnin":
        from .burnin.cli import burnin_main

        return burnin_main(argv[1:])
    if argv and argv[0] == "live":
        from .live.cli import live_main

        return live_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate tables/figures from Bar-Noy, Goshi & Ladner "
        "(SPAA'03/JDA'06) — stream merging for Media-on-Demand.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see `list`), `list`, or `all`",
    )
    parser.add_argument(
        "--save",
        nargs="?",
        const="results",
        default=None,
        metavar="DIR",
        help="also write <id>.txt and <id>.json under DIR (default: results/)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="shard sweep-point evaluation across N worker processes "
        "(default 0 = in-process)",
    )
    parser.add_argument(
        "--cache",
        nargs="?",
        const=DEFAULT_CACHE_DIR,
        default=None,
        metavar="DIR",
        help="enable the sweep artifact cache under DIR (default: "
        f"{DEFAULT_CACHE_DIR}/); re-rendering after a parameter tweak "
        "recomputes only dirty grid points",
    )
    parser.add_argument(
        "--backend",
        choices=("auto", "numpy", "numba"),
        default="auto",
        help="kernel backend for sweep-point evaluation (default auto: "
        "numba when installed, else the contract-equal numpy fallback; "
        "results are bit-identical either way)",
    )
    args = parser.parse_args(argv)

    # `False` (not None) when the flag is absent: every `main()` call
    # re-establishes its own cache setting instead of inheriting one from
    # an earlier in-process invocation.
    configure_sweeps(
        workers=args.workers,
        cache=args.cache if args.cache is not None else False,
        backend=args.backend,
    )
    if args.experiment == "list":
        _print_listing()
        return 0
    if args.experiment == "all":
        ok = True
        for exp_id in sorted(all_experiments()):
            print(f"\n{'#' * 70}\n# {exp_id}\n{'#' * 70}\n")
            ok = _run_one(exp_id, args.save) and ok
        return 0 if ok else 4
    try:
        ok = _run_one(args.experiment, args.save)
    except KeyError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    return 0 if ok else 4


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

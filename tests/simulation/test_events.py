"""Tests for the discrete-event engine."""

from __future__ import annotations

import math

import pytest

from repro.simulation.events import EventQueue


class TestScheduling:
    def test_time_order(self):
        q = EventQueue()
        log = []
        q.schedule(3.0, lambda: log.append("c"))
        q.schedule(1.0, lambda: log.append("a"))
        q.schedule(2.0, lambda: log.append("b"))
        q.run()
        assert log == ["a", "b", "c"]
        assert q.now == 3.0

    def test_priority_breaks_ties(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append("low"), priority=5)
        q.schedule(1.0, lambda: log.append("high"), priority=0)
        q.run()
        assert log == ["high", "low"]

    def test_fifo_within_same_time_priority(self):
        q = EventQueue()
        log = []
        for i in range(5):
            q.schedule(1.0, lambda i=i: log.append(i))
        q.run()
        assert log == [0, 1, 2, 3, 4]

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.schedule(5.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.schedule(4.0, lambda: None)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(math.nan, lambda: None)


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda: log.append("x"))
        q.schedule(2.0, lambda: log.append("y"))
        ev.cancel()
        q.run()
        assert log == ["y"]

    def test_len_ignores_tombstones(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        assert len(q) == 2
        ev.cancel()
        assert len(q) == 1

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(2.0, lambda: None)
        ev.cancel()
        assert q.peek_time() == 2.0


class TestRun:
    def test_run_until(self):
        q = EventQueue()
        log = []
        q.schedule(1.0, lambda: log.append(1))
        q.schedule(5.0, lambda: log.append(5))
        q.run(until=2.0)
        assert log == [1]
        assert q.now == 2.0  # clock advanced to the horizon
        q.run()
        assert log == [1, 5]

    def test_self_scheduling(self):
        q = EventQueue()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 10:
                q.schedule(q.now + 1.0, tick)

        q.schedule(0.0, tick)
        q.run()
        assert count[0] == 10
        assert q.processed == 10

    def test_max_events_guard(self):
        q = EventQueue()

        def forever():
            q.schedule(q.now, forever)

        q.schedule(0.0, forever)
        with pytest.raises(RuntimeError):
            q.run(max_events=100)

    def test_step_on_empty(self):
        assert EventQueue().step() is False


class TestPostpone:
    """Lazy deletion on extend: tombstone + re-push, ordering unchanged."""

    def test_postpone_moves_execution(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda: log.append(("ev", q.now)))
        q.schedule(2.0, lambda: log.append(("mid", q.now)))
        q.postpone(ev, 3.0)
        q.run()
        assert log == [("mid", 2.0), ("ev", 3.0)]

    def test_chain_of_postpones_fires_once_at_last_target(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda: log.append(q.now))
        for t in (2.0, 5.0, 9.0):
            q.postpone(ev, t)
        q.run()
        assert log == [9.0]
        assert q.processed == 1

    def test_equal_timestamp_ordering_matches_eager_reschedule(self):
        """The satellite boundary contract: postponing draws its tie-break
        sequence number immediately, so events postponed to the *same*
        timestamp fire in postpone order — exactly the order the eager
        cancel + reschedule idiom produced."""

        def eager(q, ev, t, action, priority):
            ev.cancel()
            return q.schedule(t, action, priority=priority)

        def lazy(q, ev, t, action, priority):
            q.postpone(ev, t)
            return ev

        runs = {}
        for name, move in (("eager", eager), ("lazy", lazy)):
            q = EventQueue()
            log = []
            evs = {
                k: q.schedule(
                    1.0 + k, (lambda k=k: log.append((k, q.now))), priority=5
                )
                for k in range(4)
            }
            # interleave moves so postpone order differs from both the
            # original schedule order and the stale-entry surfacing order
            evs[2] = move(q, evs[2], 10.0, lambda: log.append((2, q.now)), 5)
            evs[0] = move(q, evs[0], 10.0, lambda: log.append((0, q.now)), 5)
            evs[3] = move(q, evs[3], 10.0, lambda: log.append((3, q.now)), 5)
            # same-time event scheduled *between* the moves keeps its slot
            q.schedule(10.0, lambda: log.append(("fresh", q.now)), priority=5)
            evs[1] = move(q, evs[1], 10.0, lambda: log.append((1, q.now)), 5)
            q.run()
            runs[name] = log
        assert runs["lazy"] == runs["eager"]
        assert [k for k, _ in runs["lazy"]] == [2, 0, 3, "fresh", 1]

    def test_priority_still_breaks_ties_after_postpone(self):
        q = EventQueue()
        log = []
        low = q.schedule(1.0, lambda: log.append("low"), priority=9)
        q.postpone(low, 4.0)
        q.schedule(4.0, lambda: log.append("high"), priority=0)
        q.run()
        assert log == ["high", "low"]

    def test_len_and_peek_see_through_tombstones(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        q.schedule(5.0, lambda: None)
        q.postpone(ev, 8.0)
        assert len(q) == 2  # still pending, just later
        assert q.peek_time() == 5.0  # stale head entry resurfaced lazily
        q.run()
        assert len(q) == 0 and q.now == 8.0

    def test_cannot_postpone_earlier(self):
        q = EventQueue()
        ev = q.schedule(5.0, lambda: None)
        with pytest.raises(ValueError, match="earlier"):
            q.postpone(ev, 3.0)
        q.postpone(ev, 7.0)
        with pytest.raises(ValueError, match="earlier"):
            q.postpone(ev, 6.0)  # earlier than the pending deferred target

    def test_cannot_postpone_foreign_cancelled_or_fired(self):
        q, other = EventQueue(), EventQueue()
        ev = q.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            other.postpone(ev, 2.0)
        ev.cancel()
        with pytest.raises(ValueError):
            q.postpone(ev, 2.0)
        fired = q.schedule(1.0, lambda: None)
        q.run()
        with pytest.raises(ValueError):
            q.postpone(fired, 9.0)

    def test_nan_rejected(self):
        q = EventQueue()
        ev = q.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            q.postpone(ev, math.nan)

    def test_cancel_after_postpone_wins(self):
        q = EventQueue()
        log = []
        ev = q.schedule(1.0, lambda: log.append("x"))
        q.postpone(ev, 5.0)
        ev.cancel()
        q.schedule(6.0, lambda: log.append("y"))
        q.run()
        assert log == ["y"]


class TestCompaction:
    """Tombstone compaction: bounded garbage, untouched semantics."""

    def test_cancel_heavy_load_triggers_compaction(self):
        q = EventQueue()
        events = [q.schedule(float(t), lambda: None) for t in range(64)]
        for ev in events[1:]:
            ev.cancel()
        assert q.compactions >= 1
        # the heap physically shrank: garbage is bounded by the floor
        # below which compaction stops paying for itself
        assert len(q._heap) < 16 and len(q) == 1

    def test_below_the_floor_no_compaction(self):
        q = EventQueue()
        events = [q.schedule(float(t), lambda: None) for t in range(8)]
        for ev in events:
            ev.cancel()
        assert q.compactions == 0

    def test_execution_order_identical_across_the_boundary(self):
        """Eager-vs-lazy equivalence exactly at the compaction trigger:
        the same schedule/cancel/postpone script must fire in the same
        order whether tombstones were compacted away or drained lazily."""

        def script(q, log):
            events = []
            for t in range(40):
                events.append(
                    q.schedule(float(t), lambda t=t: log.append(("run", t)))
                )
            for ev in events[:19]:  # 19 of 40: just under half
                ev.cancel()
            # tied targets after postponing: order must match the eager
            # cancel-and-reschedule sequence numbers
            for ev in events[30:36]:
                q.postpone(ev, 50.0)
            events[19].cancel()  # tips tombstones past half -> compacts
            return events

        lazy_q, lazy_log = EventQueue(), []
        script(lazy_q, lazy_log)
        assert lazy_q.compactions >= 1

        eager_q, eager_log = EventQueue(), []
        eager_events = []
        for t in range(40):
            eager_events.append(
                eager_q.schedule(float(t), lambda t=t: eager_log.append(("run", t)))
            )
        for ev in eager_events[:20]:
            ev.cancel()
        for ev in eager_events[30:36]:
            ev.cancel()
        # eager reschedule draws fresh sequence numbers in the same order
        # postpone did; tied times must therefore fire in the same order
        for i, ev in enumerate(eager_events[30:36]):
            t = 30 + i
            eager_q.schedule(50.0, lambda t=t: eager_log.append(("run", t)))

        lazy_q.run()
        eager_q.run()
        assert lazy_log == eager_log

    def test_postponed_events_survive_compaction_at_their_new_time(self):
        q = EventQueue()
        log = []
        keep = [
            q.schedule(float(t), lambda t=t: log.append(t)) for t in range(20)
        ]
        for ev in keep[:10]:
            q.postpone(ev, 100.0 + ev.time)
        for ev in keep[10:17]:  # push tombstones past half the heap
            ev.cancel()
        assert q.compactions >= 1
        q.run()
        # survivors first (17..19), then the postponed block in FIFO order
        assert log == [17, 18, 19] + list(range(10))

    def test_cancel_after_postpone_counts_one_tombstone(self):
        q = EventQueue()
        anchor = q.schedule(1000.0, lambda: None)
        for t in range(32):
            ev = q.schedule(float(t), lambda: None)
            q.postpone(ev, float(t) + 1.0)
            ev.cancel()
        q.run(until=999.0)
        assert len(q) == 1
        assert q._tombstones == len(q._heap) - 1  # never negative, no drift
        assert q._tombstones >= 0
        anchor.cancel()

    def test_len_peek_and_processed_unchanged_by_compaction(self):
        q = EventQueue()
        events = [q.schedule(float(t), lambda: None) for t in range(64)]
        for ev in events[2:]:
            ev.cancel()
        assert q.compactions >= 1
        assert len(q) == 2
        assert q.peek_time() == 0.0
        q.run()
        assert q.processed == 2

"""Fast-path layer: optimized equivalents of the reference algorithms.

Everything in this package computes *exactly* the same values as the
reference implementations in :mod:`repro.core` — the O(n^2)/O(n^3) DPs in
:mod:`repro.core.dp` and the pointer-based trees in
:mod:`repro.core.merge_tree` stay behind as correctness oracles (see
``tests/fastpath/``) — but does so at production scale:

* :mod:`repro.fastpath.cost_tables` — incremental, module-level memoized
  merge-cost tables filled in O(1) per entry via the Theorem 7 monotone
  split recurrence (receive-two) and the half-split characterisation
  below Eq. (20) (receive-all);
* :mod:`repro.fastpath.general` — the full general-arrivals solution with
  the Knuth/quadrangle-inequality speed-up, O(n^3) -> O(n^2): cost-only
  (:func:`~repro.fastpath.general.general_arrivals_cost`), the DP tables
  themselves, and the span-constrained optimal forest reconstructed
  directly into flat parent arrays
  (:func:`~repro.fastpath.general.optimal_flat_forest_general`);
* :mod:`repro.fastpath.flat_forest` — :class:`FlatForest`, a flat
  numpy-backed merge-forest representation with vectorised ``Mcost`` /
  ``Fcost`` / stream-length / interval evaluation and lossless round-trip
  conversion to/from :class:`~repro.core.merge_tree.MergeForest`;
* :mod:`repro.fastpath.dyadic` — the flat (alpha, beta)-dyadic builders
  (vectorised batch :func:`~repro.fastpath.dyadic.dyadic_flat_forest`,
  incremental :class:`~repro.fastpath.dyadic.DyadicFlatOnline`), with the
  recursive / ``MergeNode`` constructions of ``baselines.dyadic`` as
  oracles;
* :mod:`repro.fastpath.incremental` —
  :class:`~repro.fastpath.incremental.IncrementalFlatForest`, the
  rolling-horizon forest behind ``repro.live``: append-arrival /
  extend-stream / evict-completed-tree in amortised O(log n), vectorised
  epoch ingest, node-for-node equal to the batch construction on every
  prefix;
* :mod:`repro.fastpath.replay` — batched replay verification of whole
  merge forests (Section 2 receiving programs, Lemma 1/17 tightness,
  Lemma 15 buffer peaks) as per-level vectorised interval algebra,
  report-identical to the per-client walks kept in
  ``simulation.verify`` as ``verify_forest*_reference``.

Benchmarks comparing old vs. new paths live in
``benchmarks/bench_fastpath.py`` / ``bench_general.py`` / ``bench_sim.py``
and emit ``BENCH_fastpath.json`` / ``BENCH_general.json`` /
``BENCH_sim.json``.
"""

from .cost_tables import (
    merge_cost,
    merge_cost_table,
    receive_all_cost,
    receive_all_cost_table,
    reset_cost_caches,
)
from .general import (
    general_arrivals_cost,
    general_merge_tables,
    optimal_flat_forest_general,
    optimal_flat_tree_general,
)
from .flat_forest import FlatForest
from .dyadic import DyadicFlatOnline, dyadic_flat_cost, dyadic_flat_forest
from .incremental import CommittedTree, IncrementalFlatForest
from .replay import replay_verify_forest, replay_verify_forest_continuous

__all__ = [
    "merge_cost",
    "merge_cost_table",
    "receive_all_cost",
    "receive_all_cost_table",
    "reset_cost_caches",
    "general_arrivals_cost",
    "general_merge_tables",
    "optimal_flat_forest_general",
    "optimal_flat_tree_general",
    "FlatForest",
    "CommittedTree",
    "IncrementalFlatForest",
    "DyadicFlatOnline",
    "dyadic_flat_cost",
    "dyadic_flat_forest",
    "replay_verify_forest",
    "replay_verify_forest_continuous",
]

"""LiveDaemon: bit-exact oracle equality, checkpoint/restore, step path."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.arrivals.traces import ArrivalTrace
from repro.burnin.contracts import fleet_reports_equal
from repro.fleet.runner import run_fleet, sanitize_times
from repro.fleet.scenarios import scenario_workload
from repro.live import LIVE_POLICIES, LiveConfig, LiveDaemon
from repro.multiplex.catalog import Catalog, MediaObject

DELAY = 1.5
HORIZON = 120.0


def _config(policy="batched-dyadic", epoch=10.0, fence=15.0) -> LiveConfig:
    return LiveConfig(
        delay_minutes=DELAY,
        horizon_minutes=HORIZON,
        epoch_minutes=epoch,
        fence_minutes=fence,
        policy=policy,
    )


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(5, duration_minutes=45.0)


@pytest.fixture(scope="module")
def workload(catalog):
    return scenario_workload("blend", catalog, 0.5, HORIZON, seed=19)


def _oracle(catalog, workload, config):
    return run_fleet(
        catalog,
        delay_minutes=config.delay_minutes,
        horizon_minutes=config.horizon_minutes,
        policy=config.fleet_policy(),
        workload=workload,
        workers=0,
    )


class TestOracleEquality:
    @pytest.mark.parametrize("policy", LIVE_POLICIES)
    def test_run_is_bit_identical_to_offline_oracle(self, catalog, workload, policy):
        config = _config(policy)
        report = LiveDaemon(catalog, config).run(workload)
        assert report is not None
        assert fleet_reports_equal(report.fleet, _oracle(catalog, workload, config)) is None

    @pytest.mark.parametrize("epoch,fence", [(5.0, 6.0), (30.0, 45.0), (120.0, 1.0)])
    def test_epoch_and_fence_granularity_are_invisible(
        self, catalog, workload, epoch, fence
    ):
        # same trace, wildly different epoch/fence cuts: identical output
        config = _config(epoch=epoch, fence=fence)
        report = LiveDaemon(catalog, config).run(workload)
        assert report is not None
        assert fleet_reports_equal(report.fleet, _oracle(catalog, workload, config)) is None

    def test_empty_workload(self, catalog):
        config = _config()
        report = LiveDaemon(catalog, config).run({})
        assert report is not None
        assert report.fleet.clients == 0 and report.fleet.streams == 0
        assert fleet_reports_equal(report.fleet, _oracle(catalog, {}, config)) is None

    def test_single_client_single_object(self):
        catalog = Catalog([MediaObject("only", 30.0, 1.0)])
        config = _config()
        workload = {"only": np.array([42.0])}
        report = LiveDaemon(catalog, config).run(workload)
        assert report is not None
        assert report.fleet.clients == 1 and report.fleet.streams == 1
        assert fleet_reports_equal(report.fleet, _oracle(catalog, workload, config)) is None


class TestRecords:
    def test_epoch_sequence_and_drain(self, catalog, workload):
        config = _config()
        report = LiveDaemon(catalog, config).run(workload)
        assert [r.epoch for r in report.records[:-1]] == list(range(config.num_epochs))
        assert report.records[-1].drain and report.records[-1].fence is None
        assert all(not r.drain for r in report.records[:-1])

    def test_nothing_commits_past_the_fence(self, catalog, workload):
        report = LiveDaemon(catalog, _config()).run(workload)
        for rec in report.records:
            if rec.drain or rec.max_committed_cutoff is None:
                continue
            assert rec.max_committed_cutoff < rec.fence

    def test_everything_commits_by_the_drain(self, catalog, workload):
        report = LiveDaemon(catalog, _config()).run(workload)
        last = report.records[-1]
        assert last.committed_streams == report.fleet.streams
        assert list(last.committed_counts) == [o.streams for o in report.fleet.objects]
        assert sum(r.ingested for r in report.records) == report.fleet.clients

    def test_report_json_is_valid_and_sorted(self, catalog, workload):
        report = LiveDaemon(catalog, _config()).run(workload)
        payload = json.loads(report.to_json())
        assert payload["schema"] == "repro.live-report.v1"
        assert payload["totals"]["clients"] == report.fleet.clients
        assert report.to_json() == json.dumps(payload, indent=2, sort_keys=True)

    def test_peak_channels_counts_across_objects(self, catalog, workload):
        report = LiveDaemon(catalog, _config()).run(workload)
        assert report.peak_channels == max(
            int(c.max()) + 1 for c in report.channels.values() if c.size
        )


class TestCheckpointRestore:
    @pytest.mark.parametrize("policy", LIVE_POLICIES)
    def test_midrun_restore_replays_identically(self, catalog, workload, policy):
        config = _config(policy)
        daemon = LiveDaemon(catalog, config)
        daemon.run(workload, until_epoch=config.num_epochs // 2 - 1)
        snapshot = daemon.checkpoint()
        report = daemon.run(workload)

        resumed = LiveDaemon.restore(snapshot).run(workload)
        assert resumed is not None
        assert fleet_reports_equal(resumed.fleet, report.fleet) is None
        assert [r.to_payload() for r in resumed.records] == [
            r.to_payload() for r in report.records
        ]
        for name in resumed.channels:
            np.testing.assert_array_equal(resumed.channels[name], report.channels[name])

    def test_checkpoint_at_zero_epochs(self, catalog, workload):
        config = _config()
        daemon = LiveDaemon(catalog, config)
        daemon.run(workload, until_epoch=0)
        restored = LiveDaemon.restore(daemon.checkpoint())
        assert restored.horizon.epoch == 0
        report = daemon.run(workload)
        resumed = restored.run(workload)
        assert fleet_reports_equal(resumed.fleet, report.fleet) is None

    def test_checkpoint_after_drain_raises(self, catalog, workload):
        daemon = LiveDaemon(catalog, _config())
        daemon.run(workload)
        with pytest.raises(RuntimeError, match="drained"):
            daemon.checkpoint()

    def test_restore_rejects_wrong_schema(self):
        with pytest.raises(ValueError, match="not a live checkpoint"):
            LiveDaemon.restore(json.dumps({"schema": "bogus.v1"}))

    def test_restore_rejects_missing_object(self, catalog, workload):
        daemon = LiveDaemon(catalog, _config())
        daemon.run(workload, until_epoch=2)
        payload = json.loads(daemon.checkpoint())
        del payload["objects"][catalog.objects[0].name]
        with pytest.raises(ValueError, match="missing object"):
            LiveDaemon.restore(json.dumps(payload))


class TestStepPath:
    def test_step_fed_epochs_equal_run(self, catalog, workload):
        config = _config()
        clean = {
            obj.name: sanitize_times(
                np.asarray(workload[obj.name].times), HORIZON
            )[0]
            for obj in catalog
        }
        daemon = LiveDaemon(catalog, config)
        for k in range(config.num_epochs):
            t0, t1 = config.epoch_bounds(k)
            daemon.step(
                {
                    name: ts[(ts >= t0) & (ts < t1)]
                    for name, ts in clean.items()
                }
            )
        daemon.drain()
        stepped = daemon.report()
        ran = LiveDaemon(catalog, config).run(workload)
        assert fleet_reports_equal(stepped.fleet, ran.fleet) is None
        assert [r.to_payload() for r in stepped.records] == [
            r.to_payload() for r in ran.records
        ]

    def test_step_repairs_dirty_batches(self, catalog):
        config = _config()
        name = catalog.objects[0].name
        daemon = LiveDaemon(catalog, config)
        rec = daemon.step(
            {name: np.array([np.nan, -3.0, 500.0, 4.0, 4.0, 25.0])}
        )
        # NaN, negative, past-horizon, duplicate, and out-of-epoch (25.0
        # is epoch 2's data) all repaired; only 4.0 lands
        assert rec.ingested == 1
        assert rec.repaired == 5
        # the late arrival is accepted in its own epoch
        rec2 = daemon.step({name: np.array([25.0])})
        assert rec2.ingested == 0  # epoch 1 is [10, 20): still early
        rec3 = daemon.step({name: np.array([25.0])})
        assert rec3.ingested == 1

    def test_step_drops_replayed_arrivals(self, catalog):
        config = _config()
        name = catalog.objects[0].name
        daemon = LiveDaemon(catalog, config)
        rec = daemon.step({name: ArrivalTrace(times=(2.0, 6.0), horizon=HORIZON)})
        assert rec.ingested == 2 and rec.repaired == 0
        # a replayed batch cannot re-ingest at or before the last time
        rec2 = daemon.step({name: np.array([6.0, 12.0])})
        assert rec2.ingested == 1
        assert rec2.repaired == 1

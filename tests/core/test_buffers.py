"""Tests for limited buffer sizes (Section 3.3: Lemma 15, Theorem 16)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import buffers as bu
from repro.core.full_cost import build_optimal_forest, optimal_full_cost
from repro.core.offline import build_optimal_tree
from repro.core.receiving_program import receive_two_program


class TestLemma15:
    def test_values(self):
        assert bu.buffer_requirement(0, 0, 15) == 0
        assert bu.buffer_requirement(7, 0, 15) == 7
        assert bu.buffer_requirement(8, 0, 15) == 7
        assert bu.buffer_requirement(14, 0, 15) == 1

    def test_errors(self):
        with pytest.raises(ValueError):
            bu.buffer_requirement(-1, 0, 15)
        with pytest.raises(ValueError):
            bu.buffer_requirement(15, 0, 15)  # beyond L-1

    def test_symmetry_peak_at_half(self):
        L = 20
        needs = [bu.buffer_requirement(x, 0, L) for x in range(L)]
        assert max(needs) == L // 2
        assert needs == [min(x, L - x) for x in range(L)]

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=34))
    def test_matches_receiving_program_replay(self, n):
        """Lemma 15 equals the measured buffer peak in actual schedules."""
        L = 2 * n  # plenty of room
        tree = build_optimal_tree(n)
        for x in range(n):
            prog = receive_two_program(tree, x, L)
            assert prog.max_buffer() == bu.buffer_requirement(x, 0, L), x

    def test_tree_helpers(self, paper_tree8):
        needs = bu.tree_buffer_requirements(paper_tree8, 15)
        assert needs[7] == 7
        assert bu.max_buffer_requirement(paper_tree8, 15) == 7


class TestBoundedForest:
    def test_bound_respected(self):
        L, n, B = 40, 100, 10
        forest = bu.build_optimal_bounded_forest(L, n, B)
        for tree in forest:
            assert tree.span() <= B
        ok, violations = bu.verify_buffer_bound(forest, L, B)
        assert ok, violations

    def test_cost_at_least_unbounded(self):
        for L, n, B in [(40, 100, 10), (100, 300, 7), (30, 64, 4)]:
            bounded = bu.optimal_bounded_full_cost(L, n, B)
            assert bounded >= optimal_full_cost(L, n)

    def test_loose_bound_recovers_unbounded(self):
        # When B exceeds the largest span of the unbounded optimum, the
        # bounded cost equals the unbounded one.
        L, n = 30, 120
        unb = build_optimal_forest(L, n)
        max_span = max(int(t.span()) for t in unb)
        B = max_span  # still must satisfy 2B <= L for the bounded solver
        if 2 * B <= L:
            assert bu.optimal_bounded_full_cost(L, n, B) == optimal_full_cost(L, n)

    def test_monotone_in_B(self):
        L, n = 60, 200
        costs = [bu.optimal_bounded_full_cost(L, n, B) for B in range(1, 31)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_B1_is_pairing(self):
        # B = 1: trees of at most 2 consecutive arrivals.
        L, n = 10, 9
        forest = bu.build_optimal_bounded_forest(L, n, 1)
        assert all(len(t) <= 2 for t in forest)
        # cost: ceil(n/2) roots * L + floor(n/2) merges of length 1
        assert forest.full_cost(L) == 5 * L + 4

    def test_errors(self):
        with pytest.raises(ValueError):
            bu.optimal_bounded_full_cost(10, 5, 6)  # B > L/2
        with pytest.raises(ValueError):
            bu.optimal_bounded_full_cost(10, 0, 2)
        with pytest.raises(ValueError):
            bu.optimal_bounded_full_cost(0, 5, 2)
        with pytest.raises(ValueError):
            bu.bounded_full_cost_given_streams(10, 20, 3, 2)  # too few streams

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=4, max_value=30),
        st.integers(min_value=1, max_value=80),
    )
    def test_bounded_brute_force(self, L, n):
        B = L // 2
        if B < 1:
            return
        s_min = -(-n // (B + 1))
        brute = min(
            bu.bounded_full_cost_given_streams(L, n, B, s)
            for s in range(s_min, n + 1)
        )
        assert bu.optimal_bounded_full_cost(L, n, B) == brute

"""Incremental, memoized merge-cost tables (O(1) per entry).

The reference DPs (:func:`repro.core.dp.merge_cost_table` and
:func:`repro.core.dp.receive_all_cost_table`) minimise over every split
``h`` at every size — O(n^2) total — and recompute from scratch on every
call.  Both minimisations have closed-form argmins:

* receive-two: Theorem 7 gives the maximal optimal split ``r(i) = max
  I(i)`` by the monotone recurrence ``r(i) = r(i-1) + 1`` while ``i <=
  F_k + F_{k-2}`` (where ``F_k < i <= F_{k+1}``) and ``r(i) = r(i-1)``
  otherwise, so ``M(i) = M(r) + M(i - r) + 2i - r - 2`` fills in O(1);
* receive-all: the note below Eq. (20) proves the Eq. (19) minimum is
  attained at ``h = floor(i/2)``, so ``Mw(i) = Mw(floor(i/2)) +
  Mw(ceil(i/2)) + i - 1`` fills in O(1).

On top of the O(n) fill, the tables live at module level and *extend*
on demand: an experiment sweep that asks for ``M`` up to 10^3 and later
up to 10^5 pays only for the new entries, and repeated calls are pure
list slices.  ``tests/fastpath/test_cost_tables.py`` proves entry-exact
agreement with the reference DPs.
"""

from __future__ import annotations

from typing import List

from ..core.fibonacci import fib

__all__ = [
    "merge_cost_table",
    "merge_cost",
    "last_merge_splits",
    "receive_all_cost_table",
    "receive_all_cost",
    "reset_cost_caches",
]


class _MergeTable:
    """Grow-on-demand ``M(i)`` / ``r(i)`` tables (receive-two model)."""

    def __init__(self) -> None:
        self.m: List[int] = [0, 0]  # M(0) = M(1) = 0
        self.r: List[int] = [0, 0]  # r(1) = 0 by convention
        self._k = 3  # bracket state: F_k < i <= F_{k+1} for the next i >= 3

    def extend(self, n: int) -> None:
        i = len(self.m)
        while i <= n:
            if i == 2:
                r = 1
            else:
                while i > fib(self._k + 1):
                    self._k += 1
                if i <= fib(self._k) + fib(self._k - 2):
                    r = self.r[i - 1] + 1
                else:
                    r = self.r[i - 1]
            self.r.append(r)
            self.m.append(self.m[r] + self.m[i - r] + 2 * i - r - 2)
            i += 1


class _ReceiveAllTable:
    """Grow-on-demand ``Mw(i)`` table (receive-all model)."""

    def __init__(self) -> None:
        self.m: List[int] = [0, 0]  # Mw(0) = Mw(1) = 0

    def extend(self, n: int) -> None:
        i = len(self.m)
        while i <= n:
            h = i // 2
            self.m.append(self.m[h] + self.m[i - h] + i - 1)
            i += 1


_MERGE = _MergeTable()
_RECEIVE_ALL = _ReceiveAllTable()


def merge_cost_table(n: int) -> List[int]:
    """``[M(0), ..., M(n)]``, equal entry-for-entry to the reference DP.

    O(n) on first use, O(n) copy afterwards (the memo is shared state;
    callers get an independent list they may mutate).
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    _MERGE.extend(n)
    return _MERGE.m[: n + 1]


def merge_cost(n: int) -> int:
    """``M(n)`` from the memoized table (amortised O(1) after warm-up)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    _MERGE.extend(n)
    return _MERGE.m[n]


def last_merge_splits(n: int) -> List[int]:
    """``[r(0), r(1), ..., r(n)]`` with ``r(i) = max I(i)`` (Theorem 7).

    Indexed like :func:`repro.core.offline.last_merge_table` (entries 0
    and 1 are the 0 convention) but memoized and extendable.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    _MERGE.extend(n)
    return _MERGE.r[: n + 1]


def receive_all_cost_table(n: int) -> List[int]:
    """``[Mw(0), ..., Mw(n)]``, equal entry-for-entry to the reference DP."""
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    _RECEIVE_ALL.extend(n)
    return _RECEIVE_ALL.m[: n + 1]


def receive_all_cost(n: int) -> int:
    """``Mw(n)`` from the memoized table."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    _RECEIVE_ALL.extend(n)
    return _RECEIVE_ALL.m[n]


def reset_cost_caches() -> None:
    """Drop the module-level memo state (test isolation helper)."""
    global _MERGE, _RECEIVE_ALL
    _MERGE = _MergeTable()
    _RECEIVE_ALL = _ReceiveAllTable()

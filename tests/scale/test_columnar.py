"""The out-of-core columnar arrival store: layout, atomicity, integrity.

Pins the ``repro.scale.store.v1`` contract that the rest of the PR
builds on: byte-identical files regardless of writer chunking, an index
published atomically (an aborted writer leaves no store), zero-copy
read-only mmap views, a per-process attach cache, and a ``verify`` that
catches every corruption mode :class:`repro.burnin.faults.TornSegment`
can inflict.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.burnin import TornSegment, check_columnar_store
from repro.scale import columnar
from repro.scale.columnar import (
    ColumnarStore,
    ColumnarWriter,
    StoreError,
    StoreSlice,
    is_store,
    read_slice,
    store_slices,
    write_store,
)


def _columns(seed: int, names=("alpha", "beta", "gamma"), sizes=(513, 0, 2048)):
    rng = np.random.default_rng(seed)
    return {
        name: np.sort(rng.uniform(0.0, 120.0, size=size))
        for name, size in zip(names, sizes)
    }


def _fingerprint(root) -> tuple:
    root = Path(root)
    seg = hashlib.sha256((root / "segment.bin").read_bytes()).hexdigest()
    idx = hashlib.sha256((root / "index.json").read_bytes()).hexdigest()
    return seg, idx


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        cols = _columns(0)
        write_store(tmp_path, cols.items())
        assert is_store(tmp_path)
        with ColumnarStore(tmp_path) as store:
            assert store.names == list(cols)
            for name, data in cols.items():
                view = store.column(name)
                assert view.dtype == np.float64
                assert not view.flags.writeable
                assert np.array_equal(view, data)

    def test_empty_column_and_empty_store(self, tmp_path):
        write_store(tmp_path / "a", [("only", np.empty(0))])
        with ColumnarStore(tmp_path / "a") as store:
            assert store.column("only").size == 0
        write_store(tmp_path / "b", [])
        with ColumnarStore(tmp_path / "b") as store:
            assert store.names == []

    def test_unknown_column_raises(self, tmp_path):
        write_store(tmp_path, [("x", np.arange(4.0))])
        with ColumnarStore(tmp_path) as store:
            with pytest.raises(StoreError, match="no column"):
                store.column("missing")

    def test_chunks_concatenate_to_column(self, tmp_path):
        cols = _columns(1)
        write_store(tmp_path, cols.items())
        with ColumnarStore(tmp_path) as store:
            for name, data in cols.items():
                parts = [chunk.copy() for chunk in store.chunks(name, 100)]
                joined = (
                    np.concatenate(parts) if parts else np.empty(0, dtype=np.float64)
                )
                assert np.array_equal(joined, data)

    def test_release_preserves_data(self, tmp_path):
        cols = _columns(2)
        write_store(tmp_path, cols.items())
        with ColumnarStore(tmp_path) as store:
            before = store.column("gamma").copy()
            store.release("gamma")  # madvise is advisory: pages reload clean
            assert np.array_equal(store.column("gamma"), before)


class TestWriterContract:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_byte_identical_across_chunk_sizes(self, tmp_path_factory, seed):
        cols = _columns(seed)
        n = max(c.size for c in cols.values())
        prints = set()
        for chunk in (1, 7, 64, 1 << 20, max(1, n)):
            root = tmp_path_factory.mktemp("store")
            write_store(root, cols.items(), chunk_size=chunk)
            prints.add(_fingerprint(root))
        assert len(prints) == 1  # chunk_size is I/O granularity only

    def test_slices_match_store_slices(self, tmp_path):
        cols = _columns(3)
        with ColumnarWriter(tmp_path) as writer:
            for name, data in cols.items():
                writer.add(name, data)
            slices = writer.slices()
        assert slices == store_slices(tmp_path)
        for sl in slices.values():
            assert isinstance(sl, StoreSlice)
            assert np.array_equal(read_slice(sl), cols[sl.name])
        columnar.detach(tmp_path)

    def test_duplicate_name_rejected(self, tmp_path):
        with ColumnarWriter(tmp_path) as writer:
            writer.add("x", np.arange(3.0))
            with pytest.raises(StoreError, match="duplicate"):
                writer.add("x", np.arange(3.0))
            writer.add("y", np.arange(2.0))

    def test_abort_publishes_nothing(self, tmp_path):
        root = tmp_path / "aborted"
        with pytest.raises(RuntimeError, match="mid-write"):
            with ColumnarWriter(root) as writer:
                writer.add("x", np.arange(100.0))
                raise RuntimeError("mid-write")
        assert not is_store(root)
        assert not (root / "index.json").exists()
        with pytest.raises(StoreError):
            ColumnarStore(root)


class TestAttachCache:
    def test_attach_is_cached_and_detach_clears(self, tmp_path):
        write_store(tmp_path, [("x", np.arange(8.0))])
        columnar.detach()  # isolate from other tests
        first = columnar.attach(tmp_path)
        assert columnar.attach(tmp_path) is first
        columnar.detach(tmp_path)
        second = columnar.attach(tmp_path)
        assert second is not first
        columnar.detach()
        assert not columnar._ATTACHED

    def test_read_slice_copy_is_writable(self, tmp_path):
        write_store(tmp_path, [("x", np.arange(8.0))])
        (sl,) = store_slices(tmp_path).values()
        view = read_slice(sl)
        assert not view.flags.writeable
        copy = read_slice(sl, copy=True)
        copy += 1.0  # must not raise
        assert np.array_equal(read_slice(sl), np.arange(8.0))
        columnar.detach()


class TestIndexValidation:
    def test_segment_size_mismatch(self, tmp_path):
        write_store(tmp_path, [("x", np.arange(16.0))])
        with (tmp_path / "segment.bin").open("ab") as fh:
            fh.write(b"\x00" * 8)
        with pytest.raises(StoreError, match="torn write"):
            ColumnarStore(tmp_path)

    def test_missing_store_dir(self, tmp_path):
        assert not is_store(tmp_path / "nope")
        with pytest.raises(StoreError):
            ColumnarStore(tmp_path / "nope")

    def test_verify_deep_catches_bit_rot(self, tmp_path):
        write_store(tmp_path, [("x", np.arange(4096.0))])
        seg = tmp_path / "segment.bin"
        raw = bytearray(seg.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        seg.write_bytes(bytes(raw))
        with ColumnarStore(tmp_path) as store:
            with pytest.raises(StoreError, match="checksum"):
                store.verify(deep=True)


class TestTornSegmentContract:
    """Every TornSegment mode must make check_columnar_store report a
    violation — and none may crash the checker."""

    def test_clean_store_verifies(self, tmp_path):
        cols = _columns(7)
        write_store(tmp_path, cols.items())
        report = check_columnar_store(tmp_path, expected=cols)
        assert report.ok
        assert {o.name for o in report.outcomes} >= {
            "store.readable",
            "store.checksums",
            "store.content",
        }

    @pytest.mark.parametrize("mode", TornSegment.MODES)
    def test_each_mode_detected(self, tmp_path, mode):
        write_store(tmp_path, _columns(8).items())
        injector = TornSegment(tmp_path, modes=(mode,))
        assert injector() == mode
        report = check_columnar_store(tmp_path)  # must not raise
        assert not report.ok
        assert any(not o.ok for o in report.outcomes)

    def test_modes_cycle(self, tmp_path):
        write_store(tmp_path, _columns(9).items())
        injector = TornSegment(tmp_path)
        seen = [injector() for _ in range(len(TornSegment.MODES) + 2)]
        assert tuple(seen[: len(TornSegment.MODES)]) == TornSegment.MODES
        assert seen[len(TornSegment.MODES)] == TornSegment.MODES[0]

    def test_unknown_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown corruption"):
            TornSegment(tmp_path, modes=("shred",))

    def test_wrong_schema_message_names_schema(self, tmp_path):
        write_store(tmp_path, _columns(10).items())
        TornSegment(tmp_path, modes=("wrong-schema",))()
        doc = json.loads((tmp_path / "index.json").read_text())
        assert doc["schema"] == "bogus.v0"
        with pytest.raises(StoreError, match="schema"):
            ColumnarStore(tmp_path)

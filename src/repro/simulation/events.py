"""A small deterministic discrete-event engine.

The substrate under :mod:`repro.simulation.server`: a heap-ordered event
queue with stable tie-breaking (time, priority, insertion sequence), so
simulations replay identically run-to-run — important because the paper's
comparisons are exact bandwidth counts, not stochastic averages.

Events carry an arbitrary callback.  Cancellations are handled lazily via
tombstones (the usual heapq idiom), keeping both push and pop O(log n).
Moving an event later — the server does it on every Lemma 1 stream
extension — is lazy too: :meth:`EventQueue.postpone` records the new
``(time, seq)`` in O(1) and leaves the heap entry in place as a
tombstone; the entry is re-pushed only when it surfaces.  Because the
sequence number is drawn *at postpone time*, execution order (including
every equal-timestamp tie) is identical to the eager cancel-and-
reschedule it replaces — a chain of k extensions costs O(k) plus one
O(log n) re-push instead of k heap pushes.

Laziness must not leak memory: a workload that cancels or postpones far
more than it pops (long-lived daemons, cancel-heavy policies) would grow
the heap without bound on tombstones alone.  The queue therefore counts
its stale entries and **compacts** — rebuilds the heap with cancelled
entries dropped and deferred ``(time, seq)`` applied in place — whenever
tombstones outnumber live entries (above a small floor).  Compaction
applies exactly the keys a lazy resurface would have used, so execution
order is untouched; ``tests/simulation/test_events.py`` pins the
eager-vs-lazy equivalence across the compaction boundary.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering: time, then priority, then FIFO."""

    time: float
    priority: int
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: lazily postponed target ``(time, seq)``; applied when the stale
    #: heap entry surfaces (see ``EventQueue.postpone``).
    deferred_time: Optional[float] = field(default=None, compare=False)
    deferred_seq: Optional[int] = field(default=None, compare=False, repr=False)
    #: owning queue while the event is still pending in the heap; cleared
    #: on pop so the live-event counter is decremented exactly once.
    _queue: Optional["EventQueue"] = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        if self._queue is not None:
            queue = self._queue
            self._queue = None
            queue._live -= 1
            if self.deferred_time is None:  # a postponed entry is already stale
                queue._note_tombstone()


#: below this heap size compaction is never worth the rebuild.
_MIN_COMPACT_SIZE = 16


class EventQueue:
    """Heap-based future event list with a monotonic clock."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now: float = 0.0
        self._processed = 0
        self._live = 0
        self._tombstones = 0  # stale heap entries: cancelled or deferred
        self._compactions = 0

    @property
    def compactions(self) -> int:
        """Number of tombstone compactions performed (observability)."""
        return self._compactions

    def _note_tombstone(self) -> None:
        self._tombstones += 1
        if (
            len(self._heap) >= _MIN_COMPACT_SIZE
            and self._tombstones > len(self._heap) // 2
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones.

        Cancelled entries are dropped; deferred entries get the exact
        ``(time, seq)`` a lazy resurface would have applied, so the heap
        order after ``heapify`` is the order the lazy path would have
        reached — equivalence, not approximation.
        """
        keep = []
        for event in self._heap:
            if event.cancelled:
                continue
            if event.deferred_time is not None:
                event.time = event.deferred_time
                event.seq = event.deferred_seq
                event.deferred_time = event.deferred_seq = None
            keep.append(event)
        self._heap = keep
        heapq.heapify(self._heap)
        self._tombstones = 0
        self._compactions += 1

    def __len__(self) -> int:
        # O(1): maintained on schedule / cancel / pop instead of scanning
        # the heap for tombstones on every call.
        return self._live

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self, time: float, action: Callable[[], None], priority: int = 0
    ) -> Event:
        """Schedule ``action`` at ``time`` (>= now).  Lower priority first."""
        if math.isnan(time):
            raise ValueError("event time is NaN")
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now = {self.now}"
            )
        event = Event(time=time, priority=priority, seq=next(self._counter), action=action)
        event._queue = self
        self._live += 1
        heapq.heappush(self._heap, event)
        return event

    def postpone(self, event: Event, new_time: float) -> None:
        """Lazily move a pending event to ``new_time`` (>= its current time).

        O(1): the stale heap entry becomes a tombstone in place and is
        re-pushed with the ``(new_time, seq)`` recorded here when it
        surfaces.  The sequence number is drawn now, so the eventual
        execution order — including all equal-timestamp ties — is exactly
        the order an eager ``cancel()`` + ``schedule()`` at this moment
        would have produced.  Moving an event *earlier* is not possible
        lazily (the stale entry would surface too late) and raises.
        """
        if math.isnan(new_time):
            raise ValueError("event time is NaN")
        if event.cancelled or event._queue is not self:
            raise ValueError("can only postpone a pending event of this queue")
        current = (
            event.deferred_time if event.deferred_time is not None else event.time
        )
        if new_time < current:
            raise ValueError(
                f"postpone cannot move an event earlier: {new_time} < {current}"
            )
        fresh = event.deferred_time is None  # re-postponing is already stale
        event.deferred_time = new_time
        event.deferred_seq = next(self._counter)
        if fresh:
            self._note_tombstone()

    def _resurface(self, event: Event) -> None:
        """Re-push a popped tombstone at its deferred ``(time, seq)``."""
        event.time = event.deferred_time
        event.seq = event.deferred_seq
        event.deferred_time = event.deferred_seq = None
        self._tombstones -= 1
        heapq.heappush(self._heap, event)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when drained."""
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                self._tombstones -= 1
            elif head.deferred_time is not None:
                self._resurface(heapq.heappop(self._heap))
            else:
                return head.time
        return None

    def step(self) -> bool:
        """Run the next live event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                self._tombstones -= 1
                continue
            if event.deferred_time is not None:
                self._resurface(event)
                continue
            event._queue = None
            self._live -= 1
            self.now = event.time
            self._processed += 1
            event.action()
            return True
        return False

    def run(self, until: float = math.inf, max_events: Optional[int] = None) -> None:
        """Drain events with time <= ``until`` (inclusive).

        ``max_events`` guards against runaway self-scheduling loops.
        """
        executed = 0
        while True:
            nxt = self.peek_time()
            if nxt is None or nxt > until:
                break
            self.step()
            executed += 1
            if max_events is not None and executed >= max_events:
                raise RuntimeError(
                    f"exceeded max_events = {max_events}; "
                    "simulation appears to be diverging"
                )
        # Advance the clock to the horizon even if nothing fired at it.
        if math.isfinite(until) and until > self.now:
            self.now = until

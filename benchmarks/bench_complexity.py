"""Bench: Theorem 7/10 — the O(n) construction vs the O(n^2) DP of [6].

This is the paper's headline algorithmic improvement; the bench times
both constructions directly (pytest-benchmark groups) and asserts equal
outputs.
"""

from __future__ import annotations

import pytest

from repro.core import dp
from repro.core.full_cost import build_optimal_forest, optimal_full_cost
from repro.core.offline import build_optimal_tree, merge_cost


@pytest.mark.parametrize("n", [500, 2000])
def test_linear_builder(benchmark, n):
    tree = benchmark(build_optimal_tree, n)
    assert tree.merge_cost() == merge_cost(n)


@pytest.mark.parametrize("n", [500, 2000])
def test_quadratic_dp(benchmark, n):
    table = benchmark(dp.merge_cost_table, n)
    assert table[n] == merge_cost(n)


def test_linear_builder_large(benchmark):
    """n = 100k: far beyond the DP's reach, still sub-second."""
    tree = benchmark(build_optimal_tree, 100_000)
    assert tree.merge_cost() == merge_cost(100_000)


def test_forest_construction_theorem10(benchmark):
    """O(L + n) optimal forest: L=500, n=50k."""
    forest = benchmark(build_optimal_forest, 500, 50_000)
    assert forest.full_cost(500) == optimal_full_cost(500, 50_000)

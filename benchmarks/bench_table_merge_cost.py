"""Bench: the in-text M(n) and Mw(n) tables (Sections 3.1 / 3.4).

Regenerates both 16-entry tables exactly as printed in the paper and
times the closed-form evaluators at production scale (n = 10^6 entries)
against the quadratic DP they replace.
"""

from __future__ import annotations

import numpy as np

from repro.core import dp, offline, receive_all
from repro.experiments.table_merge_cost import PAPER_M, PAPER_MW, run_table_mn, run_table_mw

from conftest import assert_all_ok


def test_table_mn_regeneration(benchmark):
    (res,) = benchmark(run_table_mn)
    assert_all_ok(res.rows, "M(n) table")
    assert [row[1] for row in res.rows] == PAPER_M


def test_table_mw_regeneration(benchmark):
    (res,) = benchmark(run_table_mw)
    assert_all_ok(res.rows, "Mw(n) table")
    assert [row[1] for row in res.rows] == PAPER_MW


def test_closed_form_bulk_evaluation(benchmark):
    """Vectorised Eq. (6) over 10^6 sizes — the sweep-path workhorse."""
    ns = np.arange(1, 1_000_001)
    out = benchmark(offline.merge_cost_array, ns)
    assert out[7] == 21  # M(8)
    assert out[-1] == offline.merge_cost(1_000_000)


def test_receive_all_bulk_evaluation(benchmark):
    ns = np.arange(1, 1_000_001)
    out = benchmark(receive_all.merge_cost_receive_all_array, ns)
    assert out[7] == 17  # Mw(8)


def test_dp_reference_cost(benchmark):
    """The O(n^2) baseline the paper's O(n) results replace (n = 2000)."""
    table = benchmark(dp.merge_cost_table, 2000)
    assert table[8] == 21

"""Batching baselines (Section 1 and Section 4.2).

*Pure batching*: clients wait until the end of their slot (length = the
guaranteed start-up delay) and the server broadcasts the **whole** stream
once per served slot — the natural best batching can do under a delay
guarantee.  Section 4.2 distinguishes:

* the *batching* comparator starts a stream at a slot end only if at least
  one client arrived during the slot, whereas
* the *Delay Guaranteed* algorithm starts one every slot regardless.

*Batched dyadic* slots the arrivals the same way and then runs dyadic
stream merging over the non-empty slot ends (the "batched dyadic" curve in
Figs. 11-12).
"""

from __future__ import annotations

from typing import Optional

from ..arrivals.traces import ArrivalTrace
from ..core.merge_tree import MergeForest
from .dyadic import DyadicParams, dyadic_forest

__all__ = [
    "pure_batching_cost",
    "batched_dyadic_forest",
    "batched_dyadic_cost",
]


def pure_batching_cost(trace: ArrivalTrace, L: int, slot: float = 1.0) -> float:
    """Total bandwidth of pure batching: ``L`` per non-empty slot.

    In the delay-guaranteed every-slot case this is ``n * L``
    (Theorem 14's comparison point).
    """
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    served = trace.slotted(slot=slot, keep_empty=False)
    return len(served) * L


def batched_dyadic_forest(
    trace: ArrivalTrace,
    L: int,
    slot: float = 1.0,
    params: Optional[DyadicParams] = None,
) -> MergeForest:
    """Dyadic merge forest over the ends of the non-empty slots.

    Slot ends are measured in slot units (slot ``t`` produces an imaginary
    client at time ``t + 1``); the dyadic window is ``beta * L`` in the same
    units, matching the immediate-service variant.
    """
    if params is None:
        params = DyadicParams()
    ends = trace.slot_end_times(slot=slot, keep_empty=False)
    if not ends:
        raise ValueError("trace has no arrivals; nothing to serve")
    # Convert to slot units so costs are comparable with analytic formulas.
    ends_in_slots = [t / slot for t in ends]
    return dyadic_forest(ends_in_slots, L, params)


def batched_dyadic_cost(
    trace: ArrivalTrace,
    L: int,
    slot: float = 1.0,
    params: Optional[DyadicParams] = None,
) -> float:
    """Total bandwidth (slot units) of the batched dyadic algorithm."""
    return batched_dyadic_forest(trace, L, slot, params).full_cost(L)

"""Baseline / comparator algorithms: dyadic merging, batching, unicast,
patching."""

from .batching import batched_dyadic_cost, batched_dyadic_forest, pure_batching_cost
from .dyadic import (
    DyadicOnline,
    DyadicParams,
    dyadic_cost,
    dyadic_forest,
    dyadic_interval_index,
    dyadic_tree,
    paper_beta,
)
from .patching import PatchingResult, patching_cost, recommended_window
from .unicast import unicast_cost

__all__ = [
    "DyadicOnline",
    "DyadicParams",
    "PatchingResult",
    "batched_dyadic_cost",
    "batched_dyadic_forest",
    "dyadic_cost",
    "dyadic_forest",
    "dyadic_interval_index",
    "dyadic_tree",
    "paper_beta",
    "patching_cost",
    "pure_batching_cost",
    "recommended_window",
    "unicast_cost",
]

"""Store-backed fleet runs are bit-identical to in-memory runs.

The acceptance contract of the scale tier: routing a workload through
the out-of-core columnar store — at *any* writer chunk size, with any
worker count, on any available kernel backend — produces the same
:class:`FleetReport` as the in-memory PR 5 path, compared field-for-field
and array-for-array by :func:`repro.burnin.fleet_reports_equal`.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arrivals import poisson
from repro.burnin import fleet_reports_equal
from repro.fastpath import FlatForest
from repro.fleet import run_fleet, stored_workload
from repro.fleet.runner import _times_of
from repro.multiplex import Catalog, split_requests
from repro.scale import columnar
from repro.scale.kernels import HAVE_NUMBA, active_backend, configure_backend

BACKENDS = ["numpy"] + (["numba"] if HAVE_NUMBA else [])

#: writer chunk sizes the byte-identity contract names: 1, a prime, a
#: power of two, and "everything at once"
CHUNK_SIZES = (1, 7, 64, 1 << 20)


@pytest.fixture(autouse=True)
def _restore_backend():
    before = active_backend()
    yield
    configure_backend(before)


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(6, duration_minutes=45.0)


@pytest.fixture(scope="module")
def workload(catalog):
    base = poisson(0.2, 120.0, seed=31)
    return split_requests(base, catalog, seed=31)


@pytest.fixture(scope="module")
def baseline(catalog, workload):
    configure_backend("numpy")
    return run_fleet(catalog, 2.0, 120.0, workload=workload)


class TestStoreEquivalence:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_spooled_store_matches_in_memory(
        self, catalog, workload, baseline, tmp_path, chunk_size, backend
    ):
        configure_backend(backend)
        with stored_workload(
            catalog, workload, root=tmp_path, chunk_size=chunk_size
        ):
            pass  # spooling alone must not disturb anything
        report = run_fleet(
            catalog, 2.0, 120.0, workload=workload, store=tmp_path
        )
        assert fleet_reports_equal(report, baseline) is None

    @pytest.mark.parametrize("workers", [0, 2])
    def test_existing_store_matches_in_memory(
        self, catalog, workload, baseline, tmp_path, workers
    ):
        """workload=None + a pre-written store: the parent only ever
        touches the index, workers map their own columns."""
        root = tmp_path / "prewritten"
        columnar.write_store(
            root,
            ((obj.name, _times_of(workload[obj.name])) for obj in catalog),
        )
        report = run_fleet(
            catalog, 2.0, 120.0, workload=None, store=root, workers=workers
        )
        assert fleet_reports_equal(report, baseline) is None

    def test_store_run_spools_and_cleans(self, catalog, workload, tmp_path):
        run_fleet(
            catalog, 2.0, 120.0, workload=workload, store=tmp_path, workers=2
        )
        assert glob.glob(str(tmp_path / "repro-store-*")) == []

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        chunk_size=st.sampled_from(CHUNK_SIZES),
        backend=st.sampled_from(BACKENDS),
    )
    def test_parent_arrays_identical_random_workloads(
        self, tmp_path_factory, seed, chunk_size, backend
    ):
        """Random workloads: forests built off store views equal forests
        built off in-memory arrays, parent-for-parent."""
        catalog = Catalog.zipf(3, duration_minutes=30.0)
        base = poisson(0.4, 60.0, seed=seed)
        workload = split_requests(base, catalog, seed=seed)

        configure_backend("numpy")
        ref = run_fleet(catalog, 1.5, 60.0, workload=workload)

        configure_backend(backend)
        root = tmp_path_factory.mktemp("eq")
        report = run_fleet(
            catalog, 1.5, 60.0, workload=workload, store=root
        )
        assert fleet_reports_equal(report, ref) is None
        for a, b in zip(report.objects, ref.objects):
            assert np.array_equal(a.starts, b.starts)
            assert np.array_equal(a.ends, b.ends)

    def test_flat_forest_from_store_view_matches(self, tmp_path):
        """A FlatForest built on a read-only store view is identical to
        one built on the owning array (construction never writes)."""
        arr = np.cumsum(np.random.default_rng(3).integers(1, 5, size=200))
        arr = arr.astype(np.float64)
        par = np.full(arr.size, -1, dtype=np.intp)
        par[1:] = np.arange(arr.size - 1)  # a chain
        columnar.write_store(tmp_path, [("chain", arr)])
        with columnar.ColumnarStore(tmp_path) as store:
            view = store.column("chain")
            assert not view.flags.writeable
            f_view = FlatForest(view, par)
            f_mem = FlatForest(arr, par)
            assert f_view.equals(f_mem)
            assert np.array_equal(f_view.z, f_mem.z)

"""Bench: Fig. 8 — the I(n) root-merge interval table, 2 <= n <= 55.

Exact reproduction: every closed-form interval must match the DP argmin
set.  Also times the O(n) r(i) recurrence at scale.
"""

from __future__ import annotations

from repro.core.offline import last_merge_table
from repro.experiments.fig8_root_intervals import run_fig8

from conftest import assert_all_ok


def test_fig8_table(benchmark):
    (res,) = benchmark(run_fig8, n_max=55)
    assert_all_ok(res.rows, "I(n) table")
    assert len(res.rows) == 54


def test_last_merge_recurrence_scale(benchmark):
    """r(1..10^6) in O(n) — the heart of the Theorem 7 constructor."""
    table = benchmark(last_merge_table, 1_000_000)
    assert table[8] == 5
    assert table[2] == 1

"""Tests for the standing-invariant contract layer."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.arrivals import poisson
from repro.burnin import (
    check_admission_report,
    check_fleet_report,
    check_sweep_result,
    fleet_reports_equal,
)
from repro.fleet import FleetPolicy, admission_report, run_fleet
from repro.multiplex import Catalog, split_requests
from repro.sweeps import Axis, SweepSpec, run_sweep
from repro.sweeps.evaluators import merge_cost_table_point

DELAY = 2.0
HORIZON = 180.0


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(8, duration_minutes=60.0)


@pytest.fixture(scope="module")
def workload(catalog):
    base = poisson(0.4, HORIZON, seed=11)
    return split_requests(base, catalog, seed=11)


def _report(catalog, workload, policy):
    return run_fleet(
        catalog, DELAY, HORIZON, policy=policy, workload=workload
    )


class TestFleetContracts:
    @pytest.mark.parametrize(
        "kind",
        [
            "batched-dyadic",
            "delay-guaranteed",
            "pure-batching",
            "immediate-dyadic",
            "unicast",
            "hybrid",
        ],
    )
    def test_clean_run_passes_all_contracts(self, catalog, workload, kind):
        policy = FleetPolicy(kind)
        report = _report(catalog, workload, policy)
        contracts = check_fleet_report(report, catalog, workload, policy)
        assert contracts.ok, contracts.render()
        assert contracts.checks > len(catalog.objects)

    def test_segmented_replay_detects_tampering(self, catalog, workload):
        """The replay contract covers segmented (hybrid) runs: shifting a
        mode boundary's worth of intervals must fail the re-simulation."""
        policy = FleetPolicy.hybrid(window_slots=5, rate_high=0.5, rate_low=0.2)
        report = _report(catalog, workload, policy)
        contracts = check_fleet_report(report, catalog, workload, policy)
        assert contracts.ok, contracts.render()
        victim = next(o for o in report.objects if o.streams > 1)
        idx = report.objects.index(victim)
        starts = victim.starts.copy()
        starts[-1] += 0.25  # nudge one stream off its slot end
        report.objects[idx] = dataclasses.replace(victim, starts=starts)
        broken = check_fleet_report(report, catalog, workload, policy)
        assert any(o.name == "fleet.replay" for o in broken.failures())

    def test_summary_contracts_without_replay(self, catalog, workload):
        report = _report(catalog, workload, FleetPolicy.batched_dyadic())
        contracts = check_fleet_report(report, replay=False)
        assert contracts.ok
        names = {o.name for o in contracts.outcomes}
        assert "fleet.replay" not in names

    def test_delay_violation_detected(self, catalog, workload):
        report = _report(catalog, workload, FleetPolicy.batched_dyadic())
        broken = dataclasses.replace(
            report.objects[0], max_startup_delay_minutes=DELAY * 5
        )
        report.objects[0] = broken
        contracts = check_fleet_report(report, replay=False)
        assert not contracts.ok
        assert any(
            o.name == "fleet.delay-guarantee" for o in contracts.failures()
        )

    def test_conservation_violation_detected(self, catalog, workload):
        report = _report(catalog, workload, FleetPolicy.batched_dyadic())
        broken = dataclasses.replace(
            report.objects[0],
            total_units_minutes=report.objects[0].total_units_minutes + 7.0,
        )
        report.objects[0] = broken
        contracts = check_fleet_report(report, replay=False)
        assert any(
            o.name == "fleet.conservation" for o in contracts.failures()
        )

    def test_tampered_intervals_fail_replay(self, catalog, workload):
        policy = FleetPolicy.batched_dyadic()
        report = _report(catalog, workload, policy)
        victim = next(o for o in report.objects if o.streams > 0)
        idx = report.objects.index(victim)
        report.objects[idx] = dataclasses.replace(
            victim,
            starts=victim.starts + 0.25,
            ends=victim.ends + 0.25,
        )
        contracts = check_fleet_report(report, catalog, workload, policy)
        assert any(o.name == "fleet.replay" for o in contracts.failures())

    def test_capacity_contract_armed_by_budget(self, catalog, workload):
        report = _report(catalog, workload, FleetPolicy.batched_dyadic())
        peak = report.peak_channels
        ok = check_fleet_report(report, replay=False, budget_channels=peak)
        assert ok.ok
        bad = check_fleet_report(
            report, replay=False, budget_channels=peak - 1
        )
        assert any(o.name == "fleet.capacity" for o in bad.failures())


class TestFleetReportsEqual:
    def test_identical_runs_compare_equal(self, catalog, workload):
        a = _report(catalog, workload, FleetPolicy.batched_dyadic())
        b = _report(catalog, workload, FleetPolicy.batched_dyadic())
        assert fleet_reports_equal(a, b) is None

    def test_repaired_counter_is_ignored(self, catalog, workload):
        a = _report(catalog, workload, FleetPolicy.batched_dyadic())
        b = _report(catalog, workload, FleetPolicy.batched_dyadic())
        b.objects[0] = dataclasses.replace(b.objects[0], repaired=13)
        assert fleet_reports_equal(a, b) is None

    def test_interval_difference_detected(self, catalog, workload):
        a = _report(catalog, workload, FleetPolicy.batched_dyadic())
        b = _report(catalog, workload, FleetPolicy.batched_dyadic())
        victim = next(o for o in b.objects if o.streams > 0)
        idx = b.objects.index(victim)
        b.objects[idx] = dataclasses.replace(victim, ends=victim.ends + 1.0)
        assert fleet_reports_equal(a, b) is not None


class TestEdgeCaseObjects:
    """Zero-arrival and single-client objects must flow through the full
    run_fleet -> contracts path (empty-forest edge cases)."""

    @pytest.mark.parametrize(
        "kind",
        ["batched-dyadic", "delay-guaranteed", "pure-batching",
         "immediate-dyadic", "unicast", "general-offline"],
    )
    def test_zero_arrival_catalog(self, kind):
        catalog = Catalog.zipf(3, duration_minutes=30.0)
        empty = {o.name: np.empty(0) for o in catalog}
        policy = FleetPolicy(kind)
        report = run_fleet(
            catalog, DELAY, HORIZON, policy=policy, workload=empty
        )
        contracts = check_fleet_report(report, catalog, empty, policy)
        assert contracts.ok, contracts.render()
        assert report.clients == 0

    @pytest.mark.parametrize(
        "kind", ["batched-dyadic", "delay-guaranteed", "unicast"]
    )
    def test_single_client_objects(self, kind):
        catalog = Catalog.zipf(2, duration_minutes=30.0)
        workload = {o.name: np.array([5.0]) for o in catalog}
        policy = FleetPolicy(kind)
        report = run_fleet(
            catalog, DELAY, HORIZON, policy=policy, workload=workload
        )
        contracts = check_fleet_report(report, catalog, workload, policy)
        assert contracts.ok, contracts.render()
        assert report.clients == len(catalog.objects)

    def test_missing_workload_entry_is_a_quiet_object(self):
        catalog = Catalog.zipf(3, duration_minutes=30.0)
        workload = {catalog.objects[0].name: np.array([1.0, 2.0])}
        policy = FleetPolicy.batched_dyadic()
        report = run_fleet(
            catalog, DELAY, HORIZON, policy=policy, workload=workload
        )
        contracts = check_fleet_report(report, catalog, workload, policy)
        assert contracts.ok, contracts.render()


class TestSweepContracts:
    def _spec(self):
        return SweepSpec(
            name="contract-test",
            evaluator=merge_cost_table_point,
            axes=[Axis("n", (1, 2, 3, 4))],
            metrics=("closed", "via_dp"),
        )

    def test_clean_sweep_passes(self):
        result = run_sweep(self._spec())
        contracts = check_sweep_result(result)
        assert contracts.ok, contracts.render()

    def test_nonfinite_metric_detected(self):
        result = run_sweep(self._spec())
        result.columns["closed"] = result.columns["closed"].astype(float)
        result.columns["closed"][1] = np.nan
        contracts = check_sweep_result(result)
        assert any(o.name == "sweep.finite" for o in contracts.failures())

    def test_accounting_drift_detected(self):
        result = run_sweep(self._spec())
        result.cache_hits += 1
        contracts = check_sweep_result(result)
        assert any(o.name == "sweep.accounting" for o in contracts.failures())


class TestAdmissionContracts:
    def test_feasible_verdict_passes(self, catalog):
        verdict = admission_report(catalog, HORIZON, budget_channels=10_000)
        assert verdict.feasible
        contracts = check_admission_report(verdict, catalog, HORIZON)
        assert contracts.ok, contracts.render()

    def test_shedding_verdict_passes(self, catalog):
        verdict = admission_report(catalog, HORIZON, budget_channels=2)
        assert not verdict.feasible and verdict.dropped
        contracts = check_admission_report(verdict, catalog, HORIZON)
        assert contracts.ok, contracts.render()

    def test_overbudget_verdict_detected(self, catalog):
        verdict = admission_report(catalog, HORIZON, budget_channels=2)
        doctored = dataclasses.replace(verdict, budget_channels=1)
        contracts = check_admission_report(doctored, catalog, HORIZON)
        assert any(
            o.name == "admission.capacity" for o in contracts.failures()
        )

"""Tests for the sharded catalog runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import FleetPolicy, fleet_profile, run_fleet
from repro.multiplex import Catalog, aggregate_profile, serve_catalog, split_requests
from repro.arrivals import poisson


@pytest.fixture(scope="module")
def catalog():
    return Catalog.zipf(12, duration_minutes=60.0)


@pytest.fixture(scope="module")
def workload(catalog):
    base = poisson(0.25, 180.0, seed=21)
    return split_requests(base, catalog, seed=21)


class TestRunFleet:
    def test_matches_multiplex_dyadic_provisioning(self, catalog, workload):
        """Immediate-dyadic fleet == the multiplex provisioning sweep."""
        report = run_fleet(
            catalog, 2.0, 180.0,
            policy=FleetPolicy.immediate_dyadic(), workload=workload,
        )
        oracle = serve_catalog(
            catalog, 2.0, 180.0, policy="dyadic", workload=workload
        )
        assert report.peak_channels == oracle.peak_channels
        assert report.total_units_minutes == pytest.approx(
            oracle.total_units_minutes
        )
        assert report.clients == oracle.clients

    def test_worker_count_does_not_change_results(self, catalog, workload):
        serial = run_fleet(
            catalog, 2.0, 180.0, workload=workload,
        )
        sharded = run_fleet(
            catalog, 2.0, 180.0, workload=workload, workers=2,
        )
        assert [o.name for o in serial.objects] == [o.name for o in sharded.objects]
        for a, b in zip(serial.objects, sharded.objects):
            assert a.clients == b.clients and a.streams == b.streams
            assert np.array_equal(a.starts, b.starts)
            assert np.array_equal(a.ends, b.ends)
        assert serial.peak_channels == sharded.peak_channels

    def test_hybrid_worker_count_does_not_change_results(self, catalog, workload):
        """Segmented hybrid through the sharded runner: workers=0 and
        workers=2 must produce byte-identical FleetReports (the exact
        equivalence predicate the burn-in contracts replay)."""
        from repro.burnin.contracts import fleet_reports_equal

        policy = FleetPolicy.hybrid(window_slots=5, rate_high=0.5, rate_low=0.2)
        serial = run_fleet(
            catalog, 2.0, 180.0, policy=policy, workload=workload, workers=0,
        )
        sharded = run_fleet(
            catalog, 2.0, 180.0, policy=policy, workload=workload, workers=2,
        )
        assert fleet_reports_equal(serial, sharded) is None
        assert serial.policy == "hybrid"

    def test_objects_missing_from_workload_cost_nothing(self, catalog):
        workload = {catalog[0].name: poisson(0.5, 180.0, seed=5)}
        # general-offline is undefined over zero served slots — quiet
        # objects must contribute empty results, not abort the fleet
        for policy in (None, FleetPolicy.general_offline()):
            report = run_fleet(catalog, 2.0, 180.0, policy=policy,
                               workload=workload)
            by_name = {o.name: o for o in report.objects}
            assert by_name[catalog[0].name].streams > 0
            for obj in catalog.objects[1:]:
                assert by_name[obj.name].streams == 0
                assert by_name[obj.name].total_units_minutes == 0.0

    def test_generated_mode_is_seed_deterministic(self, catalog):
        kwargs = dict(
            workload=None, mean_interarrival_minutes=0.25, seed=99,
        )
        a = run_fleet(catalog, 2.0, 180.0, **kwargs)
        b = run_fleet(catalog, 2.0, 180.0, **kwargs)
        assert a.clients == b.clients and a.peak_channels == b.peak_channels
        for x, y in zip(a.objects, b.objects):
            assert np.array_equal(x.starts, y.starts)
        c = run_fleet(catalog, 2.0, 180.0, workload=None,
                      mean_interarrival_minutes=0.25, seed=100)
        assert any(
            not np.array_equal(x.starts, y.starts)
            for x, y in zip(a.objects, c.objects)
        ), "different seeds produced identical workloads"

    def test_generated_mode_objects_draw_independent_streams(self):
        """Regression: spawned per-object seeds must differ — shipping
        only the SeedSequence entropy (dropping the spawn key) gave every
        object an identical RNG stream."""
        from repro.multiplex import MediaObject

        equal = Catalog(
            [MediaObject(f"eq-{i}", 60.0, 1.0) for i in range(4)]
        )
        report = run_fleet(equal, 2.0, 180.0, workload=None,
                           mean_interarrival_minutes=0.5, seed=7)
        streams = [tuple(o.starts.tolist()) for o in report.objects]
        assert len(set(streams)) == len(streams), (
            "equal-weight objects produced identical traces"
        )

    def test_generated_mode_needs_a_rate(self, catalog):
        with pytest.raises(ValueError, match="mean_interarrival"):
            run_fleet(catalog, 2.0, 180.0, workload=None)

    def test_rejects_bad_geometry(self, catalog):
        with pytest.raises(ValueError):
            run_fleet(catalog, 0.0, 180.0, workload={})
        with pytest.raises(ValueError):
            run_fleet(catalog, 2.0, -1.0, workload={})

    def test_report_summaries(self, catalog, workload):
        report = run_fleet(catalog, 2.0, 180.0, workload=workload)
        assert report.clients == sum(len(t) for t in workload.values())
        assert report.streams == sum(o.streams for o in report.objects)
        assert 0.0 < report.max_startup_delay_minutes() <= 2.0
        busiest = report.busiest_objects(3)
        assert len(busiest) == 3
        assert busiest[0].total_units_minutes >= busiest[-1].total_units_minutes
        text = report.render()
        assert "peak channels" in text and busiest[0].name in text

    def test_max_startup_delay_respects_guarantee(self, catalog, workload):
        report = run_fleet(catalog, 3.0, 180.0, workload=workload)
        for o in report.objects:
            assert o.max_startup_delay_minutes <= 3.0


class TestSharedMemoryShipping:
    """Explicit workloads ship to workers via shared memory, not pickles."""

    def test_share_and_read_roundtrip(self, catalog, workload):
        from repro.fleet.runner import _read_shm_slice, _share_workload

        segment, views = _share_workload(catalog, workload)
        assert segment is not None
        try:
            for obj in catalog:
                trace = workload.get(obj.name)
                if trace is None or len(trace) == 0:
                    assert obj.name not in views or (
                        views[obj.name].stop == views[obj.name].start
                    )
                    continue
                got = _read_shm_slice(views[obj.name])
                assert np.array_equal(
                    got, np.asarray(trace.times, dtype=np.float64)
                )
                assert got.flags.owndata  # a copy, safe after unlink
        finally:
            segment.close()
            segment.unlink()

    def test_empty_workload_skips_the_segment(self, catalog):
        from repro.fleet.runner import _share_workload

        segment, views = _share_workload(catalog, {})
        assert segment is None and views == {}

    def test_sharded_explicit_workload_matches_serial_exactly(
        self, catalog, workload
    ):
        """workers=0 (arrays in-process) vs workers=2 (shared memory):
        the fold must be byte-identical — same satellite contract the
        pickling path had."""
        serial = run_fleet(catalog, 2.0, 180.0, workload=workload, workers=0)
        sharded = run_fleet(catalog, 2.0, 180.0, workload=workload, workers=2)
        for a, b in zip(serial.objects, sharded.objects):
            assert a.name == b.name
            assert a.clients == b.clients and a.streams == b.streams
            assert a.total_units_minutes == b.total_units_minutes
            assert np.array_equal(a.starts, b.starts)
            assert np.array_equal(a.ends, b.ends)
        assert serial.peak_channels == sharded.peak_channels


class TestPoolMap:
    def test_in_order_results_regardless_of_workers(self):
        from repro.fleet.runner import pool_map

        args = list(range(12))
        assert list(pool_map(_square, args, workers=0)) == [a * a for a in args]
        assert list(pool_map(_square, args, workers=2)) == [a * a for a in args]


def _square(x: int) -> int:
    return x * x


class TestFleetProfile:
    def test_profile_bounds_peak(self, catalog, workload):
        report = run_fleet(catalog, 2.0, 180.0, workload=workload)
        # bin-occupancy over-approximates, so the max never under-reports
        starts, ends = report._stacked()
        prof = fleet_profile(starts, ends, 0.0, 240.0, 5.0)
        assert prof.max() >= report.peak_channels
        assert prof.sum() > 0
        # empty fleet profile is all zero
        empty = np.empty(0)
        assert fleet_profile(empty, empty, 0.0, 10.0, 1.0).max() == 0

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            fleet_profile(np.empty(0), np.empty(0), 5.0, 5.0, 1.0)
        with pytest.raises(ValueError):
            fleet_profile(np.empty(0), np.empty(0), 0.0, 5.0, 0.0)

    def test_report_profile_equals_objectload_aggregation(self, catalog, workload):
        report = run_fleet(
            catalog, 2.0, 180.0,
            policy=FleetPolicy.immediate_dyadic(), workload=workload,
        )
        oracle = serve_catalog(
            catalog, 2.0, 180.0, policy="dyadic", workload=workload
        )
        mine = report.profile(0.0, 240.0, resolution=2.0)
        theirs = aggregate_profile(oracle.loads, 0.0, 240.0, 2.0)
        assert np.array_equal(mine, theirs)

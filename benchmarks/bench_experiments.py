"""Sweep-tier figure drivers vs. the retired per-point loops — the
``BENCH_experiments.json`` trajectory.

Two modes (same layout as ``bench_fleet.py``):

* ``pytest benchmarks/bench_experiments.py --benchmark-only`` —
  smoke-size pytest-benchmark runs (small grids; every run asserts the
  sweep rows equal the reference loop's);
* ``python benchmarks/bench_experiments.py`` (or
  ``make bench-experiments``) — the full sweep, writing
  ``BENCH_experiments.json`` (schema ``repro.fastpath.bench.v1``) at the
  repo root.

"Reference" timings run the retired per-point driver loops
(``run_fig*_reference``: a flat forest built and evaluated per grid
point); "fast" timings run the sweep-engine drivers (closed-form
``Acost``/``Fcost`` kernels, batched fleet kernel for the dyadic
points).  Every timed pair asserts row-identical tables in-run.  The
sweep enforces the ISSUE 5 acceptance floor: >= 10x end-to-end on at
least two figure drivers at paper-scale (default) parameters —
``fig1`` and ``fig9`` clear it outright, and the warm-cache ``fig12``
re-render demonstrates the dirty-point story on a simulation-bound
driver.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path
from typing import Dict, List

if __name__ == "__main__":  # script mode: make src importable before repro
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.experiments.fig1_delay_savings import run_fig1, run_fig1_reference
from repro.experiments.fig9_online_ratio import run_fig9, run_fig9_reference
from repro.experiments.policy_comparison import run_fig12, run_fig12_reference
from repro.sweeps import SweepCache, run_sweep
from repro.experiments.fig1_delay_savings import fig1_spec
from repro.experiments.policy_comparison import comparison_spec

from conftest import timeit_best, write_bench_json


def _rows(results) -> List:
    return [list(map(tuple, res.rows)) for res in results]


def _assert_rows_equal(fast, ref, label: str) -> None:
    assert _rows(fast) == _rows(ref), f"{label}: sweep rows != reference rows"


# ---------------------------------------------------------------------------
# pytest-benchmark smoke tests (small grids, CI-friendly)
# ---------------------------------------------------------------------------


def test_fig1_sweep_smoke(benchmark):
    fast = benchmark(run_fig1)
    _assert_rows_equal(fast, run_fig1_reference(), "fig1")


def test_fig9_sweep_smoke(benchmark):
    ns = (10, 100, 1000, 10000)
    fast = benchmark(run_fig9, ns=ns)
    _assert_rows_equal(fast, run_fig9_reference(ns=ns), "fig9")


def test_fig12_sweep_smoke(benchmark):
    kwargs = dict(L=50, lambdas=(0.5, 2.0), horizon_media=10, seeds=(0,))
    fast = benchmark(run_fig12, **kwargs)
    _assert_rows_equal(fast, run_fig12_reference(**kwargs), "fig12")


def test_fig1_cache_smoke(tmp_path, benchmark):
    cache = SweepCache(tmp_path)
    run_sweep(fig1_spec(), cache=cache)  # prime
    warm = benchmark(run_sweep, fig1_spec(), cache=cache)
    assert warm.evaluated == 0 and warm.cache_hits == warm.n_points


# ---------------------------------------------------------------------------
# full sweep (script mode): writes BENCH_experiments.json
# ---------------------------------------------------------------------------


def _case(name: str, n: int, ref_s: float, fast_s: float, **extra) -> Dict:
    row = {
        "name": name,
        "n": n,
        "reference_seconds": round(ref_s, 6),
        "fast_seconds": round(fast_s, 6),
        "speedup": round(ref_s / fast_s, 2),
        **extra,
    }
    print(
        f"  {name:24s} n={n:>4d}  ref {ref_s:9.4f}s  "
        f"fast {fast_s:9.6f}s  x{row['speedup']:.1f}"
    )
    return row


def run_bench() -> Dict:
    rows: List[Dict] = []

    # -- closed-form-dominated figure drivers, paper-scale defaults ---------
    for name, fast_fn, ref_fn, points in (
        ("fig1_delay_savings", run_fig1, run_fig1_reference, 9),
        ("fig9_online_ratio", run_fig9, run_fig9_reference, 27),
    ):
        ref_s, ref_res = timeit_best(ref_fn, repeats=3)
        fast_s, fast_res = timeit_best(fast_fn, repeats=3)
        _assert_rows_equal(fast_res, ref_res, name)
        rows.append(_case(name, points, ref_s, fast_s))

    # -- simulation-bound driver: kernel + closed-form DG -------------------
    ref_s, ref_res = timeit_best(run_fig12_reference, repeats=1)
    fast_s, fast_res = timeit_best(run_fig12, repeats=2)
    _assert_rows_equal(fast_res, ref_res, "fig12")
    rows.append(_case("fig12_poisson", 9, ref_s, fast_s))

    # -- warm-cache re-render: the dirty-point story on the same driver -----
    with tempfile.TemporaryDirectory() as tmp:
        cache = SweepCache(tmp)
        spec = comparison_spec("poisson", 100, (0.25, 0.5, 0.75, 1.0, 1.5,
                                                2.0, 3.0, 4.0, 5.0), 100,
                               (0, 1, 2))
        run_sweep(spec, cache=cache)  # prime the artifacts
        warm_s, warm = timeit_best(lambda: run_sweep(spec, cache=cache),
                                   repeats=3)
        assert warm.evaluated == 0, "cache failed to warm"
        rows.append(_case("fig12_poisson_cached", 9, ref_s, warm_s))

    # Acceptance floor (ISSUE 5): >= 10x end-to-end on at least two figure
    # drivers at paper-scale parameters, rows asserted against the
    # reference loop oracle in-run above.
    floored = [r for r in rows if r["name"] in (
        "fig1_delay_savings", "fig9_online_ratio", "fig12_poisson_cached",
    )]
    meeting = [r for r in floored if r["speedup"] >= 10]
    assert len(meeting) >= 2, f"need >=10x on two figure drivers: {rows}"

    return {
        "schema": "repro.fastpath.bench.v1",
        "description": (
            "Sweep-tier figure drivers (repro.sweeps: closed-form "
            "Acost/Fcost kernels + batched fleet kernel, columnar fold) "
            "vs the retired per-point loops (run_fig*_reference), at "
            "paper-scale default parameters.  Best-of-k wall clock; "
            "every pair asserts row-identical tables in-run.  The "
            "_cached case re-renders from a warm content-hash artifact "
            "cache (zero dirty points).  Floor: >= 10x on at least two "
            "figure drivers."
        ),
        "benchmarks": rows,
    }


def main() -> int:
    print("experiments benchmark sweep (paper-scale grids; ~10 seconds)")
    payload = run_bench()
    path = write_bench_json("experiments", payload)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Tests for the Section 5 hybrid policy (DG when busy, dyadic when quiet)."""

from __future__ import annotations

import pytest

from repro.arrivals import ArrivalTrace, constant_rate, every_slot, poisson
from repro.core.online import online_full_cost
from repro.simulation import DelayGuaranteedPolicy, ImmediateDyadicPolicy, Simulation
from repro.simulation.hybrid import HybridPolicy
from repro.simulation.verify import verify_simulation


def day_night_trace(busy_lam=0.25, quiet_lam=8.0, phase=300.0, phases=4, seed=0):
    times = []
    for k in range(phases):
        lam = quiet_lam if k % 2 == 0 else busy_lam
        sub = poisson(lam, phase, seed=seed + k)
        times.extend(k * phase + t for t in sub)
    return ArrivalTrace(times=tuple(sorted(times)), horizon=phases * phase)


class TestConstruction:
    def test_validation(self):
        with pytest.raises(ValueError):
            HybridPolicy(10, window_slots=0)
        with pytest.raises(ValueError):
            HybridPolicy(10, rate_low=2.0, rate_high=1.0)

    def test_starts_in_dyadic_mode(self):
        p = HybridPolicy(10)
        assert p._mode == "dyadic"


class TestModeSwitching:
    def test_switches_both_ways(self):
        trace = day_night_trace()
        policy = HybridPolicy(50, window_slots=10, rate_high=1.0, rate_low=0.4)
        res = Simulation(50, trace, policy).run()
        modes = [m for _, m in policy.mode_log]
        assert "dg" in modes and "dyadic" in modes
        verify_simulation(res).raise_if_failed()

    def test_stays_dyadic_when_sparse(self):
        trace = poisson(10.0, 400.0, seed=5)
        policy = HybridPolicy(50, window_slots=10, rate_high=1.0, rate_low=0.4)
        Simulation(50, trace, policy).run()
        assert all(m == "dyadic" for _, m in policy.mode_log)

    def test_enters_dg_when_dense(self):
        trace = constant_rate(0.2, 200.0)
        policy = HybridPolicy(50, window_slots=5, rate_high=1.0, rate_low=0.4)
        res = Simulation(50, trace, policy).run()
        assert any(m == "dg" for _, m in policy.mode_log)
        verify_simulation(res).raise_if_failed()

    def test_hysteresis_reduces_flapping(self):
        trace = poisson(1.0, 600.0, seed=9)  # rate right at the threshold
        tight = HybridPolicy(50, window_slots=10, rate_high=1.0, rate_low=0.999)
        loose = HybridPolicy(50, window_slots=10, rate_high=1.3, rate_low=0.4)
        Simulation(50, trace, tight).run()
        Simulation(50, trace, loose).run()
        assert len(loose.mode_log) <= len(tight.mode_log)


class TestCosts:
    def test_beats_pure_dg_on_mixed_load(self):
        trace = day_night_trace()
        L = 50
        res_h = Simulation(L, trace, HybridPolicy(L, window_slots=10, rate_low=0.4)).run()
        res_dg = Simulation(L, trace, DelayGuaranteedPolicy(L)).run()
        assert res_h.metrics.total_units < res_dg.metrics.total_units

    def test_matches_dg_under_saturation(self):
        """Dense constant arrivals: hybrid locks into DG; totals within the
        warm-up difference of pure DG."""
        L, n = 20, 200
        trace = constant_rate(0.1, float(n))
        policy = HybridPolicy(L, window_slots=1, rate_high=1.0, rate_low=0.0)
        res = Simulation(L, trace, policy).run()
        # window=1 and 10 clients/slot: DG mode from the first slot on
        assert [m for _, m in policy.mode_log] == ["dg"]
        assert res.metrics.total_units == online_full_cost(L, n)

    def test_matches_dyadic_when_quiet(self):
        L = 50
        trace = poisson(12.0, 500.0, seed=2)
        res_h = Simulation(L, trace, HybridPolicy(L, window_slots=10)).run()
        # pure batched-dyadic comparison: same slotting, same params
        from repro.simulation import BatchedDyadicPolicy

        res_d = Simulation(L, trace, BatchedDyadicPolicy(L)).run()
        assert res_h.metrics.total_units == res_d.metrics.total_units

    def test_all_clients_served_and_verified(self):
        trace = day_night_trace(seed=11)
        res = Simulation(50, trace, HybridPolicy(50, window_slots=10)).run()
        assert all(c.tree_label is not None for c in res.clients)
        assert res.max_startup_delay() <= 1.0
        verify_simulation(res).raise_if_failed()


class TestThresholdEdgeCases:
    """Degenerate hysteresis settings, against BOTH engines.

    Each case runs the event policy and the segmented batched kernel and
    asserts full equivalence, so the edge semantics are pinned once for
    the pair rather than per engine.
    """

    @staticmethod
    def _both(trace, L=20, **knobs):
        from repro.fleet import (
            FleetPolicy,
            assert_equivalent_run,
            simulate_batched,
            simulate_event,
        )

        policy = FleetPolicy.hybrid(**knobs)
        event = simulate_event(L, trace, policy)
        batched = simulate_batched(L, trace, policy)
        assert_equivalent_run(event, batched)
        return event, batched

    def test_equal_thresholds_flap_on_alternating_load(self):
        # rate_low == rate_high with window 1: the mode bit tracks the
        # per-slot count's threshold crossing exactly — maximal flapping.
        times = tuple(t + 0.5 for t in range(0, 20, 2))  # every other slot
        trace = ArrivalTrace(times=times, horizon=20.0)
        event, batched = self._both(
            trace, window_slots=1, rate_high=1.0, rate_low=1.0
        )
        modes = [m for _, m in batched.mode_log]
        assert modes == ["dg", "dyadic"] * (len(modes) // 2)
        assert len(batched.mode_log) == 20  # switches every slot
        assert event.mode_log == batched.mode_log

    def test_window_of_one_reacts_instantly(self):
        trace = ArrivalTrace(times=(0.5, 1.5, 8.5), horizon=12.0)
        _, batched = self._both(
            trace, window_slots=1, rate_high=1.0, rate_low=0.5
        )
        # each non-empty slot enters DG, each empty slot right after exits
        assert batched.mode_log == [
            (0, "dg"), (2, "dyadic"), (8, "dg"), (9, "dyadic")
        ]

    def test_all_empty_slots_stay_dyadic_and_silent(self):
        trace = ArrivalTrace(times=(), horizon=15.0)
        event, batched = self._both(trace, window_slots=3)
        assert batched.mode_log == [] and event.mode_log == []
        assert batched.forest is None
        assert batched.metrics.streams_started == 0

    def test_all_empty_slots_with_zero_threshold_run_dg(self):
        # rate_high = 0: DG from slot 0 even with no arrivals at all —
        # the server broadcasts every slot to nobody, by contract.
        trace = ArrivalTrace(times=(), horizon=10.0)
        event, batched = self._both(
            trace, window_slots=3, rate_high=0.0, rate_low=0.0
        )
        assert batched.mode_log == [(0, "dg")]
        assert batched.metrics.streams_started == 10
        assert (batched.client_node == -1).all()

"""``python -m repro burnin`` — the fault-injected soak front end.

Runs :func:`repro.burnin.soak.run_soak` with a seeded config, prints the
contract summary, optionally writes the JSON evidence report, and exits
non-zero (3) when any standing invariant was violated — the CI smoke job
(``make burnin-smoke``) is exactly this command with a small episode
count::

    python -m repro burnin
    python -m repro burnin --episodes 10 --seed 42 --report soak.json
    python -m repro burnin --selftest-violation   # must exit 3
"""

from __future__ import annotations

import argparse
import time
from typing import List, Optional

from .soak import SoakConfig, run_soak

__all__ = ["burnin_main"]

#: exit code for a soak that detected one or more contract violations.
EXIT_CONTRACT_VIOLATION = 3


def _build_parser() -> argparse.ArgumentParser:
    defaults = SoakConfig()
    parser = argparse.ArgumentParser(
        prog="python -m repro burnin",
        description="Soak the serving stack under injected faults "
        "(worker kills, torn cache artifacts, malformed traces, flash "
        "overload) and re-assert every standing invariant after every "
        "episode.",
    )
    parser.add_argument("--episodes", type=int, default=defaults.episodes,
                        help=f"soak episodes (default {defaults.episodes})")
    parser.add_argument("--seed", type=int, default=defaults.seed,
                        help="base seed; same seed, same evidence report, "
                        "byte for byte (default 0)")
    parser.add_argument("--objects", type=int, default=defaults.objects,
                        help=f"catalog size per episode (default {defaults.objects})")
    parser.add_argument("--workers", type=int, default=defaults.workers,
                        help="worker processes for sharded episodes "
                        f"(default {defaults.workers}; worker-kill episodes "
                        "need >= 2)")
    parser.add_argument("--horizon", type=float, default=defaults.horizon_minutes,
                        help="episode horizon in minutes "
                        f"(default {defaults.horizon_minutes:g})")
    parser.add_argument("--delay", type=float, default=defaults.delay_minutes,
                        help="guaranteed start-up delay in minutes "
                        f"(default {defaults.delay_minutes:g})")
    parser.add_argument("--mean-interarrival", type=float,
                        default=defaults.mean_interarrival_minutes,
                        help="global mean inter-arrival in minutes "
                        f"(default {defaults.mean_interarrival_minutes:g})")
    parser.add_argument("--report", type=str, default=None, metavar="PATH",
                        help="write the JSON evidence report to PATH")
    parser.add_argument("--selftest-violation", action="store_true",
                        help="deliberately violate a contract in episode 0 "
                        "(harness self-test; the run must exit non-zero)")
    return parser


def burnin_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    config = SoakConfig(
        episodes=args.episodes,
        seed=args.seed,
        objects=args.objects,
        workers=args.workers,
        horizon_minutes=args.horizon,
        delay_minutes=args.delay,
        mean_interarrival_minutes=args.mean_interarrival,
        selftest_violation=args.selftest_violation,
    )
    t0 = time.perf_counter()
    report = run_soak(config)
    elapsed = time.perf_counter() - t0
    print(report.render())
    print(f"[{config.episodes} episodes soaked in {elapsed:.1f}s]")
    if args.report:
        path = report.write(args.report)
        print(f"evidence report: {path}")
    return 0 if report.ok else EXIT_CONTRACT_VIOLATION


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(burnin_main())

"""Tests for workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.arrivals import bursty, constant_rate, every_slot, poisson, rng_from


class TestConstantRate:
    def test_counts(self):
        t = constant_rate(0.5, 100.0)
        assert len(t) == 200
        assert t.times[0] == 0.0
        assert t.times[1] == 0.5

    def test_offset(self):
        t = constant_rate(1.0, 5.0, offset=0.25)
        assert t.times == (0.25, 1.25, 2.25, 3.25, 4.25)

    def test_gap_exact(self):
        t = constant_rate(2.5, 50.0)
        gaps = np.diff(t.times)
        assert np.allclose(gaps, 2.5)

    def test_errors(self):
        with pytest.raises(ValueError):
            constant_rate(0, 10.0)
        with pytest.raises(ValueError):
            constant_rate(1.0, 10.0, offset=10.0)


class TestPoisson:
    def test_seeded_reproducibility(self):
        a = poisson(1.5, 300.0, seed=11)
        b = poisson(1.5, 300.0, seed=11)
        assert a.times == b.times

    def test_different_seeds_differ(self):
        a = poisson(1.5, 300.0, seed=11)
        b = poisson(1.5, 300.0, seed=12)
        assert a.times != b.times

    def test_mean_interarrival_statistics(self):
        # With ~6000 arrivals, the sample mean is within ~5% of the target.
        t = poisson(0.5, 3000.0, seed=0)
        assert abs(t.mean_interarrival() - 0.5) < 0.025

    def test_all_in_horizon_strictly_increasing(self):
        t = poisson(0.1, 100.0, seed=3)
        arr = np.asarray(t.times)
        assert (np.diff(arr) > 0).all()
        assert arr[0] >= 0 and arr[-1] < 100.0

    def test_generator_passthrough(self):
        g = np.random.default_rng(5)
        t1 = poisson(1.0, 50.0, seed=g)
        # same generator continues its sequence -> different trace
        t2 = poisson(1.0, 50.0, seed=g)
        assert t1.times != t2.times

    def test_errors(self):
        with pytest.raises(ValueError):
            poisson(0, 10.0)


class TestEverySlot:
    def test_canonical(self):
        t = every_slot(5)
        assert t.times == (0, 1, 2, 3, 4)
        assert t.horizon == 5
        assert t.slotted(1.0) == [0, 1, 2, 3, 4]

    def test_scaled(self):
        t = every_slot(3, slot=2.0)
        assert t.times == (0.0, 2.0, 4.0)

    def test_errors(self):
        with pytest.raises(ValueError):
            every_slot(0)


class TestBursty:
    def test_strictly_increasing(self):
        t = bursty(1.0, 500.0, burst_size=5, burst_spread=0.5, seed=2)
        arr = np.asarray(t.times)
        assert (np.diff(arr) > 0).all()

    def test_burstiness_vs_poisson(self):
        # Variance of slot counts should exceed Poisson's at equal rate.
        b = bursty(0.5, 2000.0, burst_size=10, burst_spread=1.0, seed=4)
        p = poisson(0.5, 2000.0, seed=4)
        vb = np.var(b.slot_counts(5.0))
        vp = np.var(p.slot_counts(5.0))
        assert vb > vp

    def test_errors(self):
        with pytest.raises(ValueError):
            bursty(1.0, 10.0, burst_size=0, burst_spread=1.0)
        with pytest.raises(ValueError):
            bursty(1.0, 10.0, burst_size=2, burst_spread=0.0)


class TestRngFrom:
    def test_coercions(self):
        g = np.random.default_rng(1)
        assert rng_from(g) is g
        assert isinstance(rng_from(7), np.random.Generator)
        assert isinstance(rng_from(None), np.random.Generator)

"""Ablation studies for the design choices DESIGN.md calls out.

* ``ablation-dyadic``: sensitivity of the dyadic algorithm to alpha
  (original [9] used 2; the paper and [4] use phi) and beta.
* ``ablation-online-tree``: the DG algorithm's static tree size — the
  Fibonacci choice ``F_h`` vs neighbouring sizes (why Theorem 12's bracket
  is the right static pick).
* ``complexity``: O(n) Theorem 7 builder vs the O(n^2) DP of [6] —
  wall-clock scaling evidence for the paper's headline complexity claim.
* ``buffer``: bounded-buffer cost curve (Section 3.3): optimal full cost
  as the client buffer B shrinks.

All four are sweep-tier drivers.  The dyadic grid runs through the
batched fleet kernel; the tree-size and buffer grids through the
closed-form cost kernels; the complexity grid times real constructions
per point and is therefore marked non-cacheable.
"""

from __future__ import annotations

from typing import List, Sequence

from ..core.fibonacci import PHI, fib, tree_size_index
from ..core.full_cost import optimal_full_cost
from ..sweeps import Axis, SweepSpec, run_sweep
from ..sweeps.evaluators import (
    bounded_buffer_point,
    construction_timing_point,
    dyadic_sensitivity_point,
    static_tree_point,
)
from .harness import ExperimentResult, register


def ablation_dyadic_spec(
    L: int,
    lam: float,
    horizon: float,
    alphas: Sequence[float],
    betas: Sequence[float],
    seeds: Sequence[int],
) -> SweepSpec:
    return SweepSpec(
        name="ablation-dyadic",
        evaluator=dyadic_sensitivity_point,
        axes=[Axis("alpha", tuple(alphas)), Axis("beta", tuple(betas))],
        fixed={
            "L": int(L),
            "lam": float(lam),
            "horizon": float(horizon),
            "seeds": tuple(seeds),
        },
        metrics=("mean_streams",),
    )


@register(
    "ablation-dyadic",
    "Dyadic (alpha, beta) sensitivity",
    "Section 4.2 (parameter discussion)",
    "Cost of the dyadic algorithm across alpha and beta on a Poisson trace.",
)
def run_ablation_dyadic(
    L: int = 100,
    lam: float = 0.5,
    horizon: float = 2000.0,
    alphas: Sequence[float] = (1.3, PHI, 2.0),
    betas: Sequence[float] = (0.25, 0.5, 0.75),
    seeds: Sequence[int] = (0, 1, 2),
) -> List[ExperimentResult]:
    sweep = run_sweep(ablation_dyadic_spec(L, lam, horizon, alphas, betas, seeds))
    rows = [
        (round(alpha, 4), beta, round(mean, 2))
        for alpha, beta, mean in sweep.rows("alpha", "beta", "mean_streams")
    ]
    return [
        ExperimentResult(
            title=f"Dyadic cost (streams served) on Poisson lam={lam}, "
            f"L={L}, horizon={horizon}",
            headers=("alpha", "beta", "streams served (mean)"),
            rows=rows,
            notes=["alpha = phi is competitive with alpha = 2, as [4] found."],
            columns=sweep.columns_json(),
        )
    ]


def ablation_online_tree_spec(
    L: int, n: int, sizes: Sequence[int]
) -> SweepSpec:
    return SweepSpec(
        name="ablation-online-tree",
        evaluator=static_tree_point,
        axes=[Axis("size", tuple(sizes))],
        fixed={"L": int(L), "n": int(n)},
        metrics=("cost", "is_fib"),
    )


@register(
    "ablation-online-tree",
    "DG static tree size: F_h vs neighbours",
    "Section 4.1 (choice of F_h)",
    "Full cost of the repeat-a-static-tree policy for various tree sizes.",
)
def run_ablation_online_tree(
    L: int = 100, n: int = 10_000, extra_sizes: Sequence[int] = ()
) -> List[ExperimentResult]:
    h = tree_size_index(L)
    fh = fib(h)
    sizes = [
        size
        for size in sorted(
            {fib(h - 1), fh - 10, fh - 3, fh - 1, fh, fh + 1, fh + 3, fh + 10,
             fib(h + 1)}
            | set(extra_sizes)
        )
        if 1 <= size <= L - 1
    ]
    opt = optimal_full_cost(L, n)
    sweep = run_sweep(ablation_online_tree_spec(L, n, sizes))
    rows = [
        (
            size,
            "F_h" if size == fh else ("F" if is_fib else ""),
            cost,
            round(cost / opt, 5),
        )
        for size, cost, is_fib in sweep.rows("size", "cost", "is_fib")
    ]
    return [
        ExperimentResult(
            title=f"Static-tree policy cost by tree size (L={L}, n={n}; "
            f"F_h = {fh}, optimal = {opt})",
            headers=("tree size", "fib?", "cost", "cost/optimal"),
            rows=rows,
            notes=["Shape target: minimum at (or adjacent to) F_h."],
            columns=sweep.columns_json(),
        )
    ]


def complexity_spec(ns: Sequence[int]) -> SweepSpec:
    # Wall-clock measurements are not reproducible artifacts: never cache.
    return SweepSpec(
        name="complexity",
        evaluator=construction_timing_point,
        axes=[Axis("n", tuple(ns))],
        metrics=("t_fast", "t_dp", "m"),
        cacheable=False,
    )


@register(
    "complexity",
    "O(n) construction vs O(n^2) DP (Theorems 7/10)",
    "Theorem 7 (improving the O(n^2) of [6])",
    "Wall-clock scaling of the two optimal-tree constructions.",
)
def run_complexity(
    ns: Sequence[int] = (200, 400, 800, 1600, 3200),
) -> List[ExperimentResult]:
    sweep = run_sweep(complexity_spec(ns))
    rows = [
        (
            n,
            round(t_fast * 1e3, 3),
            round(t_dp * 1e3, 3),
            round(t_dp / t_fast, 1) if t_fast > 0 else "-",
            m,
        )
        for n, t_fast, t_dp, m in sweep.rows("n", "t_fast", "t_dp", "m")
    ]
    return [
        ExperimentResult(
            title="Optimal tree construction: Theorem 7 O(n) vs [6] DP O(n^2)",
            headers=("n", "O(n) ms", "DP ms", "speedup", "M(n)"),
            rows=rows,
            notes=[
                "Shape target: DP time grows ~4x per doubling, O(n) ~2x; "
                "speedup widens with n.",
            ],
        )
    ]


def buffer_spec(L: int, n: int, Bs: Sequence[int]) -> SweepSpec:
    return SweepSpec(
        name="buffer",
        evaluator=bounded_buffer_point,
        axes=[Axis("B", tuple(B for B in Bs if 2 * B <= L))],
        fixed={"L": int(L), "n": int(n)},
        metrics=("cost",),
    )


@register(
    "buffer",
    "Bounded client buffers (Section 3.3 / Theorem 16)",
    "Section 3.3",
    "Optimal full cost as the buffer bound B shrinks below L/2.",
)
def run_buffer(
    L: int = 100, n: int = 2000, Bs: Sequence[int] = (1, 2, 5, 10, 20, 35, 50)
) -> List[ExperimentResult]:
    unbounded = optimal_full_cost(L, n)
    sweep = run_sweep(buffer_spec(L, n, Bs))
    rows = [
        (B, cost, round(cost / unbounded, 4))
        for B, cost in sweep.rows("B", "cost")
    ]
    return [
        ExperimentResult(
            title=f"B-bounded optimal full cost (L={L}, n={n}; "
            f"unbounded = {unbounded})",
            headers=("B", "F_B(L,n)", "vs unbounded"),
            rows=rows,
            notes=[
                "Shape target: monotone non-increasing in B; equals the "
                "unbounded cost once B reaches the unbounded optimum's "
                "largest tree span.",
            ],
            columns=sweep.columns_json(),
        )
    ]

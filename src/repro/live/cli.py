"""``python -m repro live`` — the rolling-horizon online serving front end.

Replays a scenario workload through :class:`~repro.live.daemon.LiveDaemon`
in accelerated wall-clock, prints the live report, re-asserts the live
standing invariants (decisions ahead of the fence, committed-prefix
immutability, schedule optimality, offline-oracle equality), and exits
non-zero (5) on any violation — the same exit-codes-are-contracts rule as
``burnin`` (3) and ``fleet`` (4)::

    python -m repro live
    python -m repro live --scenario diurnal --accel 720 --epoch 15
    python -m repro live --smoke        # the CI acceptance soak

``--smoke`` is the acceptance run wired into CI (``make live-smoke``): a
short accelerated diurnal day with a mid-run checkpoint/restore and one
injected worker kill on the offline oracle's sharded run, asserting
``fleet_reports_equal`` across all three paths and positive wall-clock
lead on every epoch.
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path
from typing import List, Optional

from ..fleet.runner import run_fleet
from ..fleet.scenarios import SCENARIOS, scenario_workload
from ..multiplex.catalog import Catalog
from .daemon import LiveDaemon
from .horizon import LIVE_POLICIES, LiveConfig

__all__ = ["live_main"]

#: exit code when any live standing invariant was violated.
EXIT_LIVE_VIOLATION = 5


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro live",
        description="Serve a media catalog online: rolling-horizon epoch "
        "ingestion, incremental merge forests, fence-gated commits, and "
        "channel schedules emitted ahead of accelerated wall-clock.",
    )
    parser.add_argument("--objects", type=int, default=24,
                        help="catalog size (Zipf popularity; default 24)")
    parser.add_argument("--duration", type=float, default=120.0,
                        help="media duration in minutes (default 120)")
    parser.add_argument("--exponent", type=float, default=0.8,
                        help="Zipf exponent (default 0.8)")
    parser.add_argument("--delay", type=float, default=2.0,
                        help="guaranteed start-up delay in minutes (default 2)")
    parser.add_argument("--horizon", type=float, default=360.0,
                        help="stream horizon in minutes (default 360)")
    parser.add_argument("--epoch", type=float, default=30.0,
                        help="ingest epoch length in minutes (default 30)")
    parser.add_argument("--fence", type=float, default=60.0,
                        help="commit fence lag in minutes (default 60)")
    parser.add_argument("--scenario", choices=sorted(SCENARIOS), default="diurnal",
                        help="workload scenario (default diurnal)")
    parser.add_argument("--policy", choices=LIVE_POLICIES,
                        default="batched-dyadic",
                        help="serving policy (default batched-dyadic)")
    parser.add_argument("--mean-interarrival", type=float, default=0.2,
                        help="global mean inter-arrival in minutes (default 0.2)")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument("--accel", type=float, default=None, metavar="X",
                        help="pace ingestion at X simulated minutes per "
                        "wall-clock second (default: no pacing)")
    parser.add_argument("--report", type=str, default=None, metavar="PATH",
                        help="write the JSON live report to PATH")
    parser.add_argument("--smoke", action="store_true",
                        help="CI acceptance soak: accelerated diurnal day, "
                        "mid-run checkpoint/restore, injected worker kill "
                        "on the oracle run; exits 5 on any violation")
    return parser


def live_main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.smoke:
        return _smoke(args)

    from ..burnin.contracts import check_live_report

    catalog = Catalog.zipf(
        args.objects, duration_minutes=args.duration, exponent=args.exponent
    )
    config = LiveConfig(
        delay_minutes=args.delay,
        horizon_minutes=args.horizon,
        epoch_minutes=args.epoch,
        fence_minutes=args.fence,
        policy=args.policy,
    )
    workload = scenario_workload(
        args.scenario, catalog, args.mean_interarrival, args.horizon, seed=args.seed
    )
    print(
        f"scenario {args.scenario!r}: {SCENARIOS[args.scenario]} "
        f"({args.objects} objects, horizon {args.horizon:g} min, "
        f"epoch {args.epoch:g} min, fence lag {args.fence:g} min"
        + (f", accel {args.accel:g} min/s" if args.accel else "")
        + ")"
    )
    daemon = LiveDaemon(catalog, config)
    t0 = time.perf_counter()
    report = daemon.run(workload, accel=args.accel)
    elapsed = time.perf_counter() - t0
    assert report is not None
    print(report.render())
    print(f"[served {report.fleet.clients} requests in {elapsed:.2f}s]")

    contracts = check_live_report(report, catalog, workload=workload)
    print(contracts.render())
    if args.report:
        Path(args.report).write_text(report.to_json())
        print(f"wrote {args.report}")
    return 0 if contracts.ok else EXIT_LIVE_VIOLATION


def _smoke(args) -> int:
    """The CI acceptance soak (see module docstring)."""
    from ..burnin.contracts import check_live_report, fleet_reports_equal
    from ..burnin.faults import WorkerKill, installed_task_fault

    failures: List[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"  {'ok  ' if ok else 'FAIL'} {what}")
        if not ok:
            failures.append(what)

    catalog = Catalog.zipf(8, duration_minutes=60.0)
    config = LiveConfig(
        delay_minutes=1.5,
        horizon_minutes=120.0,
        epoch_minutes=10.0,
        fence_minutes=15.0,
        policy=args.policy,
    )
    workload = scenario_workload(
        "diurnal", catalog, 0.4, config.horizon_minutes, seed=args.seed
    )
    accel = args.accel or 600.0  # a 2-hour day in ~12s of wall-clock
    print(
        f"live smoke: diurnal day, {len(catalog)} objects, "
        f"{config.num_epochs} epochs at {accel:g} min/s"
    )

    # 1. accelerated run with a mid-run checkpoint/restore
    daemon = LiveDaemon(catalog, config)
    half = config.num_epochs // 2
    daemon.run(workload, until_epoch=half - 1, accel=accel)
    snapshot = daemon.checkpoint()
    report = daemon.run(workload, accel=accel)
    assert report is not None
    print(report.render())

    restored = LiveDaemon.restore(snapshot)
    resumed = restored.run(workload)
    assert resumed is not None
    diff = fleet_reports_equal(resumed.fleet, report.fleet)
    check(diff is None, f"checkpoint/restore replay identical ({diff or 'exact'})")
    check(
        [r.to_payload() for r in resumed.records]
        == [r.to_payload() for r in report.records],
        "epoch records identical across restore",
    )

    # 2. standing invariants + offline oracle equality
    contracts = check_live_report(report, catalog, workload=workload)
    print(contracts.render())
    if not contracts.ok:
        failures.append("live contracts")

    # 3. wall-clock lead: every paced epoch decided ahead of the next batch
    leads = [r.lead_seconds for r in report.records if r.lead_seconds is not None]
    check(bool(leads) and min(leads) > 0.0,
          f"decisions ahead of wall-clock (min lead "
          f"{min(leads, default=float('nan')):.3f}s)")

    # 4. offline oracle survives an injected worker kill and still matches
    with tempfile.TemporaryDirectory() as markers:
        kill = WorkerKill(task_index=1, marker_dir=markers)
        with installed_task_fault(kill):
            oracle = run_fleet(
                catalog,
                delay_minutes=config.delay_minutes,
                horizon_minutes=config.horizon_minutes,
                policy=config.fleet_policy(),
                workload=workload,
                workers=2,
            )
        check(kill.fired(), "worker kill fired")
    diff = fleet_reports_equal(report.fleet, oracle)
    check(diff is None,
          f"daemon == sharded oracle across worker kill ({diff or 'exact'})")

    if failures:
        print(f"live smoke: {len(failures)} failure(s)")
        return EXIT_LIVE_VIOLATION
    print("live smoke: all checks passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(live_main())

"""Shared helpers for the benchmark harness.

Every bench regenerates a paper table/figure (or an ablation DESIGN.md
calls out) through the same entry points the CLI uses, times it with
pytest-benchmark, and asserts the paper's qualitative shape on the output
so a regression in *correctness* fails the bench, not just a slowdown.

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import List, Sequence

import pytest


def column(result, name: str) -> List:
    """Column accessor (mirrors ExperimentResult.column for readability)."""
    return result.column(name)


def assert_strictly_decreasing(xs: Sequence[float], label: str = "series") -> None:
    assert all(a > b for a, b in zip(xs, xs[1:])), f"{label} not decreasing: {xs}"


def assert_nonincreasing(xs: Sequence[float], label: str = "series") -> None:
    assert all(a >= b for a, b in zip(xs, xs[1:])), f"{label} increased: {xs}"


def assert_all_ok(rows, label: str = "table") -> None:
    bad = [r for r in rows if r[-1] != "ok"]
    assert not bad, f"{label} rows failed: {bad[:5]}"

"""Event-driven Media-on-Demand server simulator and verification."""

from .client import Client
from .events import Event, EventQueue
from .metrics import BandwidthMetrics
from .policies import (
    BatchedDyadicPolicy,
    DelayGuaranteedPolicy,
    GeneralOfflinePolicy,
    ImmediateDyadicPolicy,
    OfflineOptimalPolicy,
    Policy,
    PureBatchingPolicy,
    UnicastPolicy,
)
from .hybrid import HybridPolicy
from .channels import ChannelAssignment, StreamInterval, assign_channels, assign_forest_channels, flat_forest_intervals, forest_intervals, min_forest_channels, peak_concurrency
from .server import Simulation, SimulationResult
from .stream import Stream
from .verify import (
    VerificationReport,
    verify_forest,
    verify_forest_continuous,
    verify_simulation,
)

__all__ = [
    "BandwidthMetrics",
    "BatchedDyadicPolicy",
    "Client",
    "ChannelAssignment",
    "DelayGuaranteedPolicy",
    "GeneralOfflinePolicy",
    "HybridPolicy",
    "Event",
    "EventQueue",
    "ImmediateDyadicPolicy",
    "OfflineOptimalPolicy",
    "Policy",
    "PureBatchingPolicy",
    "Simulation",
    "SimulationResult",
    "Stream",
    "StreamInterval",
    "assign_channels",
    "assign_forest_channels",
    "flat_forest_intervals",
    "forest_intervals",
    "min_forest_channels",
    "peak_concurrency",
    "UnicastPolicy",
    "VerificationReport",
    "verify_forest",
    "verify_forest_continuous",
    "verify_simulation",
]

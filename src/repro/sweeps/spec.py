"""Declarative parameter-sweep specifications.

Every figure and table of the paper is a *grid*: axes (delay, horizon,
intensity, tree size, ...) crossed into points, one evaluator applied per
point, a handful of named metrics out.  :class:`SweepSpec` captures that
shape declaratively so the engine (:mod:`repro.sweeps.engine`) can
enumerate, shard, cache and column-pack the evaluation — and so a new
scenario is a spec, not a new driver module.

An evaluator is a plain module-level function ``fn(**params) -> mapping``
called with the union of the spec's ``fixed`` parameters and one grid
point; it must return every name in ``metrics``.  Module-level functions
pickle by reference, which is what lets the engine ship points to worker
processes, and their dotted path is what anchors the content hash each
point is cached under.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Sequence, Tuple, Union

__all__ = ["Axis", "SweepSpec", "canonical_json"]


def _canonical(value):
    """Recursively normalise a parameter value for content hashing.

    Floats hash by their exact bit pattern (``float.hex``), so a cache
    key never aliases two different doubles; tuples and lists collapse to
    lists; numpy scalars collapse to their Python twins.  Anything else
    is rejected — specs whose parameters cannot be canonicalised must set
    ``cacheable=False``.
    """
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return float.hex(value)
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float.hex(float(value))
        if isinstance(value, np.bool_):
            return bool(value)
    except ImportError:  # pragma: no cover
        pass
    raise TypeError(
        f"sweep parameter {value!r} of type {type(value).__name__} is not "
        "content-hashable; use JSON-like scalars/sequences or mark the "
        "spec cacheable=False"
    )


def canonical_json(value) -> str:
    """Deterministic JSON of a parameter structure (hashing substrate)."""
    return json.dumps(_canonical(value), sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class Axis:
    """One named sweep dimension and its grid values."""

    name: str
    values: Tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))
        if not self.name:
            raise ValueError("axis needs a name")
        if not self.values:
            raise ValueError(f"axis {self.name!r} needs at least one value")


AxesLike = Union[Sequence[Axis], Mapping[str, Sequence]]


@dataclass
class SweepSpec:
    """A grid of points, an evaluator, and the metrics it must produce.

    ``axes`` cross in declaration order (last axis fastest — row-major,
    matching the nested loops the drivers used to write).  ``fixed``
    parameters reach the evaluator on every point.  ``version`` is a
    manual cache-buster: bump it when the evaluator's semantics change
    without its dotted path changing.  ``spawn_seeds=True`` makes the
    engine pass each point a ``seed_seq`` child spawned off the run's
    base :class:`numpy.random.SeedSequence` (per-point independent
    streams, deterministic in the base seed).
    """

    name: str
    evaluator: Callable[..., Mapping[str, object]]
    axes: Tuple[Axis, ...]
    metrics: Tuple[str, ...]
    fixed: Dict[str, object] = field(default_factory=dict)
    version: str = "1"
    cacheable: bool = True
    spawn_seeds: bool = False

    def __post_init__(self) -> None:
        if isinstance(self.axes, Mapping):
            self.axes = tuple(Axis(k, tuple(v)) for k, v in self.axes.items())
        else:
            self.axes = tuple(
                a if isinstance(a, Axis) else Axis(*a) for a in self.axes
            )
        if not self.axes:
            raise ValueError("a sweep needs at least one axis")
        self.metrics = tuple(self.metrics)
        self.fixed = dict(self.fixed)
        names = [a.name for a in self.axes]
        clashes = set(names) & set(self.fixed)
        if len(set(names)) != len(names) or clashes:
            raise ValueError(
                f"axis names must be unique and disjoint from fixed params "
                f"(axes={names}, clashes={sorted(clashes)})"
            )

    # -- grid ----------------------------------------------------------------

    @property
    def axis_names(self) -> Tuple[str, ...]:
        return tuple(a.name for a in self.axes)

    @property
    def n_points(self) -> int:
        out = 1
        for a in self.axes:
            out *= len(a.values)
        return out

    def points(self) -> List[Dict[str, object]]:
        """Every grid point as a dict, row-major (last axis fastest)."""
        names = self.axis_names
        return [
            dict(zip(names, combo))
            for combo in itertools.product(*(a.values for a in self.axes))
        ]

    # -- hashing -------------------------------------------------------------

    @property
    def evaluator_id(self) -> str:
        return f"{self.evaluator.__module__}.{self.evaluator.__qualname__}"

    def point_key(self, point: Mapping[str, object], extra=None) -> str:
        """Content hash identifying one point's result artifact.

        Covers the evaluator identity, spec version, fixed parameters and
        the point itself — any change to any of them dirties the point;
        everything untouched stays warm in the artifact cache.
        """
        payload = {
            "sweep": self.name,
            "version": self.version,
            "evaluator": self.evaluator_id,
            "fixed": self.fixed,
            "point": dict(point),
            "metrics": list(self.metrics),
        }
        if extra is not None:
            payload["extra"] = extra
        digest = hashlib.sha256(canonical_json(payload).encode()).hexdigest()
        return digest

"""Section 5 future-work extensions, made concrete.

* ``multiplex`` — a multi-object catalog served under a fixed channel
  budget: DG's deterministic peak vs dyadic's load-dependent peak, and the
  delay-guarantee knob that caps the maximum bandwidth.
* ``hybrid`` — the paper's suggested hybrid server (DG when busy, dyadic
  when quiet) on a day/night workload, against both pure policies.
* ``general-offline`` — the true clairvoyant optimum over non-empty slots
  (from [6]) scoring the on-line heuristics on sparse workloads.
"""

from __future__ import annotations

from typing import List, Sequence

from ..arrivals import ArrivalTrace, poisson
from ..baselines.batching import batched_dyadic_cost
from ..core.general import optimal_full_cost_general
from ..multiplex import Catalog, catalog_workload, min_delay_for_budget, serve_catalog
from ..simulation import DelayGuaranteedPolicy, ImmediateDyadicPolicy, Simulation
from ..simulation.hybrid import HybridPolicy
from .harness import ExperimentResult, register


@register(
    "multiplex",
    "Multi-object server: peak channels vs delay guarantee (Section 5)",
    "Section 5 (future work), made concrete",
    "DG's deterministic channel envelope vs dyadic's load-dependent peak "
    "across delay guarantees; the delay knob that caps max bandwidth.",
)
def run_multiplex(
    titles: int = 20,
    horizon_minutes: float = 720.0,
    mean_interarrival_minutes: float = 0.5,
    delays: Sequence[float] = (2.0, 5.0, 10.0, 15.0, 30.0),
    seed: int = 7,
) -> List[ExperimentResult]:
    catalog = Catalog.zipf(titles, duration_minutes=120.0, exponent=0.8)
    workload = catalog_workload(
        catalog, mean_interarrival_minutes, horizon_minutes, seed=seed
    )
    rows = []
    for delay in delays:
        dg = serve_catalog(catalog, delay, horizon_minutes, policy="dg")
        dy = serve_catalog(
            catalog, delay, horizon_minutes, policy="dyadic", workload=workload
        )
        rows.append(
            (
                delay,
                dg.peak_channels,
                round(dg.total_units_minutes / 60.0, 1),
                dy.peak_channels,
                round(dy.total_units_minutes / 60.0, 1),
            )
        )
    budget = rows[len(rows) // 2][1]  # mid-grid DG peak as the budget
    chosen = min_delay_for_budget(catalog, horizon_minutes, budget, delays)
    return [
        ExperimentResult(
            title=f"Catalog of {titles} titles, {horizon_minutes:.0f} min "
            f"horizon, ~{1/mean_interarrival_minutes:.1f} req/min",
            headers=(
                "delay (min)",
                "DG peak ch.",
                "DG stream-hours",
                "dyadic peak ch.",
                "dyadic stream-hours",
            ),
            rows=rows,
            notes=[
                "DG's peak is workload-independent (provisionable in "
                "advance); dyadic's depends on the request pattern.",
                f"min_delay_for_budget(budget={budget} channels) -> "
                f"{chosen} min.",
            ],
        )
    ]


@register(
    "hybrid",
    "Hybrid server: DG when busy, dyadic when quiet (Section 5)",
    "Section 5 (future work), made concrete",
    "Day/night workload: hybrid vs pure DG vs pure immediate dyadic.",
)
def run_hybrid(
    L: int = 100,
    day_lam: float = 0.25,
    night_lam: float = 8.0,
    phase_slots: float = 500.0,
    phases: int = 4,
    seed: int = 3,
) -> List[ExperimentResult]:
    # Alternate night (quiet) and day (busy) phases.
    times: List[float] = []
    for phase in range(phases):
        lam = day_lam if phase % 2 else night_lam
        sub = poisson(lam, phase_slots, seed=seed + phase)
        times.extend(phase * phase_slots + t for t in sub)
    horizon = phases * phase_slots
    trace = ArrivalTrace(times=tuple(sorted(times)), horizon=horizon)

    hybrid = HybridPolicy(L, window_slots=20, rate_high=1.0, rate_low=0.4)
    res_h = Simulation(L, trace, hybrid).run()
    res_dg = Simulation(L, trace, DelayGuaranteedPolicy(L)).run()
    res_dy = Simulation(L, trace, ImmediateDyadicPolicy(L)).run()

    rows = [
        ("hybrid", round(res_h.metrics.streams_served, 2),
         res_h.metrics.peak_concurrency(), len(hybrid.mode_log)),
        ("pure DG", round(res_dg.metrics.streams_served, 2),
         res_dg.metrics.peak_concurrency(), 0),
        ("immediate dyadic", round(res_dy.metrics.streams_served, 2),
         res_dy.metrics.peak_concurrency(), 0),
    ]
    return [
        ExperimentResult(
            title=f"Hybrid vs pure policies on a day/night workload "
            f"({phases} phases x {phase_slots:.0f} slots, "
            f"busy lam={day_lam}, quiet lam={night_lam})",
            headers=("policy", "streams served", "peak channels", "mode switches"),
            rows=rows,
            notes=[
                "Shape target: hybrid below pure DG in total bandwidth "
                "while keeping DG's bounded peak during busy phases.",
                f"hybrid mode log: {hybrid.mode_log}",
            ],
        )
    ]


@register(
    "general-offline",
    "True offline optimum vs on-line heuristics on sparse workloads",
    "[6] general-arrivals optimum as the clairvoyant bound",
    "Batched dyadic and DG scored against the O(n^3) optimal forest over "
    "the non-empty slots.",
)
def run_general_offline(
    L: int = 50,
    lams: Sequence[float] = (2.0, 4.0, 8.0),
    horizon: float = 400.0,
    seed: int = 1,
) -> List[ExperimentResult]:
    from ..core.online import online_full_cost

    rows = []
    for lam in lams:
        trace = poisson(lam, horizon, seed=seed)
        if len(trace) < 2:
            continue
        ends = trace.slot_end_times(1.0)
        opt = optimal_full_cost_general(ends, L)
        dyadic = batched_dyadic_cost(trace, L)
        dg = online_full_cost(L, int(horizon))
        rows.append(
            (
                lam,
                len(ends),
                round(opt, 1),
                round(dyadic, 1),
                round(dyadic / opt, 4),
                round(dg, 1),
                round(dg / opt, 4),
            )
        )
    return [
        ExperimentResult(
            title=f"Clairvoyant optimum over non-empty slots (L={L}, "
            f"horizon={horizon:.0f} slots)",
            headers=(
                "lam",
                "served slots",
                "optimal",
                "batched dyadic",
                "dyadic/opt",
                "DG",
                "DG/opt",
            ),
            rows=rows,
            notes=[
                "Shape target: dyadic within a modest factor of optimal; "
                "DG's overhead grows with sparsity (it serves every slot).",
            ],
        )
    ]

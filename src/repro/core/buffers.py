"""Limited client buffers (Section 3.3).

A client arriving at ``x`` in a tree rooted at ``r`` needs buffer space for

    b(x) = min( x - r,  L - (x - r) )        (Lemma 15)

parts of the stream: while it is receiving from two streams it accumulates
one extra part per slot until it merges to the root at time ``2x - r``
(first case), and a client far from the root simply holds the tail of the
root stream (second case).  Clients therefore never need more than ``L/2``
buffer.

With a buffer bound ``B < L/2`` every arrival must sit within ``B`` slots of
its root (arrivals are consecutive in the delay-guaranteed setting, so a
tree spanning more than ``B`` would contain a violating arrival), forcing at
least ``s0 = ceil(n / B)`` full streams.  Theorem 16: an optimal B-bounded
forest is computable in O(B + n) by the Lemma 9 machinery with tree sizes
capped at ``B + 1`` arrivals (span <= B).
"""

from __future__ import annotations

from typing import List, Tuple

from .merge_tree import MergeForest, MergeTree
from .offline import build_optimal_tree, merge_cost

__all__ = [
    "buffer_requirement",
    "tree_buffer_requirements",
    "max_buffer_requirement",
    "bounded_full_cost_given_streams",
    "optimal_bounded_full_cost",
    "optimal_bounded_stream_count",
    "build_optimal_bounded_forest",
]


def buffer_requirement(x: float, root: float, L: float) -> float:
    """``b(x) = min(x - r, L - (x - r))`` (Lemma 15).  Requires ``x >= r``."""
    if x < root:
        raise ValueError(f"arrival {x} precedes root {root}")
    gap = x - root
    if gap > L - 1:
        raise ValueError(
            f"arrival {x} is {gap} > L-1 = {L - 1} after the root; it "
            "cannot be served by this tree at all"
        )
    return min(gap, L - gap)


def tree_buffer_requirements(tree: MergeTree, L: float) -> dict:
    """Map every arrival in ``tree`` to its Lemma 15 buffer need."""
    r = tree.root.arrival
    return {a: buffer_requirement(a, r, L) for a in tree.arrivals()}


def max_buffer_requirement(tree: MergeTree, L: float) -> float:
    """Largest buffer any client of this tree needs."""
    return max(tree_buffer_requirements(tree, L).values())


def _check(L: int, n: int, B: int) -> None:
    if L < 1:
        raise ValueError(f"L must be >= 1, got {L}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if B < 1:
        raise ValueError(f"buffer bound B must be >= 1, got {B}")
    if 2 * B > L:
        raise ValueError(
            f"B = {B} > L/2 = {L / 2}; the bound never binds there "
            "(clients need at most L/2 buffer) — use the unbounded solver"
        )


def bounded_full_cost_given_streams(L: int, n: int, B: int, s: int) -> int:
    """Full cost with ``s`` streams when every tree spans at most ``B``.

    Trees may hold at most ``B + 1`` consecutive arrivals (span ``<= B``).
    Shape per the Lemma 9 balancing argument (inequality (12) holds for
    sizes within the cap).
    """
    _check(L, n, B)
    s_min = -(-n // (B + 1))
    if not s_min <= s <= n:
        raise ValueError(f"s = {s} outside [{s_min}, {n}] for n={n}, B={B}")
    p, r = divmod(n, s)
    if p + (1 if r else 0) > B + 1:
        raise ValueError(f"internal: tree size exceeds B+1 with s={s}")
    mp = 0 if p == 0 else merge_cost(p)
    return s * L + (s - r) * mp + r * merge_cost(p + 1)


def optimal_bounded_stream_count(L: int, n: int, B: int) -> int:
    """Argmin ``s`` of the B-bounded full cost (smallest on ties).

    Theorem 16's O(B + n) bound comes from only needing
    ``M(1), ..., M(B+1)`` and scanning the feasible ``s`` range; we keep the
    direct scan for clarity (still linear overall).
    """
    _check(L, n, B)
    s_min = -(-n // (B + 1))
    best_s, best = s_min, None
    for s in range(s_min, n + 1):
        cost = bounded_full_cost_given_streams(L, n, B, s)
        if best is None or cost < best:
            best_s, best = s, cost
    return best_s


def optimal_bounded_full_cost(L: int, n: int, B: int) -> int:
    """Minimum full cost subject to client buffer bound ``B`` (Thm 16)."""
    s = optimal_bounded_stream_count(L, n, B)
    return bounded_full_cost_given_streams(L, n, B, s)


def build_optimal_bounded_forest(
    L: int, n: int, B: int, s: int | None = None
) -> MergeForest:
    """Optimal merge forest under buffer bound ``B`` (Theorem 16)."""
    _check(L, n, B)
    if s is None:
        s = optimal_bounded_stream_count(L, n, B)
    p, r = divmod(n, s)
    trees: List[MergeTree] = []
    offset = 0
    for _ in range(r):
        trees.append(build_optimal_tree(p + 1, start=offset))
        offset += p + 1
    for _ in range(s - r):
        trees.append(build_optimal_tree(p, start=offset))
        offset += p
    forest = MergeForest(trees)
    # Feasibility: every tree spans at most B.
    for tree in forest:
        if tree.span() > B:
            raise AssertionError("constructed tree violates the buffer bound")
    return forest


def verify_buffer_bound(forest: MergeForest, L: float, B: float) -> Tuple[bool, List]:
    """Check Lemma 15 across a forest: returns (ok, violations)."""
    violations = []
    for tree in forest:
        for arrival, need in tree_buffer_requirements(tree, L).items():
            if need > B:
                violations.append((arrival, need))
    return (not violations), violations

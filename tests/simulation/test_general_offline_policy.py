"""Tests for GeneralOfflinePolicy: the clairvoyant sparse-slot optimum."""

from __future__ import annotations

import pytest

from repro.arrivals import ArrivalTrace, every_slot, poisson
from repro.core.full_cost import optimal_full_cost
from repro.core.general import optimal_full_cost_general
from repro.simulation import (
    BatchedDyadicPolicy,
    GeneralOfflinePolicy,
    Simulation,
    verify_simulation,
)


class TestGeneralOfflinePolicy:
    def test_cost_matches_general_dp(self):
        trace = poisson(3.0, 120.0, seed=4)
        ends = trace.slot_end_times(1.0)
        L = 40
        res = Simulation(L, trace, GeneralOfflinePolicy(L, ends)).run()
        assert res.metrics.total_units == pytest.approx(
            optimal_full_cost_general(ends, L)
        )
        verify_simulation(res).raise_if_failed()

    def test_every_slot_reduces_to_uniform_optimum(self):
        n, L = 30, 12
        trace = every_slot(n)
        ends = trace.slot_end_times(1.0)
        res = Simulation(L, trace, GeneralOfflinePolicy(L, ends)).run()
        assert res.metrics.total_units == optimal_full_cost(L, n)

    def test_beats_batched_dyadic(self):
        trace = poisson(2.5, 150.0, seed=8)
        L = 40
        ends = trace.slot_end_times(1.0)
        res_opt = Simulation(L, trace, GeneralOfflinePolicy(L, ends)).run()
        res_dy = Simulation(L, trace, BatchedDyadicPolicy(L)).run()
        assert res_opt.metrics.total_units <= res_dy.metrics.total_units

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            GeneralOfflinePolicy(10, [])

    def test_unexpected_slot_raises(self):
        trace = ArrivalTrace(times=(0.5, 5.5), horizon=10.0)
        # claim only the first slot will be served — the second arrival
        # exposes the stale plan
        policy = GeneralOfflinePolicy(10, [1.0])
        with pytest.raises(RuntimeError):
            Simulation(10, trace, policy).run()

"""Tests for general-arrivals optimal stream merging (core.general)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import dp, offline
from repro.core.full_cost import optimal_full_cost
from repro.core.general import (
    optimal_forest_general,
    optimal_full_cost_general,
    optimal_merge_cost_general,
    optimal_merge_tree_general,
)
from repro.simulation.verify import verify_forest, verify_forest_continuous

from tests.conftest import increasing_times


class TestReducesToUniformCase:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 13, 20, 34])
    def test_merge_cost(self, n):
        assert optimal_merge_cost_general(list(range(n))) == (
            0 if n == 1 else offline.merge_cost(n)
        )

    @pytest.mark.parametrize("n", [2, 5, 8, 13, 21])
    def test_tree_cost(self, n):
        tree = optimal_merge_tree_general(list(range(n)))
        assert tree.merge_cost() == offline.merge_cost(n)
        assert tree.has_preorder_property()

    @pytest.mark.parametrize("L,n", [(15, 8), (15, 14), (4, 16), (10, 40)])
    def test_full_cost(self, L, n):
        assert optimal_full_cost_general(list(range(n)), L) == optimal_full_cost(L, n)


class TestIrregularArrivals:
    def test_matches_dp_oracle(self):
        cases = [
            [0, 1, 3, 4, 9],
            [0.0, 0.5, 2.5, 2.75, 10.0],
            [0, 2, 5, 11, 12, 20, 21],
        ]
        for ts in cases:
            tree = optimal_merge_tree_general(ts)
            assert tree.merge_cost() == pytest.approx(dp.general_arrivals_cost(ts))

    @settings(max_examples=30, deadline=None)
    @given(increasing_times(min_size=1, max_size=12, horizon=60.0))
    def test_tree_cost_equals_dp(self, times):
        tree = optimal_merge_tree_general(times)
        assert tree.merge_cost() == pytest.approx(dp.general_arrivals_cost(times))
        assert tree.has_preorder_property()

    @settings(max_examples=20, deadline=None)
    @given(increasing_times(min_size=1, max_size=10, horizon=60.0))
    def test_forest_playable(self, times):
        L = 100.0
        forest = optimal_forest_general(times, L)
        assert forest.arrivals() == sorted(times)
        verify_forest_continuous(forest, L).raise_if_failed()

    def test_integer_slots_playable_exact(self):
        ends = [1, 2, 5, 9, 10, 11, 20]
        forest = optimal_forest_general(ends, 25)
        verify_forest(forest, 25).raise_if_failed()


class TestRootPlacement:
    def test_span_constraint_forces_roots(self):
        # gaps wider than L-1 require separate roots
        ts = [0, 1, 50, 51]
        forest = optimal_forest_general(ts, 10)
        assert forest.roots() == [0, 50]

    def test_infeasible_none(self):
        # a single arrival is always feasible
        forest = optimal_forest_general([5.0], 3)
        assert forest.roots() == [5.0]

    def test_prefers_merging_when_cheap(self):
        # two close arrivals: merging (L + gap) beats two roots (2L)
        ts = [0.0, 1.0]
        forest = optimal_forest_general(ts, 50)
        assert forest.roots() == [0.0]
        assert forest.full_cost(50) == 51.0

    def test_prefers_roots_when_merge_expensive(self):
        # with L = 2 and gap 1: merging costs 2+1=3, two roots cost 4 — merge
        assert optimal_full_cost_general([0, 1], 2) == 3
        # chain of arrivals at L=2 must alternate roots (max 2 per tree)
        forest = optimal_forest_general([0, 1, 2, 3], 2)
        assert len(forest.roots()) == 2

    def test_beats_or_ties_every_heuristic(self):
        from repro.baselines.dyadic import dyadic_forest

        ts = [0.0, 0.7, 1.1, 4.0, 9.5, 10.0, 22.0]
        L = 30
        opt = optimal_full_cost_general(ts, L)
        dyadic = dyadic_forest(ts, L).full_cost(L)
        assert opt <= dyadic + 1e-9

    def test_errors(self):
        with pytest.raises(ValueError):
            optimal_forest_general([], 10)
        with pytest.raises(ValueError):
            optimal_forest_general([0, 0], 10)
        with pytest.raises(ValueError):
            optimal_forest_general([0.0], 0)
        with pytest.raises(ValueError):
            optimal_merge_tree_general([])

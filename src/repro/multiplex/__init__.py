"""Multi-object Media-on-Demand provisioning (the paper's Section 5
future work): catalogs with Zipf popularity, per-object stream-merging
envelopes, aggregate peak-bandwidth analysis, and delay-for-budget
search."""

from .catalog import Catalog, MediaObject, zipf_weights
from .server import (
    MultiplexReport,
    ObjectLoad,
    aggregate_peak,
    aggregate_profile,
    dg_object_load,
    dyadic_envelope,
    dyadic_object_load,
    min_delay_for_budget,
    serve_catalog,
)
from .workload import catalog_workload, split_requests

__all__ = [
    "Catalog",
    "MediaObject",
    "MultiplexReport",
    "ObjectLoad",
    "aggregate_peak",
    "aggregate_profile",
    "catalog_workload",
    "dg_object_load",
    "dyadic_envelope",
    "dyadic_object_load",
    "min_delay_for_budget",
    "serve_catalog",
    "split_requests",
    "zipf_weights",
]

"""Tests for merge-forest and receiving-program serialization."""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.full_cost import build_optimal_forest
from repro.core.merge_tree import MergeForest
from repro.core.offline import build_optimal_tree
from repro.core.online import build_online_forest
from repro.core.receiving_program import receive_two_program
from repro.core.serialization import (
    export_client_schedules,
    forest_from_json,
    forest_to_json,
    load_forest,
    program_to_json,
    save_forest,
)
from repro.baselines.dyadic import dyadic_forest

from tests.conftest import preorder_tree


class TestForestRoundTrip:
    @pytest.mark.parametrize("L,n", [(15, 8), (15, 14), (4, 16), (10, 60)])
    def test_optimal_forests(self, L, n):
        forest = build_optimal_forest(L, n)
        back = forest_from_json(forest_to_json(forest, L))
        assert [t.canonical() for t in back] == [t.canonical() for t in forest]
        assert back.full_cost(L) == forest.full_cost(L)

    def test_online_forest(self):
        forest = build_online_forest(15, 19)
        back = forest_from_json(forest_to_json(forest))
        assert back.merge_cost() == forest.merge_cost()

    def test_real_valued_labels(self):
        forest = dyadic_forest([0.0, 1.5, 2.25, 60.0], 100)
        back = forest_from_json(forest_to_json(forest, 100))
        assert [t.canonical() for t in back] == [t.canonical() for t in forest]

    @settings(max_examples=30, deadline=None)
    @given(preorder_tree(max_n=16))
    def test_random_trees(self, tree):
        forest = MergeForest([tree])
        back = forest_from_json(forest_to_json(forest))
        assert back.trees[0].canonical() == tree.canonical()

    def test_files(self, tmp_path):
        forest = build_optimal_forest(15, 8)
        path = tmp_path / "forest.json"
        save_forest(forest, path, L=15)
        assert load_forest(path).full_cost(15) == 36


class TestForestValidation:
    def test_wrong_schema(self):
        with pytest.raises(ValueError, match="schema"):
            forest_from_json(json.dumps({"schema": "nope", "trees": []}))

    def test_count_mismatch(self):
        doc = json.loads(forest_to_json(build_optimal_forest(15, 8), 15))
        doc["num_arrivals"] = 99
        with pytest.raises(ValueError, match="corrupt"):
            forest_from_json(json.dumps(doc))

    def test_metadata_preserved(self):
        doc = json.loads(forest_to_json(build_optimal_forest(15, 8), 15))
        assert doc["L"] == 15


class TestProgramExport:
    def test_program_json(self):
        tree = build_optimal_tree(8)
        prog = receive_two_program(tree, 7, 15)
        doc = json.loads(program_to_json(prog))
        assert doc["client"] == 7
        assert doc["path"] == [0, 5, 7]
        assert len(doc["receptions"]) == 15
        # rows sorted by slot end; first reception at slot 8
        assert doc["receptions"][0][0] == 8

    def test_export_all_clients(self, tmp_path):
        forest = build_optimal_forest(15, 8)
        count = export_client_schedules(forest, 15, tmp_path / "sched")
        assert count == 8
        files = sorted((tmp_path / "sched").glob("client_*.json"))
        assert len(files) == 8
        doc = json.loads(files[0].read_text())
        assert doc["schema"] == "repro.receiving-program.v1"
